//! Cross-validation of the sequential oracles against brute force.
//!
//! The oracles in `seq` are the ground truth every distributed algorithm
//! is tested against, so they get their own independent check: exhaustive
//! enumeration of *all* graphs on 4 nodes (every edge subset, directed
//! and undirected, unit and non-uniform weights) plus mwc-rng-seeded
//! random graphs up to n = 7, compared against a brute-force simple-cycle
//! enumerator and a brute-force simple-path minimizer that share no code
//! with the oracles.

use mwc_graph::generators::{connected_gnm, WeightRange};
use mwc_graph::seq::{self, dijkstra, Direction, INF};
use mwc_graph::{Graph, NodeId, Orientation, Weight};
use mwc_rng::StdRng;

/// Brute-force MWC: DFS over all simple cycles, anchored at each cycle's
/// minimum vertex so rotations are not re-enumerated.
fn brute_force_mwc(g: &Graph) -> Option<Weight> {
    let min_len = if g.is_directed() { 2 } else { 3 };
    let mut best: Option<Weight> = None;
    #[allow(clippy::too_many_arguments)]
    fn dfs(
        g: &Graph,
        start: NodeId,
        u: NodeId,
        weight: Weight,
        visited: &mut Vec<bool>,
        depth: usize,
        min_len: usize,
        best: &mut Option<Weight>,
    ) {
        for a in g.out_adj(u) {
            if a.to == start {
                if depth >= min_len {
                    let w = weight + a.weight;
                    if best.is_none() || w < best.unwrap() {
                        *best = Some(w);
                    }
                }
                continue;
            }
            if a.to < start || visited[a.to] {
                continue;
            }
            visited[a.to] = true;
            dfs(
                g,
                start,
                a.to,
                weight + a.weight,
                visited,
                depth + 1,
                min_len,
                best,
            );
            visited[a.to] = false;
        }
    }
    for start in 0..g.n() {
        let mut visited = vec![false; g.n()];
        visited[start] = true;
        dfs(g, start, start, 0, &mut visited, 1, min_len, &mut best);
    }
    best
}

/// Brute-force girth: same enumeration, counting hops instead of weight.
fn brute_force_girth(g: &Graph) -> Option<Weight> {
    let unit = Graph::from_edges(
        g.n(),
        g.orientation(),
        g.edges().iter().map(|e| (e.u, e.v, 1)),
    )
    .expect("same topology, unit weights");
    brute_force_mwc(&unit)
}

/// Brute-force single-source distances: DFS over all simple paths.
fn brute_force_distances(g: &Graph, src: NodeId) -> Vec<Weight> {
    fn dfs(g: &Graph, u: NodeId, weight: Weight, visited: &mut Vec<bool>, dist: &mut Vec<Weight>) {
        if weight < dist[u] {
            dist[u] = weight;
        }
        for a in g.out_adj(u) {
            if !visited[a.to] {
                visited[a.to] = true;
                dfs(g, a.to, weight + a.weight, visited, dist);
                visited[a.to] = false;
            }
        }
    }
    let mut dist = vec![INF; g.n()];
    let mut visited = vec![false; g.n()];
    visited[src] = true;
    dfs(g, src, 0, &mut visited, &mut dist);
    dist
}

/// All unordered node pairs of `{0, …, 3}` — the 6 possible undirected
/// edges on 4 nodes.
const UNDIRECTED_PAIRS: [(usize, usize); 6] = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];

#[test]
fn exhaustive_undirected_n4_matches_brute_force() {
    // All 2^6 edge subsets, each under unit weights (exercises girth_exact
    // via mwc_exact) and a fixed non-uniform weighting (exercises
    // mwc_undirected_exact).
    for mask in 0u32..64 {
        for unit in [true, false] {
            let edges: Vec<(usize, usize, Weight)> = UNDIRECTED_PAIRS
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(i, &(u, v))| (u, v, if unit { 1 } else { 1 + (i as Weight * 3) % 5 }))
                .collect();
            let g = Graph::from_edges(4, Orientation::Undirected, edges).unwrap();
            let expect = brute_force_mwc(&g);
            assert_eq!(
                seq::mwc_exact(&g).map(|m| m.weight),
                expect,
                "mask {mask:#08b} unit {unit}"
            );
            assert_eq!(
                seq::mwc_undirected_exact(&g).map(|m| m.weight),
                expect,
                "mask {mask:#08b} unit {unit} (per-edge-deletion oracle)"
            );
            assert_eq!(
                seq::girth_exact(&g).map(|m| m.weight),
                brute_force_girth(&g),
                "mask {mask:#08b} girth"
            );
        }
    }
}

#[test]
fn exhaustive_directed_n4_matches_brute_force() {
    // All 2^12 subsets of the 12 ordered pairs on 4 nodes, with weights
    // varying by edge index so asymmetric cycles are distinguished.
    let pairs: Vec<(usize, usize)> = (0..4)
        .flat_map(|u| (0..4).filter(move |&v| v != u).map(move |v| (u, v)))
        .collect();
    for mask in 0u32..4096 {
        let edges: Vec<(usize, usize, Weight)> = pairs
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(i, &(u, v))| (u, v, 1 + (i as Weight * 5) % 7))
            .collect();
        let g = Graph::from_edges(4, Orientation::Directed, edges).unwrap();
        assert_eq!(
            seq::mwc_directed_exact(&g).map(|m| m.weight),
            brute_force_mwc(&g),
            "mask {mask:#014b}"
        );
    }
}

#[test]
fn random_small_graphs_match_brute_force() {
    let mut seeds = StdRng::seed_from_u64(0xC0DE).fork("oracle-cross/mwc");
    for n in 5usize..=7 {
        for orientation in [Orientation::Directed, Orientation::Undirected] {
            for _ in 0..40 {
                let seed = seeds.next_u64();
                let extra = (seed % 2 * n as u64) as usize;
                let g = connected_gnm(n, extra, orientation, WeightRange::uniform(1, 9), seed);
                assert_eq!(
                    seq::mwc_exact(&g).map(|m| m.weight),
                    brute_force_mwc(&g),
                    "n {n} {orientation:?} seed {seed}"
                );
            }
        }
    }
}

#[test]
fn dijkstra_matches_brute_force_paths() {
    let mut seeds = StdRng::seed_from_u64(0xC0DE).fork("oracle-cross/dijkstra");
    for n in 4usize..=7 {
        for orientation in [Orientation::Directed, Orientation::Undirected] {
            for _ in 0..30 {
                let seed = seeds.next_u64();
                let g = connected_gnm(n, n, orientation, WeightRange::uniform(1, 9), seed);
                for src in 0..n {
                    let t = dijkstra(&g, src, Direction::Forward);
                    assert_eq!(
                        t.dist,
                        brute_force_distances(&g, src),
                        "n {n} {orientation:?} seed {seed} src {src}"
                    );
                }
            }
        }
    }
}
