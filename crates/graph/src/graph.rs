//! Core graph types shared by the sequential oracles, the CONGEST simulator
//! and the distributed algorithms.
//!
//! A [`Graph`] is a simple graph (no self-loops, no parallel edges) that is
//! either directed or undirected, with non-negative integer edge weights.
//! Unweighted graphs are represented with all weights equal to 1; this
//! matches the paper's convention where the *hop length* of a cycle in an
//! unweighted graph equals its weight.

use std::collections::HashMap;
use std::fmt;

/// Identifier of a node; nodes of an `n`-node graph are `0..n`.
///
/// The CONGEST model (paper §1.1) gives each node a unique identifier in
/// `{0, …, n−1}`; we use the same convention so node ids double as vector
/// indices everywhere.
pub type NodeId = usize;

/// Identifier of an edge, an index into [`Graph::edges`].
pub type EdgeId = usize;

/// Non-negative integer edge weight.
///
/// The paper assumes `w : E → {0, …, W}` with `W = poly(n)`. `u64` is wide
/// enough for every workload in this repository, including scaled graphs.
pub type Weight = u64;

/// Whether a [`Graph`]'s edges are directed.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Orientation {
    /// Each edge `(u, v)` may only be traversed from `u` to `v`.
    Directed,
    /// Each edge may be traversed in both directions.
    Undirected,
}

impl fmt::Display for Orientation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Orientation::Directed => f.write_str("directed"),
            Orientation::Undirected => f.write_str("undirected"),
        }
    }
}

/// A single edge of a [`Graph`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Edge {
    /// Tail endpoint (for directed graphs, the edge goes `u → v`).
    pub u: NodeId,
    /// Head endpoint.
    pub v: NodeId,
    /// Non-negative weight.
    pub weight: Weight,
}

/// Error returned when building or mutating a [`Graph`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum GraphError {
    /// An endpoint was `>= n`.
    NodeOutOfRange {
        /// The offending node id.
        node: NodeId,
        /// The graph's node count.
        n: usize,
    },
    /// `u == v`; simple graphs have no self-loops.
    SelfLoop {
        /// The node with the attempted self-loop.
        node: NodeId,
    },
    /// The edge (in the graph's orientation) already exists.
    DuplicateEdge {
        /// Tail endpoint.
        u: NodeId,
        /// Head endpoint.
        v: NodeId,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            GraphError::NodeOutOfRange { node, n } => {
                write!(f, "node {node} out of range for graph with {n} nodes")
            }
            GraphError::SelfLoop { node } => write!(f, "self-loop at node {node} not allowed"),
            GraphError::DuplicateEdge { u, v } => write!(f, "edge ({u}, {v}) already present"),
        }
    }
}

impl std::error::Error for GraphError {}

/// An adjacency entry: neighbor, weight of the connecting edge, edge id.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Adj {
    /// The neighboring node.
    pub to: NodeId,
    /// Weight of the edge leading to [`Adj::to`].
    pub weight: Weight,
    /// Id of the underlying edge.
    pub edge: EdgeId,
}

/// A simple directed or undirected graph with non-negative integer weights.
///
/// # Examples
///
/// ```
/// use mwc_graph::{Graph, Orientation};
///
/// # fn main() -> Result<(), mwc_graph::GraphError> {
/// let mut g = Graph::directed(3);
/// g.add_edge(0, 1, 2)?;
/// g.add_edge(1, 2, 3)?;
/// g.add_edge(2, 0, 4)?;
/// assert_eq!(g.n(), 3);
/// assert_eq!(g.m(), 3);
/// assert_eq!(g.orientation(), Orientation::Directed);
/// assert_eq!(g.weight(2, 0), Some(4));
/// assert_eq!(g.weight(0, 2), None); // directed: only 2 → 0 exists
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Graph {
    n: usize,
    orientation: Orientation,
    edges: Vec<Edge>,
    out_adj: Vec<Vec<Adj>>,
    in_adj: Vec<Vec<Adj>>,
    /// Map from ordered pair to edge id, used for `O(1)`-ish lookups.
    index: HashMap<(NodeId, NodeId), EdgeId>,
    max_weight: Weight,
    unit_weights: bool,
}

impl Graph {
    /// Creates an empty directed graph on `n` nodes.
    pub fn directed(n: usize) -> Self {
        Self::new(n, Orientation::Directed)
    }

    /// Creates an empty undirected graph on `n` nodes.
    pub fn undirected(n: usize) -> Self {
        Self::new(n, Orientation::Undirected)
    }

    /// Creates an empty graph on `n` nodes with the given orientation.
    pub fn new(n: usize, orientation: Orientation) -> Self {
        Graph {
            n,
            orientation,
            edges: Vec::new(),
            out_adj: vec![Vec::new(); n],
            in_adj: vec![Vec::new(); n],
            index: HashMap::new(),
            max_weight: 0,
            unit_weights: true,
        }
    }

    /// Builds a graph from an edge list.
    ///
    /// # Errors
    ///
    /// Returns the first [`GraphError`] produced by [`Graph::add_edge`].
    pub fn from_edges<I>(n: usize, orientation: Orientation, edges: I) -> Result<Self, GraphError>
    where
        I: IntoIterator<Item = (NodeId, NodeId, Weight)>,
    {
        let mut g = Self::new(n, orientation);
        for (u, v, w) in edges {
            g.add_edge(u, v, w)?;
        }
        Ok(g)
    }

    /// Adds an edge `u → v` (or `u — v` if undirected) of weight `weight`.
    ///
    /// Returns the id of the new edge.
    ///
    /// # Errors
    ///
    /// - [`GraphError::NodeOutOfRange`] if an endpoint is `>= n`.
    /// - [`GraphError::SelfLoop`] if `u == v`.
    /// - [`GraphError::DuplicateEdge`] if the edge already exists (for
    ///   undirected graphs, in either endpoint order).
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, weight: Weight) -> Result<EdgeId, GraphError> {
        if u >= self.n {
            return Err(GraphError::NodeOutOfRange { node: u, n: self.n });
        }
        if v >= self.n {
            return Err(GraphError::NodeOutOfRange { node: v, n: self.n });
        }
        if u == v {
            return Err(GraphError::SelfLoop { node: u });
        }
        if self.index.contains_key(&(u, v)) {
            return Err(GraphError::DuplicateEdge { u, v });
        }
        let id = self.edges.len();
        self.edges.push(Edge { u, v, weight });
        self.index.insert((u, v), id);
        self.out_adj[u].push(Adj {
            to: v,
            weight,
            edge: id,
        });
        self.in_adj[v].push(Adj {
            to: u,
            weight,
            edge: id,
        });
        if self.orientation == Orientation::Undirected {
            self.index.insert((v, u), id);
            self.out_adj[v].push(Adj {
                to: u,
                weight,
                edge: id,
            });
            self.in_adj[u].push(Adj {
                to: v,
                weight,
                edge: id,
            });
        }
        self.max_weight = self.max_weight.max(weight);
        if weight != 1 {
            self.unit_weights = false;
        }
        Ok(id)
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of edges (each undirected edge counted once).
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// The graph's orientation.
    pub fn orientation(&self) -> Orientation {
        self.orientation
    }

    /// `true` if the graph is directed.
    pub fn is_directed(&self) -> bool {
        self.orientation == Orientation::Directed
    }

    /// `true` if every edge has weight exactly 1 (an *unweighted* graph in
    /// the paper's terminology). Vacuously true for the empty graph.
    pub fn is_unit_weight(&self) -> bool {
        self.unit_weights
    }

    /// The largest edge weight (`W` in the paper); 0 for an empty graph.
    pub fn max_weight(&self) -> Weight {
        self.max_weight
    }

    /// The edge list (undirected edges appear once, as inserted).
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Out-neighbors of `v` (all neighbors, for undirected graphs).
    pub fn out_adj(&self, v: NodeId) -> &[Adj] {
        &self.out_adj[v]
    }

    /// In-neighbors of `v` (all neighbors, for undirected graphs).
    pub fn in_adj(&self, v: NodeId) -> &[Adj] {
        &self.in_adj[v]
    }

    /// Weight of edge `u → v` if it exists (for undirected graphs, order of
    /// endpoints does not matter).
    pub fn weight(&self, u: NodeId, v: NodeId) -> Option<Weight> {
        self.index.get(&(u, v)).map(|&e| self.edges[e].weight)
    }

    /// `true` if edge `u → v` exists (either order for undirected graphs).
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.index.contains_key(&(u, v))
    }

    /// Id of edge `u → v` if it exists.
    pub fn edge_id(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        self.index.get(&(u, v)).copied()
    }

    /// Neighbors of `v` in the *communication topology*: the undirected
    /// support of the graph. In the CONGEST model (paper §1.1) the
    /// communication links are always bidirectional even when the input
    /// graph is directed.
    ///
    /// Each neighbor appears exactly once even if both `u → v` and `v → u`
    /// exist.
    pub fn comm_neighbors(&self, v: NodeId) -> Vec<NodeId> {
        let mut ns: Vec<NodeId> = self.out_adj[v].iter().map(|a| a.to).collect();
        if self.is_directed() {
            ns.extend(self.in_adj[v].iter().map(|a| a.to));
            ns.sort_unstable();
            ns.dedup();
        }
        ns
    }

    /// The graph with every directed edge reversed. For undirected graphs
    /// this is a clone.
    pub fn reversed(&self) -> Graph {
        if !self.is_directed() {
            return self.clone();
        }
        let mut g = Graph::directed(self.n);
        for e in &self.edges {
            g.add_edge(e.v, e.u, e.weight)
                .expect("reversing a simple graph yields a simple graph");
        }
        g
    }

    /// The sum of all edge weights; useful as an "infinite" sentinel bound
    /// since no simple cycle can weigh more than this.
    pub fn total_weight(&self) -> Weight {
        self.edges.iter().map(|e| e.weight).sum()
    }

    /// Eccentricity-based undirected diameter `D` of the communication
    /// topology (paper §1.1): the maximum over nodes of the unweighted hop
    /// distance in the undirected support.
    ///
    /// Returns `None` if the communication graph is disconnected (CONGEST
    /// algorithms require a connected network).
    pub fn undirected_diameter(&self) -> Option<usize> {
        if self.n == 0 {
            return Some(0);
        }
        let mut diameter = 0usize;
        let mut dist = vec![usize::MAX; self.n];
        let mut queue = std::collections::VecDeque::new();
        for src in 0..self.n {
            dist.iter_mut().for_each(|d| *d = usize::MAX);
            dist[src] = 0;
            queue.clear();
            queue.push_back(src);
            let mut seen = 1usize;
            let mut ecc = 0usize;
            while let Some(u) = queue.pop_front() {
                ecc = ecc.max(dist[u]);
                for w in self.comm_neighbors(u) {
                    if dist[w] == usize::MAX {
                        dist[w] = dist[u] + 1;
                        seen += 1;
                        queue.push_back(w);
                    }
                }
            }
            if seen < self.n {
                return None;
            }
            diameter = diameter.max(ecc);
        }
        Some(diameter)
    }

    /// `true` if the undirected support is connected. The empty graph and
    /// the 1-node graph are connected.
    pub fn is_comm_connected(&self) -> bool {
        if self.n <= 1 {
            return true;
        }
        let mut seen = vec![false; self.n];
        let mut stack = vec![0];
        seen[0] = true;
        let mut count = 1;
        while let Some(u) = stack.pop() {
            for w in self.comm_neighbors(u) {
                if !seen[w] {
                    seen[w] = true;
                    count += 1;
                    stack.push(w);
                }
            }
        }
        count == self.n
    }

    /// Returns a copy with every weight mapped through `f` (used by the
    /// scaling technique of paper §5).
    ///
    /// # Panics
    ///
    /// Never panics itself, but `f` may.
    pub fn map_weights(&self, mut f: impl FnMut(Weight) -> Weight) -> Graph {
        let mut g = Graph::new(self.n, self.orientation);
        for e in &self.edges {
            g.add_edge(e.u, e.v, f(e.weight))
                .expect("same edge set stays simple");
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directed_graph_basics() {
        let mut g = Graph::directed(4);
        g.add_edge(0, 1, 5).unwrap();
        g.add_edge(1, 2, 1).unwrap();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 2);
        assert!(g.is_directed());
        assert!(!g.is_unit_weight());
        assert_eq!(g.max_weight(), 5);
        assert_eq!(g.weight(0, 1), Some(5));
        assert_eq!(g.weight(1, 0), None);
        assert!(g.has_edge(1, 2));
        assert!(!g.has_edge(2, 1));
    }

    #[test]
    fn undirected_edges_are_symmetric() {
        let mut g = Graph::undirected(3);
        g.add_edge(0, 1, 1).unwrap();
        assert!(g.is_unit_weight());
        assert_eq!(g.weight(0, 1), Some(1));
        assert_eq!(g.weight(1, 0), Some(1));
        assert_eq!(g.out_adj(1).len(), 1);
        assert_eq!(g.in_adj(0).len(), 1);
    }

    #[test]
    fn rejects_self_loops() {
        let mut g = Graph::directed(2);
        assert_eq!(g.add_edge(1, 1, 1), Err(GraphError::SelfLoop { node: 1 }));
    }

    #[test]
    fn rejects_out_of_range() {
        let mut g = Graph::undirected(2);
        assert_eq!(
            g.add_edge(0, 5, 1),
            Err(GraphError::NodeOutOfRange { node: 5, n: 2 })
        );
    }

    #[test]
    fn rejects_duplicates_directed_allows_antiparallel() {
        let mut g = Graph::directed(2);
        g.add_edge(0, 1, 1).unwrap();
        assert_eq!(
            g.add_edge(0, 1, 2),
            Err(GraphError::DuplicateEdge { u: 0, v: 1 })
        );
        // Antiparallel edge is fine in a directed graph.
        g.add_edge(1, 0, 2).unwrap();
        assert_eq!(g.m(), 2);
    }

    #[test]
    fn rejects_duplicates_undirected_any_order() {
        let mut g = Graph::undirected(2);
        g.add_edge(0, 1, 1).unwrap();
        assert_eq!(
            g.add_edge(1, 0, 2),
            Err(GraphError::DuplicateEdge { u: 1, v: 0 })
        );
    }

    #[test]
    fn comm_neighbors_dedupes_antiparallel() {
        let mut g = Graph::directed(3);
        g.add_edge(0, 1, 1).unwrap();
        g.add_edge(1, 0, 1).unwrap();
        g.add_edge(2, 0, 1).unwrap();
        let mut ns = g.comm_neighbors(0);
        ns.sort_unstable();
        assert_eq!(ns, vec![1, 2]);
    }

    #[test]
    fn reversed_directed_graph() {
        let mut g = Graph::directed(3);
        g.add_edge(0, 1, 7).unwrap();
        g.add_edge(1, 2, 3).unwrap();
        let r = g.reversed();
        assert_eq!(r.weight(1, 0), Some(7));
        assert_eq!(r.weight(2, 1), Some(3));
        assert_eq!(r.weight(0, 1), None);
    }

    #[test]
    fn diameter_of_path() {
        let mut g = Graph::undirected(5);
        for i in 0..4 {
            g.add_edge(i, i + 1, 1).unwrap();
        }
        assert_eq!(g.undirected_diameter(), Some(4));
    }

    #[test]
    fn diameter_uses_undirected_support_of_directed_graph() {
        // Directed path 0 → 1 → 2: undirected diameter is still 2.
        let mut g = Graph::directed(3);
        g.add_edge(0, 1, 1).unwrap();
        g.add_edge(1, 2, 1).unwrap();
        assert_eq!(g.undirected_diameter(), Some(2));
    }

    #[test]
    fn diameter_disconnected_is_none() {
        let g = Graph::undirected(3);
        assert_eq!(g.undirected_diameter(), None);
        assert!(!g.is_comm_connected());
    }

    #[test]
    fn map_weights_scales() {
        let mut g = Graph::undirected(3);
        g.add_edge(0, 1, 4).unwrap();
        g.add_edge(1, 2, 6).unwrap();
        let s = g.map_weights(|w| w / 2);
        assert_eq!(s.weight(0, 1), Some(2));
        assert_eq!(s.weight(1, 2), Some(3));
    }

    #[test]
    fn from_edges_builder() {
        let g = Graph::from_edges(
            3,
            Orientation::Undirected,
            [(0, 1, 1), (1, 2, 1), (2, 0, 1)],
        )
        .unwrap();
        assert_eq!(g.m(), 3);
        assert_eq!(g.undirected_diameter(), Some(1));
    }

    #[test]
    fn total_weight_bounds_cycles() {
        let g = Graph::from_edges(
            3,
            Orientation::Directed,
            [(0, 1, 10), (1, 2, 20), (2, 0, 30)],
        )
        .unwrap();
        assert_eq!(g.total_weight(), 60);
    }
}
