//! Exact sequential minimum-weight-cycle oracles.
//!
//! - [`mwc_directed_exact`]: `n` Dijkstra runs; for every edge `(u, v)` the
//!   cheapest cycle through that edge is `d(v, u) + w(u, v)`.
//! - [`mwc_undirected_exact`]: per-edge deletion; the cheapest cycle through
//!   edge `e = (x, y)` is `w(e) + d_{G−e}(x, y)`. Unconditionally correct.
//! - [`girth_exact`]: all-source BFS; for a source on a shortest cycle the
//!   "antipodal" non-tree edge certifies the girth exactly, and every
//!   candidate corresponds to a real simple cycle (via the BFS-tree LCA),
//!   so the minimum over sources and non-tree edges is exact.
//!
//! All oracles return a validated [`CycleWitness`] so distributed results
//! can be compared both by value and by structure.
//!
//! # Parallelism and determinism
//!
//! The per-source / per-edge outer loops are embarrassingly parallel and
//! dominate bench wall-clock, so they run through
//! [`mwc_par::ordered_map`] (worker count from `MWC_JOBS` / `--jobs`,
//! default 1). The returned cycle is **identical for every worker
//! count**: each oracle updates its running best only on *strict*
//! improvement, so the sequential winner is the first item (in iteration
//! order) attaining the global minimum — and merging per-item results in
//! input order with the same strict rule reproduces exactly that item.

use crate::graph::{Graph, NodeId, Weight};
use crate::seq::paths::{bfs, dijkstra, dijkstra_skipping, extract_path, Direction, HOP_INF, INF};
use crate::witness::CycleWitness;
use std::sync::atomic::{AtomicU64, Ordering};

/// Merges per-item oracle results in input order: keeps the earlier item
/// on ties, exactly like the sequential strict-improvement loop.
fn first_min(results: impl IntoIterator<Item = Option<Mwc>>) -> Option<Mwc> {
    results
        .into_iter()
        .flatten()
        .fold(None, |acc: Option<Mwc>, m| match acc {
            Some(b) if b.weight <= m.weight => Some(b),
            _ => Some(m),
        })
}

/// A minimum weight cycle: its weight and a witness vertex sequence.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Mwc {
    /// Total weight of the cycle (equals hop length for unit weights).
    pub weight: Weight,
    /// The cycle itself.
    pub witness: CycleWitness,
}

/// Exact MWC of a directed graph, or `None` if the graph is acyclic.
///
/// Runs Dijkstra from every node (`O(n · (m + n log n))`). A cycle through
/// edge `(u, v)` of minimal weight is a shortest `v → u` path plus the edge.
///
/// # Examples
///
/// ```
/// use mwc_graph::{Graph, Orientation};
/// use mwc_graph::seq::mwc_directed_exact;
///
/// # fn main() -> Result<(), mwc_graph::GraphError> {
/// let g = Graph::from_edges(4, Orientation::Directed,
///     [(0, 1, 1), (1, 2, 1), (2, 0, 1), (2, 3, 1), (3, 0, 1)])?;
/// let mwc = mwc_directed_exact(&g).expect("graph has a cycle");
/// assert_eq!(mwc.weight, 3);
/// # Ok(())
/// # }
/// ```
pub fn mwc_directed_exact(g: &Graph) -> Option<Mwc> {
    assert!(
        g.is_directed(),
        "mwc_directed_exact requires a directed graph"
    );
    let per_source = mwc_par::ordered_map((0..g.n()).collect(), |v| {
        let t = dijkstra(g, v, Direction::Forward);
        let mut best: Option<Mwc> = None;
        for a in g.in_adj(v) {
            let u = a.to;
            if t.dist[u] == INF {
                continue;
            }
            let cand = t.dist[u] + a.weight;
            if best.as_ref().is_none_or(|b| cand < b.weight) {
                let path = extract_path(&t.parent, v, u)
                    .expect("u is reachable so the parent chain exists");
                best = Some(Mwc {
                    weight: cand,
                    witness: CycleWitness::new(path),
                });
            }
        }
        best
    });
    let best = first_min(per_source);
    debug_assert!(best
        .as_ref()
        .is_none_or(|b| b.witness.validate(g) == Ok(b.weight)));
    best
}

/// Exact MWC of an undirected graph, or `None` if the graph is a forest.
///
/// For every edge `e = (x, y)` computes `w(e) + d_{G−e}(x, y)` with a
/// Dijkstra that skips `e`; the minimum over edges is the MWC. Edges whose
/// weight already exceeds the best candidate are pruned.
pub fn mwc_undirected_exact(g: &Graph) -> Option<Mwc> {
    assert!(
        !g.is_directed(),
        "mwc_undirected_exact requires an undirected graph"
    );
    // Shared upper bound for pruning across workers. The skip must be
    // *strict* (`>`), not the sequential loop's `>=`: every candidate
    // satisfies `cand ≥ e.weight`, so `e.weight > bound ≥ final MWC`
    // proves the edge cannot win — whereas `e.weight == bound` could
    // still tie via a zero-weight path, and pruning it would change
    // which edge index wins the tie. The bound only shrinks, so a stale
    // read merely prunes less; the winning candidate is never skipped.
    let bound = AtomicU64::new(u64::MAX);
    let per_edge = mwc_par::ordered_map((0..g.edges().len()).collect(), |eid| {
        let e = &g.edges()[eid];
        if e.weight > bound.load(Ordering::Relaxed) {
            return None;
        }
        let t = dijkstra_skipping(g, e.u, Direction::Forward, eid);
        if t.dist[e.v] == INF {
            return None;
        }
        let cand = e.weight + t.dist[e.v];
        bound.fetch_min(cand, Ordering::Relaxed);
        let path =
            extract_path(&t.parent, e.u, e.v).expect("e.v is reachable so the parent chain exists");
        // path = x … y; closing edge (y, x) is e itself.
        Some(Mwc {
            weight: cand,
            witness: CycleWitness::new(path),
        })
    });
    let best = first_min(per_edge);
    debug_assert!(best
        .as_ref()
        .is_none_or(|b| b.witness.validate(g) == Ok(b.weight)));
    best
}

/// Exact girth (shortest cycle *hop length*) of an undirected graph via
/// all-source BFS, or `None` if the graph is a forest.
///
/// Edge weights are ignored; for unit-weight graphs the girth equals the
/// MWC weight. This is the `O(nm)` classical method: from each source the
/// BFS-tree LCA of every non-tree edge's endpoints yields a real simple
/// cycle, and for a source on a shortest cycle the antipodal edge yields
/// the girth exactly.
pub fn girth_exact(g: &Graph) -> Option<Mwc> {
    assert!(!g.is_directed(), "girth_exact requires an undirected graph");
    let per_source = mwc_par::ordered_map((0..g.n()).collect(), |s| {
        let t = bfs(g, s, Direction::Forward);
        let mut best: Option<Mwc> = None;
        for e in g.edges() {
            let (u, v) = (e.u, e.v);
            if t.dist[u] == HOP_INF || t.dist[v] == HOP_INF {
                continue;
            }
            // Skip BFS-tree edges: they close no cycle from this source.
            if t.parent[u] == Some(v) || t.parent[v] == Some(u) {
                continue;
            }
            let pu = extract_path(&t.parent, s, u).expect("reachable");
            let pv = extract_path(&t.parent, s, v).expect("reachable");
            let mut z = 0;
            while z + 1 < pu.len() && z + 1 < pv.len() && pu[z + 1] == pv[z + 1] {
                z += 1;
            }
            // Cycle: pu[z..=u] then pv from v back down to z+1 (tree paths
            // diverge at pu[z] and never rejoin).
            let mut cyc: Vec<NodeId> = pu[z..].to_vec();
            cyc.extend(pv[z + 1..].iter().rev());
            let len = cyc.len() as Weight;
            if len >= 3 && best.as_ref().is_none_or(|b| len < b.weight) {
                best = Some(Mwc {
                    weight: len,
                    witness: CycleWitness::new(cyc),
                });
            }
        }
        best
    });
    let best = first_min(per_source);
    debug_assert!(best.as_ref().is_none_or(|b| {
        b.witness.validate(g).is_ok() && b.witness.hop_len() as Weight == b.weight
    }));
    best
}

/// Exact MWC for any graph, dispatching to the cheapest applicable oracle:
/// [`mwc_directed_exact`] for directed graphs, [`girth_exact`] for
/// unit-weight undirected graphs, [`mwc_undirected_exact`] otherwise.
pub fn mwc_exact(g: &Graph) -> Option<Mwc> {
    if g.is_directed() {
        mwc_directed_exact(g)
    } else if g.is_unit_weight() {
        girth_exact(g)
    } else {
        mwc_undirected_exact(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{connected_gnm, planted_cycle, ring_with_chords, WeightRange};
    use crate::graph::Orientation;
    use mwc_rng::proptest_lite::Config;
    use mwc_rng::{prop_assert_eq, prop_tests};

    /// Brute-force MWC by DFS enumeration of simple cycles; only usable for
    /// tiny graphs, used as an independent ground truth.
    fn brute_force_mwc(g: &Graph) -> Option<Weight> {
        let mut best: Option<Weight> = None;
        let n = g.n();
        // Enumerate cycles whose minimum vertex is `start` to avoid
        // counting rotations; for undirected graphs each cycle is seen in
        // both orientations, which is harmless for a minimum.
        fn dfs(
            g: &Graph,
            start: NodeId,
            u: NodeId,
            weight: Weight,
            visited: &mut Vec<bool>,
            depth: usize,
            best: &mut Option<Weight>,
        ) {
            for a in g.out_adj(u) {
                if a.to == start {
                    // Simple graphs: a closure of `depth` vertices reuses no
                    // edge as long as depth ≥ 3 (undirected) / 2 (directed).
                    let min_len = if g.is_directed() { 2 } else { 3 };
                    if depth >= min_len {
                        let w = weight + a.weight;
                        if best.is_none() || w < best.unwrap() {
                            *best = Some(w);
                        }
                    }
                    continue;
                }
                if a.to < start || visited[a.to] {
                    continue;
                }
                visited[a.to] = true;
                dfs(g, start, a.to, weight + a.weight, visited, depth + 1, best);
                visited[a.to] = false;
            }
        }
        for start in 0..n {
            let mut visited = vec![false; n];
            visited[start] = true;
            dfs(g, start, start, 0, &mut visited, 1, &mut best);
        }
        best
    }

    #[test]
    fn directed_triangle() {
        let g =
            Graph::from_edges(3, Orientation::Directed, [(0, 1, 2), (1, 2, 3), (2, 0, 4)]).unwrap();
        let m = mwc_directed_exact(&g).unwrap();
        assert_eq!(m.weight, 9);
        assert_eq!(m.witness.validate(&g), Ok(9));
    }

    #[test]
    fn directed_two_cycle_beats_triangle() {
        let g = Graph::from_edges(
            3,
            Orientation::Directed,
            [(0, 1, 1), (1, 0, 1), (1, 2, 1), (2, 0, 1)],
        )
        .unwrap();
        assert_eq!(mwc_directed_exact(&g).unwrap().weight, 2);
    }

    #[test]
    fn directed_acyclic_is_none() {
        let g =
            Graph::from_edges(4, Orientation::Directed, [(0, 1, 1), (0, 2, 1), (1, 3, 1)]).unwrap();
        assert!(mwc_directed_exact(&g).is_none());
    }

    #[test]
    fn undirected_weighted_square_vs_heavy_diagonal() {
        // Square of weight 4 with a heavy chord: MWC is a triangle using
        // the chord only if the chord is light enough.
        let g = Graph::from_edges(
            4,
            Orientation::Undirected,
            [(0, 1, 1), (1, 2, 1), (2, 3, 1), (3, 0, 1), (0, 2, 5)],
        )
        .unwrap();
        let m = mwc_undirected_exact(&g).unwrap();
        assert_eq!(m.weight, 4);
        assert_eq!(m.witness.hop_len(), 4);
    }

    #[test]
    fn undirected_forest_is_none() {
        let g = Graph::from_edges(
            4,
            Orientation::Undirected,
            [(0, 1, 1), (1, 2, 1), (1, 3, 1)],
        )
        .unwrap();
        assert!(mwc_undirected_exact(&g).is_none());
        assert!(girth_exact(&g).is_none());
    }

    #[test]
    fn girth_of_ring() {
        let g = ring_with_chords(9, 0, Orientation::Undirected, WeightRange::unit(), 0);
        assert_eq!(girth_exact(&g).unwrap().weight, 9);
    }

    #[test]
    fn girth_petersen() {
        // The Petersen graph has girth 5.
        let outer = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)];
        let spokes = [(0, 5), (1, 6), (2, 7), (3, 8), (4, 9)];
        let inner = [(5, 7), (7, 9), (9, 6), (6, 8), (8, 5)];
        let mut g = Graph::undirected(10);
        for (u, v) in outer.iter().chain(&spokes).chain(&inner) {
            g.add_edge(*u, *v, 1).unwrap();
        }
        let m = girth_exact(&g).unwrap();
        assert_eq!(m.weight, 5);
        assert_eq!(m.witness.validate(&g), Ok(5));
    }

    #[test]
    fn planted_cycle_found_by_all_oracles() {
        let (g, _) = planted_cycle(
            30,
            40,
            4,
            1,
            Orientation::Undirected,
            WeightRange::uniform(40, 80),
            5,
        );
        assert_eq!(mwc_undirected_exact(&g).unwrap().weight, 4);
        assert_eq!(mwc_exact(&g).unwrap().weight, 4);
    }

    #[test]
    fn girth_matches_per_edge_deletion_on_unit_weights() {
        for seed in 0..8 {
            let g = connected_gnm(24, 30, Orientation::Undirected, WeightRange::unit(), seed);
            let a = girth_exact(&g).map(|m| m.weight);
            let b = mwc_undirected_exact(&g).map(|m| m.weight);
            assert_eq!(a, b, "seed {seed}");
        }
    }

    #[test]
    fn dispatcher_picks_matching_oracle() {
        let d = ring_with_chords(6, 0, Orientation::Directed, WeightRange::unit(), 0);
        assert_eq!(mwc_exact(&d).unwrap().weight, 6);
        let u = ring_with_chords(6, 0, Orientation::Undirected, WeightRange::uniform(2, 2), 0);
        assert_eq!(mwc_exact(&u).unwrap().weight, 12);
    }

    #[test]
    fn oracles_are_identical_for_any_worker_count() {
        // Tie-heavy instances (tiny weight range) so tie-breaking — the
        // part a naive parallel merge gets wrong — is actually exercised.
        // Compares full `Mwc` values, i.e. witnesses too, not just weights.
        let d = connected_gnm(
            40,
            90,
            Orientation::Directed,
            WeightRange::uniform(1, 3),
            11,
        );
        let u = connected_gnm(
            40,
            70,
            Orientation::Undirected,
            WeightRange::uniform(1, 3),
            12,
        );
        let un = connected_gnm(40, 70, Orientation::Undirected, WeightRange::unit(), 13);
        mwc_par::set_jobs(1);
        let base = (
            mwc_directed_exact(&d),
            mwc_undirected_exact(&u),
            girth_exact(&un),
        );
        for jobs in [2, 4, 8] {
            mwc_par::set_jobs(jobs);
            assert_eq!(mwc_directed_exact(&d), base.0, "directed, jobs={jobs}");
            assert_eq!(mwc_undirected_exact(&u), base.1, "undirected, jobs={jobs}");
            assert_eq!(girth_exact(&un), base.2, "girth, jobs={jobs}");
        }
        mwc_par::set_jobs(1);
    }

    prop_tests! {
        config = Config::with_cases(64);

        fn directed_oracle_matches_brute_force(seed in 0u64..500, n in 4usize..8, extra in 0usize..10) {
            let g = connected_gnm(n, extra, Orientation::Directed, WeightRange::uniform(1, 9), seed);
            let oracle = mwc_directed_exact(&g).map(|m| m.weight);
            let brute = brute_force_mwc(&g);
            prop_assert_eq!(oracle, brute);
        }

        fn undirected_oracle_matches_brute_force(seed in 0u64..500, n in 4usize..8, extra in 0usize..10) {
            let g = connected_gnm(n, extra, Orientation::Undirected, WeightRange::uniform(1, 9), seed);
            let oracle = mwc_undirected_exact(&g).map(|m| m.weight);
            let brute = brute_force_mwc(&g);
            prop_assert_eq!(oracle, brute);
        }

        fn witnesses_always_validate(seed in 0u64..200, n in 4usize..12, extra in 0usize..16) {
            let g = connected_gnm(n, extra, Orientation::Directed, WeightRange::uniform(1, 9), seed);
            if let Some(m) = mwc_directed_exact(&g) {
                prop_assert_eq!(m.witness.validate(&g), Ok(m.weight));
            }
            let u = connected_gnm(n, extra, Orientation::Undirected, WeightRange::uniform(1, 9), seed);
            if let Some(m) = mwc_undirected_exact(&u) {
                prop_assert_eq!(m.witness.validate(&u), Ok(m.weight));
            }
        }
    }
}
