//! Differential test for the phase cache: every entry point must produce
//! **byte-identical** results with and without the cache — the cache may
//! only change *round accounting*, never distances, weights, or
//! witnesses. The uncached runs here stand in for `MWC_NO_CACHE=1` (the
//! env escape hatch reads through the same thread-local disable flag, set
//! here via a guard so parallel tests don't race on the environment).

use mwc_congest::{Ledger, PhaseCache};
use mwc_core::exact::exact_mwc;
use mwc_core::{
    approx_girth, approx_mwc_directed_weighted, approx_mwc_undirected_weighted,
    k_source_approx_sssp, k_source_bfs, two_approx_directed_mwc, Params,
};
use mwc_graph::generators::{connected_gnm, ring_with_chords, WeightRange};
use mwc_graph::seq::Direction;
use mwc_graph::{Graph, Orientation};

/// Runs `f` twice — cache enabled (the default inside every entry point)
/// and force-disabled — and checks the invariants every pair must satisfy.
/// Returns both ledgers (cached, uncached) for entry-specific assertions.
fn differential<T: PartialEq + std::fmt::Debug>(
    label: &str,
    f: impl Fn() -> (T, Ledger),
) -> (Ledger, Ledger) {
    let (cached_out, cached) = f();
    let (plain_out, plain) = {
        let _off = PhaseCache::disable_for_thread();
        f()
    };
    assert_eq!(
        cached_out, plain_out,
        "{label}: results diverge under caching"
    );
    assert!(
        cached.rounds <= plain.rounds,
        "{label}: cache made the run slower ({} > {})",
        cached.rounds,
        plain.rounds
    );
    assert_eq!(
        plain.rounds - cached.rounds,
        cached.rounds_saved,
        "{label}: rounds_saved must account exactly for the round delta"
    );
    assert_eq!(
        plain.rounds_saved, 0,
        "{label}: disabled run credited savings"
    );
    (cached, plain)
}

/// The ledger phases must show at most one real BFS-tree build per graph
/// fingerprint (directed entry points also search `g.reversed()`, a
/// distinct fingerprint) and at least one replay from cache.
fn assert_tree_cached_once(label: &str, ledger: &Ledger, fingerprints: usize) {
    let builds = ledger
        .phases
        .iter()
        .filter(|p| p.label == "bfs tree")
        .count();
    let replays = ledger
        .phases
        .iter()
        .filter(|p| p.label.starts_with("cached: bfs tree"))
        .count();
    assert!(
        (1..=fingerprints).contains(&builds),
        "{label}: {builds} real BFS-tree builds for {fingerprints} graph fingerprint(s)"
    );
    assert!(replays > 0, "{label}: no cache-replay phase recorded");
}

#[test]
fn undirected_weighted_is_cache_invariant() {
    let g = connected_gnm(
        72,
        150,
        Orientation::Undirected,
        WeightRange::uniform(1, 25),
        41,
    );
    let params = Params::new().with_seed(7).with_epsilon(0.25);
    let (cached, _) = differential("approx_mwc_undirected_weighted", || {
        let out = approx_mwc_undirected_weighted(&g, &params);
        (
            (out.weight, out.witness.map(|w| w.vertices().to_vec())),
            out.ledger,
        )
    });
    assert!(cached.rounds_saved > 0, "weighted run should hit the cache");
    assert_tree_cached_once("approx_mwc_undirected_weighted", &cached, 1);
}

#[test]
fn directed_weighted_is_cache_invariant() {
    let g = connected_gnm(
        48,
        120,
        Orientation::Directed,
        WeightRange::uniform(1, 12),
        17,
    );
    let params = Params::new().with_seed(3).with_epsilon(0.25);
    let (cached, _) = differential("approx_mwc_directed_weighted", || {
        let out = approx_mwc_directed_weighted(&g, &params);
        (
            (out.weight, out.witness.map(|w| w.vertices().to_vec())),
            out.ledger,
        )
    });
    assert!(cached.rounds_saved > 0, "weighted run should hit the cache");
    assert_tree_cached_once("approx_mwc_directed_weighted", &cached, 2);
}

#[test]
fn girth_is_cache_invariant() {
    let g = ring_with_chords(80, 6, Orientation::Undirected, WeightRange::unit(), 5);
    let params = Params::new().with_seed(11);
    differential("approx_girth", || {
        let out = approx_girth(&g, &params);
        (
            (out.weight, out.witness.map(|w| w.vertices().to_vec())),
            out.ledger,
        )
    });
}

#[test]
fn directed_two_approx_is_cache_invariant() {
    let g = connected_gnm(48, 120, Orientation::Directed, WeightRange::unit(), 23);
    let params = Params::new().with_seed(9);
    let (cached, _) = differential("two_approx_directed_mwc", || {
        let out = two_approx_directed_mwc(&g, &params);
        (
            (out.weight, out.witness.map(|w| w.vertices().to_vec())),
            out.ledger,
        )
    });
    // Algorithm 2 builds the tree for the d(s,t) broadcast and again for
    // the final convergecast; the second build must be a replay.
    assert!(
        cached.rounds_saved > 0,
        "second tree build should be cached"
    );
    assert_tree_cached_once("two_approx_directed_mwc", &cached, 2);
}

#[test]
fn exact_mwc_is_cache_invariant() {
    let g = connected_gnm(
        40,
        90,
        Orientation::Undirected,
        WeightRange::uniform(1, 9),
        31,
    );
    differential("exact_mwc", || {
        let out = exact_mwc(&g);
        (
            (out.weight, out.witness.map(|w| w.vertices().to_vec())),
            out.ledger,
        )
    });
}

#[test]
fn ksssp_is_cache_invariant() {
    let g = connected_gnm(90, 190, Orientation::Directed, WeightRange::unit(), 2);
    let params = Params::new().with_seed(4);
    let sources = [0usize, 19, 55];
    differential("k_source_bfs", || {
        let out = k_source_bfs(&g, &sources, Direction::Forward, &params);
        let dists: Vec<_> = (0..g.n()).map(|v| out.get_row(0, v)).collect();
        (dists, out.ledger)
    });

    let gw = connected_gnm(
        70,
        150,
        Orientation::Directed,
        WeightRange::uniform(1, 20),
        13,
    );
    let params = Params::new().with_seed(2).with_epsilon(0.25);
    differential("k_source_approx_sssp", || {
        let out = k_source_approx_sssp(&gw, &sources, Direction::Forward, &params);
        let dists: Vec<_> = (0..gw.n()).map(|v| out.get_row(1, v)).collect();
        (dists, out.ledger)
    });
}

#[test]
fn shared_scope_builds_each_fingerprint_once() {
    // A caller-managed scope spanning several entry points (the bench-bin
    // pattern): the tree for this graph is built exactly once across all
    // of them, and every algorithm still returns its uncached answer.
    let g = connected_gnm(64, 130, Orientation::Undirected, WeightRange::unit(), 8);
    let params = Params::new().with_seed(6);

    let (plain_girth, plain_exact) = {
        let _off = PhaseCache::disable_for_thread();
        (approx_girth(&g, &params).weight, exact_mwc(&g).weight)
    };

    let _scope = PhaseCache::scope();
    let a = approx_girth(&g, &params);
    let b = exact_mwc(&g);
    assert_eq!(a.weight, plain_girth);
    assert_eq!(b.weight, plain_exact);
    let builds = a
        .ledger
        .phases
        .iter()
        .chain(b.ledger.phases.iter())
        .filter(|p| p.label == "bfs tree")
        .count();
    assert_eq!(builds, 1, "one tree build for one fingerprint in one scope");
    assert!(
        b.ledger.rounds_saved > 0,
        "the second entry point must replay the tree built by the first"
    );
}

#[test]
fn degenerate_graphs_are_safe_under_caching() {
    // Tiny / edge-case graphs go through the same cached code paths.
    let lone = Graph::undirected(1);
    let out = exact_mwc(&lone);
    assert_eq!(out.weight, None);

    let mut pair = Graph::directed(2);
    pair.add_edge(0, 1, 3).unwrap();
    pair.add_edge(1, 0, 4).unwrap();
    let out = exact_mwc(&pair);
    assert_eq!(out.weight, Some(7));
}
