//! **trace_diff** — the differential perf gate: compares fresh run records
//! against committed baselines span-by-span and exits nonzero on
//! regression.
//!
//! Pairs `<name>.json` files between the fresh and baseline directories,
//! parses each pair as a [`RunRecord`], and diffs with per-metric
//! tolerances ([`diff_records`]). Improvements never fail; structural
//! drift (spans appearing/disappearing, baselines without fresh records
//! or vice versa) fails loudly so the gate cannot rot silently.
//!
//! Artifacts (all under `results/`):
//!
//! - `trace_diff_report.txt` — the human report printed to stdout,
//! - `trace_diff_report.json` — machine-readable per-pair entries,
//! - `BENCH_trajectory.json` — per-record baseline vs fresh totals, the
//!   commit-over-commit round-complexity trajectory.
//!
//! Exit codes: `0` no regressions, `1` at least one regression, `2`
//! configuration error (unpaired or unparsable records — refresh the
//! baselines, see `docs/observability.md`).
//!
//! Usage: `trace_diff [fresh_dir] [base_dir] [rel_tolerance]`
//! (defaults `results/run_records`, `results/baselines`, `0`).

use mwc_bench::report;
use mwc_bench::report::Json;
use mwc_trace::{diff_records, DiffConfig, RunDiff, RunRecord};
use std::collections::BTreeMap;
use std::path::Path;

/// Reads every `<name>.json` under `dir` as `(name, text)`.
fn load_dir(dir: &Path) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return out,
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().is_some_and(|e| e == "json") {
            let name = path
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or_default()
                .to_owned();
            if let Ok(text) = std::fs::read_to_string(&path) {
                out.insert(name, text);
            }
        }
    }
    out
}

fn incomparable(name: &str, why: String) -> RunDiff {
    RunDiff {
        name: name.to_owned(),
        incomparable: Some(why),
        entries: Vec::new(),
    }
}

fn totals_json(r: &RunRecord) -> Json {
    Json::obj([
        ("rounds", Json::U64(r.rounds)),
        ("words", Json::U64(r.words)),
        ("messages", Json::U64(r.messages)),
        ("rounds_saved", Json::U64(r.rounds_saved)),
        // Informational only (never gated): the wall-clock trajectory and
        // the parallelism knobs the record was produced under.
        ("wall_ms", Json::U64(r.wall_ms)),
        ("shards", Json::U64(r.shards)),
        ("jobs", Json::U64(r.jobs)),
    ])
}

/// One human-report line for the informational fields — printed, never
/// gated, so the reader sees the wall-clock/parallelism context instead
/// of the report silently dropping it.
fn info_line(base: &RunRecord, fresh: &RunRecord) -> String {
    format!(
        "{:<16} wall_ms {} -> {}, shards {} -> {}, jobs {} -> {} (informational, never gated)\n",
        "info", base.wall_ms, fresh.wall_ms, base.shards, fresh.shards, base.jobs, fresh.jobs
    )
}

fn main() {
    let fresh_dir = report::arg_str(1, &format!("results/{}", report::RUN_RECORD_DIR));
    let base_dir = report::arg_str(2, "results/baselines");
    let rel: f64 = report::arg(3, 0.0);
    let cfg = if rel > 0.0 {
        DiffConfig::uniform_rel(rel)
    } else {
        DiffConfig::default()
    };

    let fresh = load_dir(Path::new(&fresh_dir));
    let base = load_dir(Path::new(&base_dir));
    let names: Vec<&String> = base.keys().chain(fresh.keys()).collect();
    let mut names: Vec<String> = names.into_iter().cloned().collect();
    names.sort();
    names.dedup();
    if names.is_empty() {
        eprintln!("trace_diff: no records in {fresh_dir} or {base_dir}");
        std::process::exit(2);
    }

    let mut diffs: Vec<RunDiff> = Vec::new();
    let mut trajectory: Vec<Json> = Vec::new();
    let mut info_lines: BTreeMap<String, String> = BTreeMap::new();
    for name in &names {
        let diff = match (base.get(name), fresh.get(name)) {
            (Some(_), None) => incomparable(
                name,
                format!("baseline exists but no fresh record in {fresh_dir} — did the bin run?"),
            ),
            (None, Some(_)) => incomparable(
                name,
                format!(
                    "fresh record has no committed baseline in {base_dir} — \
                     refresh baselines (docs/observability.md)"
                ),
            ),
            (Some(b), Some(f)) => match (RunRecord::parse(b), RunRecord::parse(f)) {
                (Ok(b), Ok(f)) => {
                    trajectory.push(Json::obj([
                        ("name", Json::str(name)),
                        ("base", totals_json(&b)),
                        ("fresh", totals_json(&f)),
                    ]));
                    info_lines.insert(name.clone(), info_line(&b, &f));
                    diff_records(&b, &f, &cfg)
                }
                (Err(e), _) => incomparable(name, format!("baseline unparsable: {e}")),
                (_, Err(e)) => incomparable(name, format!("fresh record unparsable: {e}")),
            },
            (None, None) => unreachable!("name came from one of the maps"),
        };
        diffs.push(diff);
    }

    let config_errors = diffs.iter().filter(|d| d.incomparable.is_some()).count();
    let regressions: usize = diffs.iter().map(RunDiff::regression_count).sum();
    let mut human = String::new();
    for d in &diffs {
        human.push_str(&d.render());
        if let Some(info) = info_lines.get(&d.name) {
            human.push_str(info);
        }
        human.push('\n');
    }
    human.push_str(&format!(
        "trace_diff: {} record pair(s), {regressions} regression(s), {config_errors} config error(s)\n",
        names.len()
    ));
    print!("{human}");
    report::save_artifact("trace_diff_report.txt", &human);
    report::save_json(
        "trace_diff_report.json",
        &Json::obj([
            ("schema", Json::str("mwc-trace-diff/v1")),
            ("tolerance_rel", Json::F64(rel)),
            ("regressions", Json::U64(regressions as u64)),
            ("config_errors", Json::U64(config_errors as u64)),
            (
                "diffs",
                Json::Arr(diffs.iter().map(RunDiff::to_json).collect()),
            ),
        ]),
    );
    report::save_json(
        "BENCH_trajectory.json",
        &Json::obj([
            ("schema", Json::str("mwc-bench-trajectory/v1")),
            ("records", Json::Arr(trajectory)),
        ]),
    );

    if config_errors > 0 {
        std::process::exit(2);
    }
    if regressions > 0 {
        std::process::exit(1);
    }
}
