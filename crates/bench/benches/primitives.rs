//! PRIMITIVES — stopwatch microbenchmarks of the remaining CONGEST
//! building blocks: source detection, convergecast, stretched BFS, and
//! the node-program runtime.
//!
//! Run with `cargo bench -p mwc-bench --bench primitives`; results land
//! in `results/bench/primitives.json`.

use mwc_bench::stopwatch::Suite;
use mwc_congest::program::{run_programs, FloodMax};
use mwc_congest::{
    convergecast_min, multi_source_bfs, source_detection, BfsTree, Ledger, MultiBfsSpec, Network,
};
use mwc_graph::generators::{connected_gnm, grid, WeightRange};
use mwc_graph::seq::Direction;
use mwc_graph::{NodeId, Orientation, Weight};
use std::hint::black_box;

fn bench_source_detection(suite: &mut Suite) {
    let g = grid(20, 20, Orientation::Undirected, WeightRange::unit(), 0);
    let sources: Vec<NodeId> = (0..g.n()).collect();
    suite.bench("primitives/source_detection_400n_sigma20", || {
        let mut ledger = Ledger::new();
        let det = source_detection(
            &g,
            &sources,
            20,
            20,
            Direction::Forward,
            None,
            "b",
            &mut ledger,
        );
        black_box(det.lists[0].len())
    });
}

fn bench_convergecast(suite: &mut Suite) {
    let g = connected_gnm(512, 1024, Orientation::Undirected, WeightRange::unit(), 4);
    let mut ledger = Ledger::new();
    let tree = BfsTree::build(&g, 0, &mut ledger);
    suite.bench("primitives/convergecast_512n", || {
        let values: Vec<u64> = (0..512u64).collect();
        let mut ledger = Ledger::new();
        black_box(convergecast_min(&g, &tree, values, &mut ledger))
    });
}

fn bench_stretched_bfs(suite: &mut Suite) {
    let g = connected_gnm(
        256,
        768,
        Orientation::Directed,
        WeightRange::uniform(1, 20),
        6,
    );
    let lat: Vec<Weight> = g.edges().iter().map(|e| e.weight).collect();
    suite.bench("primitives/stretched_bfs_256n_8src", || {
        let sources: Vec<NodeId> = (0..8).map(|i| i * 31).collect();
        let spec = MultiBfsSpec {
            max_dist: mwc_congest::INF,
            direction: Direction::Forward,
            latency: Some(&lat),
        };
        let mut ledger = Ledger::new();
        let m = multi_source_bfs(&g, &sources, &spec, "b", &mut ledger);
        black_box(m.get_row(0, 200))
    });
}

fn bench_node_programs(suite: &mut Suite) {
    let g = grid(16, 16, Orientation::Undirected, WeightRange::unit(), 0);
    suite.bench("primitives/floodmax_256n", || {
        let mut ledger = Ledger::new();
        let nodes = run_programs(&g, FloodMax::new, 10_000, &mut ledger);
        black_box(nodes[0].leader())
    });
}

fn bench_raw_send_throughput(suite: &mut Suite) {
    let g = grid(8, 8, Orientation::Undirected, WeightRange::unit(), 0);
    suite.bench("primitives/raw_100k_word_steps", || {
        let mut net: Network<u8> = Network::new(&g);
        // Saturate every link with long messages and drain.
        for v in 0..g.n() {
            for w in g.comm_neighbors(v) {
                net.send(v, w, 0, 450).unwrap();
            }
        }
        while net.step_fast().is_some() {}
        black_box(net.stats().words)
    });
}

fn main() {
    let mut suite = Suite::new("primitives");
    bench_source_detection(&mut suite);
    bench_convergecast(&mut suite);
    bench_stretched_bfs(&mut suite);
    bench_node_programs(&mut suite);
    bench_raw_send_throughput(&mut suite);
    suite.finish();
}
