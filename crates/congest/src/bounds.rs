//! Registered round bounds for the CONGEST primitives.
//!
//! Each primitive in this crate audits every run against the concrete
//! envelope registered here (via [`mwc_trace::check_bound`]): the paper's
//! asymptotic bound with an explicit constant calibrated against the
//! simulator. The full algorithm → bound table lives in
//! `docs/observability.md`. Constants are deliberately generous — the
//! audits are regression tripwires for *asymptotic* blowups (an extra
//! unpipelined sweep, a dropped FIFO), not tight performance budgets.

use mwc_graph::{Graph, Weight};
use mwc_trace::BoundInputs;

/// A local (zero-round) upper bound on the hop diameter of the
/// communication topology: twice the eccentricity of node 0, or `n` when
/// the support is disconnected. Overestimating is safe for upper-bound
/// audits; this never underestimates on connected graphs.
pub fn diameter_upper_bound(g: &Graph) -> u64 {
    let n = g.n();
    if n == 0 {
        return 0;
    }
    let mut dist = vec![usize::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    dist[0] = 0;
    queue.push_back(0);
    let mut ecc = 0usize;
    let mut seen = 1usize;
    while let Some(v) = queue.pop_front() {
        for w in g.comm_neighbors(v) {
            if dist[w] == usize::MAX {
                dist[w] = dist[v] + 1;
                ecc = ecc.max(dist[w]);
                seen += 1;
                queue.push_back(w);
            }
        }
    }
    if seen < n {
        n as u64
    } else {
        2 * ecc as u64
    }
}

/// The effective hop budget of a (possibly stretched) `h`-bounded search:
/// travel rounds are bounded both by the distance budget plus one round
/// per zero-weight hop (`max_dist + n`) and by the stretched graph's
/// longest simple path (`(n-1) · max_stretch`).
pub fn effective_hops(n: usize, max_dist: Weight, latency: Option<&[Weight]>, m: usize) -> u64 {
    let max_stretch = latency
        .map(|l| l.iter().take(m).copied().max().unwrap_or(1).max(1))
        .unwrap_or(1);
    let diam_cap = (n.saturating_sub(1) as u64).saturating_mul(max_stretch);
    max_dist.saturating_add(n as u64).min(diam_cap)
}

/// Pipelined `k`-source `h`-bounded BFS \[37\]: `O(h + k)` rounds.
/// Calibrated constant 4 over the `3(h+k)` empirical envelope.
pub fn multibfs(i: &BoundInputs) -> f64 {
    4.0 * (i.h + i.k) as f64 + 16.0
}

/// `(S, h, σ)` source detection \[37\]: `O(h + σ)` rounds.
pub fn source_detection(i: &BoundInputs) -> f64 {
    5.0 * (i.h + i.k) as f64 + 16.0
}

/// BFS-tree construction by flooding: `O(ecc(root)) ≤ O(D)` rounds.
/// `diameter` carries the measured tree height (an exact ecc).
pub fn bfs_tree(i: &BoundInputs) -> f64 {
    2.0 * (i.diameter + 1) as f64
}

/// Pipelined broadcast of `k` words over a tree of height `diameter`:
/// `O(k + D)` rounds (the paper's `O(M + D)` with `k = M · words_per_item`).
pub fn broadcast(i: &BoundInputs) -> f64 {
    4.0 * (i.k + i.diameter) as f64 + 8.0
}

/// Convergecast + downcast over a tree of height `diameter`: `O(D)`.
pub fn convergecast(i: &BoundInputs) -> f64 {
    2.0 * i.diameter as f64 + 4.0
}

/// Event-driven node programs: the engine cannot exceed the caller's
/// round budget, carried in `h`.
pub fn node_programs(i: &BoundInputs) -> f64 {
    i.h as f64 + 1.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwc_graph::generators::{connected_gnm, WeightRange};
    use mwc_graph::Orientation;

    #[test]
    fn diameter_bound_dominates_true_diameter() {
        let g = connected_gnm(60, 90, Orientation::Undirected, WeightRange::unit(), 4);
        let bound = diameter_upper_bound(&g);
        // True diameter via all-pairs BFS.
        let mut true_d = 0;
        for s in 0..g.n() {
            let t = mwc_graph::seq::bfs(&g, s, mwc_graph::seq::Direction::Forward);
            true_d = true_d.max(*t.dist.iter().filter(|&&d| d != usize::MAX).max().unwrap());
        }
        assert!(bound >= true_d as u64, "bound {bound} < true {true_d}");
        assert!(bound <= 2 * true_d as u64);
    }

    #[test]
    fn effective_hops_caps_at_stretched_path() {
        use crate::INF;
        // Unbounded unit search on n nodes: capped at n-1 hops.
        assert_eq!(effective_hops(10, INF, None, 0), 9);
        // Finite budget smaller than the cap wins (plus zero-weight slack).
        assert_eq!(effective_hops(10, 3, None, 0), 9);
        assert_eq!(effective_hops(100, 3, None, 0), 99);
        // Stretch raises the cap.
        let lat = vec![7u64; 4];
        assert_eq!(effective_hops(5, INF, Some(&lat), 4), 28);
    }
}
