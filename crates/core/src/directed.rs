//! 2-approximation of directed unweighted MWC — **Algorithms 2 and 3 /
//! Theorem 1.2.C** of the paper (§3), in `Õ(n^{4/5} + D)` rounds.
//!
//! Structure:
//!
//! 1. **Long cycles** (≥ `h = n^{3/5}` hops): sample `S` so every long
//!    cycle contains a sampled vertex w.h.p.; run `k`-source BFS from `S`
//!    (Algorithm 1) in both directions; a cycle through `s ∈ S` is caught
//!    by the edge `(v, s)` entering `s`: `μ = w(v,s) + d(s,v)`.
//! 2. **Short cycles** (Algorithm 3): each `v` locally builds `R(v) ⊆ S`
//!    (one probe per partition class `S_i`) defining the neighborhood
//!    `P(v)` of Definition 3.1, which contains a ≤2× witness cycle if the
//!    short MWC through `v` avoids `S` (Fact 1 / Lemma 5.1 of \[13\]).
//!    A *restricted BFS* from every vertex, random-delayed by
//!    `δ_v ∈ [1, ρ = n^{4/5}]` and organized into phases with a
//!    `Θ(log n)` per-phase message cap, explores `P(v)`. Vertices that
//!    exceed the cap become **phase-overflow** vertices (Lemma 3.3 bounds
//!    them by `Õ(n^{4/5})`); a final `h`-hop BFS from the overflow set
//!    covers cycles through them.
//!
//! The same machinery runs in **stretched mode** (per-edge latencies and a
//! stretched-distance budget `h*`) to provide the hop-limited directed
//! subroutine that §5.2's weighted algorithm needs (Corollary 4.1 applied
//! to Algorithm 2).

use crate::ksssp::k_source_bfs;
use crate::outcome::{BestCycle, MwcOutcome};
use crate::params::Params;
use crate::util::{sample_vertices, simplify_path};
use mwc_congest::{
    broadcast, convergecast_min, multi_source_bfs, FloodPlan, Ledger, MultiBfsSpec, Network,
    PhaseCache, RoundOutput, INF,
};
use mwc_graph::seq::Direction;
use mwc_graph::{CycleWitness, Graph, NodeId, Weight};
use mwc_rng::StdRng;
use std::collections::HashMap;
use std::sync::Arc;

pub(crate) const SALT_MWC_SAMPLES: u64 = 0xB2;

/// How the algorithm measures length.
#[derive(Clone, Copy)]
pub(crate) enum Mode<'a> {
    /// Plain directed unweighted MWC: distances are hops.
    Unweighted,
    /// Stretched mode for §5.2: per-edge latencies (scaled weights) and a
    /// stretched-distance budget; only cycles of stretched length ≤
    /// `h_star` *and* real hop length ≤ `h_real` are targeted.
    Stretched {
        /// Per-edge stretch (scaled weight ≥ 1).
        latency: &'a [Weight],
        /// Stretched-distance budget `h*`.
        h_star: Weight,
        /// Real-hop bound of the target cycles (sampling threshold).
        h_real: u64,
    },
}

impl Mode<'_> {
    fn stretch_of(&self, edge: usize) -> Weight {
        match self {
            Mode::Unweighted => 1,
            Mode::Stretched { latency, .. } => latency[edge].max(1),
        }
    }
}

use crate::outcome::Partial;

/// 2-approximation of MWC in a directed unweighted graph (Theorem 1.2.C).
///
/// The returned weight is the hop length of a real directed cycle, at most
/// twice the true MWC w.h.p. (exact whenever some minimum weight cycle
/// passes through a sampled vertex). Runs in `Õ(n^{4/5} + D)` rounds,
/// measured in the outcome's ledger.
///
/// # Panics
///
/// Panics if the graph is undirected, weighted, or has a disconnected
/// communication topology.
///
/// # Examples
///
/// ```
/// use mwc_core::{two_approx_directed_mwc, Params};
/// use mwc_graph::{Graph, Orientation};
///
/// # fn main() -> Result<(), mwc_graph::GraphError> {
/// let g = Graph::from_edges(4, Orientation::Directed,
///     [(0, 1, 1), (1, 2, 1), (2, 0, 1), (2, 3, 1), (3, 1, 1)])?;
/// let out = two_approx_directed_mwc(&g, &Params::new());
/// let w = out.weight.expect("the graph has cycles");
/// assert!((3..=6).contains(&w)); // MWC is 3; 2-approximation
/// # Ok(())
/// # }
/// ```
pub fn two_approx_directed_mwc(g: &Graph, params: &Params) -> MwcOutcome {
    let _span = mwc_trace::span("directed/2approx");
    let _cache = PhaseCache::scope();
    assert!(g.is_directed(), "Algorithm 2 requires a directed graph");
    assert!(
        g.is_unit_weight(),
        "Algorithm 2 requires an unweighted graph; use §5's weighted algorithm"
    );
    let out = directed_mwc_core(g, params, Mode::Unweighted);
    let mut ledger = out.ledger;
    // Line 7: convergecast so every node knows μ (value only; the witness
    // is assembled from the argmin holder).
    let tree = PhaseCache::bfs_tree(g, 0, &mut ledger);
    let local = vec![out.best.weight().unwrap_or(INF); g.n()];
    let _ = convergecast_min(g, &tree, local, &mut ledger);
    let n = g.n();
    let h = ((n as f64).powf(params.directed_h_exponent).ceil() as u64).max(1);
    mwc_trace::check_bound(
        "core/two_approx_directed_mwc",
        mwc_trace::BoundInputs::n(n)
            .diameter(mwc_congest::bounds::diameter_upper_bound(g))
            .h(h)
            .k(crate::bounds::directed_samples(n, h, params)),
        ledger.rounds,
        |i| crate::bounds::directed_2approx(g, i.diameter, params),
    );
    out.best.into_outcome(ledger)
}

/// Hop-limited 2-approximation on a stretched directed graph — the §5.2
/// subroutine. Returns candidates measured as **real edge weights of the
/// witness cycles** (callers rescale/compare); only cycles with stretched
/// length ≤ `h_star` and ≤ `h_real` real hops are guaranteed to be
/// 2-approximated.
pub(crate) fn hop_limited_directed_mwc(
    g: &Graph,
    params: &Params,
    latency: &[Weight],
    h_star: Weight,
    h_real: u64,
) -> Partial {
    directed_mwc_core(
        g,
        params,
        Mode::Stretched {
            latency,
            h_star,
            h_real,
        },
    )
}

fn directed_mwc_core(g: &Graph, params: &Params, mode: Mode<'_>) -> Partial {
    let n = g.n();
    let mut ledger = Ledger::new();
    let mut best = BestCycle::new();
    if n == 0 {
        return Partial { best, ledger };
    }

    // Parameters (paper: h = n^{3/5}, ρ = n^{4/5}).
    let h_hops: u64 = match mode {
        Mode::Unweighted => (n as f64).powf(params.directed_h_exponent).ceil() as u64,
        Mode::Stretched { h_real, .. } => h_real,
    }
    .max(1);
    let rho: u64 = (((n as f64).powf(params.rho_exponent) * params.delay_factor.max(0.0)).ceil()
        as u64)
        .max(1);
    let budget: Weight = match mode {
        Mode::Unweighted => h_hops,
        Mode::Stretched { h_star, .. } => h_star,
    };

    // Line 2: sample S so cycles of ≥ h_hops real hops are hit w.h.p.
    let p = params.sample_prob(n, h_hops);
    let samples = sample_vertices(n, p, params.seed, SALT_MWC_SAMPLES);
    let ns = samples.len();

    // Line 3: distances to/from the samples.
    // Unweighted mode: full exact k-source BFS (Algorithm 1).
    // Stretched mode: budget-limited stretched BFS (cycles beyond the
    // budget are the caller's responsibility), O(h* + |S|) rounds.
    let (d_from_s, d_to_s): (DistTable, DistTable) = match mode {
        Mode::Unweighted => {
            let fwd = k_source_bfs(g, &samples, Direction::Forward, params);
            let rev = k_source_bfs(g, &samples, Direction::Reverse, params);
            ledger.merge(&fwd.ledger);
            ledger.merge(&rev.ledger);
            (DistTable::KsBfs(fwd), DistTable::KsBfs(rev))
        }
        Mode::Stretched { latency, .. } => {
            let spec_f = MultiBfsSpec {
                max_dist: budget,
                direction: Direction::Forward,
                latency: Some(latency),
            };
            let spec_r = MultiBfsSpec {
                max_dist: budget,
                direction: Direction::Reverse,
                latency: Some(latency),
            };
            let f = multi_source_bfs(g, &samples, &spec_f, "stretched BFS from S", &mut ledger);
            let r = multi_source_bfs(
                g,
                &samples,
                &spec_r,
                "stretched reverse BFS from S",
                &mut ledger,
            );
            (DistTable::Mat(f), DistTable::Mat(r))
        }
    };

    // Line 4: cycles through sampled vertices — for each edge (v, s∈S):
    // μ_v = min(μ_v, w(v,s) + d(s,v)) (in mode units).
    for (si, &s) in samples.iter().enumerate() {
        for a in g.in_adj(s) {
            let v = a.to;
            let d = d_from_s.get(si, v);
            if d == INF {
                continue;
            }
            if let Some(path) = d_from_s.path(si, v) {
                offer_cycle_with_closing_edge(g, &mut best, path, s);
            }
        }
    }

    // Line 5: broadcast all-pairs sample distances d(s, t).
    let tree = PhaseCache::bfs_tree(g, 0, &mut ledger);
    let mut items: Vec<(NodeId, (u32, u32, Weight))> = Vec::new();
    for i in 0..ns {
        for (j, &t) in samples.iter().enumerate() {
            if i == j {
                continue;
            }
            let d = d_from_s.get(i, t);
            if d != INF {
                items.push((t, (i as u32, j as u32, d)));
            }
        }
    }
    let pairs = broadcast(g, &tree, items, 1, &mut ledger);
    let mut d_st = vec![INF; ns * ns];
    for (_, (i, j, d)) in pairs {
        d_st[i as usize * ns + j as usize] = d;
    }

    // Line 6: Algorithm 3 — approximate short cycles avoiding S.
    short_cycles_restricted_bfs(
        g,
        params,
        mode,
        &samples,
        &d_st,
        &d_from_s,
        &d_to_s,
        budget,
        rho,
        &mut best,
        &mut ledger,
    );

    Partial { best, ledger }
}

/// Distance tables from/to samples, from either Algorithm 1 or a
/// budget-limited stretched BFS.
enum DistTable {
    KsBfs(crate::ksssp::KSourceDistances),
    Mat(mwc_congest::DistMatrix),
}

impl DistTable {
    fn get(&self, row: usize, v: NodeId) -> Weight {
        match self {
            DistTable::KsBfs(k) => k.get_row(row, v),
            DistTable::Mat(m) => m.get_row(row, v),
        }
    }

    /// Path oriented along graph edges (forward tables: sample→v; reverse
    /// tables: v→sample).
    fn path(&self, row: usize, v: NodeId) -> Option<Vec<NodeId>> {
        match self {
            DistTable::KsBfs(k) => k.path_row(row, v),
            DistTable::Mat(m) => m.path_from_source(row, v),
        }
    }
}

/// Offers the cycle `path(s → … → v)` closed by the edge `(v, s)`; the
/// candidate's value is the witness's real weight (never below the true
/// MWC by construction).
fn offer_cycle_with_closing_edge(g: &Graph, best: &mut BestCycle, path: Vec<NodeId>, s: NodeId) {
    let cyc = simplify_path(path);
    if cyc.len() < 2 || cyc[0] != s {
        return;
    }
    let w = CycleWitness::new(cyc);
    if let Ok(weight) = w.validate(g) {
        best.offer(weight, w);
    }
}

/// Per-source BFS record at a node.
#[derive(Clone, Copy)]
struct Reach {
    /// Restricted-BFS distance in mode units (used for candidate pruning).
    dist: Weight,
    pred: NodeId,
}

/// One restricted-BFS message: `(Q(y), d*(y, ·))` of Algorithm 3 line 16.
#[derive(Clone)]
struct BfsMsg {
    src: u32,
    dist: Weight,
    /// `R(src)` as (sample index, d(src, t)) pairs — `O(log n)` words.
    q: Arc<Vec<(u32, Weight)>>,
}

impl BfsMsg {
    fn words(&self) -> u64 {
        (1 + 2 * self.q.len()) as u64
    }
}

/// Lines 2–8 of Algorithm 3, extracted for Lemma-level testing: builds
/// `R(v)` for every `v` by probing one still-uncovered sample per
/// partition class. The covering condition is Definition 3.1 specialized
/// to a candidate sample `s` against an already-chosen `t`:
/// `d(s,t) + 2d(v,s) ≤ d(t,s) + 2d(v,t)`.
pub(crate) fn build_rsets(
    n: usize,
    ns: usize,
    classes: &[Vec<usize>],
    to_s: &[Arc<Vec<Weight>>],
    d_st: &[Weight],
    seed: u64,
) -> Vec<Arc<Vec<(u32, Weight)>>> {
    let covered_check = |v: NodeId, s_i: usize, r: &[(u32, Weight)]| -> bool {
        // Returns true if s_i is still *uncovered* (i.e. in P(v) so far).
        let dvs = to_s[v][s_i];
        r.iter().all(|&(t_i, dvt)| {
            let dst = d_st[s_i * ns + t_i as usize];
            let dts = d_st[t_i as usize * ns + s_i];
            dst.saturating_add(2u64.saturating_mul(dvs))
                <= dts.saturating_add(2u64.saturating_mul(dvt))
        })
    };

    let mut rset: Vec<Arc<Vec<(u32, Weight)>>> = Vec::with_capacity(n);
    let mut rng_r = StdRng::seed_from_u64(seed).fork("alg3/rset");
    for v in 0..n {
        let mut r: Vec<(u32, Weight)> = Vec::new();
        for class in classes {
            let t: Vec<usize> = class
                .iter()
                .copied()
                .filter(|&s_i| to_s[v][s_i] != INF && covered_check(v, s_i, &r))
                .collect();
            if !t.is_empty() {
                let pick = t[rng_r.random_range(0..t.len())];
                r.push((pick as u32, to_s[v][pick]));
            }
        }
        rset.push(Arc::new(r));
    }
    rset
}

/// Membership of `y` in `P(v)` per Definition 3.1, given `R(v)` and exact
/// distances (test/diagnostic helper): `∀t ∈ R(v): d(y,t) + 2d(v,y) ≤
/// d(t,y) + 2d(v,t)`.
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn in_neighborhood(
    d_vy: Weight,
    d_y_to_t: impl Fn(usize) -> Weight,
    d_t_to_y: impl Fn(usize) -> Weight,
    rset: &[(u32, Weight)],
) -> bool {
    rset.iter().all(|&(t_i, dvt)| {
        d_y_to_t(t_i as usize).saturating_add(2u64.saturating_mul(d_vy))
            <= d_t_to_y(t_i as usize).saturating_add(2u64.saturating_mul(dvt))
    })
}

#[allow(clippy::too_many_arguments)]
fn short_cycles_restricted_bfs(
    g: &Graph,
    params: &Params,
    mode: Mode<'_>,
    samples: &[NodeId],
    d_st: &[Weight],
    d_from_s: &DistTable,
    d_to_s: &DistTable,
    budget: Weight,
    rho: u64,
    best: &mut BestCycle,
    ledger: &mut Ledger,
) {
    let _span = mwc_trace::span("directed/alg3");
    let n = g.n();
    let ns = samples.len();
    let cap = params.phase_cap(n);

    // Lines 2–8: partition S into β = ⌈log₂ n⌉ classes and build R(v)
    // locally at every vertex.
    let beta = ((n.max(2) as f64).log2().ceil() as usize).max(1);
    let mut rng = StdRng::seed_from_u64(params.seed).fork("alg3/partition");
    let mut class = vec![0usize; ns];
    for (i, c) in class.iter_mut().enumerate() {
        *c = (i + rng.random_range(0..beta)) % beta;
    }
    let mut classes: Vec<Vec<usize>> = vec![Vec::new(); beta];
    for (i, &c) in class.iter().enumerate() {
        classes[c].push(i);
    }

    // d(v, s) and d(s, v) vectors per node (information each node holds
    // from line 3's BFS runs).
    let mut to_s: Vec<Arc<Vec<Weight>>> = Vec::with_capacity(n);
    let mut from_s: Vec<Arc<Vec<Weight>>> = Vec::with_capacity(n);
    for v in 0..n {
        let t: Vec<Weight> = (0..ns).map(|si| d_to_s.get(si, v)).collect();
        let f: Vec<Weight> = (0..ns).map(|si| d_from_s.get(si, v)).collect();
        to_s.push(Arc::new(t));
        from_s.push(Arc::new(f));
    }

    let rset = build_rsets(n, ns, &classes, &to_s, d_st, params.seed);

    // Line 9: random delays δ_v ∈ [1, ρ]. One labeled substream per
    // node: δ_v depends only on (seed, v), so the schedule is stable
    // under changes to n, topology iteration order, or earlier phases.
    let delay_root = StdRng::seed_from_u64(params.seed).fork("alg3/delays");
    let delays: Vec<u64> = (0..n)
        .map(|v| delay_root.fork_u64(v as u64).random_range(1..=rho))
        .collect();

    // Line 11: every node sends {(d(v,s), d(s,v))} to each neighbor —
    // a 2|S|-word bulk exchange, O(|S|) rounds.
    let mut net: Network<(Arc<Vec<Weight>>, Arc<Vec<Weight>>)> = Network::new_auto(g);
    for v in 0..n {
        for w in g.comm_neighbors(v) {
            net.send(
                v,
                w,
                (Arc::clone(&to_s[v]), Arc::clone(&from_s[v])),
                2 * ns as u64,
            )
            .expect("neighbors are linked");
        }
    }
    let mut nbr_to_s: Vec<HashMap<NodeId, Arc<Vec<Weight>>>> = vec![HashMap::new(); n];
    let mut nbr_from_s: Vec<HashMap<NodeId, Arc<Vec<Weight>>>> = vec![HashMap::new(); n];
    let mut out = RoundOutput::default();
    while net.step_bulk_into(&mut out) {
        for d in out.deliveries.drain(..) {
            nbr_to_s[d.to].insert(d.from, d.payload.0);
            nbr_from_s[d.to].insert(d.from, d.payload.1);
        }
    }
    ledger.absorb("Alg3: neighbor sample-distance exchange", &net);

    // Membership/forwarding test of line 22: forward source y's BFS to
    // out-neighbor u iff ∀(t, d(y,t)) ∈ Q(y):
    //   d(u,t) + 2d*(y,u) ≤ d(t,u) + 2d(y,t).
    let forward_test = |v: NodeId, u: NodeId, cand: Weight, q: &[(u32, Weight)]| -> bool {
        let Some(ut) = nbr_to_s[v].get(&u) else {
            return false;
        };
        let Some(tu) = nbr_from_s[v].get(&u) else {
            return false;
        };
        q.iter().all(|&(t_i, dyt)| {
            ut[t_i as usize].saturating_add(2u64.saturating_mul(cand))
                <= tu[t_i as usize].saturating_add(2u64.saturating_mul(dyt))
        })
    };

    // Lines 13–22: the phase-organized restricted BFS.
    let max_phase = rho + budget; // arrivals occur by δ_v + budget ≤ ρ + h*.
    let mut reached: Vec<HashMap<u32, Reach>> = vec![HashMap::new(); n];
    let mut overflow = vec![false; n];
    // future[p % window] = messages arriving at phase p (stretch ≥ 1).
    let max_stretch = match mode {
        Mode::Unweighted => 1,
        Mode::Stretched { latency, .. } => {
            latency.iter().copied().max().unwrap_or(1).max(1) as usize
        }
    };
    let window = max_stretch + 1;
    let mut future: Vec<Vec<(NodeId, NodeId, BfsMsg)>> = vec![Vec::new(); window];
    let mut bfs_net: Network<()> = Network::new_auto(g); // round accounting only
    let mut phase_rounds_total = 0u64;
    // Traversal-edge CSR: link ids and stretches resolved once, so the
    // phase loop's send and arrival-scheduling paths do no adjacency or
    // edge-id searches. In this mode-unit world an edge's length is its
    // stretch (`hop.latency + 1`), used for BOTH the announced distance
    // and the arrival delay — unlike `multi_source_bfs`, where a
    // zero-weight edge adds 0 distance but still takes a round.
    let plan = FloodPlan::build(
        g,
        &bfs_net,
        Direction::Forward,
        match mode {
            Mode::Unweighted => None,
            Mode::Stretched { latency, .. } => Some(latency),
        },
    );

    for phase in 1..=max_phase {
        // Initiations at δ_v (line 15–17). Sends carry their resolved
        // `(link, ell)` so charging and scheduling below stay lookup-free.
        let mut sends: Vec<(NodeId, NodeId, u32, u64, BfsMsg)> = Vec::new();
        if phase <= rho {
            for v in 0..n {
                if delays[v] == phase && !overflow[v] {
                    let q = Arc::clone(&rset[v]);
                    for hop in plan.of(v) {
                        let ell = hop.latency + 1;
                        if ell > budget {
                            continue;
                        }
                        sends.push((
                            v,
                            hop.to as usize,
                            hop.link,
                            ell,
                            BfsMsg {
                                src: v as u32,
                                dist: ell,
                                q: Arc::clone(&q),
                            },
                        ));
                    }
                }
            }
        }

        // Deliveries scheduled for this phase.
        let arriving = std::mem::take(&mut future[(phase as usize) % window]);

        // Per-edge receive counting (line 19) and first-message dedup
        // (line 20).
        let mut per_edge: HashMap<(NodeId, NodeId), usize> = HashMap::new();
        let mut fresh: Vec<Vec<(u32, Weight, NodeId, Arc<Vec<(u32, Weight)>>)>> =
            vec![Vec::new(); n];
        for (from, to, msg) in arriving {
            if overflow[to] {
                continue;
            }
            let c = per_edge.entry((from, to)).or_insert(0);
            *c += 1;
            if *c > cap {
                overflow[to] = true;
                fresh[to].clear();
                continue;
            }
            if reached[to].contains_key(&msg.src) || msg.src as usize == to {
                continue; // not the first message for this source
            }
            reached[to].insert(
                msg.src,
                Reach {
                    dist: msg.dist,
                    pred: from,
                },
            );
            fresh[to].push((msg.src, msg.dist, from, msg.q));
        }

        // Line 21: Y^r(v) cap; line 22: forward with the membership test.
        for v in 0..n {
            if overflow[v] || fresh[v].is_empty() {
                continue;
            }
            if fresh[v].len() > cap {
                overflow[v] = true;
                continue;
            }
            for (src, dist, _pred, q) in std::mem::take(&mut fresh[v]) {
                for hop in plan.of(v) {
                    let ell = hop.latency + 1;
                    let cand = dist.saturating_add(ell);
                    if cand > budget {
                        continue;
                    }
                    if forward_test(v, hop.to as usize, cand, &q) {
                        sends.push((
                            v,
                            hop.to as usize,
                            hop.link,
                            ell,
                            BfsMsg {
                                src,
                                dist: cand,
                                q: Arc::clone(&q),
                            },
                        ));
                    }
                }
            }
        }

        if sends.is_empty() {
            continue; // quiet phase: zero rounds.
        }
        // Charge this phase's rounds: drain all sends through the engine.
        for (_, _, link, _, msg) in &sends {
            bfs_net.send_on_link(*link as usize, (), msg.words(), 0);
        }
        let mut drained = RoundOutput::default();
        while bfs_net.step_bulk_into(&mut drained) {}
        phase_rounds_total = bfs_net.round();
        // Schedule arrivals at entry phase + stretch, read off the plan
        // hop — no edge-id recovery.
        for (from, to, _, ell, msg) in sends {
            let arrive = phase + ell;
            if arrive <= max_phase {
                future[(arrive as usize) % window].push((from, to, msg));
            }
        }
    }
    let _ = phase_rounds_total;
    ledger.absorb("Alg3: restricted BFS phases", &bfs_net);

    // Lines 25–26: close cycles found by the restricted BFS — at node y
    // holding d(v, y) with an out-edge (y, v).
    for y in 0..n {
        // Sorted source order: the `cand >= b` pruning depends on how
        // early `best` improves, so HashMap's per-process iteration order
        // would make the work done (and the profiled allocator traffic,
        // gated in the default configuration) nondeterministic — the
        // cycle weight itself is order-invariant.
        let mut srcs: Vec<u32> = reached[y].keys().copied().collect();
        srcs.sort_unstable();
        for src in srcs {
            let rec = &reached[y][&src];
            let v = src as usize;
            if !g.has_edge(y, v) {
                continue;
            }
            // Prune by the mode-unit candidate d(v, y) + stretch(y, v).
            let eid = g.edge_id(y, v).expect("edge exists");
            let cand = rec.dist.saturating_add(mode.stretch_of(eid));
            if best
                .weight()
                .is_some_and(|b| matches!(mode, Mode::Unweighted) && cand >= b)
            {
                continue;
            }
            if let Some(path) = reconstruct_restricted_path(&reached, v, y, n) {
                offer_cycle_with_closing_edge(g, best, path, v);
            }
        }
    }

    // Line 24: h-hop BFS from the phase-overflow set Z. Record |Z| in the
    // ledger (zero-cost info line) for the scheduling ablation.
    let z: Vec<NodeId> = (0..n).filter(|&v| overflow[v]).collect();
    ledger.phases.push(mwc_congest::Phase::synthetic(
        format!("Alg3: |Z| = {} phase-overflow vertices", z.len()),
        0,
        0,
    ));
    if !z.is_empty() {
        let latency_vec: Option<&[Weight]> = match mode {
            Mode::Unweighted => None,
            Mode::Stretched { latency, .. } => Some(latency),
        };
        let spec = MultiBfsSpec {
            max_dist: budget,
            direction: Direction::Forward,
            latency: latency_vec,
        };
        let mat_z = multi_source_bfs(g, &z, &spec, "Alg3: BFS from phase-overflow set", ledger);
        for (zi, &v) in z.iter().enumerate() {
            // For each edge (x, v): cycle v → … → x → v.
            for a in g.in_adj(v) {
                let x = a.to;
                if mat_z.get_row(zi, x) == INF {
                    continue;
                }
                if let Some(path) = mat_z.path_from_source(zi, x) {
                    offer_cycle_with_closing_edge(g, best, path, v);
                }
            }
        }
    }
}

/// Walks restricted-BFS predecessor records back from `y` to the source
/// `v`, returning the path `v → … → y`.
fn reconstruct_restricted_path(
    reached: &[HashMap<u32, Reach>],
    v: NodeId,
    y: NodeId,
    n: usize,
) -> Option<Vec<NodeId>> {
    let mut path = vec![y];
    let mut cur = y;
    while cur != v {
        let r = reached[cur].get(&(v as u32))?;
        cur = r.pred;
        path.push(cur);
        if path.len() > n {
            return None;
        }
    }
    path.reverse();
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwc_graph::generators::{connected_gnm, planted_cycle, ring_with_chords, WeightRange};
    use mwc_graph::seq;
    use mwc_graph::Orientation;

    fn check_two_approx(g: &Graph, params: &Params) {
        let out = two_approx_directed_mwc(g, params);
        out.assert_valid(g);
        let oracle = seq::mwc_directed_exact(g).map(|m| m.weight);
        match (out.weight, oracle) {
            (None, None) => {}
            (Some(w), Some(opt)) => {
                assert!(w >= opt, "reported {w} < optimum {opt}");
                assert!(w <= 2 * opt, "reported {w} > 2×optimum {}", 2 * opt);
            }
            (got, want) => panic!("cycle detection mismatch: got {got:?}, oracle {want:?}"),
        }
    }

    #[test]
    fn ring_is_found_exactly() {
        // Single Hamiltonian cycle: long-cycle machinery must catch it.
        let g = ring_with_chords(60, 0, Orientation::Directed, WeightRange::unit(), 0);
        let out = two_approx_directed_mwc(&g, &Params::new().with_seed(1));
        out.assert_valid(&g);
        assert_eq!(out.weight, Some(60));
    }

    #[test]
    fn random_graphs_within_factor_two() {
        for seed in 0..6 {
            let g = connected_gnm(48, 120, Orientation::Directed, WeightRange::unit(), seed);
            check_two_approx(&g, &Params::new().with_seed(seed + 100));
        }
    }

    #[test]
    fn denser_graphs_within_factor_two() {
        for seed in 0..4 {
            let g = connected_gnm(
                80,
                420,
                Orientation::Directed,
                WeightRange::unit(),
                50 + seed,
            );
            check_two_approx(&g, &Params::new().with_seed(seed));
        }
    }

    #[test]
    fn planted_short_cycle_found() {
        let (g, _) = planted_cycle(70, 120, 3, 1, Orientation::Directed, WeightRange::unit(), 7);
        check_two_approx(&g, &Params::new().with_seed(3));
    }

    #[test]
    fn two_cycles_are_caught() {
        // Antiparallel pair = MWC of 2.
        let mut g = ring_with_chords(40, 0, Orientation::Directed, WeightRange::unit(), 0);
        g.add_edge(5, 4, 1).unwrap();
        let out = two_approx_directed_mwc(&g, &Params::new().with_seed(4));
        out.assert_valid(&g);
        let w = out.weight.expect("cycle exists");
        assert!(
            (2..=4).contains(&w),
            "2-cycle must be ≤2-approximated, got {w}"
        );
    }

    #[test]
    fn acyclic_reports_none() {
        let mut g = Graph::directed(12);
        for i in 0..11 {
            g.add_edge(i, i + 1, 1).unwrap();
        }
        for i in 0..10 {
            g.add_edge(i, i + 2, 1).unwrap();
        }
        let out = two_approx_directed_mwc(&g, &Params::new());
        out.assert_valid(&g);
        assert_eq!(out.weight, None);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = connected_gnm(40, 100, Orientation::Directed, WeightRange::unit(), 9);
        let a = two_approx_directed_mwc(&g, &Params::new().with_seed(5));
        let b = two_approx_directed_mwc(&g, &Params::new().with_seed(5));
        assert_eq!(a.weight, b.weight);
        assert_eq!(a.ledger.rounds, b.ledger.rounds);
    }

    /// Lemma-level validation of the R(v)/P(v) machinery using oracle
    /// distances: the paper claims |P(v)| shrinks to Õ(n/|S|) (the
    /// covering/halving argument after Definition 3.1) and that P(v) is
    /// connected in the shortest-path out-tree (Lemma 3.2).
    #[test]
    fn neighborhood_size_and_connectivity_lemmas() {
        use crate::util::sample_vertices;
        use mwc_graph::seq::{dijkstra, Direction as D, INF as SINF};

        let n = 140;
        let g = connected_gnm(n, 560, Orientation::Directed, WeightRange::unit(), 77);
        // Exact distances via the oracle (the algorithm has the same
        // numbers from Algorithm 1).
        let fwd: Vec<_> = (0..n).map(|v| dijkstra(&g, v, D::Forward)).collect();
        let to = |a: usize, b: usize| {
            if fwd[a].dist[b] == SINF {
                INF
            } else {
                fwd[a].dist[b]
            }
        };

        let samples = sample_vertices(n, 0.18, 5, 0xB2);
        let ns = samples.len();
        assert!(ns >= 8, "need a meaningful sample ({ns})");
        let mut d_st = vec![INF; ns * ns];
        for i in 0..ns {
            for j in 0..ns {
                d_st[i * ns + j] = to(samples[i], samples[j]);
            }
        }
        let to_s: Vec<Arc<Vec<Weight>>> = (0..n)
            .map(|v| Arc::new(samples.iter().map(|&s| to(v, s)).collect()))
            .collect();
        let beta = ((n as f64).log2().ceil() as usize).max(1);
        let classes: Vec<Vec<usize>> = (0..beta).map(|c| (c..ns).step_by(beta).collect()).collect();
        let rsets = build_rsets(n, ns, &classes, &to_s, &d_st, 5);

        let mut total_p = 0usize;
        for v in 0..n {
            let p_v: Vec<NodeId> = (0..n)
                .filter(|&y| {
                    to(v, y) != INF
                        && in_neighborhood(
                            to(v, y),
                            |t| to(y, samples[t]),
                            |t| to(samples[t], y),
                            &rsets[v],
                        )
                })
                .collect();
            total_p += p_v.len();

            // Lemma 3.2: every vertex on the canonical shortest v→y path
            // of y ∈ P(v) is itself in P(v).
            for &y in p_v.iter().take(25) {
                let mut cur = y;
                while let Some(p) = fwd[v].parent[cur] {
                    assert!(
                        in_neighborhood(
                            to(v, p),
                            |t| to(p, samples[t]),
                            |t| to(samples[t], p),
                            &rsets[v],
                        ),
                        "P({v}) not connected: ancestor {p} of {y} excluded"
                    );
                    cur = p;
                    if cur == v {
                        break;
                    }
                }
            }
        }
        // Size bound: mean |P(v)| ≤ c·n/|S| with a generous constant
        // absorbing the polylog.
        let mean = total_p as f64 / n as f64;
        let bound = 6.0 * n as f64 / ns as f64;
        assert!(
            mean <= bound,
            "mean |P(v)| = {mean:.1} > {bound:.1} (|S| = {ns})"
        );
    }

    #[test]
    fn many_seeds_never_violate_factor() {
        for seed in 0..10 {
            let g = connected_gnm(36, 90, Orientation::Directed, WeightRange::unit(), 777);
            check_two_approx(&g, &Params::new().with_seed(seed));
        }
    }
}
