//! Graph substrate for the CONGEST minimum-weight-cycle reproduction.
//!
//! This crate provides the pieces every other crate in the workspace builds
//! on:
//!
//! - [`Graph`]: simple directed/undirected graphs with non-negative integer
//!   weights (the paper's `w : E → {0, …, W}`, §1.1).
//! - [`generators`]: seeded random and structured graph families used by
//!   tests and benchmarks.
//! - [`seq`]: sequential reference algorithms — BFS, Dijkstra, hop-limited
//!   Bellman–Ford, and the classical exact MWC oracles (§1.5 of the paper)
//!   that every distributed algorithm is validated against.
//! - [`CycleWitness`]: a checkable certificate that a reported weight is
//!   the weight of a real simple cycle (Definition 1.1).
//!
//! # Examples
//!
//! Build a weighted ring, find its minimum weight cycle, and check the
//! witness:
//!
//! ```
//! use mwc_graph::generators::{ring_with_chords, WeightRange};
//! use mwc_graph::seq::mwc_exact;
//! use mwc_graph::Orientation;
//!
//! let g = ring_with_chords(8, 2, Orientation::Undirected, WeightRange::uniform(1, 5), 42);
//! if let Some(mwc) = mwc_exact(&g) {
//!     assert_eq!(mwc.witness.validate(&g), Ok(mwc.weight));
//! }
//! ```

#![forbid(unsafe_code)]
// Node-indexed state vectors are idiomatic for this simulator; indexing
// loops over node ids are deliberate.
#![allow(clippy::needless_range_loop, clippy::type_complexity)]
#![warn(missing_docs)]

pub mod generators;
mod graph;
pub mod io;
pub mod seq;
mod witness;

pub use graph::{Adj, Edge, EdgeId, Graph, GraphError, NodeId, Orientation, Weight};
pub use witness::{CycleWitness, WitnessError};
