//! Shared flood-kernel machinery for the flood primitives: the
//! precomputed traversal-edge CSR ([`FloodPlan`]), the u64-bitset frontier
//! ([`BitFrontier`]) behind the bit-parallel kernel, the arrival-round
//! calendar queue ([`CalendarRing`]) behind its latency-stretched variant,
//! and the [`FloodKernel`] selection knob (`MWC_FLOOD_KERNEL`).
//!
//! # Two kernels, one schedule
//!
//! The pipelined flood primitives ([`crate::multi_source_bfs`] and
//! [`crate::source_detection`]) have two interchangeable inner loops:
//!
//! - **Scalar**: the reference implementation — per-node `BinaryHeap`
//!   outboxes, every announcement enqueued on a [`Network`] link and moved
//!   by `step_into`, stale heap entries skipped lazily at pop time.
//! - **Bitset**: frontiers are distance-bucketed u64 words, 64 source rows
//!   per word, maintained *eagerly* (an improved or evicted announcement is
//!   cleared with one AND-NOT instead of lingering as a stale heap entry),
//!   and the engine's queue machinery is bypassed entirely — each round's
//!   sends are delivered directly and charged in one pass through
//!   [`Network::charge_flood_round`].
//!
//! Both kernels execute the *same schedule*: the pop order of a
//! [`BitFrontier`] is exactly the `(distance, source row)` heap order, and
//! eager removal is observationally identical to lazy stale-skipping (a
//! stale entry is popped and discarded for free; an eagerly-removed entry
//! is simply never popped). The ledger keeps charging model-faithful
//! rounds/words — bitset packing is an implementation detail, not a model
//! change — so every run record, congestion profile, event log, and
//! distance-table digest is byte-identical across kernels. The
//! differential suites (`crates/congest/tests/flood_kernel_differential.rs`
//! and the `MWC_FLOOD_KERNEL=scalar` CI perf-gate leg) pin that.
//!
//! Unit-latency floods (every traversal edge crosses in one round — plain
//! BFS, or stretched searches whose latencies are all ≤ 1, which includes
//! zero-weight edges) run the distance-bucketed kernel above.
//! **Latency-stretched** floods run a calendar-queue variant: in-flight
//! announcements live in a [`CalendarRing`] of `max_latency + 1`
//! arrival-round buckets, a send over an edge with stretch `ℓ` lands `ℓ`
//! buckets ahead, and each round is charged in one pass through
//! `Network::charge_stretched_flood_round` (this round's sends as the
//! transfers, this round's calendar expiries as the arrivals) — the exact
//! per-round stats, in-flight occupancy, and event log the scalar engine's
//! transit heap would have produced. The stretched kernel engages when
//! `FloodPlan::max_latency() <= MWC_FLOOD_RING_MAX` (default
//! [`FLOOD_RING_MAX_DEFAULT`], generous); a pathological latency table
//! beyond the cap falls back to the scalar path rather than allocate an
//! oversized ring.
//!
//! Kernel resolution, highest priority first (the [`mwc_par::shards`]
//! convention): [`set_flood_kernel`] → the `MWC_FLOOD_KERNEL` environment
//! variable (`scalar` | `bitset`) → [`FloodKernel::Bitset`]. Bitset is the
//! default because it is byte-identical by construction and strictly
//! faster; `scalar` is the escape hatch and the differential anchor.

use crate::engine::Network;
use mwc_graph::seq::Direction;
use mwc_graph::{Graph, NodeId, Weight};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Which inner loop the unit-latency flood primitives run. See the
/// [module docs](self) for the contract: the choice is invisible to every
/// gated metric — only wall-clock moves.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FloodKernel {
    /// Engine-stepped reference loop (heap outboxes, per-link queues).
    Scalar,
    /// Bit-parallel loop (u64 frontier words, direct delivery, rounds
    /// charged in bulk via [`Network::charge_flood_round`]).
    Bitset,
}

impl FloodKernel {
    /// Parses a knob value (`"scalar"` / `"bitset"`, case-insensitive).
    pub fn parse(s: &str) -> Option<FloodKernel> {
        match s.trim().to_ascii_lowercase().as_str() {
            "scalar" => Some(FloodKernel::Scalar),
            "bitset" => Some(FloodKernel::Bitset),
            _ => None,
        }
    }

    /// The knob spelling of this kernel (what run records stamp).
    pub fn name(self) -> &'static str {
        match self {
            FloodKernel::Scalar => "scalar",
            FloodKernel::Bitset => "bitset",
        }
    }
}

/// Process-wide override set by [`set_flood_kernel`]; `0` = unset,
/// `1` = scalar, `2` = bitset.
static FLOOD_KERNEL_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Overrides the flood kernel for the whole process. Bench bins call this
/// when given a `--flood-kernel=NAME` flag; it wins over
/// `MWC_FLOOD_KERNEL`.
pub fn set_flood_kernel(k: FloodKernel) {
    let v = match k {
        FloodKernel::Scalar => 1,
        FloodKernel::Bitset => 2,
    };
    FLOOD_KERNEL_OVERRIDE.store(v, Ordering::Relaxed);
}

/// The effective flood kernel: [`set_flood_kernel`] override, else
/// `MWC_FLOOD_KERNEL`, else [`FloodKernel::Bitset`] (unrecognized values
/// fall through to the default, the lenient env-knob convention).
pub fn flood_kernel() -> FloodKernel {
    match FLOOD_KERNEL_OVERRIDE.load(Ordering::Relaxed) {
        1 => return FloodKernel::Scalar,
        2 => return FloodKernel::Bitset,
        _ => {}
    }
    std::env::var("MWC_FLOOD_KERNEL")
        .ok()
        .as_deref()
        .and_then(FloodKernel::parse)
        .unwrap_or(FloodKernel::Bitset)
}

/// Default cap on [`FloodPlan::max_latency`] for the stretched bitset
/// kernel: the calendar ring allocates `max_latency + 1` buckets, so the
/// cap bounds that allocation. 65 536 buckets ≈ 1.5 MiB of empty `Vec`
/// headers — generous enough that every latency table the workloads
/// produce qualifies, small enough that a pathological table cannot
/// balloon the ring.
pub const FLOOD_RING_MAX_DEFAULT: u64 = 65_536;

/// The effective calendar-ring cap: `MWC_FLOOD_RING_MAX`, else
/// [`FLOOD_RING_MAX_DEFAULT`] (unparseable values fall through to the
/// default, the lenient env-knob convention). A stretched flood whose
/// [`FloodPlan::max_latency`] exceeds this runs the scalar path.
pub fn flood_ring_max() -> u64 {
    std::env::var("MWC_FLOOD_RING_MAX")
        .ok()
        .and_then(|s| s.trim().parse::<u64>().ok())
        .unwrap_or(FLOOD_RING_MAX_DEFAULT)
}

/// Process-cumulative count of floods dispatched to a bitset kernel
/// (unit-latency or calendar-queue).
static FLOODS_BITSET: AtomicU64 = AtomicU64::new(0);
/// Process-cumulative count of floods dispatched to the scalar fallback.
static FLOODS_SCALAR: AtomicU64 = AtomicU64::new(0);

/// Process-cumulative kernel engagement: how many floods (one
/// [`crate::multi_source_bfs`] or [`crate::source_detection`] call each)
/// dispatched to a bitset kernel vs. the scalar fallback, as
/// `(bitset, scalar)`. Bench bins snapshot this at run start and stamp the
/// delta on the run record as the informational `floods_bitset` /
/// `floods_scalar` fields.
pub fn flood_engagement() -> (u64, u64) {
    (
        FLOODS_BITSET.load(Ordering::Relaxed),
        FLOODS_SCALAR.load(Ordering::Relaxed),
    )
}

/// Tallies one flood dispatch for [`flood_engagement`].
pub(crate) fn note_flood_engagement(bitset: bool) {
    let ctr = if bitset {
        &FLOODS_BITSET
    } else {
        &FLOODS_SCALAR
    };
    ctr.fetch_add(1, Ordering::Relaxed);
}

/// Per traversal edge, everything a flood's inner loop needs: the link to
/// occupy, the receiving node, the announced distance increment, and the
/// extra delivery latency. Distance and travel time are decoupled so
/// zero-weight edges (the paper allows `w = 0`) stay exact: they add 0 to
/// the distance but still take one round to cross.
#[derive(Clone, Copy, Debug)]
pub struct FloodHop {
    /// Link id ([`Network::link_id`]) the announcement occupies.
    pub link: u32,
    /// The node at the receiving end of the link.
    pub to: u32,
    /// Announced distance increment (may be 0 for zero-weight edges).
    pub dist_add: Weight,
    /// Extra delivery latency in rounds: `stretch − 1`, where the stretch
    /// of an edge is `max(weight, 1)` — even a zero-weight edge takes one
    /// round to cross, so `latency == 0` means unit travel time.
    pub latency: u64,
}

/// Precomputed CSR over a graph's traversal edges. Resolving link ids,
/// receiver nodes, and latency-table entries once up front keeps the
/// per-announcement loops free of adjacency searches — it matters at
/// millions of announcements per run. Built per flood (direction and
/// latency table are parameters); shared by the flood primitives here and
/// the restricted-BFS phase loop in `mwc-core`.
pub struct FloodPlan {
    /// CSR offsets: node `v`'s hops are `hops[start[v]..start[v + 1]]`.
    start: Vec<u32>,
    /// One [`FloodHop`] per traversal edge, grouped by sending node.
    hops: Vec<FloodHop>,
    /// Largest hop latency — 0 means every edge crosses in one round and
    /// the bitset kernel applies.
    max_latency: u64,
}

impl FloodPlan {
    /// Distance contribution of an edge (the *announced* weight — may be
    /// 0). `None` means all-unit (plain BFS).
    pub(crate) fn dist_add(latency: Option<&[Weight]>, edge: usize) -> Weight {
        latency.map_or(1, |l| l[edge])
    }

    /// Travel time of an edge in rounds (≥ 1: even a zero-weight edge
    /// takes a round to cross).
    pub(crate) fn stretch(latency: Option<&[Weight]>, edge: usize) -> Weight {
        latency.map_or(1, |l| l[edge].max(1))
    }

    /// Builds the plan for `direction`-traversal of `g` with the given
    /// per-edge latency table (`None` = all-unit). The network is only
    /// consulted for link ids, so any message type works.
    ///
    /// # Panics
    ///
    /// Panics if a traversal edge is not a communication link of `net`,
    /// or if the edge count does not fit `u32`.
    pub fn build<M>(
        g: &Graph,
        net: &Network<M>,
        direction: Direction,
        latency: Option<&[Weight]>,
    ) -> FloodPlan {
        let n = g.n();
        let mut start = Vec::with_capacity(n + 1);
        let mut hops = Vec::new();
        let mut max_latency = 0;
        start.push(0);
        for v in 0..n {
            for a in direction.adj(g, v) {
                let l = net
                    .link_id(v, a.to)
                    .expect("traversal edges are communication links");
                let lat = Self::stretch(latency, a.edge) - 1;
                max_latency = max_latency.max(lat);
                hops.push(FloodHop {
                    link: l as u32,
                    to: a.to as u32,
                    dist_add: Self::dist_add(latency, a.edge),
                    latency: lat,
                });
            }
            start.push(u32::try_from(hops.len()).expect("edge count fits u32"));
        }
        FloodPlan {
            start,
            hops,
            max_latency,
        }
    }

    /// Node `v`'s outgoing traversal hops.
    pub fn of(&self, v: NodeId) -> &[FloodHop] {
        &self.hops[self.start[v] as usize..self.start[v + 1] as usize]
    }

    /// `true` when every hop crosses in one round (all latencies 0) — the
    /// case the distance-bucketed bitset kernel handles without a
    /// calendar ring.
    pub fn unit_latency(&self) -> bool {
        self.max_latency == 0
    }

    /// Largest hop latency in the plan. The stretched bitset kernel sizes
    /// its [`CalendarRing`] as `max_latency + 1` buckets and engages only
    /// when this is at most [`flood_ring_max`].
    pub fn max_latency(&self) -> u64 {
        self.max_latency
    }
}

/// A calendar queue over flood arrival rounds: a ring of
/// `max_latency + 1` buckets, one per pending arrival round, indexed by
/// `arrival % ring_size`. The stretched flood kernels park a latency-`ℓ`
/// send in the bucket `ℓ` slots ahead of the round being charged and
/// drain exactly one bucket per charged round — replacing the scalar
/// engine's global transit `BinaryHeap` with O(1) insert and pop.
///
/// Why a plain ring is enough: when round `R` is charged, every live
/// arrival lies in the window `[R, R + max_latency]` (sends from earlier
/// rounds have arrival `> R − 1 + 0` and at most `send_round +
/// max_latency`; this round's sends land in `[R + 1, R + max_latency]`).
/// The window spans at most `ring_size` consecutive rounds, so arrivals
/// map injectively onto buckets and the bucket for round `R` holds
/// *exactly* the round-`R` arrivals — no overflow chains, no sorting.
///
/// Order fidelity: the scalar transit heap pops by `(arrival round,
/// global send sequence)`. Here items are pushed in send order and rounds
/// are charged in increasing order, so each bucket's insertion order *is*
/// the send-sequence order and a per-round drain replays the heap's pop
/// order exactly. [`CalendarRing::next_arrival`] is the bulk analogue of
/// the engine's quiet-round fast-forward: it scans at most one window for
/// the earliest pending arrival so fully-quiet gaps are skipped without
/// charging rounds.
#[derive(Clone, Debug)]
pub struct CalendarRing<T> {
    /// `buckets[a % buckets.len()]` holds the pending round-`a` arrivals
    /// in send order, tagged with `a` to assert the window invariant.
    buckets: Vec<Vec<(u64, T)>>,
    /// Total pending arrivals across all buckets.
    len: usize,
}

impl<T> CalendarRing<T> {
    /// A ring covering arrival latencies up to `max_latency` (so
    /// `max_latency + 1` buckets: a latency-1 send charged at round `R`
    /// arrives at `R + 1`, the furthest at `R + max_latency`).
    pub fn new(max_latency: u64) -> CalendarRing<T> {
        let size = usize::try_from(max_latency + 1).expect("ring size fits usize");
        CalendarRing {
            buckets: (0..size).map(|_| Vec::new()).collect(),
            len: 0,
        }
    }

    /// Parks `item` for delivery at round `arrival`. The caller keeps the
    /// window invariant: `arrival` is within `max_latency` rounds of the
    /// round being charged.
    pub fn push(&mut self, arrival: u64, item: T) {
        let b = (arrival % self.buckets.len() as u64) as usize;
        self.buckets[b].push((arrival, item));
        self.len += 1;
    }

    /// Drains the round-`round` arrivals into `out` in send order —
    /// exactly what the scalar transit heap would pop while expiring
    /// round `round`.
    pub fn drain_round_into(&mut self, round: u64, out: &mut Vec<T>) {
        let b = (round % self.buckets.len() as u64) as usize;
        self.len -= self.buckets[b].len();
        for (arrival, item) in self.buckets[b].drain(..) {
            debug_assert_eq!(arrival, round, "calendar window invariant violated");
            out.push(item);
        }
    }

    /// The earliest pending arrival strictly after round `after`, or
    /// `None` when the ring is empty — the stretched kernel's
    /// quiet-round fast-forward (`Network::step_fast_into` in the scalar
    /// path). Scans at most one window: every live arrival lies in
    /// `(after, after + ring_size]` once rounds up to `after` are
    /// drained.
    pub fn next_arrival(&self, after: u64) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        let size = self.buckets.len() as u64;
        (after + 1..=after + size).find(|r| !self.buckets[(r % size) as usize].is_empty())
    }

    /// `true` when no arrival is pending — the stretched kernel's
    /// `Network::is_idle` analogue.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of pending arrivals (the scalar path's in-flight transit
    /// occupancy).
    pub fn len(&self) -> usize {
        self.len
    }
}

/// Validates a flood's source list against the documented panic contract,
/// shared by [`crate::multi_source_bfs`] and [`crate::source_detection`].
///
/// # Panics
///
/// Panics if a source id is out of range or repeated.
pub(crate) fn validate_sources(n: usize, sources: &[NodeId]) {
    let mut seen = vec![false; n];
    for &s in sources {
        assert!(s < n, "source {s} out of range for {n} nodes");
        assert!(!seen[s], "source {s} repeated");
        seen[s] = true;
    }
}

/// A node's flood frontier as distance-bucketed u64 bitset words: entry
/// `(d, w, bits)` holds the fresh announcements at distance `d` for source
/// rows `64w .. 64w + 63` (bit `i` ⇔ row `64w + i`). Entries are sorted by
/// `(d, w)` and never empty, so the minimum announcement is the lowest set
/// bit of the first entry — `(d, row)` heap order by construction — and
/// one AND-NOT retires any of a word's 64 rows. Unlike the scalar heap,
/// the frontier is maintained eagerly: improvements and top-σ evictions
/// *move bits* (into a companion *ghost* frontier) instead of leaving
/// stale entries to skip at pop time, which is what makes pops
/// unconditional (always fresh) in the bitset kernel's inner loop.
///
/// The ghost frontier exists purely for schedule fidelity: the scalar
/// heap keeps superseded entries until a pop walks past them, and a
/// node re-enters the pending list while *any* entry remains — stale or
/// not. That re-pend timing feeds the next round's send order, which
/// the event log and ledger histories observe. So the bitset kernel
/// mirrors it: retired bits land in the ghost, [`BitFrontier::drain_below`]
/// replays the pop-until-fresh walk (stale entries below the fresh
/// minimum get consumed), and "outbox or ghost nonempty" is the re-pend
/// test — byte-identical scheduling at bitset speed.
#[derive(Clone, Debug, Default)]
pub(crate) struct BitFrontier {
    /// Sorted, deduplicated by `(dist, word)`; every `bits` is nonzero.
    entries: Vec<(Weight, u32, u64)>,
}

impl BitFrontier {
    /// Marks source row `row` fresh at distance `d` (idempotent).
    pub(crate) fn insert(&mut self, d: Weight, row: u32) {
        let (w, bit) = (row / 64, 1u64 << (row % 64));
        match self.entries.binary_search_by_key(&(d, w), |e| (e.0, e.1)) {
            Ok(i) => self.entries[i].2 |= bit,
            Err(i) => self.entries.insert(i, (d, w, bit)),
        }
    }

    /// Clears row `row` at distance `d` if present (tolerant: the row may
    /// already have been popped and forwarded). Returns whether the bit
    /// was present — the caller moves removed bits into its ghost
    /// frontier, and an already-forwarded row has no scalar heap entry
    /// to ghost.
    pub(crate) fn remove(&mut self, d: Weight, row: u32) -> bool {
        let (w, bit) = (row / 64, 1u64 << (row % 64));
        if let Ok(i) = self.entries.binary_search_by_key(&(d, w), |e| (e.0, e.1)) {
            if self.entries[i].2 & bit != 0 {
                self.entries[i].2 &= !bit;
                if self.entries[i].2 == 0 {
                    self.entries.remove(i);
                }
                return true;
            }
        }
        false
    }

    /// Drops every announcement strictly below `(d, row)` in pop order —
    /// the ghost-frontier replay of the scalar heap's pop-until-fresh
    /// walk, which consumes exactly the stale entries ahead of the fresh
    /// minimum.
    pub(crate) fn drain_below(&mut self, d: Weight, row: u32) {
        let w = row / 64;
        // Whole entries with (dist, word) < (d, w) are entirely below.
        let cut = self.entries.partition_point(|e| (e.0, e.1) < (d, w));
        self.entries.drain(..cut);
        // A surviving (d, w) entry may still hold bits below `row`.
        if let Some(first) = self.entries.first_mut() {
            if (first.0, first.1) == (d, w) {
                first.2 &= !((1u64 << (row % 64)) - 1);
                if first.2 == 0 {
                    self.entries.remove(0);
                }
            }
        }
    }

    /// Drops everything — the scalar heap's "no fresh entry found, heap
    /// fully drained" outcome.
    pub(crate) fn clear(&mut self) {
        self.entries.clear();
    }

    /// Pops the minimum announcement in `(distance, source row)` order.
    pub(crate) fn pop_min(&mut self) -> Option<(Weight, u32)> {
        let &mut (d, w, ref mut bits) = self.entries.first_mut()?;
        let tz = bits.trailing_zeros();
        *bits &= *bits - 1; // clear the lowest set bit
        if *bits == 0 {
            self.entries.remove(0);
        }
        Some((d, w * 64 + tz))
    }

    /// `true` when no fresh announcement is pending.
    pub(crate) fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_frontier_pops_in_dist_then_row_order() {
        let mut f = BitFrontier::default();
        for (d, row) in [(3, 7), (1, 200), (1, 3), (3, 6), (2, 0), (1, 64)] {
            f.insert(d, row);
        }
        let mut got = Vec::new();
        while let Some(p) = f.pop_min() {
            got.push(p);
        }
        assert_eq!(got, vec![(1, 3), (1, 64), (1, 200), (2, 0), (3, 6), (3, 7)]);
        assert!(f.is_empty());
    }

    #[test]
    fn bit_frontier_insert_is_idempotent_and_remove_is_tolerant() {
        let mut f = BitFrontier::default();
        f.insert(5, 10);
        f.insert(5, 10);
        f.remove(5, 11); // absent row in a present word
        f.remove(4, 10); // absent word
        assert_eq!(f.pop_min(), Some((5, 10)));
        assert_eq!(f.pop_min(), None);
    }

    #[test]
    fn bit_frontier_remove_retires_moved_announcements() {
        let mut f = BitFrontier::default();
        f.insert(9, 65);
        f.insert(9, 66);
        // Row 65 improves to 4: the eager move of the bitset kernel.
        f.remove(9, 65);
        f.insert(4, 65);
        assert_eq!(f.pop_min(), Some((4, 65)));
        assert_eq!(f.pop_min(), Some((9, 66)));
        assert!(f.is_empty());
    }

    #[test]
    fn bit_frontier_remove_reports_presence() {
        let mut f = BitFrontier::default();
        f.insert(5, 10);
        assert!(f.remove(5, 10));
        assert!(!f.remove(5, 10), "second removal finds nothing");
        assert!(!f.remove(7, 3), "absent word finds nothing");
        assert!(f.is_empty());
    }

    #[test]
    fn bit_frontier_drain_below_consumes_strictly_smaller() {
        let mut f = BitFrontier::default();
        for (d, row) in [(1, 3), (1, 64), (2, 0), (2, 5), (2, 70), (3, 1)] {
            f.insert(d, row);
        }
        // The scalar pop walk reaching fresh minimum (2, 5): everything
        // strictly below is consumed, (2, 5) itself and above survive.
        f.drain_below(2, 5);
        let mut got = Vec::new();
        while let Some(p) = f.pop_min() {
            got.push(p);
        }
        assert_eq!(got, vec![(2, 5), (2, 70), (3, 1)]);
        // Draining below a word-aligned row keeps bit 0 of that word.
        let mut g = BitFrontier::default();
        g.insert(4, 64);
        g.insert(4, 63);
        g.drain_below(4, 64);
        assert_eq!(g.pop_min(), Some((4, 64)));
        assert_eq!(g.pop_min(), None);
    }

    #[test]
    fn kernel_parse_and_names_round_trip() {
        assert_eq!(FloodKernel::parse("scalar"), Some(FloodKernel::Scalar));
        assert_eq!(FloodKernel::parse(" BitSet "), Some(FloodKernel::Bitset));
        assert_eq!(FloodKernel::parse("simd"), None);
        assert_eq!(
            FloodKernel::parse(FloodKernel::Scalar.name()),
            Some(FloodKernel::Scalar)
        );
        assert_eq!(
            FloodKernel::parse(FloodKernel::Bitset.name()),
            Some(FloodKernel::Bitset)
        );
    }

    #[test]
    #[should_panic(expected = "source 3 repeated")]
    fn validate_sources_rejects_duplicates() {
        validate_sources(5, &[1, 3, 3]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn validate_sources_rejects_out_of_range() {
        validate_sources(5, &[5]);
    }
}
