//! Small shared helpers: seeded sampling and path simplification.

use mwc_graph::NodeId;
use mwc_rng::StdRng;

/// Samples each of `0..n` independently with probability `p`, using a
/// deterministic RNG derived from `seed` and `salt` (different phases of
/// one algorithm pass different salts so their samples are independent).
/// Guarantees a non-empty result by force-including one pseudorandom node
/// when the draw comes out empty.
///
/// Each vertex draws from its own [`mwc_rng`] substream
/// (`fork_u64(salt).fork_u64(v)`), so whether `v` is sampled depends only
/// on `(seed, salt, v)` — never on `n` or on iteration order.
pub fn sample_vertices(n: usize, p: f64, seed: u64, salt: u64) -> Vec<NodeId> {
    let root = StdRng::seed_from_u64(seed).fork_u64(salt);
    let p = p.clamp(0.0, 1.0);
    let mut s: Vec<NodeId> = (0..n)
        .filter(|&v| root.fork_u64(v as u64).random_bool(p))
        .collect();
    if s.is_empty() && n > 0 {
        s.push(root.fork("nonempty-fallback").random_range(0..n));
    }
    s
}

/// Removes loops from a walk, yielding a simple path with the same
/// endpoints. With non-negative weights the result's weight is at most the
/// walk's, so downstream cycle candidates only improve.
pub fn simplify_path(walk: Vec<NodeId>) -> Vec<NodeId> {
    let mut pos: std::collections::HashMap<NodeId, usize> = std::collections::HashMap::new();
    let mut out: Vec<NodeId> = Vec::with_capacity(walk.len());
    for v in walk {
        if let Some(&i) = pos.get(&v) {
            // Cut the loop v … v.
            for dropped in out.drain(i + 1..) {
                pos.remove(&dropped);
            }
        } else {
            pos.insert(v, out.len());
            out.push(v);
        }
    }
    out
}

/// Extracts a simple cycle from a *closed walk* (`walk[0] == walk[last]`):
/// scans with loop-erasure, returning the first loop section of ≥
/// `min_len` distinct vertices. Returns `None` for degenerate walks (e.g.
/// pure back-and-forth) that contain no such cycle.
pub fn extract_cycle_from_walk(walk: &[NodeId], min_len: usize) -> Option<Vec<NodeId>> {
    let mut pos: std::collections::HashMap<NodeId, usize> = std::collections::HashMap::new();
    let mut stack: Vec<NodeId> = Vec::with_capacity(walk.len());
    for &v in walk {
        if let Some(&i) = pos.get(&v) {
            let section_len = stack.len() - i;
            if section_len >= min_len {
                return Some(stack[i..].to_vec());
            }
            // Erase the too-short loop and continue.
            for dropped in stack.drain(i + 1..) {
                pos.remove(&dropped);
            }
        } else {
            pos.insert(v, stack.len());
            stack.push(v);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic_and_nonempty() {
        let a = sample_vertices(100, 0.2, 42, 1);
        let b = sample_vertices(100, 0.2, 42, 1);
        assert_eq!(a, b);
        let c = sample_vertices(100, 0.2, 42, 2);
        assert_ne!(a, c);
        let tiny = sample_vertices(50, 0.0, 7, 0);
        assert_eq!(tiny.len(), 1);
    }

    #[test]
    fn sampling_probability_one_takes_all() {
        assert_eq!(sample_vertices(10, 1.0, 0, 0), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn simplify_removes_loops() {
        assert_eq!(simplify_path(vec![0, 1, 2, 1, 3]), vec![0, 1, 3]);
        assert_eq!(simplify_path(vec![5, 6, 7]), vec![5, 6, 7]);
        assert_eq!(simplify_path(vec![1, 2, 3, 1, 4, 5, 4, 6]), vec![1, 4, 6]);
        assert_eq!(simplify_path(vec![]), Vec::<NodeId>::new());
    }

    #[test]
    fn simplify_keeps_endpoints() {
        let p = simplify_path(vec![9, 2, 3, 2, 9, 4, 8]);
        assert_eq!(p.first(), Some(&9));
        assert_eq!(p.last(), Some(&8));
    }

    #[test]
    fn extract_cycle_finds_triangle() {
        // Closed walk v..x, y ..v with a genuine triangle 1,2,3.
        assert_eq!(
            extract_cycle_from_walk(&[0, 1, 2, 3, 1, 0], 3),
            Some(vec![1, 2, 3])
        );
    }

    #[test]
    fn extract_cycle_rejects_backtrack() {
        // v—y—v back-and-forth: no cycle.
        assert_eq!(extract_cycle_from_walk(&[0, 1, 0], 3), None);
        assert_eq!(extract_cycle_from_walk(&[0, 1, 2, 1, 0], 3), None);
    }

    #[test]
    fn extract_cycle_after_erasing_short_loops() {
        // The 2-loop (5,6,5) is erased, the 4-cycle (0,5,7,8) survives.
        assert_eq!(
            extract_cycle_from_walk(&[0, 5, 6, 5, 7, 8, 0], 3),
            Some(vec![0, 5, 7, 8])
        );
    }

    #[test]
    fn extract_cycle_allows_directed_two_cycles() {
        assert_eq!(extract_cycle_from_walk(&[0, 1, 0], 2), Some(vec![0, 1]));
    }
}
