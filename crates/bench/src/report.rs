//! Shared artifact and CLI plumbing for the experiment binaries.
//!
//! Every `src/bin/*` driver used to hand-roll the same three things:
//! positional-argument parsing, `results/` directory creation, and JSON
//! serialization. This module owns all of them so artifacts are written by
//! exactly one code path — and all JSON goes through
//! [`mwc_trace::json::Json`], the workspace's single deterministic
//! escaper/formatter (byte-identical output across same-seed runs is a CI
//! guarantee for `trace_manifest.json`).

pub use mwc_trace::json::Json;

use mwc_congest::Ledger;
use mwc_trace::{RunRecord, TraceSession};
use std::path::{Path, PathBuf};
use std::str::FromStr;

/// Directory (under `results/`) where fresh run records land.
pub const RUN_RECORD_DIR: &str = "run_records";

/// Positional CLI arguments: everything that does not start with `--`, so
/// flags like `--jobs=4` never shift the positional indices the bins were
/// written against. Index 0 is the binary name.
fn positional(idx: usize) -> Option<String> {
    std::env::args().filter(|a| !a.starts_with("--")).nth(idx)
}

/// The `idx`-th positional CLI argument parsed as `T`, or `default` when
/// absent or unparsable. `idx` is 1-based (0 is the binary name); `--`
/// flags are skipped.
pub fn arg<T: FromStr>(idx: usize, default: T) -> T {
    positional(idx)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// The `idx`-th positional CLI argument as a string, or `default`.
pub fn arg_str(idx: usize, default: &str) -> String {
    positional(idx).unwrap_or_else(|| default.into())
}

/// Resolves the worker count for this bin and installs it process-wide:
/// a `--jobs=N` flag wins over the `MWC_JOBS` environment variable
/// (default 1 — parallelism is opt-in). Returns the effective count.
/// Call once at bin startup, before any `mwc_par::ordered_map`.
///
/// The worker count is deliberately **not** a run-record parameter:
/// `ordered_map` + trace grafting make records independent of it (pinned
/// by the determinism-under-parallelism test), so records from different
/// `--jobs` settings stay comparable.
pub fn init_jobs() -> usize {
    if let Some(flag) = std::env::args().find(|a| a.starts_with("--jobs=")) {
        if let Ok(n) = flag["--jobs=".len()..].trim().parse::<usize>() {
            mwc_par::set_jobs(n);
        }
    }
    mwc_par::jobs()
}

/// Resolves the engine shard count for this bin and installs it
/// process-wide: a `--shards=N` flag wins over the `MWC_SHARDS`
/// environment variable (default 1 — intra-simulation parallelism is
/// opt-in, like `--jobs`). Returns the effective count. Call once at bin
/// startup, before any network is built.
///
/// Unlike the worker count, the shard count **is** stamped on run records
/// (the informational `shards` field) so sweeps are attributable — but it
/// is never diffed: the sharded engine grafts per-shard work back in
/// deterministic order, so every gated metric is byte-identical for any
/// shard count (pinned by the shard differential suite).
pub fn init_shards() -> usize {
    if let Some(flag) = std::env::args().find(|a| a.starts_with("--shards=")) {
        if let Ok(n) = flag["--shards=".len()..].trim().parse::<usize>() {
            mwc_par::set_shards(n);
        }
    }
    mwc_par::shards()
}

/// Resolves the flood kernel for this bin and installs it process-wide:
/// a `--flood-kernel=NAME` flag (`scalar` or `bitset`) wins over the
/// `MWC_FLOOD_KERNEL` environment variable (default `bitset`). The
/// bitset kernel covers unit-latency floods *and* latency-stretched ones
/// (the calendar-queue variant, engaged whenever the plan's maximum
/// stretch fits under `MWC_FLOOD_RING_MAX`); `scalar` forces the
/// reference loop everywhere. Returns the effective kernel. Call once at
/// bin startup, alongside [`init_jobs`]/[`init_shards`].
///
/// An unrecognized flag or environment value keeps the default (the
/// lenient env-knob convention) but is reported to stderr naming the
/// valid spellings, so a typo cannot silently run the wrong kernel.
///
/// Like the shard count, the kernel name **is** stamped on run records
/// (the informational `flood_kernel` field, plus the per-run
/// `floods_bitset`/`floods_scalar` engagement tallies) so sweeps are
/// attributable — but it is never diffed: both kernels charge
/// model-faithful rounds through the same ledger path, so every gated
/// metric is byte-identical for either kernel (pinned by the
/// flood-kernel differential suite).
pub fn init_flood_kernel() -> mwc_congest::FloodKernel {
    let complain = |source: &str, raw: &str| {
        eprintln!(
            "[warn] unrecognized {source} value {raw:?}: valid flood kernels are `scalar` \
             (reference loop) and `bitset` (default; covers unit-latency and latency-stretched \
             floods up to MWC_FLOOD_RING_MAX stretch); keeping `{}`",
            mwc_congest::flood_kernel().name()
        );
    };
    if let Some(flag) = std::env::args().find(|a| a.starts_with("--flood-kernel=")) {
        let raw = flag["--flood-kernel=".len()..].trim().to_owned();
        match mwc_congest::FloodKernel::parse(&raw) {
            Some(k) => mwc_congest::set_flood_kernel(k),
            None => complain("--flood-kernel", &raw),
        }
    } else if let Ok(raw) = std::env::var("MWC_FLOOD_KERNEL") {
        if mwc_congest::FloodKernel::parse(&raw).is_none() {
            complain("MWC_FLOOD_KERNEL", raw.trim());
        }
    }
    mwc_congest::flood_kernel()
}

/// Enables wall-clock and allocation profiling on the calling thread and
/// zeroes the process-wide peak-allocation high-water mark, so the run's
/// spans accumulate wall-nanoseconds and (when the bin installed
/// [`mwc_trace::profile::CountingAlloc`] as its `#[global_allocator]`)
/// allocator traffic. Bench bins call this once at startup, right after
/// [`init_jobs`]/[`init_shards`].
///
/// [`RunRecorder::start`] deliberately does **not** call this: profiling
/// stamps nanosecond wall-clock into span nodes, which would break
/// callers (e.g. the perf-gate harness) that assert two recorder-built
/// records render byte-identically.
pub fn init_profiling() {
    mwc_trace::profile::set_thread_profiling(true);
    mwc_trace::profile::reset_peak_alloc();
}

/// Writes `contents` to `results/<relpath>`, creating directories as
/// needed, and logs the destination to stderr.
///
/// # Panics
///
/// Panics on I/O errors — these binaries are experiment drivers and a
/// missing artifact must not pass silently.
pub fn save_artifact(relpath: &str, contents: &str) -> PathBuf {
    write_under(Path::new("results"), relpath, contents)
}

fn write_under(root: &Path, relpath: &str, contents: &str) -> PathBuf {
    let path = root.join(relpath);
    let dir = path.parent().expect("artifact path has a parent");
    std::fs::create_dir_all(dir).expect("create results dir");
    std::fs::write(&path, contents).expect("write artifact");
    eprintln!("[saved {}]", path.display());
    path
}

/// Pretty-renders `value` and writes it to `results/<relpath>`.
///
/// # Panics
///
/// Panics on I/O errors, like [`save_artifact`].
pub fn save_json(relpath: &str, value: &Json) -> PathBuf {
    save_artifact(relpath, &value.render_pretty())
}

/// Records one benchmark binary's run as a canonical
/// [`RunRecord`](mwc_trace::RunRecord) under `results/run_records/`.
///
/// Wraps an in-memory [`TraceSession`] so every span the algorithms open
/// during the run is captured, collects [`Ledger`] congestion summaries
/// the driver registers along the way, and on [`RunRecorder::finish`]
/// writes the schema-versioned, byte-deterministic JSON that `trace_diff`
/// compares against the committed baseline of the same name.
///
/// ```no_run
/// use mwc_bench::report::RunRecorder;
/// let mut rec = RunRecorder::start("table1_girth");
/// rec.param("max_n", 4096);
/// // ... run the sweep, rec.congestion("n=128 exact", &ledger), ...
/// rec.finish();
/// ```
pub struct RunRecorder {
    name: String,
    params: Vec<(String, String)>,
    session: TraceSession,
    congestion: Vec<mwc_trace::CongestionSummary>,
    started: std::time::Instant,
    floods_at_start: (u64, u64),
}

impl RunRecorder {
    /// Starts recording: opens an in-memory trace session and the
    /// wall-clock stopwatch, zeroes the process-wide `mwc-par` worker
    /// counters so the record's `workers` tally covers exactly this run,
    /// and snapshots the process-cumulative flood-engagement tallies so
    /// the record's `floods_bitset`/`floods_scalar` deltas do too.
    /// `name` is by convention the binary name — the baseline pairing key.
    pub fn start(name: &str) -> RunRecorder {
        mwc_par::reset_worker_counters();
        RunRecorder {
            name: name.to_owned(),
            params: Vec::new(),
            session: TraceSession::memory(),
            congestion: Vec::new(),
            started: std::time::Instant::now(),
            floods_at_start: mwc_congest::flood_engagement(),
        }
    }

    /// Registers a run parameter (size, seed, ε…). Records are only
    /// comparable when names and parameters match, so everything that
    /// shapes the workload belongs here.
    pub fn param(&mut self, key: &str, value: impl std::fmt::Display) {
        self.params.push((key.to_owned(), value.to_string()));
    }

    /// Attaches a ledger's congestion summary under `label` (hot links,
    /// peak round, queue high-water). Order is preserved and diffed.
    pub fn congestion(&mut self, label: &str, ledger: &Ledger) {
        self.congestion.push(ledger.congestion_summary(label));
    }

    /// Builds the [`RunRecord`] without writing it (used by tests and by
    /// [`RunRecorder::finish`]). Stamps `wall_ms` with the elapsed host
    /// wall-clock since [`RunRecorder::start`] — the one intentionally
    /// non-deterministic field (informational only; `trace_diff` never
    /// compares it, and determinism tests zero it before comparing) —
    /// and `shards`/`jobs`/`workers`/`peak_alloc_bytes` plus the
    /// `floods_bitset`/`floods_scalar` engagement deltas (also
    /// informational: parallelism knobs, pool counters, the allocator
    /// high-water mark, and kernel-engagement tallies never change a
    /// gated metric).
    pub fn into_record(self) -> RunRecord {
        self.into_record_with_trace().0
    }

    /// [`RunRecorder::into_record`] but also returning the finished
    /// [`mwc_trace::TraceData`], so callers can render derived artifacts
    /// (the Chrome trace export) from the same session that produced the
    /// record.
    pub fn into_record_with_trace(self) -> (RunRecord, mwc_trace::TraceData) {
        let data = self.session.finish();
        let mut record = RunRecord::from_trace(&self.name, self.params, &data);
        for c in self.congestion {
            record.push_congestion(c);
        }
        record.wall_ms = self.started.elapsed().as_millis() as u64;
        record.shards = mwc_par::shards() as u64;
        record.jobs = mwc_par::jobs() as u64;
        record.flood_kernel = mwc_congest::flood_kernel().name().to_owned();
        let (bitset, scalar) = mwc_congest::flood_engagement();
        record.floods_bitset = bitset.saturating_sub(self.floods_at_start.0);
        record.floods_scalar = scalar.saturating_sub(self.floods_at_start.1);
        record.peak_alloc_bytes = mwc_trace::profile::peak_alloc_bytes();
        let w = mwc_par::worker_counters();
        record.workers = mwc_trace::WorkerTally {
            tasks_executed: w.tasks_executed,
            items_grafted: w.items_grafted,
            idle_joins: w.idle_joins,
            busy_ms: w.busy_ns / 1_000_000,
        };
        (record, data)
    }

    /// Finishes the trace and writes
    /// `results/run_records/<name>.json` plus the OpenMetrics exposition
    /// of the same record as `results/metrics.prom` (validated before it
    /// lands — an unparsable exposition is a bug, not an artifact). When
    /// the `MWC_TRACE_EXPORT` environment variable is set (non-empty,
    /// not `0`), also writes the run's Chrome Trace Event Format export
    /// to `results/trace.perfetto.json` via [`save_chrome_trace`].
    ///
    /// # Panics
    ///
    /// Panics on I/O errors, like [`save_artifact`], or when the rendered
    /// exposition fails [`mwc_trace::validate_openmetrics`].
    pub fn finish(self) -> PathBuf {
        let relpath = format!("{RUN_RECORD_DIR}/{}.json", self.name);
        let name = self.name.clone();
        let (record, data) = self.into_record_with_trace();
        save_metrics_exposition(&record);
        if trace_export_requested() {
            save_chrome_trace(&data, &name);
        }
        save_artifact(&relpath, &record.render())
    }
}

/// Whether `MWC_TRACE_EXPORT` asks for a Chrome trace export (set to
/// anything non-empty except `0`).
pub fn trace_export_requested() -> bool {
    std::env::var("MWC_TRACE_EXPORT").is_ok_and(|v| !v.trim().is_empty() && v.trim() != "0")
}

/// Renders `data` as Chrome Trace Event Format JSON and writes it to
/// `results/trace.perfetto.json` — load it in Perfetto (ui.perfetto.dev)
/// or `chrome://tracing`. The export is validated structurally before it
/// lands, like the OpenMetrics exposition.
///
/// # Panics
///
/// Panics on I/O errors, like [`save_artifact`], or when the rendered
/// trace fails [`mwc_trace::validate_chrome_trace`].
pub fn save_chrome_trace(data: &mwc_trace::TraceData, label: &str) -> PathBuf {
    let trace = mwc_trace::chrome_trace(data, label);
    mwc_trace::validate_chrome_trace(&trace.render_pretty()).expect("chrome trace validates");
    save_json("trace.perfetto.json", &trace)
}

/// Renders `record` as an OpenMetrics exposition and writes it to
/// `results/metrics.prom`, validating it first (an unparsable exposition
/// is a bug, not an artifact). Shared by [`RunRecorder::finish`] and the
/// bins that build their [`RunRecord`] directly.
///
/// # Panics
///
/// Panics on I/O errors, like [`save_artifact`], or when the rendered
/// exposition fails [`mwc_trace::validate_openmetrics`].
pub fn save_metrics_exposition(record: &RunRecord) -> PathBuf {
    let mut registry = mwc_trace::MetricsRegistry::new();
    registry.add(record);
    let exposition = registry.render();
    mwc_trace::validate_openmetrics(&exposition).expect("exposition validates");
    save_artifact("metrics.prom", &exposition)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arg_falls_back_to_default() {
        // Test binaries receive no positional args at high indices.
        assert_eq!(arg::<usize>(91, 17), 17);
        assert_eq!(arg_str(91, "fallback"), "fallback");
    }

    #[test]
    fn run_recorder_builds_deterministic_records() {
        let build = || {
            let mut rec = RunRecorder::start("probe");
            rec.param("n", 3);
            {
                let _s = mwc_trace::span("phase");
                mwc_trace::add_cost(4, 9, 2);
            }
            let g =
                mwc_graph::Graph::from_edges(2, mwc_graph::Orientation::Undirected, [(0, 1, 1)])
                    .unwrap();
            let mut net: mwc_congest::Network<u8> = mwc_congest::Network::new(&g);
            net.send(0, 1, 1, 1).unwrap();
            net.step();
            let mut ledger = Ledger::new();
            ledger.absorb("hop", &net);
            rec.congestion("hop", &ledger);
            let mut record = rec.into_record();
            // wall_ms and the worker tally are the intentionally
            // machine-dependent fields (the counters are process-global,
            // so concurrent tests can bump them mid-build).
            assert!(record.render().contains("\"wall_ms\""));
            record.wall_ms = 0;
            record.workers = Default::default();
            record
        };
        let (a, b) = (build(), build());
        assert_eq!(a, b);
        assert_eq!(a.render(), b.render());
        assert_eq!(a.rounds, 4);
        assert_eq!(a.spans[0].path, "phase");
        assert_eq!(a.congestion[0].label, "hop");
        assert_eq!(a.congestion[0].hot_links, vec![(0, 1, 1)]);
    }

    #[test]
    fn write_under_creates_nested_dirs() {
        let dir = std::env::temp_dir().join("mwc-bench-report-test");
        let value = Json::obj([("ok", Json::Bool(true))]);
        let path = write_under(&dir, "sub/probe.json", &value.render_pretty());
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "{\n  \"ok\": true\n}\n");
    }
}
