//! Property-based tests of the lower-bound families: the separation and
//! decidability invariants must hold for *every* instance, not just the
//! seeds the unit tests happen to pick.
//!
//! Runs on `mwc_rng::proptest_lite`; new failures persist their case
//! seed under `proplite-regressions/`.

use mwc_graph::seq;
use mwc_graph::Orientation;
use mwc_lowerbounds::{
    directed_gadget, sarma_unweighted_girth, sarma_weighted, undirected_weighted_gadget,
    Disjointness, SarmaParams,
};
use mwc_rng::proptest_lite::{any_bool, Config};
use mwc_rng::{prop_assert, prop_assert_eq, prop_tests};

fn arbitrary_instance(k: usize, seed: u64, intersecting: bool) -> Disjointness {
    if intersecting {
        Disjointness::random_intersecting(k, 0.35, seed)
    } else {
        Disjointness::random_disjoint(k, 0.35, seed)
    }
}

prop_tests! {
    config = Config::with_cases(40);

    fn directed_gadget_always_separates(q in 3usize..10, seed in 0u64..10_000, yes in any_bool()) {
        let inst = arbitrary_instance(q * q, seed, yes);
        let lb = directed_gadget(q, &inst);
        prop_assert!(lb.graph.is_comm_connected());
        prop_assert!(lb.graph.undirected_diameter().unwrap() <= 6);
        let mwc = seq::mwc_directed_exact(&lb.graph).map(|m| m.weight);
        match mwc {
            Some(w) if yes => prop_assert!(w == 4, "yes ⇒ MWC 4, got {w}"),
            Some(w) => prop_assert!(w >= 8, "no ⇒ MWC ≥ 8, got {w}"),
            None => prop_assert!(!yes, "yes-instances always have the 4-cycle"),
        }
        prop_assert_eq!(lb.decide(mwc), inst.intersects());
        // Even the worst legal (2−ε)-approximation decides: any value in
        // [mwc, (2−ε)·mwc) stays on the right side of the threshold.
        if let Some(w) = mwc {
            let worst = (w as f64 * 1.99).floor() as u64;
            if yes {
                prop_assert!(lb.decide(Some(worst)));
            }
        }
    }

    fn undirected_gadget_gap_holds(q in 3usize..9, seed in 0u64..10_000, yes in any_bool(),
                                   eps_i in 1usize..4) {
        let eps = eps_i as f64 / 4.0; // 0.25, 0.5, 0.75
        let inst = arbitrary_instance(q * q, seed, yes);
        let lb = undirected_weighted_gadget(q, eps, &inst);
        prop_assert!(lb.graph.is_comm_connected());
        let mwc = seq::mwc_undirected_exact(&lb.graph).map(|m| m.weight);
        if yes {
            let w = mwc.expect("yes ⇒ 4-cycle");
            prop_assert!(w <= lb.yes_threshold, "{w} > {}", lb.yes_threshold);
        } else if let Some(w) = mwc {
            prop_assert!(w >= lb.no_threshold, "{w} < {}", lb.no_threshold);
            prop_assert!(
                w as f64 >= (2.0 - eps) * lb.yes_threshold as f64,
                "gap below 2−ε"
            );
        }
        prop_assert_eq!(lb.decide(mwc), inst.intersects());
    }

    fn sarma_families_always_separate(gamma in 3usize..9, ell in 3usize..8,
                                      seed in 0u64..10_000, yes in any_bool(),
                                      alpha_i in 2usize..6) {
        let alpha = alpha_i as f64;
        let p = SarmaParams { gamma, ell, alpha };
        let inst = arbitrary_instance(gamma, seed, yes);

        for orientation in [Orientation::Directed, Orientation::Undirected] {
            let lb = sarma_weighted(p, orientation, &inst);
            prop_assert!(lb.graph.is_comm_connected());
            let mwc = match orientation {
                Orientation::Directed => seq::mwc_directed_exact(&lb.graph),
                Orientation::Undirected => seq::mwc_undirected_exact(&lb.graph),
            }
            .map(|m| m.weight);
            if yes {
                let w = mwc.expect("yes ⇒ light cycle");
                prop_assert!(w <= lb.yes_threshold);
                // An α-approximation still lands under the no-threshold.
                let approx = (w as f64 * alpha).floor() as u64;
                prop_assert!(approx < lb.no_threshold || w * 2 <= lb.yes_threshold,
                    "α-approx would misclassify: {approx} ≥ {}", lb.no_threshold);
            } else if let Some(w) = mwc {
                prop_assert!(w >= lb.no_threshold, "{w} < {}", lb.no_threshold);
            }
            prop_assert_eq!(lb.decide(mwc), inst.intersects(), "{:?}", orientation);
        }

        let lb = sarma_unweighted_girth(p, &inst);
        prop_assert!(lb.graph.is_comm_connected());
        let girth = seq::girth_exact(&lb.graph).map(|m| m.weight);
        prop_assert_eq!(lb.decide(girth), inst.intersects(), "girth family");
    }

    fn round_floor_is_monotone_in_bits(q in 4usize..20) {
        let inst = Disjointness::random_disjoint(q * q, 0.3, 1);
        let lb = directed_gadget(q, &inst);
        let inst2 = Disjointness::random_disjoint(4 * q * q, 0.3, 1);
        let lb2 = directed_gadget(2 * q, &inst2);
        // 4× the bits at 2× the cut: floor must strictly grow once
        // nontrivial.
        prop_assert!(lb2.round_floor(9) >= lb.round_floor(9));
        prop_assert_eq!(lb.cut_edges(), 2 * q);
        prop_assert_eq!(lb2.cut_edges(), 4 * q);
    }
}
