//! Pipelined multi-source BFS and source detection, after Lenzen,
//! Patt-Shamir & Peleg \[37\] (the paper's reference for `O(h + k)`-round
//! `k`-source `h`-hop BFS and `(S, h, σ)` source detection).
//!
//! Both primitives use the classic pipelining schedule: every node keeps a
//! priority queue of announcements `(distance, source)` and, each round,
//! forwards the smallest fresh one over all of its traversal-direction
//! links. With unit latencies this completes `k`-source `h`-hop BFS in
//! `O(h + k)` rounds; the tests assert that envelope empirically.
//!
//! Announcements can also travel with **per-edge latencies** (the scaled /
//! stretched graphs of paper §4–5): an edge of stretch `ℓ` delays delivery
//! by `ℓ` rounds and adds `ℓ` to the announced distance, which is exactly a
//! BFS on the stretched graph where each weighted edge becomes a path of
//! `ℓ` unit edges simulated at its endpoint.
//!
//! Each primitive has two interchangeable inner loops selected by
//! [`crate::flood::flood_kernel`]: the engine-stepped **scalar** reference
//! and the bit-parallel **bitset** kernel (u64 frontier words, direct
//! delivery, rounds charged via `Network::charge_flood_round`). The bitset
//! kernel applies to unit-latency floods only and is byte-identical to the
//! scalar one in every ledger count, event, and output — see the
//! [`crate::flood`] module docs for the equivalence argument.

use crate::distmat::{DistMatrix, INF};
use crate::engine::{Network, RoundOutput};
use crate::flood::{flood_kernel, validate_sources, BitFrontier, FloodKernel, FloodPlan};
use crate::ledger::Ledger;
use mwc_graph::seq::Direction;
use mwc_graph::{Graph, NodeId, Weight};
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, HashMap};

/// Parameters of a multi-source search.
#[derive(Clone, Copy, Debug)]
pub struct MultiBfsSpec<'a> {
    /// Distance budget: announcements above this are not forwarded. For
    /// unit latencies this is the *hop* budget `h`; with latencies it is a
    /// stretched-distance budget. Use [`INF`] for an unbounded search.
    pub max_dist: Weight,
    /// Traversal direction over the (possibly directed) graph edges.
    pub direction: Direction,
    /// Per-[`EdgeId`](mwc_graph::EdgeId) stretch `ℓ(e) ≥ 1`; `None` means
    /// all-unit (plain BFS).
    pub latency: Option<&'a [Weight]>,
}

impl Default for MultiBfsSpec<'_> {
    fn default() -> Self {
        MultiBfsSpec {
            max_dist: INF,
            direction: Direction::Forward,
            latency: None,
        }
    }
}

/// A BFS announcement: `(source row, distance at the receiver)`.
type Announce = (u32, Weight);

/// Adds an edge's announced weight to a distance, panicking when the sum
/// saturates into the [`INF`] sentinel: a genuine huge distance aliasing
/// to "unreachable" would silently flip the reachable-vs-unreachable
/// distinction for every `DistMatrix` / detection consumer, so it is a
/// contract violation rather than a value. (Real distances are bounded by
/// `n · max latency`, so this fires only on pathological latency tables.)
fn add_dist(d: Weight, add: Weight) -> Weight {
    match d.checked_add(add) {
        Some(c) if c < INF => c,
        _ => panic!("flood distance {d} + {add} saturates into the INF sentinel"),
    }
}

/// Runs a pipelined `h`-bounded search from `sources` and returns the
/// distance table. Costs `O(max_dist + k)` rounds for unit latencies,
/// charged to `ledger` under `label`.
///
/// # Panics
///
/// Panics if a source id is out of range or repeated, if `spec.latency`
/// is provided with fewer entries than the graph has edges, or if an
/// announced distance would saturate into the [`INF`] sentinel.
pub fn multi_source_bfs(
    g: &Graph,
    sources: &[NodeId],
    spec: &MultiBfsSpec<'_>,
    label: &str,
    ledger: &mut Ledger,
) -> DistMatrix {
    if let Some(l) = spec.latency {
        assert!(l.len() >= g.m(), "latency table must cover all edges");
    }
    validate_sources(g.n(), sources);
    let _span = mwc_trace::span_owned(|| format!("multibfs/{label}"));
    let n = g.n();
    let mut mat = DistMatrix::new(n, sources.to_vec());
    let mut net: Network<Announce> = Network::new_auto(g);
    let plan = FloodPlan::build(g, &net, spec.direction, spec.latency);

    if plan.unit_latency() && flood_kernel() == FloodKernel::Bitset {
        bfs_kernel_bitset(sources, spec.max_dist, &plan, &mut net, &mut mat);
    } else {
        bfs_kernel_scalar(n, sources, spec.max_dist, &plan, &mut net, &mut mat);
    }

    ledger.absorb(label, &net);
    mwc_trace::check_bound(
        "congest/multibfs",
        mwc_trace::BoundInputs::n(n)
            .h(crate::bounds::effective_hops(
                n,
                spec.max_dist,
                spec.latency,
                g.m(),
            ))
            .k(sources.len() as u64),
        net.round(),
        crate::bounds::multibfs,
    );
    mat
}

/// The engine-stepped scalar BFS loop: heap outboxes with lazy
/// stale-skipping, every announcement moved through the [`Network`]'s
/// per-link queues (and, for stretched edges, its transit heap). The
/// reference semantics; the only kernel that handles latencies.
fn bfs_kernel_scalar(
    n: usize,
    sources: &[NodeId],
    max_dist: Weight,
    plan: &FloodPlan,
    net: &mut Network<Announce>,
    mat: &mut DistMatrix,
) {
    // outbox[v]: fresh announcements not yet forwarded, smallest first.
    let mut outbox: Vec<BinaryHeap<Reverse<Announce2>>> =
        (0..n).map(|_| BinaryHeap::new()).collect();
    let mut pending: Vec<NodeId> = Vec::new();
    let mut pending_flag = vec![false; n];

    for (row, &s) in sources.iter().enumerate() {
        mat.set_row(row, s, 0, None);
        outbox[s].push(Reverse((0, row as u32)));
        if !pending_flag[s] {
            pending_flag[s] = true;
            pending.push(s);
        }
    }

    let mut out = RoundOutput::default();
    loop {
        // Node actions for this round: each pending node forwards its
        // smallest fresh announcement over every traversal link.
        let acting = std::mem::take(&mut pending);
        let mut any_sent = false;
        for v in acting {
            pending_flag[v] = false;
            // Pop entries until one is fresh (stale = improved since push).
            let fresh = loop {
                match outbox[v].pop() {
                    Some(Reverse((d, row))) => {
                        if mat.get_row(row as usize, v) == d {
                            break Some((d, row));
                        }
                    }
                    None => break None,
                }
            };
            let Some((d, row)) = fresh else { continue };
            for hop in plan.of(v) {
                let cand = add_dist(d, hop.dist_add);
                if cand > max_dist {
                    continue;
                }
                // Receiver-side pruning happens on delivery; sender-side we
                // also skip if the receiver is already known (to the
                // sender) to be closer — we cannot know that locally, so
                // no such check: CONGEST nodes only know their own state.
                any_sent = true;
                net.send_on_link(hop.link as usize, (row, cand), 1, hop.latency);
            }
            if !outbox[v].is_empty() && !pending_flag[v] {
                pending_flag[v] = true;
                pending.push(v);
            }
        }

        if !any_sent {
            if !pending.is_empty() {
                // Entirely-filtered pops: keep draining outboxes locally
                // without charging rounds (nothing was transmitted).
                continue;
            }
            if net.is_idle() {
                break;
            }
        }
        let stepped = if any_sent {
            net.step_into(&mut out);
            true
        } else {
            net.step_fast_into(&mut out)
        };
        if !stepped {
            break;
        }
        for d in out.deliveries.drain(..) {
            let (row, cand) = d.payload;
            let v = d.to;
            if cand < mat.get_row(row as usize, v) {
                mat.set_row(row as usize, v, cand, Some(d.from));
                outbox[v].push(Reverse((cand, row)));
                if !pending_flag[v] {
                    pending_flag[v] = true;
                    pending.push(v);
                }
            }
        }
    }
}

/// The bit-parallel BFS loop for unit-latency floods: per-node
/// [`BitFrontier`] outboxes (64 source rows per word, maintained eagerly
/// so every pop is fresh), deliveries applied directly in send order, and
/// each round's traffic charged in one [`Network::charge_flood_round`]
/// pass. Executes the exact scalar schedule — same pops, same sends, same
/// delivery order, same predecessor tie-breaks — without the per-message
/// queue machinery.
///
/// Superseded announcements move into a per-node *ghost* frontier rather
/// than vanishing: the scalar heap keeps stale entries until a pop walks
/// past them, and "heap nonempty" is its re-pend test — so ghost
/// occupancy must feed the bitset re-pend test too, or nodes would enter
/// the pending list at different positions and the send order (observed
/// by the event log) would drift.
fn bfs_kernel_bitset(
    sources: &[NodeId],
    max_dist: Weight,
    plan: &FloodPlan,
    net: &mut Network<Announce>,
    mat: &mut DistMatrix,
) {
    let mut outbox: Vec<BitFrontier> = vec![BitFrontier::default(); mat.n()];
    let mut ghost: Vec<BitFrontier> = vec![BitFrontier::default(); mat.n()];
    let mut pending: Vec<NodeId> = Vec::new();
    let mut pending_flag = vec![false; mat.n()];

    for (row, &s) in sources.iter().enumerate() {
        mat.set_row(row, s, 0, None);
        outbox[s].insert(0, row as u32);
        if !pending_flag[s] {
            pending_flag[s] = true;
            pending.push(s);
        }
    }

    // This round's traffic: the links charged and the deliveries they
    // carry as `(to, row, dist, from)`, both in send order.
    let mut links: Vec<u32> = Vec::new();
    let mut deliv: Vec<(u32, u32, Weight, u32)> = Vec::new();
    loop {
        let acting = std::mem::take(&mut pending);
        links.clear();
        deliv.clear();
        for v in acting {
            pending_flag[v] = false;
            // Eager maintenance means no stale entries: the first pop is
            // the smallest fresh announcement. The scalar pop walk would
            // have consumed the stale (ghost) entries ahead of it — or
            // the whole heap when nothing fresh remains.
            let Some((d, row)) = outbox[v].pop_min() else {
                ghost[v].clear();
                continue;
            };
            ghost[v].drain_below(d, row);
            for hop in plan.of(v) {
                let cand = add_dist(d, hop.dist_add);
                if cand > max_dist {
                    continue;
                }
                links.push(hop.link);
                deliv.push((hop.to, row, cand, v as u32));
            }
            if (!outbox[v].is_empty() || !ghost[v].is_empty()) && !pending_flag[v] {
                pending_flag[v] = true;
                pending.push(v);
            }
        }

        if links.is_empty() {
            if !pending.is_empty() {
                // Entirely-filtered pops: no traffic, no round charged.
                continue;
            }
            break;
        }
        net.charge_flood_round(&links);
        for &(to, row, cand, from) in &deliv {
            let v = to as usize;
            let old = mat.get_row(row as usize, v);
            if cand < old {
                if old != INF && outbox[v].remove(old, row) {
                    // The eager move: the superseded announcement becomes
                    // a ghost (the scalar heap would keep it as a stale
                    // entry). Already-forwarded rows have no bit to move.
                    ghost[v].insert(old, row);
                }
                mat.set_row(row as usize, v, cand, Some(from as usize));
                outbox[v].insert(cand, row);
                if !pending_flag[v] {
                    pending_flag[v] = true;
                    pending.push(v);
                }
            }
        }
    }
}

/// `(dist, src)` ordering helper — distance first, then source row for a
/// deterministic tiebreak.
type Announce2 = (Weight, u32);

/// Result of [`source_detection`]: for each node, its detected sources as
/// `(distance, source)` pairs sorted lexicographically — the `σ` closest
/// sources within distance `h`, ties broken by source id.
pub type DetectionLists = Vec<Vec<(Weight, NodeId)>>;

/// Output of [`source_detection`]: the per-node top-`σ` lists plus
/// predecessor bookkeeping for witness-path reconstruction.
#[derive(Clone, Debug)]
pub struct Detection {
    /// Per node, the detected `(distance, source)` pairs (≤ `σ`, sorted).
    pub lists: DetectionLists,
    /// Per node, every source ever admitted with its best `(dist, pred)`
    /// (the neighbor the announcement arrived from).
    best: Vec<HashMap<NodeId, (Weight, NodeId)>>,
}

impl Detection {
    /// Best-known distance from `src` to `node`, if any announcement for
    /// `src` ever reached `node` (superset of the truncated lists).
    pub fn dist(&self, node: NodeId, src: NodeId) -> Option<Weight> {
        self.best[node].get(&src).map(|&(d, _)| d)
    }

    /// The discovered path `node → … → src` following predecessor
    /// pointers (real graph edges). `None` if `src` never reached `node`.
    pub fn path_to_source(&self, node: NodeId, src: NodeId) -> Option<Vec<NodeId>> {
        let mut path = vec![node];
        let mut cur = node;
        while cur != src {
            let &(_, pred) = self.best[cur].get(&src)?;
            cur = pred;
            path.push(cur);
            if path.len() > self.best.len() {
                return None;
            }
        }
        Some(path)
    }
}

/// Per-node detection state shared by both kernels: current best
/// `(distance, pred)` per source row and the top-`σ` set the truncation
/// discipline maintains.
struct DetectState {
    best: Vec<HashMap<u32, (Weight, NodeId)>>,
    top: Vec<BTreeSet<(Weight, u32)>>,
    sigma: usize,
}

impl DetectState {
    fn new(n: usize, sigma: usize) -> DetectState {
        DetectState {
            best: (0..n).map(|_| HashMap::new()).collect(),
            top: (0..n).map(|_| BTreeSet::new()).collect(),
            sigma,
        }
    }

    /// Offers `(d, src_row)` arriving at `v` from `pred`. Updates the
    /// best/top structures and returns whether the entry survived
    /// truncation (= should be forwarded). `retire` is called for every
    /// announcement this displaces — the superseded distance on an
    /// improvement, and each truncation eviction — which is how the
    /// bitset kernel keeps its frontier eagerly fresh (the scalar kernel
    /// passes a no-op and skips stale heap entries lazily at pop time).
    fn admit(
        &mut self,
        v: NodeId,
        src_row: u32,
        d: Weight,
        pred: NodeId,
        mut retire: impl FnMut(Weight, u32),
    ) -> bool {
        match self.best[v].get(&src_row) {
            Some(&(old, _)) if old <= d => return false,
            Some(&(old, _)) => {
                self.top[v].remove(&(old, src_row));
                retire(old, src_row);
            }
            None => {}
        }
        self.best[v].insert(src_row, (d, pred));
        self.top[v].insert((d, src_row));
        while self.top[v].len() > self.sigma {
            let worst = *self.top[v].iter().next_back().expect("nonempty");
            self.top[v].remove(&worst);
            retire(worst.0, worst.1);
        }
        // Forward only if the entry survived truncation.
        self.top[v].contains(&(d, src_row))
    }
}

/// `(S, h, σ)` source detection \[37\]: every node learns the `σ`
/// lexicographically-smallest `(distance, source)` pairs among sources
/// within distance `h`. Costs `O(h + σ)` rounds for unit latencies.
///
/// Nodes only store and forward their current top-`σ` lists, so the
/// per-node memory and traffic stay proportional to `σ` — this is what
/// makes the girth algorithm's `√n`-neighborhood computation affordable
/// (paper §4). With `latency` set, distances are measured in the
/// stretched metric (paper §4's stretched graphs).
///
/// # Panics
///
/// Panics if a source id is out of range or repeated, if `latency` is
/// provided with fewer entries than the graph has edges, or if an
/// announced distance would saturate into the [`INF`] sentinel.
#[allow(clippy::too_many_arguments)] // mirrors the primitive's full (S, h, σ) signature
pub fn source_detection(
    g: &Graph,
    sources: &[NodeId],
    h: Weight,
    sigma: usize,
    direction: Direction,
    latency: Option<&[Weight]>,
    label: &str,
    ledger: &mut Ledger,
) -> Detection {
    if let Some(l) = latency {
        assert!(l.len() >= g.m(), "latency table must cover all edges");
    }
    validate_sources(g.n(), sources);
    let _span = mwc_trace::span_owned(|| format!("detect/{label}"));
    let n = g.n();
    let mut net: Network<(u32, Weight)> = Network::new_auto(g);
    let plan = FloodPlan::build(g, &net, direction, latency);

    // Sort sources so "source row" order matches id order (consistent
    // tie-breaking is what makes truncated detection exact).
    let mut srcs: Vec<NodeId> = sources.to_vec();
    srcs.sort_unstable();

    let mut state = DetectState::new(n, sigma);
    if plan.unit_latency() && flood_kernel() == FloodKernel::Bitset {
        detect_kernel_bitset(&srcs, h, &plan, &mut net, &mut state);
    } else {
        detect_kernel_scalar(n, &srcs, h, &plan, &mut net, &mut state);
    }
    ledger.absorb(label, &net);
    mwc_trace::check_bound(
        "congest/source_detection",
        mwc_trace::BoundInputs::n(n)
            .h(crate::bounds::effective_hops(n, h, latency, g.m()))
            .k(sigma.min(srcs.len()) as u64),
        net.round(),
        crate::bounds::source_detection,
    );

    let lists: DetectionLists = (0..n)
        .map(|v| {
            state.top[v]
                .iter()
                .map(|&(d, row)| (d, srcs[row as usize]))
                .collect()
        })
        .collect();
    let best_by_id: Vec<HashMap<NodeId, (Weight, NodeId)>> = state
        .best
        .into_iter()
        .map(|m| {
            m.into_iter()
                .map(|(row, dp)| (srcs[row as usize], dp))
                .collect()
        })
        .collect();
    Detection {
        lists,
        best: best_by_id,
    }
}

/// The engine-stepped scalar detection loop (reference semantics; the
/// only kernel that handles latencies). Heap outboxes hold entries that
/// may go stale — superseded by a closer announcement or evicted from the
/// top-`σ` set — and are skipped lazily at pop time.
fn detect_kernel_scalar(
    n: usize,
    srcs: &[NodeId],
    h: Weight,
    plan: &FloodPlan,
    net: &mut Network<(u32, Weight)>,
    state: &mut DetectState,
) {
    let mut outbox: Vec<BinaryHeap<Reverse<(Weight, u32)>>> =
        (0..n).map(|_| BinaryHeap::new()).collect();
    let mut pending: Vec<NodeId> = Vec::new();
    let mut pending_flag = vec![false; n];

    for (row, &s) in srcs.iter().enumerate() {
        if state.admit(s, row as u32, 0, s, |_, _| {}) {
            outbox[s].push(Reverse((0, row as u32)));
            if !pending_flag[s] {
                pending_flag[s] = true;
                pending.push(s);
            }
        }
    }

    let mut out = RoundOutput::default();
    loop {
        let acting = std::mem::take(&mut pending);
        let mut any_action = false;
        for v in acting {
            pending_flag[v] = false;
            let fresh = loop {
                match outbox[v].pop() {
                    Some(Reverse((d, row))) => {
                        // Fresh = still our best and still within top-σ.
                        if state.best[v].get(&row).map(|&(bd, _)| bd) == Some(d)
                            && state.top[v].contains(&(d, row))
                        {
                            break Some((d, row));
                        }
                    }
                    None => break None,
                }
            };
            let Some((d, row)) = fresh else { continue };
            any_action = true;
            for hop in plan.of(v) {
                let cand = add_dist(d, hop.dist_add);
                if cand > h {
                    continue;
                }
                net.send_on_link(hop.link as usize, (row, cand), 1, hop.latency);
            }
            if !outbox[v].is_empty() && !pending_flag[v] {
                pending_flag[v] = true;
                pending.push(v);
            }
        }

        if !any_action && net.is_idle() {
            break;
        }
        let stepped = if any_action {
            net.step_into(&mut out);
            true
        } else {
            net.step_fast_into(&mut out)
        };
        if !stepped {
            break;
        }
        for dmsg in out.deliveries.drain(..) {
            let (row, cand) = dmsg.payload;
            let v = dmsg.to;
            if state.admit(v, row, cand, dmsg.from, |_, _| {}) {
                outbox[v].push(Reverse((cand, row)));
                if !pending_flag[v] {
                    pending_flag[v] = true;
                    pending.push(v);
                }
            }
        }
    }
}

/// The bit-parallel detection loop for unit-latency floods: frontier
/// words maintained eagerly through `DetectState::admit`'s retire hook
/// (improvements and top-`σ` evictions clear bits on the spot), direct
/// delivery in send order, rounds charged via
/// [`Network::charge_flood_round`]. Note the round-control contract it
/// mirrors from the scalar loop: a round is charged whenever any node
/// popped a fresh announcement, even if the distance budget then filtered
/// every send (an empty charge advances the round like an idle
/// `step_into`).
fn detect_kernel_bitset(
    srcs: &[NodeId],
    h: Weight,
    plan: &FloodPlan,
    net: &mut Network<(u32, Weight)>,
    state: &mut DetectState,
) {
    let n = state.best.len();
    let mut outbox: Vec<BitFrontier> = vec![BitFrontier::default(); n];
    let mut ghost: Vec<BitFrontier> = vec![BitFrontier::default(); n];
    let mut pending: Vec<NodeId> = Vec::new();
    let mut pending_flag = vec![false; n];

    for (row, &s) in srcs.iter().enumerate() {
        let (ob, gh) = (&mut outbox[s], &mut ghost[s]);
        let retire = |d, r| {
            if ob.remove(d, r) {
                gh.insert(d, r);
            }
        };
        if state.admit(s, row as u32, 0, s, retire) {
            outbox[s].insert(0, row as u32);
            if !pending_flag[s] {
                pending_flag[s] = true;
                pending.push(s);
            }
        }
    }

    let mut links: Vec<u32> = Vec::new();
    let mut deliv: Vec<(u32, u32, Weight, u32)> = Vec::new();
    loop {
        let acting = std::mem::take(&mut pending);
        links.clear();
        deliv.clear();
        let mut any_action = false;
        for v in acting {
            pending_flag[v] = false;
            // As in the BFS kernel: replay the scalar pop walk's ghost
            // consumption so the re-pend test below matches its "heap
            // nonempty, stale entries included" semantics.
            let Some((d, row)) = outbox[v].pop_min() else {
                ghost[v].clear();
                continue;
            };
            ghost[v].drain_below(d, row);
            any_action = true;
            for hop in plan.of(v) {
                let cand = add_dist(d, hop.dist_add);
                if cand > h {
                    continue;
                }
                links.push(hop.link);
                deliv.push((hop.to, row, cand, v as u32));
            }
            if (!outbox[v].is_empty() || !ghost[v].is_empty()) && !pending_flag[v] {
                pending_flag[v] = true;
                pending.push(v);
            }
        }

        if !any_action {
            break;
        }
        net.charge_flood_round(&links);
        for &(to, row, cand, from) in &deliv {
            let v = to as usize;
            let (ob, gh) = (&mut outbox[v], &mut ghost[v]);
            let retire = |d, r| {
                if ob.remove(d, r) {
                    gh.insert(d, r);
                }
            };
            if state.admit(v, row, cand, from as usize, retire) {
                outbox[v].insert(cand, row);
                if !pending_flag[v] {
                    pending_flag[v] = true;
                    pending.push(v);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwc_graph::generators::{connected_gnm, grid, WeightRange};
    use mwc_graph::seq::{bellman_ford_hops, bfs, HOP_INF};
    use mwc_graph::Orientation;
    use std::sync::{Mutex, MutexGuard};

    /// Serializes tests that flip the process-global flood kernel and
    /// restores the default on drop.
    static KERNEL_GLOBAL: Mutex<()> = Mutex::new(());

    struct KernelGuard {
        _guard: MutexGuard<'static, ()>,
    }

    fn with_kernel(k: FloodKernel) -> KernelGuard {
        let guard = KERNEL_GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
        crate::flood::set_flood_kernel(k);
        KernelGuard { _guard: guard }
    }

    impl Drop for KernelGuard {
        fn drop(&mut self) {
            crate::flood::set_flood_kernel(FloodKernel::Bitset);
        }
    }

    fn assert_matches_bfs(g: &Graph, sources: &[NodeId], h: Weight, dir: Direction) {
        let mut ledger = Ledger::new();
        let spec = MultiBfsSpec {
            max_dist: h,
            direction: dir,
            latency: None,
        };
        let mat = multi_source_bfs(g, sources, &spec, "test", &mut ledger);
        for (row, &s) in sources.iter().enumerate() {
            let t = bfs(g, s, dir);
            for v in 0..g.n() {
                let expect = if t.dist[v] == HOP_INF || (t.dist[v] as Weight) > h {
                    INF
                } else {
                    t.dist[v] as Weight
                };
                assert_eq!(
                    mat.get_row(row, v),
                    expect,
                    "src {s} node {v} (dir {dir:?})"
                );
            }
        }
    }

    #[test]
    fn single_source_bfs_exact() {
        let g = connected_gnm(60, 90, Orientation::Undirected, WeightRange::unit(), 5);
        assert_matches_bfs(&g, &[0], INF, Direction::Forward);
    }

    #[test]
    fn multi_source_bfs_exact_undirected() {
        let g = connected_gnm(50, 70, Orientation::Undirected, WeightRange::unit(), 9);
        assert_matches_bfs(&g, &[0, 7, 13, 31, 49], INF, Direction::Forward);
    }

    #[test]
    fn multi_source_bfs_exact_directed_both_directions() {
        let g = connected_gnm(50, 120, Orientation::Directed, WeightRange::unit(), 11);
        assert_matches_bfs(&g, &[1, 2, 3, 20, 40], INF, Direction::Forward);
        assert_matches_bfs(&g, &[1, 2, 3, 20, 40], INF, Direction::Reverse);
    }

    #[test]
    fn hop_budget_truncates() {
        let g = grid(6, 6, Orientation::Undirected, WeightRange::unit(), 0);
        assert_matches_bfs(&g, &[0, 35], 4, Direction::Forward);
    }

    #[test]
    fn bfs_rounds_within_h_plus_k_envelope() {
        // Grid: D = 28; 20 sources; pipelining must keep rounds ≲ c(h + k).
        let g = grid(15, 15, Orientation::Undirected, WeightRange::unit(), 0);
        let sources: Vec<NodeId> = (0..20).map(|i| i * 11).collect();
        let mut ledger = Ledger::new();
        let spec = MultiBfsSpec::default();
        let _ = multi_source_bfs(&g, &sources, &spec, "bfs", &mut ledger);
        let h = 28u64;
        let k = 20u64;
        assert!(
            ledger.rounds <= 3 * (h + k),
            "pipelined BFS took {} rounds, envelope {}",
            ledger.rounds,
            3 * (h + k)
        );
    }

    #[test]
    fn predecessor_chains_are_real_paths() {
        let g = connected_gnm(40, 60, Orientation::Directed, WeightRange::unit(), 2);
        let mut ledger = Ledger::new();
        let mat = multi_source_bfs(&g, &[3, 17], &MultiBfsSpec::default(), "t", &mut ledger);
        for row in 0..2 {
            for v in 0..g.n() {
                if mat.get_row(row, v) == INF {
                    continue;
                }
                let path = mat.path_from_source(row, v).expect("reached");
                assert_eq!(path.len() as Weight - 1, mat.get_row(row, v));
                for w in path.windows(2) {
                    assert!(g.has_edge(w[0], w[1]), "edge {}→{} missing", w[0], w[1]);
                }
            }
        }
    }

    #[test]
    fn latency_bfs_computes_weighted_distances() {
        // Stretched search: latency = edge weight ⇒ distances = weighted
        // shortest paths (exact, because waves travel at weight-speed).
        let g = connected_gnm(
            40,
            80,
            Orientation::Directed,
            WeightRange::uniform(1, 6),
            21,
        );
        let lat: Vec<Weight> = g.edges().iter().map(|e| e.weight).collect();
        let spec = MultiBfsSpec {
            max_dist: INF,
            direction: Direction::Forward,
            latency: Some(&lat),
        };
        let mut ledger = Ledger::new();
        let mat = multi_source_bfs(&g, &[0, 5], &spec, "t", &mut ledger);
        for (row, &s) in [0usize, 5].iter().enumerate() {
            let exact = bellman_ford_hops(&g, s, g.n(), Direction::Forward);
            for v in 0..g.n() {
                assert_eq!(mat.get_row(row, v), exact[v], "src {s} node {v}");
            }
        }
    }

    #[test]
    fn latency_budget_is_weighted_budget() {
        // Path with weights 3,3,3: budget 6 reaches two hops only.
        let g = Graph::from_edges(
            4,
            Orientation::Undirected,
            [(0, 1, 3), (1, 2, 3), (2, 3, 3)],
        )
        .unwrap();
        let lat: Vec<Weight> = g.edges().iter().map(|e| e.weight).collect();
        let spec = MultiBfsSpec {
            max_dist: 6,
            direction: Direction::Forward,
            latency: Some(&lat),
        };
        let mut ledger = Ledger::new();
        let mat = multi_source_bfs(&g, &[0], &spec, "t", &mut ledger);
        assert_eq!(mat.get_row(0, 2), 6);
        assert_eq!(mat.get_row(0, 3), INF);
    }

    #[test]
    fn reverse_direction_with_latency_matches_oracle() {
        // Weighted reverse BFS: distances *to* the sources along edge
        // orientation, measured in the stretched metric.
        let g = connected_gnm(
            36,
            90,
            Orientation::Directed,
            WeightRange::uniform(1, 7),
            14,
        );
        let lat: Vec<Weight> = g.edges().iter().map(|e| e.weight).collect();
        let spec = MultiBfsSpec {
            max_dist: INF,
            direction: Direction::Reverse,
            latency: Some(&lat),
        };
        let mut ledger = Ledger::new();
        let mat = multi_source_bfs(&g, &[3, 30], &spec, "rl", &mut ledger);
        for (row, &s) in [3usize, 30].iter().enumerate() {
            let t = mwc_graph::seq::dijkstra(&g, s, Direction::Reverse);
            for v in 0..g.n() {
                let expect = if t.dist[v] == mwc_graph::seq::INF {
                    INF
                } else {
                    t.dist[v]
                };
                assert_eq!(mat.get_row(row, v), expect, "to {s} from {v}");
            }
        }
    }

    #[test]
    fn budget_zero_reaches_only_sources() {
        let g = grid(4, 4, Orientation::Undirected, WeightRange::unit(), 0);
        let spec = MultiBfsSpec {
            max_dist: 0,
            direction: Direction::Forward,
            latency: None,
        };
        let mut ledger = Ledger::new();
        let mat = multi_source_bfs(&g, &[5], &spec, "z", &mut ledger);
        assert_eq!(mat.get_row(0, 5), 0);
        assert!((0..16)
            .filter(|&v| v != 5)
            .all(|v| mat.get_row(0, v) == INF));
        assert_eq!(ledger.rounds, 0);
    }

    #[test]
    fn zero_weight_edges_stay_exact() {
        // w = 0 edges add nothing to distance but one round of travel.
        let g =
            Graph::from_edges(4, Orientation::Directed, [(0, 1, 0), (1, 2, 0), (2, 3, 5)]).unwrap();
        let lat: Vec<Weight> = g.edges().iter().map(|e| e.weight).collect();
        let spec = MultiBfsSpec {
            max_dist: INF,
            direction: Direction::Forward,
            latency: Some(&lat),
        };
        let mut ledger = Ledger::new();
        let mat = multi_source_bfs(&g, &[0], &spec, "t", &mut ledger);
        assert_eq!(mat.get_row(0, 1), 0);
        assert_eq!(mat.get_row(0, 2), 0);
        assert_eq!(mat.get_row(0, 3), 5);
        // Travel still takes ≥ 1 round per hop.
        assert!(ledger.rounds >= 3);
    }

    #[test]
    fn zero_weight_edges_identical_across_kernels() {
        // `dist_add = 0` with `stretch = 1` must cost one round and add
        // zero distance in BOTH kernels. All weights ≤ 1, so the flood is
        // unit-latency and the bitset kernel actually engages (a mixed
        // graph with stretch > 1 edges would fall back to scalar).
        let g = Graph::from_edges(
            6,
            Orientation::Directed,
            [
                (0, 1, 0),
                (1, 2, 1),
                (2, 3, 0),
                (3, 4, 0),
                (4, 5, 1),
                (0, 5, 1),
                (5, 2, 0),
            ],
        )
        .unwrap();
        let lat: Vec<Weight> = g.edges().iter().map(|e| e.weight).collect();
        let spec = MultiBfsSpec {
            max_dist: INF,
            direction: Direction::Forward,
            latency: Some(&lat),
        };
        let mut results = Vec::new();
        for kernel in [FloodKernel::Scalar, FloodKernel::Bitset] {
            let _k = with_kernel(kernel);
            let mut ledger = Ledger::new();
            let mat = multi_source_bfs(&g, &[0, 3], &spec, "zw", &mut ledger);
            // Zero-weight edges added no distance…
            assert_eq!(mat.get_row(0, 1), 0, "{kernel:?}");
            assert_eq!(mat.get_row(1, 4), 0, "{kernel:?}");
            // …but still cost a round each to cross.
            assert!(ledger.rounds >= 3, "{kernel:?}: {} rounds", ledger.rounds);
            results.push((mat.digest(), ledger.rounds, ledger.words, ledger.messages));
        }
        assert_eq!(results[0], results[1], "kernels disagree on w = 0 flood");
    }

    #[test]
    #[should_panic(expected = "source 60 out of range")]
    fn multibfs_rejects_out_of_range_source() {
        let g = connected_gnm(60, 90, Orientation::Undirected, WeightRange::unit(), 5);
        let mut ledger = Ledger::new();
        let _ = multi_source_bfs(&g, &[60], &MultiBfsSpec::default(), "t", &mut ledger);
    }

    #[test]
    #[should_panic(expected = "source 7 repeated")]
    fn multibfs_rejects_repeated_source() {
        let g = connected_gnm(60, 90, Orientation::Undirected, WeightRange::unit(), 5);
        let mut ledger = Ledger::new();
        let _ = multi_source_bfs(&g, &[0, 7, 7], &MultiBfsSpec::default(), "t", &mut ledger);
    }

    #[test]
    #[should_panic(expected = "saturates into the INF sentinel")]
    fn multibfs_rejects_distance_saturation() {
        // A pathological latency table: one edge "adds" INF, which the
        // old saturating_add silently aliased to unreachable.
        let g = Graph::from_edges(2, Orientation::Undirected, [(0, 1, 1)]).unwrap();
        let lat = vec![INF];
        let spec = MultiBfsSpec {
            max_dist: INF,
            direction: Direction::Forward,
            latency: Some(&lat),
        };
        let mut ledger = Ledger::new();
        let _ = multi_source_bfs(&g, &[0], &spec, "sat", &mut ledger);
    }

    fn detection_oracle(g: &Graph, sources: &[NodeId], h: Weight, sigma: usize) -> DetectionLists {
        let mut lists: DetectionLists = vec![Vec::new(); g.n()];
        let mut srcs = sources.to_vec();
        srcs.sort_unstable();
        for &s in &srcs {
            let t = bfs(g, s, Direction::Forward);
            for v in 0..g.n() {
                if t.dist[v] != HOP_INF && (t.dist[v] as Weight) <= h {
                    lists[v].push((t.dist[v] as Weight, s));
                }
            }
        }
        for l in &mut lists {
            l.sort_unstable();
            l.truncate(sigma);
        }
        lists
    }

    #[test]
    fn source_detection_matches_oracle() {
        let g = connected_gnm(48, 70, Orientation::Undirected, WeightRange::unit(), 33);
        let sources: Vec<NodeId> = (0..48).step_by(3).collect();
        let mut ledger = Ledger::new();
        let got = source_detection(
            &g,
            &sources,
            6,
            4,
            Direction::Forward,
            None,
            "sd",
            &mut ledger,
        )
        .lists;
        let want = detection_oracle(&g, &sources, 6, 4);
        assert_eq!(got, want);
    }

    #[test]
    fn source_detection_all_sources_neighborhood() {
        // The girth algorithm's use: every node a source, σ nearest.
        let g = grid(7, 7, Orientation::Undirected, WeightRange::unit(), 0);
        let sources: Vec<NodeId> = (0..g.n()).collect();
        let mut ledger = Ledger::new();
        let got = source_detection(
            &g,
            &sources,
            12,
            7,
            Direction::Forward,
            None,
            "sd",
            &mut ledger,
        )
        .lists;
        let want = detection_oracle(&g, &sources, 12, 7);
        assert_eq!(got, want);
        // Rounds stay O(h + σ), far below O(n).
        assert!(
            ledger.rounds <= 4 * (12 + 7),
            "took {} rounds",
            ledger.rounds
        );
    }

    #[test]
    fn detection_pred_paths_are_real() {
        let g = connected_gnm(40, 60, Orientation::Undirected, WeightRange::unit(), 12);
        let sources: Vec<NodeId> = (0..40).step_by(4).collect();
        let mut ledger = Ledger::new();
        let det = source_detection(
            &g,
            &sources,
            8,
            5,
            Direction::Forward,
            None,
            "sd",
            &mut ledger,
        );
        for v in 0..g.n() {
            for &(d, s) in &det.lists[v] {
                let p = det.path_to_source(v, s).expect("detected ⇒ path");
                assert_eq!(*p.first().unwrap(), v);
                assert_eq!(*p.last().unwrap(), s);
                assert_eq!(p.len() as Weight - 1, d, "path hops ≠ detected dist");
                for w in p.windows(2) {
                    assert!(g.has_edge(w[0], w[1]) || g.has_edge(w[1], w[0]));
                }
            }
        }
    }

    #[test]
    fn detection_with_latency_uses_stretched_metric() {
        // Path 0 -5- 1 -1- 2: source 0; at node 2 stretched dist = 6.
        let g = Graph::from_edges(3, Orientation::Undirected, [(0, 1, 5), (1, 2, 1)]).unwrap();
        let lat: Vec<Weight> = g.edges().iter().map(|e| e.weight).collect();
        let mut ledger = Ledger::new();
        let det = source_detection(
            &g,
            &[0],
            10,
            2,
            Direction::Forward,
            Some(&lat),
            "sd",
            &mut ledger,
        );
        assert_eq!(det.lists[2], vec![(6, 0)]);
        assert_eq!(det.dist(2, 0), Some(6));
        // Budget cuts off stretched-far nodes.
        let mut ledger = Ledger::new();
        let det = source_detection(
            &g,
            &[0],
            4,
            2,
            Direction::Forward,
            Some(&lat),
            "sd",
            &mut ledger,
        );
        assert!(det.lists[1].is_empty());
    }

    #[test]
    fn source_detection_directed() {
        let g = connected_gnm(30, 80, Orientation::Directed, WeightRange::unit(), 8);
        let sources: Vec<NodeId> = (0..30).step_by(2).collect();
        let mut ledger = Ledger::new();
        let got = source_detection(
            &g,
            &sources,
            5,
            3,
            Direction::Forward,
            None,
            "sd",
            &mut ledger,
        )
        .lists;
        // Oracle with forward BFS.
        let mut want: DetectionLists = vec![Vec::new(); g.n()];
        for &s in &sources {
            let t = bfs(&g, s, Direction::Forward);
            for v in 0..g.n() {
                if t.dist[v] != HOP_INF && t.dist[v] <= 5 {
                    want[v].push((t.dist[v] as Weight, s));
                }
            }
        }
        for l in &mut want {
            l.sort_unstable();
            l.truncate(3);
        }
        assert_eq!(got, want);
    }

    #[test]
    #[should_panic(expected = "source 30 out of range")]
    fn detection_rejects_out_of_range_source() {
        let g = connected_gnm(30, 80, Orientation::Directed, WeightRange::unit(), 8);
        let mut ledger = Ledger::new();
        let _ = source_detection(
            &g,
            &[0, 30],
            5,
            3,
            Direction::Forward,
            None,
            "sd",
            &mut ledger,
        );
    }

    #[test]
    #[should_panic(expected = "source 4 repeated")]
    fn detection_rejects_repeated_source() {
        let g = connected_gnm(30, 80, Orientation::Directed, WeightRange::unit(), 8);
        let mut ledger = Ledger::new();
        let _ = source_detection(
            &g,
            &[4, 2, 4],
            5,
            3,
            Direction::Forward,
            None,
            "sd",
            &mut ledger,
        );
    }

    #[test]
    #[should_panic(expected = "saturates into the INF sentinel")]
    fn detection_rejects_distance_saturation() {
        let g = Graph::from_edges(2, Orientation::Undirected, [(0, 1, 1)]).unwrap();
        let lat = vec![INF];
        let mut ledger = Ledger::new();
        let _ = source_detection(
            &g,
            &[0],
            INF,
            2,
            Direction::Forward,
            Some(&lat),
            "sat",
            &mut ledger,
        );
    }

    #[test]
    fn detection_identical_across_kernels() {
        // Unit-weight flood: the bitset kernel engages by default; pin
        // that the scalar fallback produces identical lists, paths, and
        // ledger counts.
        let g = connected_gnm(48, 70, Orientation::Undirected, WeightRange::unit(), 33);
        let sources: Vec<NodeId> = (0..48).step_by(3).collect();
        let mut results = Vec::new();
        for kernel in [FloodKernel::Scalar, FloodKernel::Bitset] {
            let _k = with_kernel(kernel);
            let mut ledger = Ledger::new();
            let det = source_detection(
                &g,
                &sources,
                6,
                4,
                Direction::Forward,
                None,
                "sd",
                &mut ledger,
            );
            results.push((det.lists, ledger.rounds, ledger.words, ledger.messages));
        }
        assert_eq!(results[0], results[1], "kernels disagree on detection");
    }
}
