//! Tunable parameters of the randomized algorithms.
//!
//! The paper's algorithms fix their constants asymptotically (sampling
//! probability `Θ(log n / h)`, per-phase message caps `Θ(log n)`, …). At
//! benchmark sizes (`n ≤ 10⁴`) the hidden constants and polylog factors
//! dominate the sublinear terms, so this reproduction exposes them:
//! correctness-oriented tests use generous factors, while the Table 1
//! benches report both paper-faithful and lean-constant runs (see
//! EXPERIMENTS.md).

/// Parameters shared by all randomized algorithms in this crate.
#[derive(Clone, Copy, Debug)]
pub struct Params {
    /// Seed for all random choices (sampling, random delays); fixed seed ⇒
    /// fully deterministic run.
    pub seed: u64,
    /// Multiplier `c` in the sampling probability `min(1, c·ln n / h)`.
    /// The paper uses `Θ(log n / h)` (up to `log³ n / h` in Algorithm 2);
    /// larger values trade rounds for a lower failure probability.
    pub sampling_factor: f64,
    /// Multiplier `c` in Algorithm 3's per-phase message cap `c·ln n`
    /// (paper: `Θ(log n)`).
    pub phase_cap_factor: f64,
    /// The `ε` of `(1+ε)` / `(2+ε)` approximations.
    pub epsilon: f64,
    /// Exponent of Algorithm 2's long/short threshold `h = n^{h_exponent}`
    /// (paper: 3/5). Exposed for the round/approximation tradeoff
    /// ablation the paper's §6 raises.
    pub directed_h_exponent: f64,
    /// Exponent of Algorithm 3's delay range `ρ = n^{rho_exponent}`
    /// (paper: 4/5).
    pub rho_exponent: f64,
    /// Scales Algorithm 3's random-delay range to `max(1, ρ·delay_factor)`.
    /// `1.0` is the paper's schedule; values near 0 disable the random
    /// delays (ablation: congestion then concentrates and the
    /// phase-overflow set explodes).
    pub delay_factor: f64,
}

impl Params {
    /// Paper-faithful defaults with seed 0.
    pub fn new() -> Self {
        Params {
            seed: 0,
            sampling_factor: 2.0,
            phase_cap_factor: 2.0,
            epsilon: 0.25,
            directed_h_exponent: 0.6,
            rho_exponent: 0.8,
            delay_factor: 1.0,
        }
    }

    /// Lean constants for benchmarks: smaller sampling/cap multipliers so
    /// the sublinear terms are visible at benchable sizes (`n ≤ 10⁴`),
    /// trading failure probability for rounds. EXPERIMENTS.md reports
    /// both presets.
    pub fn lean() -> Self {
        Params {
            seed: 0,
            sampling_factor: 0.75,
            phase_cap_factor: 1.0,
            epsilon: 0.5,
            directed_h_exponent: 0.6,
            rho_exponent: 0.8,
            delay_factor: 1.0,
        }
    }

    /// Sets the random seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the sampling multiplier.
    pub fn with_sampling_factor(mut self, f: f64) -> Self {
        assert!(f > 0.0, "sampling factor must be positive");
        self.sampling_factor = f;
        self
    }

    /// Sets the approximation `ε`.
    pub fn with_epsilon(mut self, eps: f64) -> Self {
        assert!(eps > 0.0, "epsilon must be positive");
        self.epsilon = eps;
        self
    }

    /// Sets Algorithm 3's per-phase cap multiplier.
    pub fn with_phase_cap_factor(mut self, f: f64) -> Self {
        assert!(f > 0.0, "phase cap factor must be positive");
        self.phase_cap_factor = f;
        self
    }

    /// Sets Algorithm 2's long/short threshold exponent (paper: 0.6).
    pub fn with_directed_h_exponent(mut self, e: f64) -> Self {
        assert!(e > 0.0 && e < 1.0, "h exponent must be in (0, 1)");
        self.directed_h_exponent = e;
        self
    }

    /// Sets Algorithm 3's random-delay scale (paper schedule: 1.0).
    pub fn with_delay_factor(mut self, f: f64) -> Self {
        assert!(f >= 0.0, "delay factor must be non-negative");
        self.delay_factor = f;
        self
    }

    /// The sampling probability for hitting every `h`-hop path w.h.p.:
    /// `min(1, c · ln n / h)`.
    pub fn sample_prob(&self, n: usize, h: u64) -> f64 {
        if h == 0 {
            return 1.0;
        }
        let ln_n = (n.max(2) as f64).ln();
        (self.sampling_factor * ln_n / h as f64).min(1.0)
    }

    /// Algorithm 3's per-phase message cap `max(1, ⌈c · ln n⌉)`.
    pub fn phase_cap(&self, n: usize) -> usize {
        let ln_n = (n.max(2) as f64).ln();
        (self.phase_cap_factor * ln_n).ceil().max(1.0) as usize
    }
}

impl Default for Params {
    fn default() -> Self {
        Params::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let p = Params::default();
        assert_eq!(p.seed, 0);
        assert!(p.epsilon > 0.0);
    }

    #[test]
    fn sample_prob_caps_at_one() {
        let p = Params::new();
        assert_eq!(p.sample_prob(10, 1), 1.0);
        assert!(p.sample_prob(100_000, 10_000) < 0.01);
    }

    #[test]
    fn builders_chain() {
        let p = Params::new()
            .with_seed(7)
            .with_epsilon(0.5)
            .with_sampling_factor(1.0);
        assert_eq!(p.seed, 7);
        assert_eq!(p.epsilon, 0.5);
        assert_eq!(p.sampling_factor, 1.0);
    }

    #[test]
    fn phase_cap_positive() {
        assert!(Params::new().phase_cap(2) >= 1);
        assert!(Params::new().phase_cap(1000) >= 13);
    }
}
