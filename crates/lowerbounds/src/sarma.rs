//! Path/tree lower-bound families in the style of Das Sarma et al. \[49\],
//! used for the `α`-approximation bounds (Theorems 1.2.B, 1.4.B, 1.3.A).
//!
//! `Γ` vertex-disjoint **light** paths of `ℓ` unit-weight vertices run
//! from Alice's side to Bob's; a **heavy** highway + balanced tree (weight
//! `X`, or subdivided into `X` unit edges for the unweighted girth family)
//! keeps the diameter low. Alice attaches `s` to the left end of path `i`
//! iff `S_a[i] = 1`; Bob attaches the right end to `t` iff `S_b[i] = 1`;
//! a fixed light edge `t — s` closes the loop:
//!
//! - intersecting ⇒ a light cycle `s → P_i → t → s` of weight `ℓ + 2`;
//! - disjoint ⇒ every cycle uses ≥ 2 heavy edges, weight ≥ `2X`.
//!
//! With `X = ⌈α·(ℓ+2)⌉` even an `α`-approximation of MWC decides
//! disjointness, while the Alice/Bob cut is `Θ(Γ/ℓ + log)`-independent —
//! only the heavy structure and `t—s` cross — so `Ω(k)`-bit disjointness
//! forces `Ω(min(ℓ, k / (cut·log n)))` rounds. Balancing `Γ` against `ℓ`
//! reproduces the paper's `√n` (weighted/directed) and `n^{1/4}`
//! (unweighted girth, where heavy edges must be subdivided and therefore
//! cost vertices) shapes.

use crate::disjointness::Disjointness;
use crate::instance::LowerBoundInstance;
use mwc_graph::{Graph, NodeId, Orientation, Weight};

/// Parameters of the family.
#[derive(Clone, Copy, Debug)]
pub struct SarmaParams {
    /// Number of paths (= disjointness bits `k`).
    pub gamma: usize,
    /// Vertices per path.
    pub ell: usize,
    /// Approximation factor the instance must defeat.
    pub alpha: f64,
}

/// Weighted family (directed or undirected) for Theorems 1.2.B / 1.4.B.
///
/// # Panics
///
/// Panics if `inst.k() != gamma`, or `gamma == 0`, or `ell < 2`, or
/// `alpha < 1`.
pub fn sarma_weighted(
    p: SarmaParams,
    orientation: Orientation,
    inst: &Disjointness,
) -> LowerBoundInstance {
    assert!(p.gamma > 0 && p.ell >= 2, "need gamma ≥ 1, ell ≥ 2");
    assert!(p.alpha >= 1.0, "alpha must be ≥ 1");
    assert_eq!(inst.k(), p.gamma, "instance must have gamma bits");
    let x: Weight = (p.alpha * (p.ell as f64 + 2.0)).ceil() as Weight;

    let s: NodeId = 0;
    let t: NodeId = 1;
    let path = |i: usize, c: usize| 2 + i * p.ell + c;
    let hw = |c: usize| 2 + p.gamma * p.ell + c; // highway column vertices
    let n = 2 + p.gamma * p.ell + p.ell;

    let mut g = Graph::new(n, orientation);
    let directed = orientation == Orientation::Directed;
    // Heavy edges go in both directions for directed graphs so the
    // communication topology matches but every heavy cycle weighs ≥ 2X.
    let heavy = |g: &mut Graph, a: NodeId, b: NodeId| {
        g.add_edge(a, b, x).expect("simple");
        if directed {
            g.add_edge(b, a, x).expect("simple");
        }
    };

    // Light paths.
    for i in 0..p.gamma {
        for c in 0..p.ell - 1 {
            g.add_edge(path(i, c), path(i, c + 1), 1).expect("simple");
        }
    }
    // Heavy highway + spokes (diameter control).
    for c in 0..p.ell - 1 {
        heavy(&mut g, hw(c), hw(c + 1));
    }
    for i in 0..p.gamma {
        for c in 0..p.ell {
            heavy(&mut g, hw(c), path(i, c));
        }
    }
    heavy(&mut g, s, hw(0));
    heavy(&mut g, t, hw(p.ell - 1));
    // Closing light edge t — s.
    g.add_edge(t, s, 1).expect("simple");
    // Bit edges.
    for i in 0..p.gamma {
        if inst.a[i] {
            g.add_edge(s, path(i, 0), 1).expect("simple");
        }
        if inst.b[i] {
            g.add_edge(path(i, p.ell - 1), t, 1).expect("simple");
        }
    }

    // Partition: Alice owns s and the left half of every path and of the
    // highway; Bob owns the rest.
    let mut alice = vec![false; n];
    alice[s] = true;
    for i in 0..p.gamma {
        for c in 0..p.ell / 2 {
            alice[path(i, c)] = true;
        }
    }
    for c in 0..p.ell / 2 {
        alice[hw(c)] = true;
    }

    LowerBoundInstance {
        graph: g,
        alice,
        bits: p.gamma,
        yes_threshold: p.ell as Weight + 2,
        no_threshold: 2 * x,
    }
}

/// Unweighted girth family for Theorem 1.3.A: heavy edges are subdivided
/// into `X` unit edges (paying vertices instead of weight), a hub keeps
/// the graph connected; every non-planted cycle has ≥ `2X` hops.
///
/// # Panics
///
/// Panics if `inst.k() != gamma`, `gamma == 0`, `ell < 2`, or `alpha < 1`.
pub fn sarma_unweighted_girth(p: SarmaParams, inst: &Disjointness) -> LowerBoundInstance {
    assert!(p.gamma > 0 && p.ell >= 2, "need gamma ≥ 1, ell ≥ 2");
    assert!(p.alpha >= 1.0, "alpha must be ≥ 1");
    assert_eq!(inst.k(), p.gamma, "instance must have gamma bits");
    let x = (p.alpha * (p.ell as f64 + 2.0)).ceil() as usize;

    // Layout: s, t, hub, paths, then subdivision vertices appended.
    let s: NodeId = 0;
    let t: NodeId = 1;
    let hub: NodeId = 2;
    let base = 3;
    let path = |i: usize, c: usize| base + i * p.ell + c;
    let n_core = base + p.gamma * p.ell;
    // Subdivided spokes: hub→s, hub→t, hub→path(i, 0) for each i.
    let spokes = p.gamma + 2;
    let n = n_core + spokes * (x - 1);

    let mut g = Graph::undirected(n);
    for i in 0..p.gamma {
        for c in 0..p.ell - 1 {
            g.add_edge(path(i, c), path(i, c + 1), 1).expect("simple");
        }
    }
    // Subdivided heavy spokes from the hub.
    let mut next_aux = n_core;
    let spoke = |g: &mut Graph, from: NodeId, to: NodeId, next_aux: &mut usize| {
        let mut prev = from;
        for _ in 0..x - 1 {
            let v = *next_aux;
            *next_aux += 1;
            g.add_edge(prev, v, 1).expect("simple");
            prev = v;
        }
        g.add_edge(prev, to, 1).expect("simple");
    };
    spoke(&mut g, hub, s, &mut next_aux);
    spoke(&mut g, hub, t, &mut next_aux);
    for i in 0..p.gamma {
        spoke(&mut g, hub, path(i, 0), &mut next_aux);
    }
    debug_assert_eq!(next_aux, n);
    // Closing light edge t — s and the bit edges.
    g.add_edge(t, s, 1).expect("simple");
    for i in 0..p.gamma {
        if inst.a[i] {
            g.add_edge(s, path(i, 0), 1).expect("simple");
        }
        if inst.b[i] {
            g.add_edge(path(i, p.ell - 1), t, 1).expect("simple");
        }
    }

    // Alice: s + left halves of paths (hub and auxiliaries are Bob's).
    let mut alice = vec![false; n];
    alice[s] = true;
    for i in 0..p.gamma {
        for c in 0..p.ell / 2 {
            alice[path(i, c)] = true;
        }
    }

    LowerBoundInstance {
        graph: g,
        alice,
        bits: p.gamma,
        yes_threshold: p.ell as Weight + 2,
        no_threshold: (2 * x) as Weight,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwc_graph::seq;

    fn params() -> SarmaParams {
        SarmaParams {
            gamma: 6,
            ell: 5,
            alpha: 2.0,
        }
    }

    fn check_family(
        build: impl Fn(&Disjointness) -> LowerBoundInstance,
        oracle: impl Fn(&Graph) -> Option<Weight>,
    ) {
        for seed in 0..5 {
            let yes = Disjointness::random_intersecting(6, 0.4, seed);
            let lb = build(&yes);
            assert!(lb.graph.is_comm_connected());
            let w = oracle(&lb.graph).expect("yes ⇒ light cycle");
            assert!(w <= lb.yes_threshold, "yes mwc {w} > {}", lb.yes_threshold);
            // Even an α-approximation decides.
            let reported = (lb.yes_threshold as f64 * 2.0).floor() as Weight;
            assert!(reported < lb.no_threshold);
            assert!(lb.decide(Some(w)));

            let no = Disjointness::random_disjoint(6, 0.4, seed);
            let lb = build(&no);
            let w = oracle(&lb.graph);
            if let Some(w) = w {
                assert!(w >= lb.no_threshold, "no mwc {w} < {}", lb.no_threshold);
            }
            assert!(!lb.decide(w));
        }
    }

    #[test]
    fn weighted_undirected_family_separates() {
        check_family(
            |d| sarma_weighted(params(), Orientation::Undirected, d),
            |g| seq::mwc_undirected_exact(g).map(|m| m.weight),
        );
    }

    #[test]
    fn weighted_directed_family_separates() {
        check_family(
            |d| sarma_weighted(params(), Orientation::Directed, d),
            |g| seq::mwc_directed_exact(g).map(|m| m.weight),
        );
    }

    #[test]
    fn unweighted_girth_family_separates() {
        check_family(
            |d| sarma_unweighted_girth(params(), d),
            |g| seq::girth_exact(g).map(|m| m.weight),
        );
    }

    #[test]
    fn gap_scales_with_alpha() {
        let d = Disjointness::random_intersecting(4, 0.5, 1);
        for alpha in [1.5, 3.0, 8.0] {
            let p = SarmaParams {
                gamma: 4,
                ell: 4,
                alpha,
            };
            let lb = sarma_weighted(p, Orientation::Undirected, &d);
            let ratio = lb.no_threshold as f64 / lb.yes_threshold as f64;
            assert!(
                ratio >= 2.0 * alpha - 0.01,
                "gap {ratio} too small for α = {alpha}"
            );
        }
    }

    #[test]
    fn cut_grows_at_most_linearly_in_bits() {
        // Doubling the number of bits (paths) at fixed ℓ at most doubles
        // the crossing edges (each path contributes one mid edge).
        let d6 = Disjointness::random_disjoint(6, 0.3, 0);
        let lb6 = sarma_weighted(
            SarmaParams {
                gamma: 6,
                ell: 6,
                alpha: 2.0,
            },
            Orientation::Undirected,
            &d6,
        );
        let d12 = Disjointness::random_disjoint(12, 0.3, 0);
        let lb12 = sarma_weighted(
            SarmaParams {
                gamma: 12,
                ell: 6,
                alpha: 2.0,
            },
            Orientation::Undirected,
            &d12,
        );
        // Bits doubled; cut grows only by the extra midpoint spokes.
        assert!(lb12.bits == 2 * lb6.bits);
        assert!(lb12.cut_edges() <= 2 * lb6.cut_edges());
    }
}
