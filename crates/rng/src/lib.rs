//! **mwc-rng** — the single source of randomness for the whole workspace.
//!
//! Everything in this repository that flips a coin goes through this
//! crate: graph generators, skeleton-vertex sampling (Algorithm 1 /
//! Theorem 1.6), the random-delay schedule of Algorithm 3 \[24, 36\],
//! lower-bound instance sampling, and the property-test harness. Owning
//! the generator in-tree gives two properties the external `rand` crate
//! could not:
//!
//! 1. **Hermeticity** — no crates-io dependency, so `cargo build
//!    --offline` always works and the bit stream can never change under
//!    us on a version bump. Simulation ledgers (rounds/messages/words)
//!    are byte-reproducible across machines and over time.
//! 2. **Labeled substreams** — [`Rng::fork`] derives a decorrelated
//!    child stream from a *label* (and [`Rng::fork_u64`] from an index),
//!    as a pure function of the parent's seed path, **not** of how much
//!    of the parent stream was consumed. Per-node / per-phase randomness
//!    therefore stays stable when topology iteration order or scheduling
//!    changes — a prerequisite for regression-tracking round counts.
//!
//! The core generator is **xoshiro256\*\*** (Blackman & Vigna), seeded
//! through **SplitMix64** so that consecutive or otherwise correlated
//! `u64` seeds still yield well-mixed initial states.
//!
//! The API mirrors the `rand` surface the call sites already used
//! (`StdRng::seed_from_u64`, `random_range`, `random_bool`, slice
//! `shuffle`/`choose`), so migrating a call site is an import swap.
//!
//! ```
//! use mwc_rng::{SliceRandom, StdRng};
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let die = rng.random_range(1..=6u64);
//! assert!((1..=6).contains(&die));
//!
//! let mut items = vec![1, 2, 3, 4];
//! items.shuffle(&mut rng);
//!
//! // Labeled forks: stable, decorrelated substreams.
//! let delays = rng.fork("alg3/delays");
//! let sampling = rng.fork("alg1/skeleton");
//! assert_ne!(delays.clone().next_u64(), sampling.clone().next_u64());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod proptest_lite;

/// One SplitMix64 step: advances `state` and returns the next output.
///
/// Used for seed expansion and for deriving fork identities; SplitMix64
/// is an equidistributed bijective mixer, so distinct inputs can never
/// collapse to one output.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a hash of a byte string, used to turn fork labels into stream
/// identities.
#[inline]
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A deterministic xoshiro256** generator with SplitMix64 seeding and
/// labeled substream forking.
///
/// [`StdRng`] is an alias for this type so call sites migrated from the
/// `rand` crate read unchanged.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
    /// Stable stream identity: the seed combined with the hash of every
    /// fork label on the path from the root. Forking reads this, never
    /// the consumed stream position.
    id: u64,
}

/// Drop-in alias matching the `rand::rngs::StdRng` spelling used across
/// the workspace before the hermetic migration.
pub type StdRng = Rng;

impl Rng {
    /// A generator whose entire stream is determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s, id: seed }
    }

    /// The stable stream identity (seed ⊕ fork path). Exposed for
    /// diagnostics and replay tooling.
    pub fn stream_id(&self) -> u64 {
        self.id
    }

    /// A decorrelated child stream named by `label`.
    ///
    /// The child depends only on the parent's seed path and the label —
    /// not on how many values the parent has produced — so
    /// `seed_from_u64(s).fork("x")` is the same stream no matter where
    /// or when it is taken. Use one label per logical purpose
    /// (`"alg3/delays"`, `"gen/weights"`, …) so adding a new consumer
    /// of randomness never perturbs existing streams.
    pub fn fork(&self, label: &str) -> Self {
        self.fork_u64(fnv1a64(label.as_bytes()))
    }

    /// A decorrelated child stream indexed by `n` (e.g. one stream per
    /// node or per round). Equivalent guarantees to [`Rng::fork`].
    pub fn fork_u64(&self, n: u64) -> Self {
        let mut sm = self.id ^ n.rotate_left(17).wrapping_mul(0xA24B_AED4_963E_E407);
        let child_id = splitmix64(&mut sm);
        let mut child = Rng::seed_from_u64(child_id);
        child.id = child_id;
        child
    }

    /// The next raw 64-bit output (xoshiro256**).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform value in `[0, span)`, exact (Lemire multiply-shift with
    /// rejection).
    ///
    /// # Panics
    ///
    /// Panics if `span == 0`.
    #[inline]
    pub fn below(&mut self, span: u64) -> u64 {
        assert!(span > 0, "empty sampling range");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (span as u128);
        let mut lo = m as u64;
        if lo < span {
            let t = span.wrapping_neg() % span;
            while lo < t {
                x = self.next_u64();
                m = (x as u128) * (span as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// A uniform value from an integer range (`a..b` or `a..=b`),
    /// mirroring `rand`'s `random_range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    pub fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// A uniform float in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn random_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A Bernoulli draw: `true` with probability `p` (clamped to
    /// `[0, 1]`).
    #[inline]
    pub fn random_bool(&mut self, p: f64) -> bool {
        self.random_f64() < p.clamp(0.0, 1.0)
    }
}

/// Integer ranges that [`Rng::random_range`] can sample uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample(self, rng: &mut Rng) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty sampling range");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample(self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty sampling range");
                let span = (hi - lo) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Only reachable for 0..=u64::MAX: the raw stream.
                    rng.next_u64() as $t
                } else {
                    lo + rng.below(span as u64) as $t
                }
            }
        }
    )+};
}
impl_sample_range!(u8, u16, u32, u64, usize);

/// Slice helpers mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Fisher–Yates shuffle, uniform over all permutations.
    fn shuffle(&mut self, rng: &mut Rng);

    /// A uniformly random element, or `None` if empty.
    fn choose(&self, rng: &mut Rng) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle(&mut self, rng: &mut Rng) {
        for i in (1..self.len()).rev() {
            let j = rng.below(i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }

    fn choose(&self, rng: &mut Rng) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.below(self.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::seed_from_u64(7);
        let mut b = Rng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::seed_from_u64(7);
        let mut b = Rng::seed_from_u64(8);
        let matches = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(matches, 0);
    }

    #[test]
    fn known_answer_vector_is_frozen() {
        // Freezes the exact bit stream: if this test ever fails, every
        // recorded ledger in results/ silently changed meaning.
        let mut r = Rng::seed_from_u64(0);
        let got: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        let mut r2 = Rng::seed_from_u64(0);
        let again: Vec<u64> = (0..4).map(|_| r2.next_u64()).collect();
        assert_eq!(got, again);
        // SplitMix64(0) expands to the canonical xoshiro seed; spot-check
        // the first SplitMix outputs against the published reference.
        let mut sm = 0u64;
        assert_eq!(splitmix64(&mut sm), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(&mut sm), 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn range_bounds_are_respected() {
        let mut r = Rng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = r.random_range(5u64..17);
            assert!((5..17).contains(&x));
            let y = r.random_range(5usize..=17);
            assert!((5..=17).contains(&y));
            let z = r.random_range(9u32..10);
            assert_eq!(z, 9);
        }
    }

    #[test]
    #[should_panic(expected = "empty sampling range")]
    fn empty_range_panics() {
        let mut r = Rng::seed_from_u64(0);
        let _ = r.random_range(5u64..5);
    }

    #[test]
    fn fork_is_position_independent() {
        let root = Rng::seed_from_u64(11);
        let early = root.fork("delays");
        let mut consumed = root.clone();
        for _ in 0..100 {
            consumed.next_u64();
        }
        let late = consumed.fork("delays");
        assert_eq!(early, late, "fork must not depend on consumption");
    }

    #[test]
    fn fork_labels_decorrelate() {
        let root = Rng::seed_from_u64(11);
        let mut a = root.fork("a");
        let mut b = root.fork("b");
        let matches = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(matches, 0);
    }

    #[test]
    fn fork_u64_indexes_distinct_streams() {
        let root = Rng::seed_from_u64(5);
        let firsts: std::collections::HashSet<u64> =
            (0..100).map(|i| root.fork_u64(i).next_u64()).collect();
        assert_eq!(firsts.len(), 100);
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = Rng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn choose_stays_in_slice() {
        let mut r = Rng::seed_from_u64(2);
        let v = [10, 20, 30];
        for _ in 0..50 {
            assert!(v.contains(v.choose(&mut r).unwrap()));
        }
        let empty: [u8; 0] = [];
        assert_eq!(empty.choose(&mut r), None);
    }

    #[test]
    fn random_bool_extremes() {
        let mut r = Rng::seed_from_u64(4);
        assert!(!(0..100).any(|_| r.random_bool(0.0)));
        assert!((0..100).all(|_| r.random_bool(1.0)));
        // NaN and out-of-range clamp instead of panicking.
        let _ = r.random_bool(f64::NAN);
        let _ = r.random_bool(2.0);
    }
}
