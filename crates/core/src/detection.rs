//! Bounded-length cycle detection.
//!
//! The paper's directed lower bound has a striking corollary (§1.3):
//! deciding whether a directed graph contains a cycle of length `q` takes
//! `Ω̃(n)` rounds for **any** `q ≥ 4` — even though triangle detection
//! (`q = 3`) is solvable in `Õ(n^{1/3})` rounds \[12, 45\]. This module
//! implements the natural upper bound the corollary is contrasted
//! against: a pipelined all-source `q`-hop BFS that finds the shortest
//! cycle of hop length ≤ `q`, in `O(n + q)` rounds worst case.
//!
//! On benign inputs the pipelining makes this *much* cheaper than `n`
//! (few sources reach any node within `q` hops), while on the
//! lower-bound gadgets of the `mwc-lowerbounds` crate the congestion — every
//! node lies within `q` hops of `Θ(n)` others — drives it to `Θ(n)`
//! rounds, matching the Ω̃(n) bound's intuition. The tests exercise both
//! regimes.

use crate::outcome::{BestCycle, MwcOutcome};
use crate::util::simplify_path;
use mwc_congest::{
    convergecast_min, multi_source_bfs, BfsTree, Ledger, MultiBfsSpec, RoundOutput, INF,
};
use mwc_graph::seq::Direction;
use mwc_graph::{CycleWitness, Graph, NodeId, Weight};

/// Finds the shortest cycle of **hop length at most `q`** (treating the
/// graph as unweighted), or reports that none exists, in `O(n + q)`
/// rounds worst case — often far less on sparse graphs, where few
/// sources reach any node within `q` hops.
///
/// Works on directed and undirected graphs. The reported weight is the
/// cycle's hop count; a witness is attached. Every node learns the
/// result (final convergecast).
///
/// # Panics
///
/// Panics if `q < 2` (directed) / `q < 3` (undirected), or if the
/// communication topology is disconnected.
///
/// # Examples
///
/// ```
/// use mwc_core::detection::shortest_cycle_within;
/// use mwc_graph::{Graph, Orientation};
///
/// # fn main() -> Result<(), mwc_graph::GraphError> {
/// let g = Graph::from_edges(5, Orientation::Directed,
///     [(0, 1, 1), (1, 2, 1), (2, 3, 1), (3, 4, 1), (4, 0, 1), (2, 0, 1)])?;
/// // Triangle 0→1→2→0 found with q = 3; nothing shorter.
/// let out = shortest_cycle_within(&g, 3);
/// assert_eq!(out.weight, Some(3));
/// assert_eq!(shortest_cycle_within(&g, 2).weight, None);
/// # Ok(())
/// # }
/// ```
pub fn shortest_cycle_within(g: &Graph, q: u64) -> MwcOutcome {
    let _span = mwc_trace::span("detect/cycle-within");
    let min_len = if g.is_directed() { 2 } else { 3 };
    assert!(q >= min_len, "q must allow a simple cycle (≥ {min_len})");
    let n = g.n();
    let mut ledger = Ledger::new();
    let mut best = BestCycle::new();
    if n == 0 {
        return best.into_outcome(ledger);
    }

    // q−1-hop BFS from every node; a cycle of length ℓ ≤ q through v is
    // caught at the node u preceding v on it: d(v, u) = ℓ − 1 and the
    // closing edge (u, v) exists.
    let sources: Vec<NodeId> = (0..n).collect();
    let spec = MultiBfsSpec {
        max_dist: q - 1,
        direction: Direction::Forward,
        latency: None,
    };
    let mat = multi_source_bfs(g, &sources, &spec, "all-source q-hop BFS", &mut ledger);

    let mut local_best = vec![INF; n];
    if g.is_directed() {
        // Exact: a ≤q cycle through edge (u, v) is a shortest v→u path of
        // ≤ q−1 hops plus the edge.
        for u in 0..n {
            for a in g.out_adj(u) {
                let v = a.to;
                let d = mat.get_row(v, u);
                if d == INF {
                    continue;
                }
                let cand = d + 1;
                local_best[u] = local_best[u].min(cand);
                if best.weight().is_none_or(|b| cand < b) {
                    if let Some(path) = mat.path_from_source(v, u) {
                        let cyc = simplify_path(path);
                        if cyc.len() as u64 >= min_len && cyc[0] == v {
                            let w = CycleWitness::new(cyc);
                            if let Ok(weight) = w.validate(&unit_view(g)) {
                                best.offer(weight, w);
                            }
                        }
                    }
                }
            }
        }
    } else {
        // Undirected: girth-style non-tree-edge candidates. Nodes exchange
        // their *detected* (source, dist, pred) entries with neighbors —
        // message size proportional to how many sources reached them, so
        // sparse instances stay cheap.
        let entries: Vec<std::sync::Arc<Vec<(u32, Weight, u32)>>> = (0..n)
            .map(|v| {
                let mut list = Vec::new();
                for s in 0..n {
                    let d = mat.get_row(s, v);
                    if d != INF {
                        let p = mat.pred_row(s, v).map_or(u32::MAX, |p| p as u32);
                        list.push((s as u32, d, p));
                    }
                }
                std::sync::Arc::new(list)
            })
            .collect();
        let mut net: mwc_congest::Network<std::sync::Arc<Vec<(u32, Weight, u32)>>> =
            mwc_congest::Network::new_auto(g);
        for v in 0..n {
            for w in g.comm_neighbors(v) {
                let words = (2 * entries[v].len() as u64).max(1);
                net.send(v, w, std::sync::Arc::clone(&entries[v]), words)
                    .expect("neighbors are linked");
            }
        }
        let mut nbr: Vec<
            std::collections::HashMap<NodeId, std::sync::Arc<Vec<(u32, Weight, u32)>>>,
        > = vec![std::collections::HashMap::new(); n];
        let mut out = RoundOutput::default();
        while net.step_bulk_into(&mut out) {
            for d in out.deliveries.drain(..) {
                nbr[d.to].insert(d.from, d.payload);
            }
        }
        ledger.absorb("detected-entry exchange", &net);

        for e in g.edges() {
            let (x, y) = (e.u, e.v);
            let Some(ylist) = nbr[x].get(&y) else {
                continue;
            };
            let ymap: std::collections::HashMap<u32, (Weight, u32)> =
                ylist.iter().map(|&(s, d, p)| (s, (d, p))).collect();
            for &(s, dx, xpred) in entries[x].iter() {
                let Some(&(dy, ypred)) = ymap.get(&s) else {
                    continue;
                };
                if xpred as usize == y || ypred as usize == x {
                    continue; // BFS-tree edge: no cycle
                }
                let cand = dx + dy + 1;
                if cand > q || best.weight().is_some_and(|b| cand >= b) {
                    continue;
                }
                if let Some(cyc) = crate::exchange::lca_cycle(&mat, s as usize, x, y) {
                    if cyc.len() as u64 <= q {
                        local_best[x] = local_best[x].min(cyc.len() as Weight);
                        let w = CycleWitness::new(cyc);
                        if let Ok(weight) = w.validate(&unit_view(g)) {
                            best.offer(weight, w);
                        }
                    }
                }
            }
        }
    }

    let tree = BfsTree::build(g, 0, &mut ledger);
    let _ = convergecast_min(g, &tree, local_best, &mut ledger);
    mwc_trace::check_bound(
        "core/shortest_cycle_within",
        mwc_trace::BoundInputs::n(n)
            .diameter(mwc_congest::bounds::diameter_upper_bound(g))
            .h(q)
            .k(n as u64),
        ledger.rounds,
        crate::bounds::detection,
    );
    best.into_outcome(ledger)
}

/// Unit-weight view for hop-count witness validation.
fn unit_view(g: &Graph) -> Graph {
    if g.is_unit_weight() {
        g.clone()
    } else {
        g.map_weights(|_| 1)
    }
}

/// `true` iff the graph contains a cycle of hop length at most `q`.
/// Convenience wrapper over [`shortest_cycle_within`].
pub fn has_cycle_within(g: &Graph, q: u64) -> bool {
    shortest_cycle_within(g, q).weight.is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwc_graph::generators::{connected_gnm, ring_with_chords, WeightRange};
    use mwc_graph::seq;
    use mwc_graph::Orientation;

    #[test]
    fn finds_exactly_the_q_bounded_girth() {
        for seed in 0..5 {
            let g = connected_gnm(40, 90, Orientation::Directed, WeightRange::unit(), seed);
            let girth = seq::mwc_directed_exact(&g).map(|m| m.weight);
            for q in 2..8 {
                let out = shortest_cycle_within(&g, q);
                out.assert_valid(&g.map_weights(|_| 1));
                match girth {
                    Some(girth) if girth <= q => assert_eq!(out.weight, Some(girth)),
                    _ => assert_eq!(out.weight, None, "q={q} girth={girth:?}"),
                }
            }
        }
    }

    #[test]
    fn undirected_ignores_degenerate_two_walks() {
        let g = ring_with_chords(12, 0, Orientation::Undirected, WeightRange::unit(), 0);
        assert_eq!(shortest_cycle_within(&g, 11).weight, None);
        assert_eq!(shortest_cycle_within(&g, 12).weight, Some(12));
    }

    #[test]
    fn weighted_graphs_count_hops() {
        let g = Graph::from_edges(
            3,
            Orientation::Directed,
            [(0, 1, 50), (1, 2, 60), (2, 0, 70)],
        )
        .unwrap();
        let out = shortest_cycle_within(&g, 3);
        assert_eq!(out.weight, Some(3), "hop length, not weight");
    }

    #[test]
    fn detection_is_cheap_on_sparse_graphs() {
        // Few sources within q hops of any node ⇒ the BFS part is ≪ n
        // rounds; the convergecast's +D term dominates on a ring.
        let g = ring_with_chords(400, 10, Orientation::Directed, WeightRange::unit(), 3);
        let out = shortest_cycle_within(&g, 4);
        let d = g.undirected_diameter().unwrap() as u64;
        assert!(
            out.ledger.rounds < 4 * d + 60,
            "sparse q-cycle detection should cost ~D, not ~n: {} rounds (D = {d})",
            out.ledger.rounds
        );
    }

    #[test]
    fn detection_is_expensive_on_the_lower_bound_gadget_shape() {
        // A dense bipartite-ish core: each node within 4 hops of Θ(n)
        // others ⇒ congestion forces Θ(n) rounds, the Ω̃(n) intuition.
        let g = connected_gnm(300, 3000, Orientation::Directed, WeightRange::unit(), 9);
        let out = shortest_cycle_within(&g, 4);
        assert!(
            out.ledger.rounds > 100,
            "dense q-cycle detection should congest: {} rounds",
            out.ledger.rounds
        );
    }

    #[test]
    fn has_cycle_wrapper() {
        let mut g = Graph::directed(6);
        for i in 0..5 {
            g.add_edge(i, i + 1, 1).unwrap();
        }
        assert!(!has_cycle_within(&g, 5));
        g.add_edge(5, 0, 1).unwrap();
        assert!(has_cycle_within(&g, 6));
        assert!(!has_cycle_within(&g, 5));
    }
}
