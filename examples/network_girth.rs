//! Network cycle analysis: girth of data-center-style topologies.
//!
//! Cycles are an important network feature (paper §1: deadlock detection,
//! cycle bases \[22, 42, 44\]); the girth bounds how local any routing loop
//! can be. This example compares the exact O(n)-round girth baseline with
//! the Õ(√n + D)-round (2 − 1/g)-approximation on three topologies, and
//! shows the approximation's advantage growing with n.
//!
//! Run with: `cargo run --release --example network_girth`

use congest_mwc::core::{approx_girth, exact_mwc, fundamental_cycle_basis, Params};
use congest_mwc::graph::generators::{connected_gnm, grid, ring_with_chords, WeightRange};
use congest_mwc::graph::{Graph, Orientation};

fn analyze(name: &str, g: &Graph, params: &Params) {
    let exact = exact_mwc(g);
    let approx = approx_girth(g, params);
    match (exact.weight, approx.weight) {
        (Some(girth), Some(rep)) => {
            println!(
                "{name:<28} n={:5}  girth={girth:3}  reported={rep:3}  rounds: exact {:7} vs approx {:6}  ({:.1}x)",
                g.n(),
                exact.ledger.rounds,
                approx.ledger.rounds,
                exact.ledger.rounds as f64 / approx.ledger.rounds.max(1) as f64,
            );
        }
        (None, None) => println!("{name:<28} acyclic"),
        other => unreachable!("exact and approx disagree on cyclicity: {other:?}"),
    }
}

fn main() {
    let params = Params::lean().with_seed(11);

    println!("-- fixed-size comparison across topologies --");
    let torus = {
        // A grid with wrap-around chords: girth 4.
        let mut g = grid(24, 24, Orientation::Undirected, WeightRange::unit(), 0);
        for r in 0..24 {
            g.add_edge(r * 24, r * 24 + 23, 1).unwrap();
        }
        g
    };
    analyze("torus 24×24", &torus, &params);
    analyze(
        "sparse mesh (gnm, m = 1.5n)",
        &connected_gnm(576, 288, Orientation::Undirected, WeightRange::unit(), 5),
        &params,
    );
    analyze(
        "ring + chords",
        &ring_with_chords(576, 20, Orientation::Undirected, WeightRange::unit(), 9),
        &params,
    );

    println!("\n-- cycle basis (the intro's other application) --");
    let g = connected_gnm(400, 520, Orientation::Undirected, WeightRange::unit(), 12);
    let basis = fundamental_cycle_basis(&g);
    println!(
        "fundamental cycle basis of a {}-node mesh: dimension {} (= m − n + 1 = {}), {} rounds",
        g.n(),
        basis.dimension(),
        g.m() - g.n() + 1,
        basis.ledger.rounds
    );
    let longest = basis.cycles.iter().map(|c| c.hop_len()).max().unwrap_or(0);
    println!(
        "longest basis cycle: {longest} hops (fundamental bases trade length for O(D) rounds)"
    );

    println!("\n-- scaling: the approximation pulls away as n grows --");
    let mut n = 256;
    while n <= 2048 {
        let g = connected_gnm(
            n,
            2 * n,
            Orientation::Undirected,
            WeightRange::unit(),
            n as u64,
        );
        analyze("gnm (m = 3n)", &g, &params);
        n *= 2;
    }
}
