#!/usr/bin/env bash
# Perf gate: regenerate every bench bin's RunRecord at pinned gate sizes
# and diff them against the committed baselines in results/baselines/.
#
# Usage:
#   scripts/perf_gate.sh            # run bins + trace_diff (exit 1 on
#                                   # regression, 2 on unpaired records)
#   scripts/perf_gate.sh refresh    # run bins, diff against the OLD
#                                   # baselines (tolerated — the diff and
#                                   # trajectory document the change), then
#                                   # overwrite the baselines (the
#                                   # one-command path for intentional perf
#                                   # changes — commit the result)
#
# The bins run in a scratch directory (target/perf_gate) so the committed
# full-size artifacts under results/ are never clobbered by the smaller
# gate-size runs; only results/baselines/ and the
# results/BENCH_trajectory.json append-log live in the repo.
#
# The sizes below are the gate contract: records are only comparable when
# name AND parameters match, so changing a size here requires a baseline
# refresh in the same commit.
set -euo pipefail
REPO="$(cd "$(dirname "$0")/.." && pwd)"
WORK="$REPO/target/perf_gate"
rm -rf "$WORK"
mkdir -p "$WORK"
cd "$WORK"

run() {
  cargo run --manifest-path "$REPO/Cargo.toml" --release --offline \
    -p mwc-bench --bin "$@" > /dev/null
}

run table1_girth 1024
run table1_directed 256
run table1_undirected_weighted 128
run table1_lower_bounds 12
run thm16_ksssp 256
run approx_quality 64 3
run ablation 128
run detection_rounds 12
run traffic_profile 12
run phase_breakdown directed 256
run trace_report 96

# Diff fresh records against the committed baselines FIRST, so a refresh
# still produces a meaningful BENCH_trajectory.json (base = old committed
# baselines, fresh = this run). Reports land in $WORK/results/
# (trace_diff_report.{txt,json}, BENCH_trajectory.json).
DIFF_STATUS=0
cargo run --manifest-path "$REPO/Cargo.toml" --release --offline \
  -p mwc-bench --bin trace_diff results/run_records "$REPO/results/baselines" \
  || DIFF_STATUS=$?

# Aggregate the gated run's observability artifacts: the per-bin
# shard-imbalance/cache-hit report, the combined OpenMetrics exposition
# (validated by the in-tree checker), and one appended entry per bin in
# the committed perf-trajectory log.
run mwc_metrics report results/run_records
run mwc_metrics check results/metrics.prom
cargo run --manifest-path "$REPO/Cargo.toml" --release --offline \
  -p mwc-bench --bin mwc_metrics append-trajectory results/run_records \
  "$REPO/results/BENCH_trajectory.json" > /dev/null

if [ "${1:-}" = refresh ]; then
  # Refreshing: regressions against the old baselines are being accepted
  # deliberately; only configuration errors (exit 2) still abort.
  if [ "$DIFF_STATUS" -ge 2 ]; then
    echo "perf_gate: trace_diff configuration error ($DIFF_STATUS)" >&2
    exit "$DIFF_STATUS"
  fi

  # The weighted benches must show the phase cache working: a refreshed
  # baseline with rounds_saved == 0 everywhere means the cache silently
  # stopped firing, and committing it would let the gate rot.
  for rec in table1_undirected_weighted table1_girth phase_breakdown_directed; do
    if ! grep -q '"rounds_saved": *[1-9]' "results/run_records/$rec.json"; then
      echo "perf_gate: refreshed $rec.json has no nonzero rounds_saved —" \
           "the phase cache is not firing; refusing to refresh" >&2
      exit 1
    fi
  done

  # The trajectory is NOT copied: it is an append-log that
  # `mwc_metrics append-trajectory` already extended above.
  mkdir -p "$REPO/results/baselines"
  cp results/run_records/*.json "$REPO/results/baselines/"
  echo "baselines refreshed from $WORK/results/run_records/"
else
  exit "$DIFF_STATUS"
fi
