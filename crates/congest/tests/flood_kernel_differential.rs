//! Flood-kernel differential suite: the bitset inner loop of
//! [`multi_source_bfs`] / [`source_detection`] is purely an execution
//! strategy, so *everything observable* must be byte-identical between
//! `MWC_FLOOD_KERNEL=scalar` and the default `bitset` kernel. On the
//! three workload families the Table-1 experiments sweep — unit-weight
//! girth graphs, weighted graphs run both plain and latency-stretched,
//! and directed graphs in both traversal directions — an identical
//! pipeline runs once per kernel and the suite compares, against the
//! scalar run:
//!
//! - the rendered [`RunRecord`] (params, spans, totals, congestion
//!   summaries — the exact bytes `trace_diff` gates on; the
//!   informational `flood_kernel` stamp is absent in records built
//!   straight from a trace, so the bytes really must match),
//! - the ledger's hot links and round/word/message totals,
//! - the [`DistMatrix`] digest (distances AND predecessors) and the
//!   full detection lists,
//! - the `MWC_TRACE_EVENTS` event log, line for line.
//!
//! The kernel knob is a process global, so runs take a lock and restore
//! the default on drop. Zero-weight edges ride along in the stretched
//! family: a `w = 0` edge stays unit-latency (one round to cross, zero
//! distance added), which is exactly the aliasing case the bitset
//! frontier's distance buckets must get right.

use std::sync::{Mutex, MutexGuard};

use mwc_congest::{
    broadcast, multi_source_bfs, set_flood_kernel, source_detection, BfsTree, DetectionLists,
    EventCapture, FloodKernel, Ledger, MultiBfsSpec,
};
use mwc_graph::generators::{connected_gnm, ring_with_chords, WeightRange};
use mwc_graph::seq::Direction;
use mwc_graph::{Graph, NodeId, Orientation, Weight};
use mwc_trace::{RunRecord, TraceSession};

static KERNEL_GLOBAL: Mutex<()> = Mutex::new(());

/// Holds the process-global kernel selection for one observed run:
/// takes the lock (the knob is shared by every test thread), installs
/// the kernel, and restores the bitset default on drop.
struct KernelConfig {
    _guard: MutexGuard<'static, ()>,
}

fn with_kernel(k: FloodKernel) -> KernelConfig {
    let guard = KERNEL_GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    set_flood_kernel(k);
    KernelConfig { _guard: guard }
}

impl Drop for KernelConfig {
    fn drop(&mut self) {
        set_flood_kernel(FloodKernel::Bitset);
    }
}

/// Everything a run exposes to the outside world. Two [`Observed`]
/// values comparing equal means no artifact — record bytes, ledger,
/// tables, event log — could distinguish the kernels.
#[derive(Debug, PartialEq, Eq)]
struct Observed {
    record: String,
    events: Vec<String>,
    unit_digest: u64,
    stretched_digest: u64,
    detection: DetectionLists,
    hot_links: Vec<((NodeId, NodeId), u64)>,
    totals: (u64, u64, u64),
}

/// Runs the flood-primitive pipeline on `g` under `kernel` and captures
/// every observable artifact: a plain multi-source BFS (the distance-
/// bucketed bitset fast path when the kernel allows), a latency-stretched
/// BFS over the edge weights (the calendar-queue bitset kernel when the
/// kernel allows — stretched floods are no longer a scalar-only path),
/// and a source detection.
fn observe(g: &Graph, direction: Direction, latency: &[Weight], kernel: FloodKernel) -> Observed {
    let _cfg = with_kernel(kernel);
    let cap = EventCapture::memory();
    let session = TraceSession::memory();
    let mut ledger = Ledger::new();

    let sources: Vec<NodeId> = (0..g.n()).step_by(2).collect();
    let unit_spec = MultiBfsSpec {
        direction,
        ..MultiBfsSpec::default()
    };
    let unit = multi_source_bfs(g, &sources, &unit_spec, "probe/unit", &mut ledger);
    let stretched_spec = MultiBfsSpec {
        direction,
        latency: Some(latency),
        ..MultiBfsSpec::default()
    };
    let stretched = multi_source_bfs(g, &sources, &stretched_spec, "probe/stretched", &mut ledger);
    let det = source_detection(g, &sources, 64, 3, direction, None, "probe", &mut ledger);

    let mut record = RunRecord::from_trace(
        "kernel_probe",
        vec![("n".into(), g.n().to_string())],
        &session.finish(),
    );
    record.push_congestion(ledger.congestion_summary("pipeline"));

    Observed {
        record: record.render(),
        events: cap.finish(),
        unit_digest: unit.digest(),
        stretched_digest: stretched.digest(),
        detection: det.lists,
        hot_links: ledger.hot_links(8),
        totals: (ledger.rounds, ledger.words, ledger.messages),
    }
}

/// Stretch table over `g`'s edge weights: `ℓ(e) = max(w(e), 1)`, so a
/// unit-weight graph stays unit-latency and a weighted one exercises
/// in-flight delivery (the scalar transit slab vs. the calendar ring).
fn weight_latency(g: &Graph) -> Vec<Weight> {
    g.edges().iter().map(|e| e.weight.max(1)).collect()
}

/// Raw edge weights as the latency table, 0 entries included: a `w = 0`
/// edge then adds zero distance but still takes one round to cross
/// (`FloodPlan` clamps travel time, not distance), and the whole flood
/// stays unit-latency when no weight exceeds 1 — so the *bitset* kernel
/// handles the zero-distance aliasing, not the scalar fallback.
fn raw_weight_latency(g: &Graph) -> Vec<Weight> {
    g.edges().iter().map(|e| e.weight).collect()
}

fn assert_kernel_invariant(g: &Graph, direction: Direction, latency: &[Weight], family: &str) {
    let scalar = observe(g, direction, latency, FloodKernel::Scalar);
    assert!(
        scalar.totals.0 > 0 && scalar.totals.1 > 0,
        "{family}: the pipeline must move traffic"
    );
    let bitset = observe(g, direction, latency, FloodKernel::Bitset);
    assert_eq!(
        bitset.record, scalar.record,
        "{family}: RunRecord bytes diverge between kernels"
    );
    assert_eq!(
        bitset.events, scalar.events,
        "{family}: event log diverges between kernels"
    );
    assert_eq!(
        bitset, scalar,
        "{family}: observable state diverges between kernels"
    );
}

#[test]
fn girth_family_is_kernel_invariant() {
    for seed in 0..3 {
        let g = connected_gnm(40, 90, Orientation::Undirected, WeightRange::unit(), seed);
        let lat = weight_latency(&g);
        assert_kernel_invariant(&g, Direction::Forward, &lat, "girth/connected_gnm");
    }
}

#[test]
fn weighted_family_is_kernel_invariant() {
    for seed in [2, 9] {
        let g = ring_with_chords(
            30,
            10,
            Orientation::Undirected,
            WeightRange::uniform(1, 9),
            seed,
        );
        let lat = weight_latency(&g);
        assert_kernel_invariant(&g, Direction::Forward, &lat, "weighted/ring_with_chords");
    }
}

#[test]
fn directed_family_is_kernel_invariant() {
    for seed in [3, 11] {
        let g = connected_gnm(
            28,
            70,
            Orientation::Directed,
            WeightRange::uniform(1, 6),
            seed,
        );
        let lat = weight_latency(&g);
        assert_kernel_invariant(&g, Direction::Forward, &lat, "directed/connected_gnm");
        assert_kernel_invariant(
            &g,
            Direction::Reverse,
            &lat,
            "directed-reverse/connected_gnm",
        );
    }
}

/// Zero-weight edges: a `{0, 1}`-weight graph run with its raw weights
/// as the latency table stays unit-latency, so the bitset kernel really
/// executes a flood where some hops add `dist_add = 0` — the aliasing
/// case for the frontier's distance buckets (one round crossed, zero
/// distance gained). Both kernels must agree byte-for-byte.
#[test]
fn zero_weight_family_is_kernel_invariant() {
    for seed in [1, 7] {
        let g = connected_gnm(
            32,
            80,
            Orientation::Directed,
            WeightRange::uniform(0, 1),
            seed,
        );
        let lat = raw_weight_latency(&g);
        assert!(
            lat.contains(&0) && lat.iter().all(|&l| l <= 1),
            "family must mix zero- and unit-weight edges"
        );
        assert_kernel_invariant(&g, Direction::Forward, &lat, "zero-weight/connected_gnm");
    }
}

/// Captures every observable of a [`broadcast`] (tree build + pipelined
/// upcast + downcast) under `kernel`. The downcast is charged in closed
/// form under the bitset kernel, so this pins its byte-identity to the
/// engine-stepped scalar reference: record bytes, event log, the
/// collected item list (content AND order), hot links, and totals.
fn observe_broadcast(
    g: &Graph,
    root: NodeId,
    items: Vec<(NodeId, u64)>,
    words_per_item: u64,
    kernel: FloodKernel,
) -> Observed {
    let _cfg = with_kernel(kernel);
    let cap = EventCapture::memory();
    let session = TraceSession::memory();
    let mut ledger = Ledger::new();

    let tree = BfsTree::build(g, root, &mut ledger);
    let all = broadcast(g, &tree, items, words_per_item, &mut ledger);

    let mut record = RunRecord::from_trace(
        "broadcast_probe",
        vec![("n".into(), g.n().to_string())],
        &session.finish(),
    );
    record.push_congestion(ledger.congestion_summary("broadcast"));

    // Fold the collected list into the digest slots so a reorder or a
    // dropped item shows up even though this probe has no DistMatrix.
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    for (origin, item) in &all {
        for part in [*origin as u64, *item] {
            digest ^= part;
            digest = digest.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    Observed {
        record: record.render(),
        events: cap.finish(),
        unit_digest: digest,
        stretched_digest: all.len() as u64,
        detection: DetectionLists::default(),
        hot_links: ledger.hot_links(8),
        totals: (ledger.rounds, ledger.words, ledger.messages),
    }
}

fn assert_broadcast_kernel_invariant(
    g: &Graph,
    root: NodeId,
    items: Vec<(NodeId, u64)>,
    words_per_item: u64,
    family: &str,
) {
    let scalar = observe_broadcast(g, root, items.clone(), words_per_item, FloodKernel::Scalar);
    let bitset = observe_broadcast(g, root, items, words_per_item, FloodKernel::Bitset);
    assert_eq!(
        bitset.record, scalar.record,
        "{family}: RunRecord bytes diverge between kernels"
    );
    assert_eq!(
        bitset.events, scalar.events,
        "{family}: event log diverges between kernels"
    );
    assert_eq!(
        bitset, scalar,
        "{family}: observable state diverges between kernels"
    );
}

/// The broadcast downcast — a saturated pipelined flood down the BFS
/// tree — is charged in closed form under the bitset kernel. Sweep the
/// shapes that stress the schedule: a path (maximum height, one chain),
/// a star (height 1, the root queue holds all `m` items), and random
/// connected graphs (branching trees), each with `m ∈ {0, 1, many}` and
/// single- vs multi-word items.
#[test]
fn broadcast_downcast_is_kernel_invariant() {
    // Path: 12 nodes rooted at one end.
    let mut path = Graph::undirected(12);
    for i in 0..11 {
        path.add_edge(i, i + 1, 1).unwrap();
    }
    // Star: hub 0 with 9 leaves.
    let mut star = Graph::undirected(10);
    for i in 1..10 {
        star.add_edge(0, i, 1).unwrap();
    }
    let gnm = connected_gnm(26, 50, Orientation::Undirected, WeightRange::unit(), 13);
    let shapes: [(&str, &Graph, NodeId); 3] =
        [("path", &path, 0), ("star", &star, 0), ("gnm", &gnm, 5)];
    for (name, g, root) in shapes {
        for m in [0usize, 1, 17] {
            for w in [1u64, 3] {
                let items: Vec<(NodeId, u64)> =
                    (0..m).map(|i| (i % g.n(), 1000 + i as u64)).collect();
                let family = format!("broadcast/{name}/m={m}/w={w}");
                assert_broadcast_kernel_invariant(g, root, items, w, &family);
            }
        }
    }
}

/// Heavy-tail latencies: one graph mixing zero-weight edges (unit travel,
/// zero distance — the deliver-before-expiry aliasing case), stretch-1
/// edges, and max-scale latencies hundreds of rounds long. The stretched
/// run stresses every calendar-ring behavior at once — deep parking,
/// quiet-gap fast-forwards across empty buckets, same-round collisions of
/// fast and slow arrivals — and the whole [`Observed`] surface must still
/// be byte-identical across `MWC_FLOOD_KERNEL=scalar|bitset`.
#[test]
fn heavy_tail_latency_family_is_kernel_invariant() {
    for seed in [4, 19] {
        let base = connected_gnm(
            36,
            96,
            Orientation::Directed,
            WeightRange::uniform(0, 1),
            seed,
        );
        // Remap weights onto a heavy-tailed scale keyed by edge index:
        // mostly short (0 / 1 / 2), a thick tail of 37s, and rare
        // 211-round outliers that dwarf the rest of the schedule.
        let edges: Vec<(usize, usize, Weight)> = base
            .edges()
            .iter()
            .enumerate()
            .map(|(i, e)| {
                let w = match i % 9 {
                    0 => 0,
                    1..=3 => 1,
                    4 | 5 => 2,
                    6 | 7 => 37,
                    _ => 211,
                };
                (e.u, e.v, w)
            })
            .collect();
        let g = Graph::from_edges(base.n(), Orientation::Directed, edges).unwrap();
        let lat = raw_weight_latency(&g);
        assert!(
            lat.contains(&0) && lat.contains(&1) && lat.contains(&211),
            "family must mix zero-weight, stretch-1, and max-scale edges"
        );
        assert_kernel_invariant(&g, Direction::Forward, &lat, "heavy-tail/connected_gnm");
        assert_kernel_invariant(
            &g,
            Direction::Reverse,
            &lat,
            "heavy-tail-reverse/connected_gnm",
        );
    }
}
