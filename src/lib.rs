//! **congest-mwc** — a reproduction of *“Computing Minimum Weight Cycle in
//! the CONGEST Model”* (Manoharan & Ramachandran, PODC 2024) as a Rust
//! workspace: a round-faithful CONGEST simulator, the paper's sublinear
//! MWC approximation algorithms with exact baselines and witnesses, the
//! lower-bound graph families, and a benchmark harness regenerating
//! Table 1.
//!
//! This facade crate re-exports the workspace members:
//!
//! - [`graph`] ([`mwc_graph`]): graph types, generators, sequential
//!   oracles, cycle witnesses.
//! - [`congest`] ([`mwc_congest`]): the simulator and CONGEST primitives.
//! - [`core`] ([`mwc_core`]): the paper's algorithms (Theorems 1.2.C/D,
//!   1.3.B, 1.4.C, 1.6) and exact baselines.
//! - [`lowerbounds`] ([`mwc_lowerbounds`]): disjointness gadgets and the
//!   two-party accounting harness.
//! - [`rng`] ([`mwc_rng`]): the in-tree deterministic RNG (seeded
//!   xoshiro256** with labeled substream forking) and the
//!   `proptest_lite` property-testing harness — the workspace has no
//!   external dependencies.
//!
//! # Quickstart
//!
//! ```
//! use congest_mwc::core::{approx_girth, exact_mwc, Params};
//! use congest_mwc::graph::generators::{connected_gnm, WeightRange};
//! use congest_mwc::graph::Orientation;
//!
//! let g = connected_gnm(200, 400, Orientation::Undirected, WeightRange::unit(), 7);
//! let exact = exact_mwc(&g);
//! let approx = approx_girth(&g, &Params::new());
//! let (girth, reported) = (exact.weight.unwrap(), approx.weight.unwrap());
//! assert!(reported >= girth && reported <= 2 * girth - 1);
//! // The approximation uses far fewer simulated CONGEST rounds:
//! assert!(approx.ledger.rounds < exact.ledger.rounds);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mwc_congest as congest;
pub use mwc_core as core;
pub use mwc_graph as graph;
pub use mwc_lowerbounds as lowerbounds;
pub use mwc_rng as rng;
