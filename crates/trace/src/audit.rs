//! Theoretical-bound auditing.
//!
//! Every algorithm entry point registers its paper round bound as a closure
//! of the instance parameters `(n, D, h, k, ε)` and reports the rounds it
//! actually used. The auditor computes the measured-vs-bound ratio, records
//! it into the active trace (if any), and — in debug builds — fails an
//! assertion when the measurement exceeds the bound by more than the
//! `MWC_TRACE_BOUND_FACTOR` slack factor (default `1.0`).
//!
//! The closures encode *concrete* envelopes: the paper's asymptotic bounds
//! with explicit constants calibrated against the simulator (see
//! `docs/observability.md` for the full table). A regression that blows a
//! constant — an extra BFS sweep, a dropped pipeline — therefore fails every
//! debug test run, not just a dedicated benchmark.

use crate::json::Json;

/// The instance parameters a round bound may depend on.
///
/// Unused fields are zero; `diameter` is always an *upper bound* on the
/// hop diameter of the communication topology (audits compare measured ≤
/// bound, so overestimating D is safe while underestimating is not).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct BoundInputs {
    /// Number of nodes.
    pub n: usize,
    /// Upper bound on the hop diameter of the communication graph.
    pub diameter: u64,
    /// The algorithm's hop parameter (h-hop BFS depth, sample bound, …).
    pub h: u64,
    /// The algorithm's cardinality parameter (sources k, σ, message count, …).
    pub k: u64,
    /// Approximation parameter ε (zero for exact algorithms).
    pub eps: f64,
}

impl BoundInputs {
    /// Inputs with just `n` set; builder-style setters fill the rest.
    pub fn n(n: usize) -> Self {
        BoundInputs {
            n,
            ..BoundInputs::default()
        }
    }

    /// Sets the diameter upper bound.
    pub fn diameter(mut self, d: u64) -> Self {
        self.diameter = d;
        self
    }

    /// Sets the hop parameter.
    pub fn h(mut self, h: u64) -> Self {
        self.h = h;
        self
    }

    /// Sets the cardinality parameter.
    pub fn k(mut self, k: u64) -> Self {
        self.k = k;
        self
    }

    /// Sets ε.
    pub fn eps(mut self, eps: f64) -> Self {
        self.eps = eps;
        self
    }
}

/// One recorded audit: an algorithm's measured rounds against its bound.
#[derive(Clone, Debug)]
pub struct AuditRecord {
    /// Registered algorithm name, e.g. `"congest/multibfs"`.
    pub algorithm: String,
    /// Rounds the run actually took.
    pub measured_rounds: u64,
    /// The bound closure evaluated on [`AuditRecord::inputs`].
    pub bound_rounds: f64,
    /// `measured / bound` (bound clamped to ≥ 1).
    pub ratio: f64,
    /// The instance parameters the bound was evaluated on.
    pub inputs: BoundInputs,
}

impl AuditRecord {
    pub(crate) fn to_json(&self) -> Json {
        Json::obj([
            ("algorithm", Json::str(&self.algorithm)),
            ("measured_rounds", Json::U64(self.measured_rounds)),
            ("bound_rounds", Json::F64(self.bound_rounds)),
            ("ratio", Json::F64(self.ratio)),
            ("n", Json::U64(self.inputs.n as u64)),
            ("diameter", Json::U64(self.inputs.diameter)),
            ("h", Json::U64(self.inputs.h)),
            ("k", Json::U64(self.inputs.k)),
            ("eps", Json::F64(self.inputs.eps)),
        ])
    }

    pub(crate) fn to_event_json(&self) -> Json {
        match self.to_json() {
            Json::Obj(mut pairs) => {
                pairs.insert(0, ("ev".to_owned(), Json::str("audit")));
                Json::Obj(pairs)
            }
            other => other,
        }
    }
}

/// The configured slack factor from `MWC_TRACE_BOUND_FACTOR` (default 1.0).
///
/// Read once per process; set it to a large value to disarm the debug
/// assertion when deliberately running outside an algorithm's parameter
/// regime.
pub fn bound_factor() -> f64 {
    use std::sync::OnceLock;
    static FACTOR: OnceLock<f64> = OnceLock::new();
    *FACTOR.get_or_init(|| {
        std::env::var("MWC_TRACE_BOUND_FACTOR")
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .filter(|f| f.is_finite() && *f > 0.0)
            .unwrap_or(1.0)
    })
}

/// Audits a finished run against its registered bound.
///
/// Evaluates `bound` on `inputs`, records the [`AuditRecord`] into the
/// active trace, and returns it. In debug builds, asserts
/// `measured ≤ bound × MWC_TRACE_BOUND_FACTOR`.
///
/// # Panics
///
/// Debug builds panic when the measurement exceeds the slacked bound —
/// that is the point: every debug test run doubles as a regression check
/// on the paper's round bounds.
pub fn check_bound(
    algorithm: &str,
    inputs: BoundInputs,
    measured_rounds: u64,
    bound: impl FnOnce(&BoundInputs) -> f64,
) -> AuditRecord {
    let bound_rounds = bound(&inputs);
    let ratio = measured_rounds as f64 / bound_rounds.max(1.0);
    let record = AuditRecord {
        algorithm: algorithm.to_owned(),
        measured_rounds,
        bound_rounds,
        ratio,
        inputs,
    };
    crate::record_audit(record.clone());
    let factor = bound_factor();
    debug_assert!(
        measured_rounds as f64 <= bound_rounds.max(1.0) * factor,
        "bound audit failed for {algorithm}: measured {measured_rounds} rounds > \
         {bound_rounds:.0} × factor {factor} on {inputs:?}"
    );
    record
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TraceSession;

    #[test]
    fn passing_audit_records_ratio() {
        let session = TraceSession::memory();
        let rec = check_bound("test/alg", BoundInputs::n(100).h(10), 40, |i| {
            5.0 * i.h as f64
        });
        assert!((rec.ratio - 0.8).abs() < 1e-12);
        let data = session.finish();
        assert_eq!(data.orphan_audits.len(), 1);
        assert_eq!(data.all_audits().len(), 1);
        assert!(data.events[0].contains("\"ev\":\"audit\""));
    }

    #[test]
    fn audits_attach_to_open_span() {
        let session = TraceSession::memory();
        {
            let _s = crate::span("alg");
            check_bound("test/alg", BoundInputs::n(4), 1, |_| 10.0);
        }
        let data = session.finish();
        assert_eq!(data.roots[0].audits.len(), 1);
        assert!(data.orphan_audits.is_empty());
    }

    #[test]
    #[should_panic(expected = "bound audit failed")]
    #[cfg(debug_assertions)]
    fn failing_audit_panics_in_debug() {
        check_bound("test/fail", BoundInputs::n(4), 1000, |_| 10.0);
    }

    #[test]
    fn zero_bound_is_clamped() {
        // A degenerate bound of 0 must not divide by zero or reject a
        // zero-round run.
        let rec = check_bound("test/zero", BoundInputs::n(0), 0, |_| 0.0);
        assert_eq!(rec.ratio, 0.0);
    }
}
