//! Terminal plots for the experiment binaries: log-log scatter charts
//! (round complexity vs `n`) and sparklines (congestion timelines). Pure
//! ASCII/Unicode — the TSVs under `results/` hold the raw data for real
//! plotting tools.

use std::fmt::Write as _;

/// Renders a log-log scatter chart of one or more `(x, y)` series, each
/// drawn with its own glyph. Points must be positive.
///
/// # Panics
///
/// Panics if all series are empty or any coordinate is non-positive.
pub fn loglog_chart(
    title: &str,
    series: &[(&str, Vec<(f64, f64)>)],
    width: usize,
    height: usize,
) -> String {
    let pts: Vec<(f64, f64)> = series.iter().flat_map(|(_, s)| s.iter().copied()).collect();
    assert!(!pts.is_empty(), "need at least one point");
    assert!(
        pts.iter().all(|&(x, y)| x > 0.0 && y > 0.0),
        "log-log chart needs positive coordinates"
    );
    let (mut x0, mut x1) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y0, mut y1) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &pts {
        x0 = x0.min(x.ln());
        x1 = x1.max(x.ln());
        y0 = y0.min(y.ln());
        y1 = y1.max(y.ln());
    }
    let (xr, yr) = ((x1 - x0).max(1e-9), (y1 - y0).max(1e-9));
    let glyphs = ['*', 'o', '+', 'x', '#', '@'];
    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, s)) in series.iter().enumerate() {
        let glyph = glyphs[si % glyphs.len()];
        for &(x, y) in s {
            let cx = (((x.ln() - x0) / xr) * (width - 1) as f64).round() as usize;
            let cy = (((y.ln() - y0) / yr) * (height - 1) as f64).round() as usize;
            grid[height - 1 - cy][cx] = glyph;
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "{title}  (log-log)");
    let ymax = pts.iter().map(|&(_, y)| y).fold(f64::MIN, f64::max);
    let ymin = pts.iter().map(|&(_, y)| y).fold(f64::MAX, f64::min);
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            format!("{ymax:>9.0} ")
        } else if i == height - 1 {
            format!("{ymin:>9.0} ")
        } else {
            " ".repeat(10)
        };
        let _ = writeln!(out, "{label}|{}", row.iter().collect::<String>());
    }
    let xmin = pts.iter().map(|&(x, _)| x).fold(f64::MAX, f64::min);
    let xmax = pts.iter().map(|&(x, _)| x).fold(f64::MIN, f64::max);
    let _ = writeln!(out, "{}+{}", " ".repeat(10), "-".repeat(width));
    let _ = writeln!(
        out,
        "{}{:<10.0}{:>w$.0}",
        " ".repeat(10),
        xmin,
        xmax,
        w = width - 10
    );
    let legend: Vec<String> = series
        .iter()
        .enumerate()
        .map(|(i, (name, _))| format!("{} {}", glyphs[i % glyphs.len()], name))
        .collect();
    let _ = writeln!(out, "{}{}", " ".repeat(11), legend.join("    "));
    out
}

/// Renders a sparkline of values using eighth-block glyphs, scaled to the
/// series' own maximum.
pub fn sparkline(values: &[u64]) -> String {
    let max = values.iter().copied().max().unwrap_or(0).max(1);
    sparkline_scaled(values, max)
}

/// Sparkline scaled against an external maximum — lets several series
/// share one scale so their peaks are comparable.
pub fn sparkline_scaled(values: &[u64], max: u64) -> String {
    const BLOCKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = max.max(1);
    values
        .iter()
        .map(|&v| BLOCKS[(((v.min(max)) * 7) / max) as usize])
        .collect()
}

/// Downsamples a timeline to at most `buckets` points by max-pooling —
/// keeps congestion peaks visible in a short sparkline.
pub fn downsample_max(values: &[u64], buckets: usize) -> Vec<u64> {
    if values.len() <= buckets || buckets == 0 {
        return values.to_vec();
    }
    let chunk = values.len().div_ceil(buckets);
    values
        .chunks(chunk)
        .map(|c| c.iter().copied().max().unwrap_or(0))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chart_contains_glyphs_and_legend() {
        let series = vec![
            (
                "exact",
                vec![(128.0, 400.0), (256.0, 800.0), (512.0, 1600.0)],
            ),
            (
                "approx",
                vec![(128.0, 165.0), (256.0, 261.0), (512.0, 407.0)],
            ),
        ];
        let c = loglog_chart("rounds vs n", &series, 40, 10);
        assert!(c.contains('*'));
        assert!(c.contains('o'));
        assert!(c.contains("exact"));
        assert!(c.contains("approx"));
        assert!(c.contains("log-log"));
    }

    #[test]
    #[should_panic(expected = "positive coordinates")]
    fn chart_rejects_zero() {
        let _ = loglog_chart("t", &[("s", vec![(0.0, 1.0)])], 10, 5);
    }

    #[test]
    fn sparkline_scales() {
        let s = sparkline(&[0, 1, 2, 4, 8]);
        assert_eq!(s.chars().count(), 5);
        assert!(s.ends_with('█'));
        assert!(s.starts_with('▁'));
    }

    #[test]
    fn shared_scale_compares_series() {
        let hot = sparkline_scaled(&[8, 8, 8], 8);
        let cold = sparkline_scaled(&[1, 1, 1], 8);
        assert_eq!(hot, "███");
        assert_eq!(cold, "▁▁▁");
    }

    #[test]
    fn downsample_keeps_peaks() {
        let v: Vec<u64> = (0..100).map(|i| if i == 57 { 1000 } else { 1 }).collect();
        let d = downsample_max(&v, 10);
        assert!(d.len() <= 10);
        assert!(d.contains(&1000));
    }
}
