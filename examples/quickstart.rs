//! Quickstart: build a graph, compute its minimum weight cycle exactly
//! and approximately, and inspect the round costs and witness cycles.
//!
//! Run with: `cargo run --release --example quickstart`

use congest_mwc::core::{approx_girth, exact_mwc, Params};
use congest_mwc::graph::generators::{connected_gnm, WeightRange};
use congest_mwc::graph::Orientation;

fn main() {
    // A connected random network of 400 routers with 900 links.
    let n = 400;
    let g = connected_gnm(n, 900, Orientation::Undirected, WeightRange::unit(), 2024);
    println!(
        "network: n = {}, m = {}, diameter D = {}",
        g.n(),
        g.m(),
        g.undirected_diameter().expect("connected")
    );

    // Exact distributed girth: the O(n)-round baseline [28].
    let exact = exact_mwc(&g);
    let girth = exact.weight.expect("this network has cycles");
    println!(
        "\nexact girth      = {girth:3}   in {:6} CONGEST rounds",
        exact.ledger.rounds
    );
    println!("  witness: {}", exact.witness.as_ref().unwrap());

    // (2 − 1/g)-approximation in Õ(√n + D) rounds (Theorem 1.3.B).
    let approx = approx_girth(&g, &Params::new().with_seed(1));
    let reported = approx.weight.expect("approximation finds a cycle");
    println!(
        "approx girth     = {reported:3}   in {:6} CONGEST rounds ({}x fewer)",
        approx.ledger.rounds,
        exact.ledger.rounds / approx.ledger.rounds.max(1)
    );
    println!("  witness: {}", approx.witness.as_ref().unwrap());
    println!(
        "  guarantee: girth ≤ reported ≤ (2 − 1/g)·girth, i.e. {} ≤ {} ≤ {}",
        girth,
        reported,
        2 * girth - 1
    );

    // Where did the rounds go? The ledger has the per-phase breakdown.
    println!("\nround breakdown of the approximation:");
    print!("{}", approx.ledger);
}
