//! Single-source shortest paths and the small-`k` strategies of Theorem
//! 1.6.
//!
//! Theorem 1.6.A's bound for `k < n^{1/3}` sources is a *minimum* of two
//! strategies: the skeleton pipeline with `h = √(nk)` (`Õ(n/k + √(nk) +
//! D)`) and simply repeating single-source computations
//! (`k · SSSP`). This module provides:
//!
//! - [`sssp_bfs`]: single-source BFS in `O(ecc(src)) ≤ O(D)` rounds;
//! - [`sssp_exact_weighted`]: exact weighted SSSP via a stretched BFS
//!   (waves at weight-speed), `O(max distance)` rounds — the simple
//!   baseline the paper's `SSSP` term refers to, for bounded weights;
//! - [`k_source_bfs_repeated`]: `k` sequential single-source BFS runs,
//!   `O(k·D)` rounds;
//! - [`k_source_bfs_auto`]: picks between the skeleton pipeline and
//!   repetition with the paper's `min(·,·)` rule, instantiated with the
//!   measured diameter.

use crate::ksssp::{k_source_bfs, KSourceDistances};
use crate::params::Params;
use mwc_congest::{multi_source_bfs, DistMatrix, Ledger, MultiBfsSpec, INF};
use mwc_graph::seq::Direction;
use mwc_graph::{Graph, NodeId, Weight};

/// Distances from one source with path reconstruction and accounting.
#[derive(Clone, Debug)]
pub struct SsspResult {
    mat: DistMatrix,
    /// Round/traffic accounting.
    pub ledger: Ledger,
}

impl SsspResult {
    /// Distance from the source to `v` ([`INF`] if unreachable).
    pub fn dist(&self, v: NodeId) -> Weight {
        self.mat.get_row(0, v)
    }

    /// The discovered shortest path source → v.
    pub fn path(&self, v: NodeId) -> Option<Vec<NodeId>> {
        self.mat.path_from_source(0, v)
    }
}

/// Single-source BFS (hop distances) in `O(ecc(src)) ≤ O(D)` rounds.
///
/// # Examples
///
/// ```
/// use mwc_core::sssp::sssp_bfs;
/// use mwc_graph::{Graph, Orientation};
/// use mwc_graph::seq::Direction;
///
/// # fn main() -> Result<(), mwc_graph::GraphError> {
/// let g = Graph::from_edges(3, Orientation::Directed, [(0, 1, 1), (1, 2, 1)])?;
/// let out = sssp_bfs(&g, 0, Direction::Forward);
/// assert_eq!(out.dist(2), 2);
/// assert!(out.ledger.rounds <= 3);
/// # Ok(())
/// # }
/// ```
pub fn sssp_bfs(g: &Graph, src: NodeId, direction: Direction) -> SsspResult {
    let _span = mwc_trace::span("sssp/bfs");
    let mut ledger = Ledger::new();
    let spec = MultiBfsSpec {
        max_dist: INF,
        direction,
        latency: None,
    };
    let mat = multi_source_bfs(g, &[src], &spec, "single-source BFS", &mut ledger);
    mwc_trace::check_bound(
        "core/sssp_bfs",
        mwc_trace::BoundInputs::n(g.n())
            .diameter(mwc_congest::bounds::diameter_upper_bound(g))
            .h(mwc_congest::bounds::effective_hops(g.n(), INF, None, g.m()))
            .k(1),
        ledger.rounds,
        crate::bounds::apsp,
    );
    SsspResult { mat, ledger }
}

/// Exact weighted SSSP via a stretched BFS: distances are exact because
/// waves travel at weight-speed; rounds are `O(max reachable distance)`,
/// near-`D·W` for bounded weights. This is the simple exact baseline
/// behind the paper's `k·SSSP` term (its sharper `SSSP` bound \[9\] is a
/// documented substitution, DESIGN.md §2).
pub fn sssp_exact_weighted(g: &Graph, src: NodeId, direction: Direction) -> SsspResult {
    let _span = mwc_trace::span("sssp/exact-weighted");
    let mut ledger = Ledger::new();
    let lat: Vec<Weight> = g.edges().iter().map(|e| e.weight).collect();
    let spec = MultiBfsSpec {
        max_dist: INF,
        direction,
        latency: Some(&lat),
    };
    let mat = multi_source_bfs(g, &[src], &spec, "stretched exact SSSP", &mut ledger);
    mwc_trace::check_bound(
        "core/sssp_exact_weighted",
        mwc_trace::BoundInputs::n(g.n())
            .diameter(mwc_congest::bounds::diameter_upper_bound(g))
            .h(mwc_congest::bounds::effective_hops(
                g.n(),
                INF,
                Some(&lat),
                g.m(),
            ))
            .k(1),
        ledger.rounds,
        crate::bounds::apsp,
    );
    SsspResult { mat, ledger }
}

/// `(1+ε)`-approximate weighted SSSP from a single source — Theorem
/// 1.6.B specialized to `k = 1` (a thin wrapper over
/// [`k_source_approx_sssp`](crate::k_source_approx_sssp)).
///
/// # Panics
///
/// Panics on zero edge weights or a disconnected communication topology.
pub fn sssp_approx(
    g: &Graph,
    src: NodeId,
    direction: Direction,
    params: &Params,
) -> crate::KSourceApproxSssp {
    let _span = mwc_trace::span("sssp/approx");
    crate::k_source_approx_sssp(g, &[src], direction, params)
}

/// `k`-source BFS by sequential repetition: `k` single-source runs, one
/// after another, `O(k·D)` rounds total. The winning strategy of Theorem
/// 1.6.A when `k` is small and `D` is small.
pub fn k_source_bfs_repeated(
    g: &Graph,
    sources: &[NodeId],
    direction: Direction,
) -> (DistMatrix, Ledger) {
    let _span = mwc_trace::span("ksssp/repeated");
    let mut ledger = Ledger::new();
    let mut combined = DistMatrix::new(g.n(), sources.to_vec());
    for (row, &s) in sources.iter().enumerate() {
        let spec = MultiBfsSpec {
            max_dist: INF,
            direction,
            latency: None,
        };
        let mat = multi_source_bfs(g, &[s], &spec, &format!("BFS from source {s}"), &mut ledger);
        for v in 0..g.n() {
            let d = mat.get_row(0, v);
            if d != INF {
                combined.set_row(row, v, d, mat.pred_row(0, v));
            }
        }
    }
    mwc_trace::check_bound(
        "core/k_source_bfs_repeated",
        mwc_trace::BoundInputs::n(g.n())
            .diameter(mwc_congest::bounds::diameter_upper_bound(g))
            .k(sources.len() as u64),
        ledger.rounds,
        crate::bounds::ksssp_repeated,
    );
    (combined, ledger)
}

/// Which strategy [`k_source_bfs_auto`] chose.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum KSourceStrategy {
    /// The skeleton pipeline of Algorithm 1 (`Õ(n/k + √(nk) + D)`).
    Skeleton,
    /// `k` sequential single-source runs (`O(k·D)`).
    Repeated,
}

/// Theorem 1.6.A over the whole range of `k`: picks the cheaper of the
/// skeleton pipeline and `k`-fold repetition using the paper's
/// `min(Õ(n/k + √(nk) + D), k·SSSP)` rule, instantiated with the actual
/// diameter (computed distributively by a BFS-tree build, whose `O(D)`
/// cost is charged).
///
/// Returns the distances, the chosen strategy, and the total ledger.
pub fn k_source_bfs_auto(
    g: &Graph,
    sources: &[NodeId],
    direction: Direction,
    params: &Params,
) -> (KSourceDistances, KSourceStrategy) {
    let _span = mwc_trace::span("ksssp/auto");
    let n = g.n().max(2) as f64;
    let k = sources.len().max(1) as f64;
    // Estimate D via a BFS-tree from node 0 (height ≤ D ≤ 2·height).
    let mut probe_ledger = Ledger::new();
    let tree = mwc_congest::BfsTree::build(g, 0, &mut probe_ledger);
    let d_est = (2 * tree.height).max(1) as f64;

    // Cost model with the preset's actual sampling constant: |S| ≈
    // c·ln n·√(n/k), so the skeleton pays ≈ |S|² + |S|·√(nk)-ish plus D.
    let c = params.sampling_factor * n.ln();
    let skeleton_est = c * c * n / k + c * (n * k).sqrt() + d_est;
    let repeated_est = k * d_est;

    if repeated_est <= skeleton_est {
        let (mat, mut ledger) = k_source_bfs_repeated(g, sources, direction);
        ledger.merge(&probe_ledger);
        let out = KSourceDistances::from_direct(sources.to_vec(), mat, ledger);
        (out, KSourceStrategy::Repeated)
    } else {
        let mut out = k_source_bfs(g, sources, direction, params);
        out.ledger.merge(&probe_ledger);
        (out, KSourceStrategy::Skeleton)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwc_graph::generators::{connected_gnm, ring_with_chords, WeightRange};
    use mwc_graph::seq::{bfs, dijkstra, HOP_INF, INF as SEQ_INF};
    use mwc_graph::Orientation;

    #[test]
    fn single_source_bfs_exact_and_cheap() {
        let g = connected_gnm(80, 160, Orientation::Directed, WeightRange::unit(), 3);
        let out = sssp_bfs(&g, 5, Direction::Forward);
        let t = bfs(&g, 5, Direction::Forward);
        for v in 0..g.n() {
            let expect = if t.dist[v] == HOP_INF {
                INF
            } else {
                t.dist[v] as Weight
            };
            assert_eq!(out.dist(v), expect);
        }
        // One BFS costs about the eccentricity, far below n.
        assert!(out.ledger.rounds < 80);
    }

    #[test]
    fn exact_weighted_sssp_matches_dijkstra() {
        let g = connected_gnm(
            60,
            140,
            Orientation::Directed,
            WeightRange::uniform(1, 9),
            8,
        );
        let out = sssp_exact_weighted(&g, 0, Direction::Forward);
        let t = dijkstra(&g, 0, Direction::Forward);
        for v in 0..g.n() {
            let expect = if t.dist[v] == SEQ_INF { INF } else { t.dist[v] };
            assert_eq!(out.dist(v), expect, "node {v}");
        }
        // Paths are real.
        for v in 0..g.n() {
            if out.dist(v) != INF && v != 0 {
                let p = out.path(v).expect("reachable");
                for w in p.windows(2) {
                    assert!(g.has_edge(w[0], w[1]));
                }
            }
        }
    }

    #[test]
    fn single_source_approx_wrapper() {
        let g = connected_gnm(
            50,
            110,
            Orientation::Directed,
            WeightRange::uniform(1, 9),
            2,
        );
        let out = sssp_approx(&g, 7, Direction::Forward, &Params::new().with_seed(1));
        let t = dijkstra(&g, 7, Direction::Forward);
        for v in 0..g.n() {
            if t.dist[v] == SEQ_INF {
                assert_eq!(out.get_row(0, v), INF);
            } else {
                let est = out.get_row(0, v);
                assert!(est >= t.dist[v]);
                assert!(est as f64 <= 1.25 * t.dist[v] as f64 + 4.0);
            }
        }
    }

    #[test]
    fn repeated_matches_skeleton() {
        let g = connected_gnm(70, 150, Orientation::Directed, WeightRange::unit(), 4);
        let sources = [0, 9, 33];
        let (mat, ledger) = k_source_bfs_repeated(&g, &sources, Direction::Forward);
        let sk = k_source_bfs(
            &g,
            &sources,
            Direction::Forward,
            &Params::new().with_seed(2),
        );
        for (row, _) in sources.iter().enumerate() {
            for v in 0..g.n() {
                assert_eq!(mat.get_row(row, v), sk.get_row(row, v));
            }
        }
        assert!(ledger.rounds > 0);
    }

    #[test]
    fn auto_picks_repetition_for_tiny_k_small_d() {
        // Dense graph: D small, k tiny ⇒ repetition wins.
        let g = connected_gnm(200, 1200, Orientation::Directed, WeightRange::unit(), 6);
        let (out, strat) = k_source_bfs_auto(&g, &[0, 50], Direction::Forward, &Params::lean());
        assert_eq!(strat, KSourceStrategy::Repeated);
        let t = bfs(&g, 0, Direction::Forward);
        for v in 0..g.n() {
            let expect = if t.dist[v] == HOP_INF {
                INF
            } else {
                t.dist[v] as Weight
            };
            assert_eq!(out.get_row(0, v), expect);
        }
    }

    #[test]
    fn auto_picks_skeleton_for_large_k() {
        let g = connected_gnm(200, 600, Orientation::Directed, WeightRange::unit(), 7);
        let sources: Vec<NodeId> = (0..100).map(|i| i * 2).collect();
        let (out, strat) = k_source_bfs_auto(&g, &sources, Direction::Forward, &Params::lean());
        assert_eq!(strat, KSourceStrategy::Skeleton);
        let t = bfs(&g, 4, Direction::Forward);
        for v in 0..g.n() {
            let expect = if t.dist[v] == HOP_INF {
                INF
            } else {
                t.dist[v] as Weight
            };
            assert_eq!(out.get(4, v), expect);
        }
    }

    #[test]
    fn repeated_on_high_diameter_ring_is_costly() {
        // The tradeoff's other side: on a ring (D ≈ n/2), repetition pays
        // k·D while the skeleton pays Õ(√(nk) + n/k + D).
        let g = ring_with_chords(128, 0, Orientation::Directed, WeightRange::unit(), 0);
        let sources: Vec<NodeId> = (0..16).map(|i| i * 8).collect();
        let (_, rep_ledger) = k_source_bfs_repeated(&g, &sources, Direction::Forward);
        // k·D = 16·127 ≈ 2032; each BFS costs ecc = n−1.
        assert!(
            rep_ledger.rounds >= 16 * 100,
            "rounds {}",
            rep_ledger.rounds
        );
    }
}
