//! **QUAL** — approximation-quality audit: every approximation algorithm
//! against the exact optimum, across graph families and seeds.
//!
//! For each (algorithm, family, seed) the audit records the reported /
//! optimum ratio and checks it against the theorem's bound:
//! 2 for Theorem 1.2.C, `2 − 1/g` for 1.3.B, `2 + ε` for 1.4.C / 1.2.D.
//! The summary reports the worst and mean observed ratio per algorithm —
//! typically far below the bound, since the witnesses are real cycles.
//!
//! Usage: `approx_quality [n]` (default 96) `[seeds]` (default 10).

use mwc_bench::{report, Table};
use mwc_core::{
    approx_girth, approx_mwc_directed_weighted, approx_mwc_undirected_weighted, exact_mwc,
    two_approx_directed_mwc, Params,
};
use mwc_graph::generators::{connected_gnm, planted_cycle, ring_with_chords, WeightRange};
use mwc_graph::{Graph, Orientation};

struct Audit {
    name: &'static str,
    ratios: Vec<f64>,
    bound_violations: usize,
}

impl Audit {
    fn new(name: &'static str) -> Self {
        Audit {
            name,
            ratios: Vec::new(),
            bound_violations: 0,
        }
    }

    fn record(&mut self, reported: u64, opt: u64, bound: f64) {
        let r = reported as f64 / opt as f64;
        self.ratios.push(r);
        if r > bound + 1e-9 {
            self.bound_violations += 1;
        }
    }

    fn summary(&self) -> (f64, f64) {
        let worst = self.ratios.iter().cloned().fold(0.0f64, f64::max);
        let mean = self.ratios.iter().sum::<f64>() / self.ratios.len().max(1) as f64;
        (worst, mean)
    }
}

fn families(
    orientation: Orientation,
    weights: WeightRange,
    n: usize,
    seed: u64,
) -> Vec<(&'static str, Graph)> {
    vec![
        (
            "gnm-sparse",
            connected_gnm(n, n, orientation, weights, seed),
        ),
        (
            "gnm-dense",
            connected_gnm(n, 4 * n, orientation, weights, seed + 1),
        ),
        (
            "ring-chords",
            ring_with_chords(n, n / 4, orientation, weights, seed + 2),
        ),
        ("planted", {
            let len = if orientation == Orientation::Directed {
                3
            } else {
                4
            };
            // Background edges at the top of the family's weight range so
            // the planted cycle is (usually) the MWC; for unit-weight
            // families the planted cycle is simply a shortest-possible one.
            let bg = if weights.max == 1 {
                WeightRange::unit()
            } else {
                WeightRange::uniform(weights.max, weights.max * 2)
            };
            planted_cycle(n, 2 * n, len, weights.min, orientation, bg, seed + 3).0
        }),
    ]
}

/// Count allocator traffic so this bin's run record and optional Chrome
/// trace export carry allocation profile data alongside simulated rounds.
#[global_allocator]
static ALLOC: mwc_trace::profile::CountingAlloc = mwc_trace::profile::CountingAlloc;

fn main() {
    report::init_profiling();
    report::init_flood_kernel();
    let n: usize = report::arg(1, 96);
    let seeds: u64 = report::arg(2, 10);
    let mut rec = report::RunRecorder::start("approx_quality");
    rec.param("n", n);
    rec.param("seeds", seeds);

    let mut audits = [
        Audit::new("2-approx directed (Thm 1.2.C, bound 2)"),
        Audit::new("(2−1/g) girth (Thm 1.3.B)"),
        Audit::new("(2+ε) undirected weighted (Thm 1.4.C)"),
        Audit::new("(2+ε) directed weighted (Thm 1.2.D)"),
    ];
    let eps = 0.25;

    for seed in 0..seeds {
        let params = Params::new().with_seed(seed).with_epsilon(eps);

        for (_, g) in families(Orientation::Directed, WeightRange::unit(), n, seed * 100) {
            if let Some(opt) = exact_mwc(&g).weight {
                let rep = two_approx_directed_mwc(&g, &params)
                    .weight
                    .expect("finds a cycle");
                audits[0].record(rep, opt, 2.0);
            }
        }
        for (_, g) in families(
            Orientation::Undirected,
            WeightRange::unit(),
            n,
            seed * 100 + 1,
        ) {
            if let Some(girth) = exact_mwc(&g).weight {
                let rep = approx_girth(&g, &params).weight.expect("finds a cycle");
                audits[1].record(rep, girth, 2.0 - 1.0 / girth as f64);
            }
        }
        for (_, g) in families(
            Orientation::Undirected,
            WeightRange::uniform(1, 10),
            n,
            seed * 100 + 2,
        ) {
            if let Some(opt) = exact_mwc(&g).weight {
                let rep = approx_mwc_undirected_weighted(&g, &params)
                    .weight
                    .expect("finds a cycle");
                // +2/opt absorbs integer rounding slack of the scaled runs.
                audits[2].record(rep, opt, 2.0 + eps + 2.0 / opt as f64);
            }
        }
        for (_, g) in families(
            Orientation::Directed,
            WeightRange::uniform(1, 10),
            n / 2,
            seed * 100 + 3,
        ) {
            if let Some(opt) = exact_mwc(&g).weight {
                let rep = approx_mwc_directed_weighted(&g, &params)
                    .weight
                    .expect("finds a cycle");
                audits[3].record(rep, opt, 2.0 + eps + 2.0 / opt as f64);
            }
        }
    }

    let mut t = Table::new(
        &format!("Approximation quality audit (n = {n}, {seeds} seeds × 4 families)"),
        &[
            "algorithm",
            "samples",
            "worst_ratio",
            "mean_ratio",
            "bound_violations",
        ],
    );
    for a in &audits {
        let (worst, mean) = a.summary();
        t.row(vec![
            a.name.into(),
            a.ratios.len().to_string(),
            format!("{worst:.3}"),
            format!("{mean:.3}"),
            a.bound_violations.to_string(),
        ]);
        assert_eq!(a.bound_violations, 0, "{} violated its bound", a.name);
    }
    t.print();
    t.save_tsv("approx_quality");
    println!("all approximation bounds held on every instance.");
    rec.finish();
}
