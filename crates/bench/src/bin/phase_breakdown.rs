//! Diagnostic: per-phase round breakdown of the approximation algorithms,
//! aggregated by phase label across a sweep of `n`. Useful for seeing
//! which phase dominates at benchable sizes (the paper's polylog factors
//! hide very different constants per phase).
//!
//! The largest sweep point additionally runs inside a trace session; its
//! span flamegraph (the *nested* view the flat phase table can't show)
//! prints at the end.
//!
//! Usage: `phase_breakdown [algo] [max_n]` with algo one of
//! `directed|girth|uweighted|dweighted` (default `directed`, 512).

use mwc_bench::{report, Table};
use mwc_congest::Ledger;
use mwc_core::{
    approx_girth, approx_mwc_directed_weighted, approx_mwc_undirected_weighted,
    two_approx_directed_mwc, Params,
};
use mwc_graph::generators::{connected_gnm, WeightRange};
use mwc_graph::Orientation;
use mwc_trace::TraceSession;
use std::collections::BTreeMap;

fn aggregate(ledger: &Ledger) -> BTreeMap<String, u64> {
    let mut by_label: BTreeMap<String, u64> = BTreeMap::new();
    for p in &ledger.phases {
        // Strip scale and cache-savings suffixes so repeated phases
        // aggregate (e.g. "cached: bfs tree (saved 12 rounds)").
        let key = p.label.split(" 2^").next().unwrap_or(&p.label);
        let key = key.split(" (saved").next().unwrap_or(key).to_string();
        *by_label.entry(key).or_default() += p.rounds;
    }
    by_label
}

/// Count allocator traffic so this bin's run record and optional Chrome
/// trace export carry allocation profile data alongside simulated rounds.
#[global_allocator]
static ALLOC: mwc_trace::profile::CountingAlloc = mwc_trace::profile::CountingAlloc;

fn main() {
    report::init_profiling();
    report::init_flood_kernel();
    let algo = report::arg_str(1, "directed");
    let max_n: usize = report::arg(2, 512);
    let params = Params::lean().with_seed(42);
    let mut rec = report::RunRecorder::start(&format!("phase_breakdown_{algo}"));
    rec.param("algo", &algo);
    rec.param("max_n", max_n);
    rec.param("seed", 42);

    let mut all_labels: Vec<String> = Vec::new();
    let mut rows: Vec<(usize, BTreeMap<String, u64>, u64)> = Vec::new();
    let mut trace = None;
    let mut n = 128;
    while n <= max_n {
        // Trace the largest point: spans nest where phase labels are flat.
        let session = (n * 2 > max_n).then(TraceSession::memory);
        let ledger = match algo.as_str() {
            "directed" => {
                let g = connected_gnm(
                    n,
                    3 * n,
                    Orientation::Directed,
                    WeightRange::unit(),
                    7 + n as u64,
                );
                two_approx_directed_mwc(&g, &params).ledger
            }
            "girth" => {
                let g = connected_gnm(
                    n,
                    2 * n,
                    Orientation::Undirected,
                    WeightRange::unit(),
                    5 + n as u64,
                );
                approx_girth(&g, &params).ledger
            }
            "uweighted" => {
                let g = connected_gnm(
                    n,
                    2 * n,
                    Orientation::Undirected,
                    WeightRange::uniform(1, 8),
                    13 + n as u64,
                );
                approx_mwc_undirected_weighted(&g, &params).ledger
            }
            "dweighted" => {
                let g = connected_gnm(
                    n,
                    3 * n,
                    Orientation::Directed,
                    WeightRange::uniform(1, 8),
                    11 + n as u64,
                );
                approx_mwc_directed_weighted(&g, &params).ledger
            }
            other => panic!("unknown algorithm {other}"),
        };
        if let Some(session) = session {
            trace = Some((n, session.finish()));
        }
        rec.congestion(&format!("n={n}"), &ledger);
        let agg = aggregate(&ledger);
        for k in agg.keys() {
            if !all_labels.contains(k) {
                all_labels.push(k.clone());
            }
        }
        rows.push((n, agg, ledger.rounds));
        n *= 2;
    }

    let mut headers: Vec<&str> = vec!["n", "total"];
    let label_strs: Vec<String> = all_labels.clone();
    for l in &label_strs {
        headers.push(l);
    }
    let mut t = Table::new(&format!("phase breakdown: {algo}"), &headers);
    for (n, agg, total) in &rows {
        let mut cells = vec![n.to_string(), total.to_string()];
        for l in &label_strs {
            cells.push(agg.get(l).copied().unwrap_or(0).to_string());
        }
        t.row(cells);
    }
    t.print();
    t.save_tsv(&format!("phase_breakdown_{algo}"));
    if let Some((n, data)) = trace {
        println!("\nspan flamegraph at n = {n}:");
        print!("{}", data.flamegraph());
    }
    rec.finish();
}
