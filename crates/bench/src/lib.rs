//! Shared harness for the Table 1 / Theorem 1.6 reproduction binaries:
//! table formatting, TSV persistence, and power-law exponent fitting.
//!
//! Each `src/bin/*` binary regenerates one artifact of the paper's
//! evaluation (see DESIGN.md §4 for the experiment index) by sweeping `n`,
//! measuring simulator rounds, and printing a paper-style table. The
//! *shape* — who wins, the fitted growth exponent, where crossovers fall —
//! is the reproduction target; absolute round counts depend on the
//! polylog constants the paper hides (see EXPERIMENTS.md).

#![forbid(unsafe_code)]
// Node-indexed state vectors are idiomatic for this simulator; indexing
// loops over node ids are deliberate.
#![allow(clippy::needless_range_loop, clippy::type_complexity)]
#![warn(missing_docs)]

pub mod plot;
pub mod report;
pub mod stopwatch;

use std::fmt::Write as _;

/// A simple column-aligned table that can also persist itself as TSV.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_owned(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    ///
    /// # Panics
    ///
    /// Panics if the column count differs from the headers.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line: Vec<String> = self
            .headers
            .iter()
            .zip(&widths)
            .map(|(h, w)| format!("{h:>w$}"))
            .collect();
        let _ = writeln!(out, "{}", line.join("  "));
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            let _ = writeln!(out, "{}", line.join("  "));
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Writes a TSV copy under `results/` (created if needed).
    ///
    /// # Panics
    ///
    /// Panics on I/O errors — these binaries are experiment drivers.
    pub fn save_tsv(&self, name: &str) {
        let mut tsv = self.headers.join("\t");
        tsv.push('\n');
        for row in &self.rows {
            tsv.push_str(&row.join("\t"));
            tsv.push('\n');
        }
        report::save_artifact(&format!("{name}.tsv"), &tsv);
    }
}

/// Least-squares slope of `ln y` against `ln x`: the exponent `b` of the
/// best-fit power law `y = a·x^b`.
///
/// # Panics
///
/// Panics if fewer than two points are given or any value is
/// non-positive.
pub fn fit_exponent(xs: &[f64], ys: &[f64]) -> f64 {
    assert!(
        xs.len() >= 2 && xs.len() == ys.len(),
        "need ≥ 2 paired points"
    );
    assert!(
        xs.iter().chain(ys).all(|&v| v > 0.0),
        "power-law fit needs positive values"
    );
    let lx: Vec<f64> = xs.iter().map(|x| x.ln()).collect();
    let ly: Vec<f64> = ys.iter().map(|y| y.ln()).collect();
    let n = lx.len() as f64;
    let mx = lx.iter().sum::<f64>() / n;
    let my = ly.iter().sum::<f64>() / n;
    let cov: f64 = lx.iter().zip(&ly).map(|(x, y)| (x - mx) * (y - my)).sum();
    let var: f64 = lx.iter().map(|x| (x - mx).powi(2)).sum();
    cov / var
}

/// Formats a ratio like `1.37x`.
pub fn ratio(a: u64, b: u64) -> String {
    if b == 0 {
        "—".into()
    } else {
        format!("{:.2}x", a as f64 / b as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponent_of_quadratic_is_two() {
        let xs = [2.0, 4.0, 8.0, 16.0];
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x * x).collect();
        let b = fit_exponent(&xs, &ys);
        assert!((b - 2.0).abs() < 1e-9, "{b}");
    }

    #[test]
    fn exponent_of_sqrt_is_half() {
        let xs = [16.0, 64.0, 256.0, 1024.0];
        let ys: Vec<f64> = xs.iter().map(|x: &f64| x.sqrt()).collect();
        let b = fit_exponent(&xs, &ys);
        assert!((b - 0.5).abs() < 1e-9, "{b}");
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["n", "rounds"]);
        t.row(vec!["16".into(), "120".into()]);
        t.row(vec!["1024".into(), "9".into()]);
        let r = t.render();
        assert!(r.contains("== demo =="));
        assert!(r.contains("1024"));
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn table_rejects_bad_rows() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into()]);
    }
}
