//! Lower-bound graph families for CONGEST MWC (paper §1.4, Table 1) and a
//! two-party communication accounting harness.
//!
//! The paper's lower bounds reduce set disjointness to MWC: Alice and Bob
//! encode their bit vectors as edges of a gadget graph whose minimum
//! weight cycle is small iff the sets intersect, with a gap wide enough
//! that even an approximation algorithm must decide disjointness — and
//! the Alice/Bob cut small enough that this takes many rounds.
//!
//! This crate makes those reductions executable:
//!
//! - [`Disjointness`]: instances of the communication problem.
//! - [`directed_gadget`] / [`undirected_weighted_gadget`]: the 4-layer
//!   `(2−ε)` gadgets behind the near-linear bounds (Theorems 1.2.A,
//!   1.4.A).
//! - [`sarma_weighted`] / [`sarma_unweighted_girth`]: Das Sarma-style
//!   path/tree families behind the `α`-approximation bounds (Theorems
//!   1.2.B, 1.4.B, 1.3.A).
//! - [`LowerBoundInstance`]: the common shape — graph, partition,
//!   thresholds — plus cut/bit accounting ([`CommunicationReport`]) and
//!   the conservative information-theoretic round floor that every
//!   *correct* algorithm must clear (verified in tests against the
//!   distributed exact algorithm).
//!
//! See DESIGN.md §2 for what these constructions do and do not claim: they
//! reproduce the *shape* of the published bounds; the full version's
//! exact graphs are not part of the provided paper text.

#![forbid(unsafe_code)]
// Node-indexed state vectors are idiomatic for this simulator; indexing
// loops over node ids are deliberate.
#![allow(clippy::needless_range_loop, clippy::type_complexity)]
#![warn(missing_docs)]

mod disjointness;
mod gadgets;
mod instance;
mod sarma;

pub use disjointness::Disjointness;
pub use gadgets::{directed_gadget, undirected_weighted_gadget};
pub use instance::{CommunicationReport, LowerBoundInstance};
pub use sarma::{sarma_unweighted_girth, sarma_weighted, SarmaParams};

#[cfg(test)]
mod harness_tests {
    use super::*;
    use mwc_core::exact_mwc;

    /// Word size for an n-node, W-weight network: ⌈log₂ n⌉ + ⌈log₂ W⌉.
    fn word_bits(n: usize, w: u64) -> u64 {
        (n.max(2) as f64).log2().ceil() as u64 + (w.max(2) as f64).log2().ceil() as u64
    }

    #[test]
    fn distributed_exact_decides_disjointness_on_directed_gadget() {
        for seed in 0..4 {
            let q = 6;
            let yes = Disjointness::random_intersecting(q * q, 0.3, seed);
            let lb = directed_gadget(q, &yes);
            let out = exact_mwc(&lb.graph);
            assert!(lb.decide(out.weight), "yes-instance misclassified");

            let no = Disjointness::random_disjoint(q * q, 0.3, seed);
            let lb = directed_gadget(q, &no);
            let out = exact_mwc(&lb.graph);
            assert!(!lb.decide(out.weight), "no-instance misclassified");
        }
    }

    #[test]
    fn round_floor_is_respected_by_correct_algorithm() {
        // Any correct algorithm must communicate Ω(k) bits across the cut;
        // our exact algorithm is correct, so its measured rounds clear the
        // conservative floor — an end-to-end consistency check of the
        // whole reduction + accounting pipeline.
        // The floor k/(2·cut·word_bits) ~ q/log n needs q ≳ 4·word_bits
        // to be nontrivial.
        let q = 40;
        let inst = Disjointness::random_intersecting(q * q, 0.4, 7);
        let lb = directed_gadget(q, &inst);
        let out = exact_mwc(&lb.graph);
        let wb = word_bits(lb.graph.n(), 1);
        let report = lb.report(&out.ledger, wb);
        assert!(
            report.round_floor >= 1,
            "floor should be nontrivial: {report:?}"
        );
        assert!(
            report.rounds >= report.round_floor,
            "measured {} rounds below the information-theoretic floor {}",
            report.rounds,
            report.round_floor
        );
        // The bits the run actually moved across the cut are bounded by
        // rounds × cut capacity — the accounting identity of the model.
        assert!(report.cut_bits() <= report.rounds * 2 * report.cut_edges as u64 * wb);
    }

    #[test]
    fn undirected_gadget_decided_by_distributed_exact() {
        let q = 5;
        let yes = Disjointness::random_intersecting(q * q, 0.4, 3);
        let lb = undirected_weighted_gadget(q, 0.5, &yes);
        let out = exact_mwc(&lb.graph);
        assert!(lb.decide(out.weight));

        let no = Disjointness::random_disjoint(q * q, 0.4, 3);
        let lb = undirected_weighted_gadget(q, 0.5, &no);
        let out = exact_mwc(&lb.graph);
        assert!(!lb.decide(out.weight));
    }

    #[test]
    fn sarma_girth_family_decided_by_approx_girth() {
        // The α-approx family must be decidable even by the approximation
        // algorithm (that is its whole point).
        use mwc_core::{approx_girth, Params};
        let p = SarmaParams {
            gamma: 5,
            ell: 5,
            alpha: 2.0,
        };
        let yes = Disjointness::random_intersecting(5, 0.4, 2);
        let lb = sarma_unweighted_girth(p, &yes);
        let out = approx_girth(&lb.graph, &Params::new().with_seed(1));
        // approx ≤ (2 − 1/g)·g < 2·(ℓ+2) ≤ no_threshold.
        assert!(
            lb.decide(out.weight),
            "approximation failed to decide yes-instance"
        );

        let no = Disjointness::random_disjoint(5, 0.4, 2);
        let lb = sarma_unweighted_girth(p, &no);
        let out = approx_girth(&lb.graph, &Params::new().with_seed(1));
        assert!(
            !lb.decide(out.weight),
            "approximation misclassified no-instance"
        );
    }
}
