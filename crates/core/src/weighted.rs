//! `(2+ε)`-approximation of weighted MWC — **Theorems 1.4.C and 1.2.D** of
//! the paper (§5): `Õ(n^{2/3} + D)` rounds undirected, `Õ(n^{4/5} + D)`
//! rounds directed.
//!
//! Framework (§5.1/§5.2):
//!
//! - **Long cycles** (≥ `h` real hops; `h = n^{2/3}` undirected,
//!   `n^{3/5}` directed): sample `Θ̃(n/h)` vertices so one lands on the
//!   cycle w.h.p.; compute `(1+ε)` `k`-source approximate SSSP from the
//!   samples (Theorem 1.6.B). Undirected: for each edge `(x, y)` and
//!   sample `s`, the closed walk `s→x, (x,y), y→s` yields a cycle of
//!   weight ≤ `d̃(s,x) + w + d̃(s,y)`, which for the antipodal edge of a
//!   long MWC is ≤ `(1+ε)`·MWC. Directed: `d̃(s,v) + d̃(v,s)` (a closed
//!   directed walk always contains a directed cycle).
//! - **Short cycles** (< `h` hops): the scaling technique of \[41\] —
//!   `O(log(hW))` scaled graphs `Gⁱ` with weights `⌈2h·w/(ε·2ⁱ)⌉`; an
//!   `h`-hop cycle of weight `≈ 2ⁱ` has stretched length ≤
//!   `h* = (1 + 2/ε)h` in `Gⁱ`, so the hop-limited unweighted
//!   subroutines (Corollary 4.1: the stretched girth algorithm of §4, or
//!   the stretched Algorithm 2 of §3) 2-approximate it; rescaling the
//!   witness back to real weights gives `(2+ε)`.
//!
//! All candidates are validated real cycles, so reported weights are never
//! below the true MWC; the `(2+ε)` upper bound holds w.h.p.

use crate::directed::hop_limited_directed_mwc;
use crate::exchange::exchange_with_neighbors;
use crate::girth::hop_limited_girth;
use crate::ksssp::{k_source_approx_sssp, KSourceApproxSssp};
use crate::outcome::{BestCycle, MwcOutcome, Partial};
use crate::params::Params;
use crate::scaling::{scale_budget, stretched_latency_table, EpsQ};
use crate::util::{extract_cycle_from_walk, sample_vertices};
use mwc_congest::{convergecast_min, PhaseCache, INF};
use mwc_graph::seq::Direction;
use mwc_graph::{CycleWitness, Graph, NodeId, Weight};
use std::sync::Arc;

pub(crate) const SALT_WEIGHTED_SAMPLES: u64 = 0xD1;

/// The scaled per-edge stretch tables `Gⁱ` of §5.1: `⌈2h·w/(ε_q·2ⁱ)⌉` for
/// `i = 1 … ⌈log₂(hW)⌉`, paired with the shared budget `h*`.
///
/// `⌈32·h·w/(en·2ⁱ)⌉` is the canonical stretched table at scale `i − 1`
/// (see [`stretched_latency_table`]), so within a [`PhaseCache`] scope
/// these tables are shared with `scaled_hop_sssp`'s scale runs instead of
/// being re-derived.
fn scaled_latencies(g: &Graph, h: u64, eps: EpsQ) -> (Vec<Arc<Vec<Weight>>>, Weight) {
    let h_star = scale_budget(h, eps);
    let max_cycle = (h as u128) * (g.max_weight().max(1) as u128);
    let mut tables = Vec::new();
    let mut i = 1u32;
    while (1u128 << i) <= 2 * max_cycle {
        tables.push(stretched_latency_table(g, h, eps, i - 1));
        i += 1;
    }
    (tables, h_star)
}

/// `(2+ε)`-approximation of MWC in an undirected weighted graph in
/// `Õ(n^{2/3} + D)` rounds (Theorem 1.4.C).
///
/// The returned weight is the real weight of a real cycle, at most
/// `(2+ε)`× the true MWC w.h.p. (`ε` from [`Params::epsilon`], quantized
/// down to a multiple of 1/16).
///
/// # Panics
///
/// Panics if the graph is directed, has zero-weight edges (scaling assumes
/// `w ≥ 1`), or a disconnected communication topology.
///
/// # Examples
///
/// ```
/// use mwc_core::{approx_mwc_undirected_weighted, Params};
/// use mwc_graph::{Graph, Orientation};
///
/// # fn main() -> Result<(), mwc_graph::GraphError> {
/// // A light triangle inside a heavy square.
/// let g = Graph::from_edges(4, Orientation::Undirected,
///     [(0, 1, 2), (1, 2, 3), (2, 0, 4), (2, 3, 50), (3, 0, 50)])?;
/// let out = approx_mwc_undirected_weighted(&g, &Params::new());
/// let w = out.weight.expect("cycles exist");
/// assert!(w >= 9 && w as f64 <= 2.25 * 9.0 + 2.0);
/// # Ok(())
/// # }
/// ```
pub fn approx_mwc_undirected_weighted(g: &Graph, params: &Params) -> MwcOutcome {
    let _span = mwc_trace::span("weighted/undirected");
    let _cache = PhaseCache::scope();
    assert!(
        !g.is_directed(),
        "use approx_mwc_directed_weighted for directed graphs"
    );
    assert!(
        g.edges().iter().all(|e| e.weight >= 1),
        "scaling-based approximation requires weights ≥ 1"
    );
    let n = g.n();
    let h = ((n as f64).powf(2.0 / 3.0).ceil() as u64).max(1);
    let mut parts = Partial::default();
    let (mut scales, mut h_star_audit) = (0u64, 0u64);
    if n >= 3 {
        let eps = EpsQ::from_f64(params.epsilon);

        long_cycles_undirected(g, params, h, &mut parts);

        // Short cycles: hop-limited stretched girth per scale.
        let (tables, h_star) = scaled_latencies(g, h, eps);
        (scales, h_star_audit) = (tables.len() as u64, h_star);
        for (si, lat) in tables.iter().enumerate() {
            let _scale = mwc_trace::span_owned(|| format!("weighted/scale-{si}"));
            let sub = hop_limited_girth(g, params, lat, h_star);
            parts.ledger.merge(&sub.ledger);
            merge_best(&mut parts.best, sub.best);
        }
    }
    let out = finish(g, parts);
    mwc_trace::check_bound(
        "core/approx_mwc_undirected_weighted",
        mwc_trace::BoundInputs::n(n)
            .diameter(mwc_congest::bounds::diameter_upper_bound(g))
            .h(h)
            .k(crate::bounds::weighted_samples(n, h, params))
            .eps(params.epsilon),
        out.ledger.rounds,
        |i| crate::bounds::weighted_undirected(g, i.diameter, scales, h_star_audit, params),
    );
    out
}

/// `(2+ε)`-approximation of MWC in a directed weighted graph in
/// `Õ(n^{4/5} + D)` rounds (Theorem 1.2.D).
///
/// # Panics
///
/// Panics if the graph is undirected, has zero-weight edges, or a
/// disconnected communication topology.
///
/// # Examples
///
/// ```
/// use mwc_core::{approx_mwc_directed_weighted, Params};
/// use mwc_graph::{Graph, Orientation};
///
/// # fn main() -> Result<(), mwc_graph::GraphError> {
/// let g = Graph::from_edges(3, Orientation::Directed,
///     [(0, 1, 5), (1, 2, 5), (2, 0, 5), (1, 0, 30)])?;
/// let out = approx_mwc_directed_weighted(&g, &Params::new());
/// let w = out.weight.expect("cycles exist");
/// assert!(w >= 15 && w as f64 <= 2.25 * 15.0 + 2.0);
/// # Ok(())
/// # }
/// ```
pub fn approx_mwc_directed_weighted(g: &Graph, params: &Params) -> MwcOutcome {
    let _span = mwc_trace::span("weighted/directed");
    let _cache = PhaseCache::scope();
    assert!(
        g.is_directed(),
        "use approx_mwc_undirected_weighted for undirected graphs"
    );
    assert!(
        g.edges().iter().all(|e| e.weight >= 1),
        "scaling-based approximation requires weights ≥ 1"
    );
    let n = g.n();
    let h = ((n as f64).powf(0.6).ceil() as u64).max(1);
    let mut parts = Partial::default();
    let (mut scales, mut h_star_audit) = (0u64, 0u64);
    if n >= 1 {
        let eps = EpsQ::from_f64(params.epsilon);

        long_cycles_directed(g, params, h, &mut parts);

        let (tables, h_star) = scaled_latencies(g, h, eps);
        (scales, h_star_audit) = (tables.len() as u64, h_star);
        for (si, lat) in tables.iter().enumerate() {
            let _scale = mwc_trace::span_owned(|| format!("weighted/scale-{si}"));
            let sub = hop_limited_directed_mwc(g, params, lat, h_star, h);
            parts.ledger.merge(&sub.ledger);
            merge_best(&mut parts.best, sub.best);
        }
    }
    let out = finish(g, parts);
    mwc_trace::check_bound(
        "core/approx_mwc_directed_weighted",
        mwc_trace::BoundInputs::n(n)
            .diameter(mwc_congest::bounds::diameter_upper_bound(g))
            .h(h)
            .k(crate::bounds::weighted_samples(n, h, params))
            .eps(params.epsilon),
        out.ledger.rounds,
        |i| crate::bounds::weighted_directed(g, i.diameter, scales, h_star_audit, params),
    );
    out
}

fn merge_best(into: &mut BestCycle, from: BestCycle) {
    if let Some((w, c)) = from.into_parts() {
        into.offer(w, c);
    }
}

fn finish(g: &Graph, parts: Partial) -> MwcOutcome {
    let mut ledger = parts.ledger;
    if g.n() > 0 {
        let tree = PhaseCache::bfs_tree(g, 0, &mut ledger);
        let local = vec![parts.best.weight().unwrap_or(INF); g.n()];
        let _ = convergecast_min(g, &tree, local, &mut ledger);
    }
    parts.best.into_outcome(ledger)
}

/// Long undirected cycles: `(1+ε)` SSSP from samples + per-edge scan.
fn long_cycles_undirected(g: &Graph, params: &Params, h: u64, parts: &mut Partial) {
    let n = g.n();
    let p = params.sample_prob(n, h);
    let samples = sample_vertices(n, p, params.seed, SALT_WEIGHTED_SAMPLES);
    let sssp = k_source_approx_sssp(g, &samples, Direction::Forward, params);
    parts.ledger.merge(&sssp.ledger);

    // Neighbors exchange their estimate columns (k words per link).
    let k = samples.len();
    let cols: Vec<Arc<Vec<Weight>>> = (0..n)
        .map(|v| Arc::new((0..k).map(|row| sssp.get_row(row, v)).collect()))
        .collect();
    let nbr = exchange_with_neighbors(
        g,
        &cols,
        k as u64,
        "long-cycle estimate exchange",
        &mut parts.ledger,
    );

    for e in g.edges() {
        let (x, y, w) = (e.u, e.v, e.weight);
        let Some(ycol) = nbr[x].get(&y) else { continue };
        for row in 0..k {
            let dx = cols[x][row];
            let dy = ycol[row];
            if dx == INF || dy == INF {
                continue;
            }
            let cand = dx + w + dy;
            if parts.best.weight().is_some_and(|b| cand >= b) {
                continue;
            }
            offer_walk_cycle(g, &mut parts.best, &sssp, row, x, y);
        }
    }
}

/// Long directed cycles: forward + reverse `(1+ε)` SSSP; candidate at `v`
/// is `d̃(s,v) + d̃(v,s)`.
fn long_cycles_directed(g: &Graph, params: &Params, h: u64, parts: &mut Partial) {
    let n = g.n();
    let p = params.sample_prob(n, h);
    let samples = sample_vertices(n, p, params.seed, SALT_WEIGHTED_SAMPLES);
    let fwd = k_source_approx_sssp(g, &samples, Direction::Forward, params);
    let rev = k_source_approx_sssp(g, &samples, Direction::Reverse, params);
    parts.ledger.merge(&fwd.ledger);
    parts.ledger.merge(&rev.ledger);

    let k = samples.len();
    for row in 0..k {
        for v in 0..n {
            let d1 = fwd.get_row(row, v);
            let d2 = rev.get_row(row, v);
            if d1 == INF || d2 == INF || v == samples[row] {
                continue;
            }
            let cand = d1 + d2;
            if parts.best.weight().is_some_and(|b| cand >= b) {
                continue;
            }
            let Some(p1) = fwd.path_row(row, v) else {
                continue;
            }; // s → v
            let Some(p2) = rev.path_row(row, v) else {
                continue;
            }; // v → s
            let mut walk = p1;
            walk.extend_from_slice(&p2[1..]); // closed walk s → v → s
            if let Some(cyc) = extract_cycle_from_walk(&walk, 2) {
                offer_validated(g, &mut parts.best, cyc);
            }
        }
    }
}

/// Builds the closed walk `s → x, (x,y), y → s` from approximate-SSSP
/// paths and offers any simple cycle inside it.
fn offer_walk_cycle(
    g: &Graph,
    best: &mut BestCycle,
    sssp: &KSourceApproxSssp,
    row: usize,
    x: NodeId,
    y: NodeId,
) {
    let Some(px) = sssp.path_row(row, x) else {
        return;
    }; // s … x
    let Some(py) = sssp.path_row(row, y) else {
        return;
    }; // s … y
    let mut walk = px;
    walk.extend(py.into_iter().rev()); // s … x, y … s
    if let Some(cyc) = extract_cycle_from_walk(&walk, 3) {
        offer_validated(g, best, cyc);
    }
}

fn offer_validated(g: &Graph, best: &mut BestCycle, cyc: Vec<NodeId>) {
    let w = CycleWitness::new(cyc);
    if let Ok(weight) = w.validate(g) {
        best.offer(weight, w);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwc_graph::generators::{connected_gnm, planted_cycle, ring_with_chords, WeightRange};
    use mwc_graph::seq;
    use mwc_graph::Orientation;

    #[test]
    fn scaled_latencies_shape() {
        let g = Graph::from_edges(3, Orientation::Undirected, [(0, 1, 1), (1, 2, 100)]).unwrap();
        let eps = EpsQ::from_f64(0.5);
        let h = 10;
        let (tables, h_star) = scaled_latencies(&g, h, eps);
        assert_eq!(h_star, scale_budget(h, eps));
        assert!(!tables.is_empty());
        for (i, lat) in tables.iter().enumerate() {
            assert_eq!(lat.len(), g.m());
            // Latencies are ≥ 1 and non-increasing in the scale index.
            assert!(lat.iter().all(|&l| l >= 1));
            if i > 0 {
                for (a, b) in tables[i - 1].iter().zip(lat.iter()) {
                    assert!(b <= a, "stretch must shrink as the scale grows");
                }
            }
            // Heavier edges stretch more (within one scale).
            assert!(lat[1] >= lat[0]);
        }
        // The correct scale for a weight-w(C) ≈ 2^i cycle keeps it within
        // h*: an h-hop path of weight 2^i has stretch ≤ 2h/ε + h.
        let last = tables.last().unwrap();
        assert!(
            last.iter().all(|&l| l <= h_star),
            "final scale fits the budget"
        );
    }

    #[test]
    fn hop_limited_directed_stretched_subroutine() {
        // Weighted directed ring with a light 2-cycle; stretched by raw
        // weights with a budget covering only the 2-cycle.
        let mut g = Graph::directed(16);
        for i in 0..16 {
            g.add_edge(i, (i + 1) % 16, 10).unwrap();
        }
        g.add_edge(1, 0, 3).unwrap(); // 2-cycle 0→1→0 weight 13
        let lat: Vec<Weight> = g.edges().iter().map(|e| e.weight).collect();
        let parts =
            crate::directed::hop_limited_directed_mwc(&g, &Params::new().with_seed(3), &lat, 40, 4);
        assert_eq!(parts.best.weight(), Some(13));
    }

    fn check_undirected(g: &Graph, params: &Params) {
        let out = approx_mwc_undirected_weighted(g, params);
        out.assert_valid(g);
        let oracle = seq::mwc_undirected_exact(g).map(|m| m.weight);
        match (out.weight, oracle) {
            (None, None) => {}
            (Some(w), Some(opt)) => {
                assert!(w >= opt, "reported {w} < optimum {opt}");
                let bound = ((2.0 + params.epsilon) * opt as f64).ceil() as Weight + 2;
                assert!(w <= bound, "reported {w} > (2+ε)·opt = {bound} (opt {opt})");
            }
            (got, want) => panic!("cycle detection mismatch: got {got:?}, oracle {want:?}"),
        }
    }

    fn check_directed(g: &Graph, params: &Params) {
        let out = approx_mwc_directed_weighted(g, params);
        out.assert_valid(g);
        let oracle = seq::mwc_directed_exact(g).map(|m| m.weight);
        match (out.weight, oracle) {
            (None, None) => {}
            (Some(w), Some(opt)) => {
                assert!(w >= opt, "reported {w} < optimum {opt}");
                let bound = ((2.0 + params.epsilon) * opt as f64).ceil() as Weight + 2;
                assert!(w <= bound, "reported {w} > (2+ε)·opt = {bound} (opt {opt})");
            }
            (got, want) => panic!("cycle detection mismatch: got {got:?}, oracle {want:?}"),
        }
    }

    #[test]
    fn undirected_random_weighted() {
        for seed in 0..5 {
            let g = connected_gnm(
                40,
                70,
                Orientation::Undirected,
                WeightRange::uniform(1, 10),
                seed,
            );
            check_undirected(&g, &Params::new().with_seed(seed + 1));
        }
    }

    #[test]
    fn undirected_heavy_weights() {
        for seed in 0..3 {
            let g = connected_gnm(
                30,
                55,
                Orientation::Undirected,
                WeightRange::uniform(5, 60),
                30 + seed,
            );
            check_undirected(&g, &Params::new().with_seed(seed));
        }
    }

    #[test]
    fn undirected_weighted_ring_long_cycle() {
        let g = ring_with_chords(
            48,
            0,
            Orientation::Undirected,
            WeightRange::uniform(2, 6),
            3,
        );
        check_undirected(&g, &Params::new().with_seed(2));
    }

    #[test]
    fn undirected_planted_light_cycle() {
        let (g, _) = planted_cycle(
            40,
            60,
            4,
            2,
            Orientation::Undirected,
            WeightRange::uniform(25, 50),
            17,
        );
        let out = approx_mwc_undirected_weighted(&g, &Params::new().with_seed(5));
        out.assert_valid(&g);
        // Planted cycle weight 8; (2+ε) ⇒ at most ~18.5.
        let w = out.weight.expect("cycle exists");
        assert!((8..=19).contains(&w), "got {w}");
    }

    #[test]
    fn directed_random_weighted() {
        for seed in 0..4 {
            let g = connected_gnm(
                36,
                90,
                Orientation::Directed,
                WeightRange::uniform(1, 10),
                seed,
            );
            check_directed(&g, &Params::new().with_seed(seed + 7));
        }
    }

    #[test]
    fn directed_weighted_ring_long_cycle() {
        let g = ring_with_chords(40, 0, Orientation::Directed, WeightRange::uniform(1, 5), 11);
        check_directed(&g, &Params::new().with_seed(4));
    }

    #[test]
    fn directed_two_cycle_weighted() {
        let mut g = ring_with_chords(30, 0, Orientation::Directed, WeightRange::uniform(4, 4), 0);
        g.add_edge(7, 6, 3).unwrap(); // 2-cycle 6→7→6 of weight 7
        check_directed(&g, &Params::new().with_seed(9));
    }

    #[test]
    fn tighter_epsilon_still_valid() {
        let g = connected_gnm(
            30,
            60,
            Orientation::Undirected,
            WeightRange::uniform(1, 8),
            5,
        );
        check_undirected(&g, &Params::new().with_seed(1).with_epsilon(0.125));
    }

    #[test]
    fn forest_reports_none() {
        let mut g = Graph::undirected(8);
        for i in 1..8 {
            g.add_edge(i / 2, i, 5).unwrap();
        }
        let out = approx_mwc_undirected_weighted(&g, &Params::new());
        out.assert_valid(&g);
        assert_eq!(out.weight, None);
    }

    #[test]
    #[should_panic(expected = "weights ≥ 1")]
    fn zero_weight_rejected() {
        let g = Graph::from_edges(
            3,
            Orientation::Undirected,
            [(0, 1, 0), (1, 2, 1), (2, 0, 1)],
        )
        .unwrap();
        let _ = approx_mwc_undirected_weighted(&g, &Params::new());
    }
}
