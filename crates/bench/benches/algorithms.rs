//! ALGORITHMS — stopwatch wall-clock benchmarks of the end-to-end MWC
//! algorithms at fixed sizes (round-complexity sweeps live in the
//! `src/bin/table1_*` binaries; these measure simulator throughput).
//!
//! Run with `cargo bench -p mwc-bench --bench algorithms`; results land
//! in `results/bench/algorithms.json`.

use mwc_bench::stopwatch::Suite;
use mwc_core::{approx_girth, exact_mwc, two_approx_directed_mwc, Params};
use mwc_graph::generators::{connected_gnm, WeightRange};
use mwc_graph::Orientation;
use std::hint::black_box;

fn bench_exact(suite: &mut Suite) {
    let g = connected_gnm(256, 768, Orientation::Directed, WeightRange::unit(), 1);
    suite.bench("mwc/exact_directed_256", || black_box(exact_mwc(&g).weight));
    let gu = connected_gnm(256, 512, Orientation::Undirected, WeightRange::unit(), 2);
    suite.bench("mwc/exact_girth_256", || black_box(exact_mwc(&gu).weight));
}

fn bench_approx(suite: &mut Suite) {
    let params = Params::lean().with_seed(9);
    let g = connected_gnm(256, 768, Orientation::Directed, WeightRange::unit(), 3);
    suite.bench("mwc/two_approx_directed_256", || {
        black_box(two_approx_directed_mwc(&g, &params).weight)
    });
    let gu = connected_gnm(512, 1024, Orientation::Undirected, WeightRange::unit(), 4);
    suite.bench("mwc/approx_girth_512", || {
        black_box(approx_girth(&gu, &params).weight)
    });
}

fn main() {
    let mut suite = Suite::new("algorithms");
    bench_exact(&mut suite);
    bench_approx(&mut suite);
    suite.finish();
}
