//! Host-side span profiling: wall-clock and heap-allocation accounting.
//!
//! The span tree in [`crate`] measures *simulated* cost (rounds, words,
//! messages). This module adds the *host* side — where wall time and heap
//! allocations actually go — without touching the deterministic artifacts:
//!
//! - **Wall time**: when profiling is enabled on a thread, the collector
//!   charges the wall-nanoseconds elapsed between span boundaries to the
//!   innermost open span, exactly the attribution model `Ledger::absorb`
//!   uses for rounds. [`crate::add_span_wall`] additionally folds
//!   `mwc-par` worker busy-time into the span that spawned a fork-join.
//! - **Allocations**: [`CountingAlloc`] is a zero-dependency
//!   [`GlobalAlloc`](std::alloc::GlobalAlloc) wrapper the bench bins
//!   install with `#[global_allocator]`. It counts bytes/allocations into
//!   thread-local counters (snapshotted per span boundary, same charging
//!   scheme as wall time) and tracks a process-wide live-bytes high-water
//!   mark ([`peak_alloc_bytes`]).
//!
//! Everything here is strictly opt-in and thread-local
//! ([`set_thread_profiling`]): unit tests and library consumers that never
//! enable profiling keep byte-identical traces, and the JSONL event
//! stream / `trace_manifest.json` never carry profile data at all (the
//! golden event tests and the CI manifest byte-diff stay untouched).
//! Profile samples surface only through `mwc-run-record/v6` records and
//! the Chrome trace export ([`crate::export`]).
//!
//! Determinism note: wall-nanoseconds are machine-dependent and always
//! informational. Allocation counts are deterministic in the default
//! `jobs=1, shards=1` configuration (single-threaded, same binary ⇒ same
//! allocation sequence) and are gated by `trace_diff` there; any parallel
//! configuration moves allocations onto worker threads, so the counts
//! become schedule-dependent and drop to informational.

use std::cell::Cell;
use std::sync::atomic::{AtomicI64, Ordering};
use std::time::Instant;

thread_local! {
    /// Whether span profiling is enabled on this thread.
    static PROFILING: Cell<bool> = const { Cell::new(false) };
    /// Bytes allocated on this thread since it started (wrapping).
    static TL_ALLOC_BYTES: Cell<u64> = const { Cell::new(0) };
    /// Allocations performed on this thread since it started (wrapping).
    static TL_ALLOC_COUNT: Cell<u64> = const { Cell::new(0) };
}

/// Process-wide live heap bytes (allocated minus freed) as seen by
/// [`CountingAlloc`]. Signed: frees of allocations that predate counter
/// resets may drive it below zero transiently.
static LIVE_BYTES: AtomicI64 = AtomicI64::new(0);
/// Process-wide high-water mark of [`LIVE_BYTES`].
static PEAK_BYTES: AtomicI64 = AtomicI64::new(0);

/// Enables or disables span profiling on the current thread. While
/// enabled, the active collector charges wall-nanosecond and allocation
/// deltas to the innermost open span at every span boundary.
pub fn set_thread_profiling(on: bool) {
    PROFILING.with(|p| p.set(on));
}

/// Whether span profiling is enabled on the current thread.
pub fn thread_profiling_enabled() -> bool {
    PROFILING.with(|p| p.get())
}

/// Records one allocation of `bytes` against the current thread's
/// counters and the process-wide live/peak gauges. Called by
/// [`CountingAlloc`]; safe to call manually in tests that do not install
/// the allocator.
pub fn note_alloc(bytes: usize) {
    // `try_with`: the allocator can run during thread teardown; a dead TLS
    // slot must not abort the process, it just loses that thread's tail.
    let _ = TL_ALLOC_BYTES.try_with(|b| b.set(b.get().wrapping_add(bytes as u64)));
    let _ = TL_ALLOC_COUNT.try_with(|c| c.set(c.get().wrapping_add(1)));
    let live = LIVE_BYTES.fetch_add(bytes as i64, Ordering::Relaxed) + bytes as i64;
    PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
}

/// Records one deallocation of `bytes` (live-bytes bookkeeping only —
/// per-span charging counts gross allocation, not churn-adjusted).
pub fn note_dealloc(bytes: usize) {
    LIVE_BYTES.fetch_sub(bytes as i64, Ordering::Relaxed);
}

/// The current thread's cumulative `(bytes, allocations)` counters.
pub fn alloc_snapshot() -> (u64, u64) {
    (
        TL_ALLOC_BYTES.with(Cell::get),
        TL_ALLOC_COUNT.with(Cell::get),
    )
}

/// The process-wide live-heap high-water mark in bytes since process
/// start or the last [`reset_peak_alloc`]. Zero when no counting
/// allocator is installed. Machine-layout-dependent — **informational**,
/// never gated (the `wall_ms` convention).
pub fn peak_alloc_bytes() -> u64 {
    PEAK_BYTES.load(Ordering::Relaxed).max(0) as u64
}

/// Restarts peak tracking from the current live-bytes level, so a run
/// record's peak covers exactly that run (bench recorders call this at
/// start).
pub fn reset_peak_alloc() {
    let live = LIVE_BYTES.load(Ordering::Relaxed);
    // A concurrent allocation between the load and the store can shave
    // its bytes off the recorded peak; the gauge is informational and the
    // bins reset while still single-threaded.
    PEAK_BYTES.store(live, Ordering::Relaxed);
}

/// A profiling checkpoint: the collector snapshots one at every span
/// boundary and charges the delta since the previous checkpoint to the
/// innermost open span.
pub(crate) struct Mark {
    pub(crate) at: Instant,
    pub(crate) bytes: u64,
    pub(crate) count: u64,
}

impl Mark {
    pub(crate) fn now() -> Mark {
        let (bytes, count) = alloc_snapshot();
        Mark {
            at: Instant::now(),
            bytes,
            count,
        }
    }
}

/// A counting [`GlobalAlloc`](std::alloc::GlobalAlloc) wrapper around the
/// system allocator. Install in a binary with:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: mwc_trace::profile::CountingAlloc = mwc_trace::profile::CountingAlloc;
/// ```
///
/// Overhead per allocation is two thread-local adds and two relaxed
/// atomics; the allocation itself is delegated untouched, so installing
/// the wrapper never changes program behavior — only observes it.
pub struct CountingAlloc;

// The one unsafe impl in the workspace: a pure pass-through to
// `std::alloc::System` whose only addition is counter bookkeeping. The
// GlobalAlloc contract is inherited verbatim from the system allocator.
#[allow(unsafe_code)]
unsafe impl std::alloc::GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: std::alloc::Layout) -> *mut u8 {
        let p = std::alloc::System.alloc(layout);
        if !p.is_null() {
            note_alloc(layout.size());
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: std::alloc::Layout) -> *mut u8 {
        let p = std::alloc::System.alloc_zeroed(layout);
        if !p.is_null() {
            note_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: std::alloc::Layout) {
        std::alloc::System.dealloc(ptr, layout);
        note_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: std::alloc::Layout, new_size: usize) -> *mut u8 {
        let p = std::alloc::System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            // One allocation event for the new block; the old block's
            // bytes leave the live gauge.
            note_dealloc(layout.size());
            note_alloc(new_size);
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiling_flag_is_thread_local_and_off_by_default() {
        assert!(!thread_profiling_enabled());
        set_thread_profiling(true);
        assert!(thread_profiling_enabled());
        let other = std::thread::spawn(thread_profiling_enabled).join().unwrap();
        assert!(!other, "flag must not leak across threads");
        set_thread_profiling(false);
        assert!(!thread_profiling_enabled());
    }

    #[test]
    fn alloc_counters_accumulate_and_track_peak() {
        let (b0, c0) = alloc_snapshot();
        reset_peak_alloc();
        let peak0 = peak_alloc_bytes();
        note_alloc(1000);
        note_alloc(24);
        let (b1, c1) = alloc_snapshot();
        assert_eq!(b1 - b0, 1024);
        assert_eq!(c1 - c0, 2);
        assert!(peak_alloc_bytes() >= peak0 + 1024);
        note_dealloc(1000);
        note_dealloc(24);
        // Peak is a high-water mark: frees never lower it.
        assert!(peak_alloc_bytes() >= peak0 + 1024);
    }

    #[test]
    fn reset_peak_restarts_from_live_level() {
        note_alloc(4096);
        note_dealloc(4096);
        let before = peak_alloc_bytes();
        reset_peak_alloc();
        assert!(peak_alloc_bytes() <= before);
    }
}
