//! `k`-source BFS and approximate SSSP — **Algorithm 1 / Theorem 1.6** of
//! the paper (§2).
//!
//! For `k` sources the algorithm picks `h = √(nk)`, samples a hitting set
//! `S` for `h`-hop paths, computes `h`-hop segments from `S`, broadcasts
//! the `|S|²` skeleton edges so every node can locally solve APSP on the
//! skeleton, runs `h`-hop segments from the sources, broadcasts the `k·|S|`
//! source-to-sample distances, and combines everything locally:
//! `d(u,v) = min(d_h(u,v), min_s d(u,s) + d_h(s,v))` (see
//! the crate-internal `pipeline` module).
//!
//! - [`k_source_bfs`] (Theorem 1.6.A): segments are plain pipelined BFS —
//!   **exact** hop distances, `Õ(√(nk) + D)` rounds for `k ≥ n^{1/3}`.
//! - [`k_source_approx_sssp`] (Theorem 1.6.B): segments are scaled
//!   stretched BFS ([`scaling`](crate::scaling)) — `(1+ε)`-approximate
//!   weighted distances with the same structure.
//!
//! The paper's lines 9–10 propagate `d(u,s)` through the samples' BFS
//! trees; in this reproduction those values are already known to every node
//! because line 7's broadcast is global, so the combination step is local
//! and no extra rounds are charged — the information flow is identical and
//! the round total is dominated by the same phases (DESIGN.md §2).

use crate::params::Params;
use crate::pipeline::{skeleton_pipeline, Pipeline};
use crate::scaling::{scaled_hop_sssp, EpsQ, ScaledSegments};
use crate::util::simplify_path;
use mwc_congest::{multi_source_bfs, DistMatrix, Ledger, MultiBfsSpec, PhaseCache, INF};
use mwc_graph::seq::Direction;
use mwc_graph::{Graph, NodeId, Weight};

/// Exact hop distances from `k` sources with path reconstruction; produced
/// by [`k_source_bfs`].
#[derive(Debug)]
pub struct KSourceDistances {
    sources: Vec<NodeId>,
    flipped: bool,
    pipe: Pipeline<DistMatrix>,
    /// Round/traffic accounting for the whole computation.
    pub ledger: Ledger,
}

/// `(1+ε)`-approximate weighted distances from `k` sources; produced by
/// [`k_source_approx_sssp`].
pub struct KSourceApproxSssp {
    sources: Vec<NodeId>,
    flipped: bool,
    pipe: Pipeline<ScaledSegments>,
    /// The quantized ε actually used. Usually `ε_q ≤ ε`, but requests
    /// below the quantization floor [`EpsQ::MIN`] (= 1/16) are clamped
    /// **up** to it — this field always reports the effective value, so
    /// the `(1+ε)` guarantee holds with *this* ε, not the requested one.
    pub epsilon: f64,
    /// Round/traffic accounting for the whole computation.
    pub ledger: Ledger,
}

macro_rules! impl_ksource_accessors {
    ($ty:ident) => {
        impl $ty {
            /// The sources, in row order.
            pub fn sources(&self) -> &[NodeId] {
                &self.sources
            }

            /// Number of sources.
            pub fn k(&self) -> usize {
                self.sources.len()
            }

            /// Distance for the `row`-th source to `v` (for reverse
            /// searches: from `v` to the source). [`INF`] if unreached.
            pub fn get_row(&self, row: usize, v: NodeId) -> Weight {
                self.pipe.get_row(row, v)
            }

            /// Distance indexed by source id.
            ///
            /// # Panics
            ///
            /// Panics if `s` is not one of the sources.
            pub fn get(&self, s: NodeId, v: NodeId) -> Weight {
                let row = self
                    .sources
                    .iter()
                    .position(|&x| x == s)
                    .expect("s must be a source");
                self.get_row(row, v)
            }

            /// A real simple path between the `row`-th source and `v`,
            /// oriented along the graph's edges (source→v forward,
            /// v→source reverse). `None` if unreached.
            pub fn path_row(&self, row: usize, v: NodeId) -> Option<Vec<NodeId>> {
                let mut p = self.pipe.path_row(row, v)?;
                if self.flipped {
                    p.reverse();
                }
                Some(simplify_path(p))
            }
        }
    };
}

impl_ksource_accessors!(KSourceDistances);
impl_ksource_accessors!(KSourceApproxSssp);

impl KSourceDistances {
    /// Wraps an externally computed distance table (e.g. the repeated
    /// single-source strategy of Theorem 1.6.A's `min`) in the common
    /// accessor interface.
    pub(crate) fn from_direct(sources: Vec<NodeId>, mat: DistMatrix, ledger: Ledger) -> Self {
        KSourceDistances {
            sources,
            flipped: false,
            pipe: Pipeline::Direct(mat),
            ledger,
        }
    }
}

/// `h = ⌈√(nk)⌉`, the paper's parameter choice.
pub(crate) fn pick_h(n: usize, k: usize) -> u64 {
    ((n as f64 * k as f64).sqrt().ceil() as u64).max(1)
}

/// Exact BFS (hop distances) from `k` sources — Theorem 1.6.A.
///
/// Takes `Õ(√(nk) + D)` rounds for `k ≥ n^{1/3}` (and `Õ(n/k + √(nk) + D)`
/// in general), all measured by the returned ledger. `direction` selects
/// distances *from* the sources ([`Direction::Forward`]) or *to* them
/// ([`Direction::Reverse`]); both coincide on undirected graphs.
///
/// # Panics
///
/// Panics if `sources` is empty or contains duplicate/out-of-range ids, or
/// if the communication topology is disconnected.
///
/// # Examples
///
/// ```
/// use mwc_core::{k_source_bfs, Params};
/// use mwc_graph::generators::{connected_gnm, WeightRange};
/// use mwc_graph::seq::Direction;
/// use mwc_graph::Orientation;
///
/// let g = connected_gnm(60, 120, Orientation::Directed, WeightRange::unit(), 1);
/// let out = k_source_bfs(&g, &[0, 7, 13], Direction::Forward, &Params::new());
/// assert_eq!(out.get(0, 0), 0);
/// let path = out.path_row(1, 42); // a real shortest path 7 → 42, if reachable
/// if let Some(p) = path {
///     assert_eq!(p[0], 7);
///     assert_eq!(*p.last().unwrap(), 42);
/// }
/// ```
pub fn k_source_bfs(
    g: &Graph,
    sources: &[NodeId],
    direction: Direction,
    params: &Params,
) -> KSourceDistances {
    assert!(!sources.is_empty(), "need at least one source");
    if direction == Direction::Reverse && g.is_directed() {
        let rev = g.reversed();
        let mut out = k_source_bfs(&rev, sources, Direction::Forward, params);
        out.flipped = true;
        return out;
    }
    let _span = mwc_trace::span("ksssp/bfs");
    let _cache = PhaseCache::scope();
    let n = g.n();
    let k = sources.len();
    let h = pick_h(n, k);
    let mut ledger = Ledger::new();

    let pipe = if h as usize + 1 >= n {
        let spec = MultiBfsSpec {
            max_dist: INF,
            direction: Direction::Forward,
            latency: None,
        };
        Pipeline::Direct(multi_source_bfs(
            g,
            sources,
            &spec,
            "k-source BFS (direct)",
            &mut ledger,
        ))
    } else {
        let spec = MultiBfsSpec {
            max_dist: h,
            direction: Direction::Forward,
            latency: None,
        };
        skeleton_pipeline(
            g,
            sources,
            h,
            params,
            &mut ledger,
            |g, srcs, label, ledger| multi_source_bfs(g, srcs, &spec, label, ledger),
        )
    };
    // Charge the reverse h-hop BFS from S that lets samples know their
    // incoming skeleton edges (Algorithm 1 line 2 "repeat in the reversed
    // graph"); in this global simulation the forward matrix already holds
    // both views, so only the rounds are charged.
    if g.is_directed() {
        if let Pipeline::Skeleton(parts) = &pipe {
            let spec = MultiBfsSpec {
                max_dist: h,
                direction: Direction::Reverse,
                latency: None,
            };
            let _ = multi_source_bfs(
                g,
                &parts.samples,
                &spec,
                "h-hop reverse BFS from S",
                &mut ledger,
            );
        }
    }
    mwc_trace::check_bound(
        "core/k_source_bfs",
        mwc_trace::BoundInputs::n(n)
            .diameter(mwc_congest::bounds::diameter_upper_bound(g))
            .h(h)
            .k(k as u64),
        ledger.rounds,
        |i| crate::bounds::ksssp_bfs(n, k as u64, i.diameter, params),
    );
    KSourceDistances {
        sources: sources.to_vec(),
        flipped: false,
        pipe,
        ledger,
    }
}

/// `(1+ε)`-approximate weighted SSSP from `k` sources — Theorem 1.6.B.
///
/// Same skeleton structure as [`k_source_bfs`] with scaled stretched-BFS
/// segments; `Õ(√(nk) + D)` rounds for `k ≥ n^{1/3}` (up to `1/ε` and
/// `log(nW)` factors). Distances satisfy `d(u,v) ≤ est ≤ (1+ε)·d(u,v)`
/// (plus `O(1)` rounding per skeleton segment), and every estimate is
/// realized by the real path that [`KSourceApproxSssp::path_row`] returns.
///
/// # Panics
///
/// Panics on empty sources, zero edge weights (scaling assumes `w ≥ 1`),
/// or a disconnected communication topology.
pub fn k_source_approx_sssp(
    g: &Graph,
    sources: &[NodeId],
    direction: Direction,
    params: &Params,
) -> KSourceApproxSssp {
    assert!(!sources.is_empty(), "need at least one source");
    if direction == Direction::Reverse && g.is_directed() {
        let rev = g.reversed();
        let mut out = k_source_approx_sssp(&rev, sources, Direction::Forward, params);
        out.flipped = true;
        return out;
    }
    let _span = mwc_trace::span("ksssp/approx");
    let _cache = PhaseCache::scope();
    let n = g.n();
    let k = sources.len();
    let h = pick_h(n, k);
    let eps = EpsQ::from_f64(params.epsilon);
    let mut ledger = Ledger::new();

    let pipe = if h as usize + 1 >= n {
        // Direct regime: one set of scaled runs bounded by n−1 hops.
        Pipeline::Direct(scaled_hop_sssp(
            g,
            sources,
            (n as u64).saturating_sub(1).max(1),
            eps,
            "k-source approx SSSP (direct)",
            &mut ledger,
        ))
    } else {
        skeleton_pipeline(
            g,
            sources,
            h,
            params,
            &mut ledger,
            |g, srcs, label, ledger| scaled_hop_sssp(g, srcs, h, eps, label, ledger),
        )
    };
    if g.is_directed() {
        // Charge the reverse segment run from S (see k_source_bfs).
        if let Pipeline::Skeleton(parts) = &pipe {
            let rev = g.reversed();
            let _ = scaled_hop_sssp(
                &rev,
                &parts.samples,
                h,
                eps,
                "reverse segments from S",
                &mut ledger,
            );
        }
    }
    mwc_trace::check_bound(
        "core/k_source_approx_sssp",
        mwc_trace::BoundInputs::n(n)
            .diameter(mwc_congest::bounds::diameter_upper_bound(g))
            .h(h)
            .k(k as u64)
            .eps(eps.value()),
        ledger.rounds,
        |i| crate::bounds::ksssp_approx(g, k as u64, i.diameter, params),
    );
    KSourceApproxSssp {
        sources: sources.to_vec(),
        flipped: false,
        pipe,
        epsilon: eps.value(),
        ledger,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwc_graph::generators::{connected_gnm, grid, ring_with_chords, WeightRange};
    use mwc_graph::seq::{bfs, dijkstra, HOP_INF, INF as SEQ_INF};
    use mwc_graph::Orientation;

    fn check_exact(g: &Graph, sources: &[NodeId], dir: Direction, params: &Params) {
        let out = k_source_bfs(g, sources, dir, params);
        for (row, &s) in sources.iter().enumerate() {
            let t = bfs(g, s, dir);
            for v in 0..g.n() {
                let expect = if t.dist[v] == HOP_INF {
                    INF
                } else {
                    t.dist[v] as Weight
                };
                assert_eq!(
                    out.get_row(row, v),
                    expect,
                    "src {s} → {v} (dir {dir:?}, n {})",
                    g.n()
                );
            }
        }
    }

    fn check_paths_exact(g: &Graph, out: &KSourceDistances, dir: Direction) {
        for row in 0..out.k() {
            let s = out.sources()[row];
            for v in 0..g.n() {
                let d = out.get_row(row, v);
                if d == INF {
                    assert!(out.path_row(row, v).is_none());
                    continue;
                }
                let p = out.path_row(row, v).expect("reachable ⇒ path");
                match dir {
                    Direction::Forward => {
                        assert_eq!(*p.first().unwrap(), s);
                        assert_eq!(*p.last().unwrap(), v);
                    }
                    Direction::Reverse => {
                        assert_eq!(*p.first().unwrap(), v);
                        assert_eq!(*p.last().unwrap(), s);
                    }
                }
                for w in p.windows(2) {
                    assert!(g.has_edge(w[0], w[1]), "edge {}→{} missing", w[0], w[1]);
                }
                assert_eq!(p.len() as Weight - 1, d, "path hops ≠ distance");
            }
        }
    }

    #[test]
    fn exact_on_ring_forces_long_paths() {
        let g = ring_with_chords(64, 0, Orientation::Directed, WeightRange::unit(), 0);
        let params = Params::new().with_seed(3);
        check_exact(&g, &[0, 20], Direction::Forward, &params);
    }

    #[test]
    fn exact_on_random_directed_both_directions() {
        let params = Params::new().with_seed(5);
        let g = connected_gnm(120, 260, Orientation::Directed, WeightRange::unit(), 17);
        let sources: Vec<NodeId> = vec![0, 3, 9, 77, 118];
        check_exact(&g, &sources, Direction::Forward, &params);
        check_exact(&g, &sources, Direction::Reverse, &params);
    }

    #[test]
    fn exact_on_grid_undirected() {
        let params = Params::new().with_seed(1);
        let g = grid(10, 10, Orientation::Undirected, WeightRange::unit(), 0);
        check_exact(&g, &[0, 55, 99], Direction::Forward, &params);
    }

    #[test]
    fn exact_many_sources_direct_regime() {
        let g = connected_gnm(40, 60, Orientation::Directed, WeightRange::unit(), 2);
        let sources: Vec<NodeId> = (0..40).collect();
        check_exact(&g, &sources, Direction::Forward, &Params::new());
    }

    #[test]
    fn paths_are_real_and_tight_forward() {
        let g = ring_with_chords(48, 10, Orientation::Directed, WeightRange::unit(), 4);
        let params = Params::new().with_seed(9);
        let out = k_source_bfs(&g, &[0, 7, 31], Direction::Forward, &params);
        check_paths_exact(&g, &out, Direction::Forward);
    }

    #[test]
    fn paths_are_real_and_tight_reverse() {
        let g = ring_with_chords(48, 10, Orientation::Directed, WeightRange::unit(), 4);
        let params = Params::new().with_seed(9);
        let out = k_source_bfs(&g, &[2, 19], Direction::Reverse, &params);
        check_paths_exact(&g, &out, Direction::Reverse);
    }

    #[test]
    fn many_seeds_stay_exact() {
        for seed in 0..10 {
            let g = connected_gnm(80, 140, Orientation::Directed, WeightRange::unit(), seed);
            let params = Params::new().with_seed(seed * 31 + 1);
            check_exact(&g, &[1, 40, 79], Direction::Forward, &params);
        }
    }

    #[test]
    fn ledger_reports_phases() {
        let g = connected_gnm(100, 200, Orientation::Directed, WeightRange::unit(), 0);
        let out = k_source_bfs(&g, &[0, 1, 2], Direction::Forward, &Params::new());
        assert!(out.ledger.rounds > 0);
        assert!(out.ledger.phases.iter().any(|p| p.label.contains("from S")));
        assert!(out.ledger.phases.iter().any(|p| p.label.contains("from U")));
    }

    fn check_approx(g: &Graph, sources: &[NodeId], dir: Direction, params: &Params) {
        let out = k_source_approx_sssp(g, sources, dir, params);
        let eps = out.epsilon;
        for (row, &s) in sources.iter().enumerate() {
            let t = dijkstra(g, s, dir);
            for v in 0..g.n() {
                let est = out.get_row(row, v);
                if t.dist[v] == SEQ_INF {
                    assert_eq!(est, INF, "unreachable pair got estimate");
                    continue;
                }
                assert_ne!(est, INF, "reachable pair missing (s={s}, v={v})");
                assert!(
                    est >= t.dist[v],
                    "est {est} < true {} (s={s}, v={v})",
                    t.dist[v]
                );
                // +4 absorbs the O(1) ceil-rounding per skeleton segment.
                let bound = ((1.0 + eps) * t.dist[v] as f64).ceil() as Weight + 4;
                assert!(
                    est <= bound,
                    "est {est} > (1+ε)d + 4 = {bound} (d {}, s={s}, v={v})",
                    t.dist[v]
                );
                if est != INF && s != v {
                    let p = out.path_row(row, v).expect("estimate ⇒ path");
                    let (first, last) = match dir {
                        Direction::Forward => (s, v),
                        Direction::Reverse => (v, s),
                    };
                    assert_eq!(*p.first().unwrap(), first);
                    assert_eq!(*p.last().unwrap(), last);
                    let mut w = 0;
                    for e in p.windows(2) {
                        w += g
                            .weight(e[0], e[1])
                            .unwrap_or_else(|| panic!("path edge {}→{} missing", e[0], e[1]));
                    }
                    assert!(w <= est, "witness weight {w} > estimate {est}");
                }
            }
        }
    }

    #[test]
    fn approx_sssp_directed_weighted() {
        let g = connected_gnm(
            70,
            150,
            Orientation::Directed,
            WeightRange::uniform(1, 20),
            13,
        );
        let params = Params::new().with_seed(2).with_epsilon(0.25);
        check_approx(&g, &[0, 5, 33], Direction::Forward, &params);
        check_approx(&g, &[0, 5, 33], Direction::Reverse, &params);
    }

    #[test]
    fn approx_sssp_undirected_weighted() {
        let g = connected_gnm(
            60,
            100,
            Orientation::Undirected,
            WeightRange::uniform(1, 40),
            23,
        );
        let params = Params::new().with_seed(4).with_epsilon(0.5);
        check_approx(&g, &[10, 59], Direction::Forward, &params);
    }

    #[test]
    fn approx_sssp_on_weighted_ring() {
        // Long weighted paths stress the skeleton composition.
        let g = ring_with_chords(50, 5, Orientation::Directed, WeightRange::uniform(1, 9), 6);
        let params = Params::new().with_seed(8).with_epsilon(0.25);
        check_approx(&g, &[0, 13], Direction::Forward, &params);
    }

    #[test]
    fn tiny_epsilon_reports_the_clamped_floor() {
        // ε = 0.01 is below the quantization floor 1/16; the run must
        // report the effective ε it actually used, and the guarantee must
        // hold at that effective value (check_approx uses out.epsilon).
        use crate::scaling::EpsQ;
        let g = connected_gnm(
            60,
            130,
            Orientation::Directed,
            WeightRange::uniform(1, 15),
            31,
        );
        let params = Params::new().with_seed(6).with_epsilon(0.01);
        assert!(EpsQ::floors(params.epsilon));
        let out = k_source_approx_sssp(&g, &[0, 29], Direction::Forward, &params);
        assert_eq!(out.epsilon, EpsQ::MIN);
        check_approx(&g, &[0, 29], Direction::Forward, &params);
    }

    #[test]
    fn approx_sssp_many_seeds() {
        for seed in 0..6 {
            let g = connected_gnm(
                50,
                110,
                Orientation::Directed,
                WeightRange::uniform(1, 12),
                seed,
            );
            let params = Params::new().with_seed(100 + seed);
            check_approx(&g, &[seed as usize % 50, 30], Direction::Forward, &params);
        }
    }
}
