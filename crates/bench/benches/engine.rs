//! ENGINE — stopwatch microbenchmarks of the CONGEST simulator itself:
//! raw step throughput, pipelined multi-source BFS, and tree broadcast.
//!
//! Run with `cargo bench -p mwc-bench --bench engine`; results land in
//! `results/bench/engine.json`.

use mwc_bench::stopwatch::Suite;
use mwc_congest::{broadcast, multi_source_bfs, BfsTree, Ledger, MultiBfsSpec, Network};
use mwc_graph::generators::{connected_gnm, grid, WeightRange};
use mwc_graph::{NodeId, Orientation};
use std::hint::black_box;

fn bench_engine_steps(suite: &mut Suite) {
    let g = grid(32, 32, Orientation::Undirected, WeightRange::unit(), 0);
    suite.bench("engine/flood_1024_nodes", || {
        let mut net: Network<u64> = Network::new(&g);
        for w in g.comm_neighbors(0) {
            net.send(0, w, 1, 1).unwrap();
        }
        let mut seen = vec![false; g.n()];
        seen[0] = true;
        while let Some(out) = net.step_fast() {
            for d in out.deliveries {
                if !seen[d.to] {
                    seen[d.to] = true;
                    for w in g.comm_neighbors(d.to) {
                        net.send(d.to, w, d.payload + 1, 1).unwrap();
                    }
                }
            }
        }
        black_box(net.round())
    });
}

fn bench_multibfs(suite: &mut Suite) {
    let g = connected_gnm(512, 1536, Orientation::Directed, WeightRange::unit(), 3);
    let sources: Vec<NodeId> = (0..16).map(|i| i * 31).collect();
    suite.bench("engine/multi_source_bfs_512n_16k", || {
        let mut ledger = Ledger::new();
        let m = multi_source_bfs(&g, &sources, &MultiBfsSpec::default(), "b", &mut ledger);
        black_box(m.get_row(0, 511))
    });
}

fn bench_broadcast(suite: &mut Suite) {
    let g = connected_gnm(256, 512, Orientation::Undirected, WeightRange::unit(), 5);
    let mut ledger = Ledger::new();
    let tree = BfsTree::build(&g, 0, &mut ledger);
    suite.bench("engine/broadcast_1024_items_256n", || {
        let items: Vec<(NodeId, u64)> = (0..1024).map(|i| (i % 256, i as u64)).collect();
        let mut ledger = Ledger::new();
        black_box(broadcast(&g, &tree, items, 1, &mut ledger).len())
    });
}

fn main() {
    let mut suite = Suite::new("engine");
    bench_engine_steps(&mut suite);
    bench_multibfs(&mut suite);
    bench_broadcast(&mut suite);
    suite.finish();
}
