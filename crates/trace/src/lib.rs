//! `mwc-trace`: hermetic observability for the CONGEST MWC reproduction.
//!
//! The paper's entire contribution is round-complexity bounds, yet a flat
//! per-phase total cannot show *where inside* an algorithm rounds go or
//! whether a measured run actually respects the bound the paper proves.
//! This crate provides the three missing pieces, with zero external
//! dependencies:
//!
//! 1. **Span tracing** ([`span`], [`span_owned`], [`SpanGuard`]): RAII
//!    nested spans forming a tree per algorithm run. [`Ledger`
//!    absorption](https://docs.rs) in `mwc-congest` attributes each phase's
//!    round/word/message deltas to the innermost open span, so the span
//!    tree is a flamegraph of simulated rounds rather than wall-clock time.
//! 2. **Event sink**: when tracing is active, every span close and bound
//!    audit is emitted as one JSONL line. The sink is selected from the
//!    `MWC_TRACE` environment variable (a file path) or installed
//!    programmatically as an in-memory session ([`TraceSession::memory`]).
//!    When no sink is active every operation is a cheap early-return that
//!    allocates nothing and records nothing.
//! 3. **Bound auditing** ([`audit`]): algorithm entry points declare their
//!    theoretical round bound as a closure of `(n, D, h, k, ε)`; the
//!    auditor records the measured-vs-bound ratio and fails a debug
//!    assertion when a run exceeds its bound by more than the
//!    `MWC_TRACE_BOUND_FACTOR` slack factor (default 1).
//!
//! Determinism is a hard requirement: no wall-clock timestamps ever enter
//! the event stream — ordering is by a per-session sequence counter and all
//! quantities are simulated-round accounting, so same-seed runs produce
//! byte-identical traces (checked in CI).
//!
//! All state is thread-local: parallel test threads trace independently.

// `deny` rather than `forbid`: the one sanctioned exception is the
// counting `GlobalAlloc` pass-through in [`profile`], which carries a
// module-local `#[allow(unsafe_code)]` next to its safety argument.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod diff;
pub mod export;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod record;

use json::Json;
use std::cell::RefCell;
use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::path::PathBuf;

pub use audit::{check_bound, AuditRecord, BoundInputs};
pub use diff::{
    diff_records, triage_spans, DiffConfig, DiffEntry, DiffStatus, RunDiff, Tolerance, TriageEntry,
};
pub use export::{chrome_trace, validate_chrome_trace, TraceSummary};
pub use metrics::{validate_openmetrics, MetricsRegistry};
pub use record::{
    audit_margins, AuditMargin, CacheTally, CongestionSummary, RunRecord, SpanMetrics, WorkerTally,
    RUN_RECORD_SCHEMA, RUN_RECORD_SCHEMA_V1,
};

/// One closed span: a node of the trace tree.
///
/// Cost fields are **self** costs (absorbed while this span was innermost);
/// use [`SpanNode::total_rounds`] etc. for inclusive subtree totals.
#[derive(Clone, Debug, Default)]
pub struct SpanNode {
    /// Order in which the span was *opened* (session-wide, 0-based).
    pub seq: u64,
    /// Span label, e.g. `"ksssp/skeleton-apsp"`.
    pub label: String,
    /// Simulated rounds attributed directly to this span.
    pub rounds: u64,
    /// Words moved while this span was innermost.
    pub words: u64,
    /// Messages delivered while this span was innermost.
    pub messages: u64,
    /// Rounds a phase cache avoided re-charging while this span was
    /// innermost (see `Ledger::credit_cached` in `mwc-congest`). Not part
    /// of `rounds` — an audit trail of what reuse saved.
    pub rounds_saved: u64,
    /// Host wall-nanoseconds attributed to this span while it was
    /// innermost (plus any `mwc-par` worker busy-time folded in via
    /// [`add_span_wall`]). Zero unless
    /// [`profile::set_thread_profiling`] enabled profiling; always
    /// machine-dependent, never in the JSONL events or the manifest.
    pub wall_ns: u64,
    /// Heap bytes allocated on this thread while this span was innermost
    /// (gross allocation, not churn-adjusted). Zero unless profiling is
    /// enabled *and* a [`profile::CountingAlloc`] is installed.
    pub alloc_bytes: u64,
    /// Heap allocations performed while this span was innermost. Same
    /// preconditions as [`SpanNode::alloc_bytes`].
    pub alloc_count: u64,
    /// Bound audits recorded while this span was innermost.
    pub audits: Vec<AuditRecord>,
    /// Child spans in open order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Rounds of this span plus all descendants.
    pub fn total_rounds(&self) -> u64 {
        self.rounds
            + self
                .children
                .iter()
                .map(SpanNode::total_rounds)
                .sum::<u64>()
    }

    /// Words of this span plus all descendants.
    pub fn total_words(&self) -> u64 {
        self.words + self.children.iter().map(SpanNode::total_words).sum::<u64>()
    }

    /// Messages of this span plus all descendants.
    pub fn total_messages(&self) -> u64 {
        self.messages
            + self
                .children
                .iter()
                .map(SpanNode::total_messages)
                .sum::<u64>()
    }

    /// Cache-saved rounds of this span plus all descendants.
    pub fn total_rounds_saved(&self) -> u64 {
        self.rounds_saved
            + self
                .children
                .iter()
                .map(SpanNode::total_rounds_saved)
                .sum::<u64>()
    }

    /// Wall-nanoseconds of this span plus all descendants.
    pub fn total_wall_ns(&self) -> u64 {
        self.wall_ns
            + self
                .children
                .iter()
                .map(SpanNode::total_wall_ns)
                .sum::<u64>()
    }

    /// Allocated bytes of this span plus all descendants.
    pub fn total_alloc_bytes(&self) -> u64 {
        self.alloc_bytes
            + self
                .children
                .iter()
                .map(SpanNode::total_alloc_bytes)
                .sum::<u64>()
    }

    /// Allocation count of this span plus all descendants.
    pub fn total_alloc_count(&self) -> u64 {
        self.alloc_count
            + self
                .children
                .iter()
                .map(SpanNode::total_alloc_count)
                .sum::<u64>()
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("label", Json::str(&self.label)),
            ("seq", Json::U64(self.seq)),
            ("rounds", Json::U64(self.rounds)),
            ("words", Json::U64(self.words)),
            ("messages", Json::U64(self.messages)),
            ("rounds_saved", Json::U64(self.rounds_saved)),
            ("total_rounds", Json::U64(self.total_rounds())),
            ("total_words", Json::U64(self.total_words())),
            (
                "audits",
                Json::Arr(self.audits.iter().map(AuditRecord::to_json).collect()),
            ),
            (
                "children",
                Json::Arr(self.children.iter().map(SpanNode::to_json).collect()),
            ),
        ])
    }
}

/// The result of a finished [`TraceSession`]: the forest of root spans plus
/// any audits recorded outside every span.
#[derive(Clone, Debug, Default)]
pub struct TraceData {
    /// Root spans in open order.
    pub roots: Vec<SpanNode>,
    /// Audits recorded while no span was open.
    pub orphan_audits: Vec<AuditRecord>,
    /// Phase-cache effectiveness summed over every cache scope that
    /// closed during the session (see [`add_cache_stats`]). Session-level
    /// rather than per-span because a cache scope outlives the spans that
    /// ran under it.
    pub cache: CacheTally,
    /// The JSONL event lines, in emission order (what a file sink would
    /// have written). Useful for schema/golden tests.
    pub events: Vec<String>,
}

impl TraceData {
    /// Every audit in the session, in recording order (span-attached ones
    /// in span *close* order, as emitted).
    pub fn all_audits(&self) -> Vec<&AuditRecord> {
        fn walk<'a>(node: &'a SpanNode, out: &mut Vec<(u64, &'a AuditRecord)>) {
            for a in &node.audits {
                out.push((node.seq, a));
            }
            for c in &node.children {
                walk(c, out);
            }
        }
        let mut tagged = Vec::new();
        for r in &self.roots {
            walk(r, &mut tagged);
        }
        tagged.sort_by_key(|(seq, _)| *seq);
        let mut out: Vec<&AuditRecord> = tagged.into_iter().map(|(_, a)| a).collect();
        out.extend(self.orphan_audits.iter());
        out
    }

    /// Renders the span forest as an indented text flamegraph of simulated
    /// rounds. Deterministic; used by the `trace_report` binary.
    pub fn flamegraph(&self) -> String {
        fn walk(node: &SpanNode, depth: usize, grand_total: u64, out: &mut String) {
            let total = node.total_rounds();
            let pct = if grand_total > 0 {
                100.0 * total as f64 / grand_total as f64
            } else {
                0.0
            };
            let indent = "  ".repeat(depth);
            out.push_str(&format!(
                "{indent}{label:<width$} {total:>9} rounds {words:>12} words {pct:>5.1}%\n",
                label = node.label,
                width = 44usize.saturating_sub(2 * depth),
                words = node.total_words(),
            ));
            for a in &node.audits {
                out.push_str(&format!(
                    "{indent}  · bound[{}]: measured {} ≤ {:.0} (ratio {:.3})\n",
                    a.algorithm, a.measured_rounds, a.bound_rounds, a.ratio
                ));
            }
            for c in &node.children {
                walk(c, depth + 1, grand_total, out);
            }
        }
        let grand_total: u64 = self.roots.iter().map(SpanNode::total_rounds).sum();
        let mut out = String::new();
        for r in &self.roots {
            walk(r, 0, grand_total, &mut out);
        }
        out
    }

    /// The machine-readable manifest for `results/trace_manifest.json`.
    ///
    /// `audit_margins` aggregates every bound audit per algorithm (count,
    /// worst measured/bound ratio) so constant-factor drift is visible in
    /// the manifest itself, not only via `trace_diff`.
    pub fn to_manifest(&self) -> Json {
        Json::obj([
            ("schema", Json::str("mwc-trace-manifest/v4")),
            (
                "total_rounds",
                Json::U64(self.roots.iter().map(SpanNode::total_rounds).sum()),
            ),
            (
                "total_words",
                Json::U64(self.roots.iter().map(SpanNode::total_words).sum()),
            ),
            (
                "total_rounds_saved",
                Json::U64(self.roots.iter().map(SpanNode::total_rounds_saved).sum()),
            ),
            ("cache", self.cache.to_json()),
            (
                "audit_margins",
                Json::Arr(
                    record::audit_margins(&self.all_audits())
                        .iter()
                        .map(AuditMargin::to_json)
                        .collect(),
                ),
            ),
            (
                "spans",
                Json::Arr(self.roots.iter().map(SpanNode::to_json).collect()),
            ),
            (
                "orphan_audits",
                Json::Arr(
                    self.orphan_audits
                        .iter()
                        .map(AuditRecord::to_json)
                        .collect(),
                ),
            ),
        ])
    }
}

enum Sink {
    Memory,
    File(BufWriter<File>),
}

struct Collector {
    sink: Sink,
    stack: Vec<SpanNode>,
    data: TraceData,
    next_seq: u64,
    /// Last profiling checkpoint, when thread profiling is enabled. The
    /// interval between consecutive span boundaries is charged to the
    /// span that was innermost *during* that interval — the same
    /// attribution model `Ledger::absorb` uses for rounds.
    prof: Option<profile::Mark>,
}

impl Collector {
    fn new(sink: Sink) -> Self {
        Collector {
            sink,
            stack: Vec::new(),
            data: TraceData::default(),
            next_seq: 0,
            prof: None,
        }
    }

    /// Takes a profiling checkpoint at a span boundary, charging the
    /// wall/alloc delta since the previous checkpoint to the innermost
    /// open span. No-op (and checkpoint reset) when thread profiling is
    /// off, so untraced intervals are never misattributed after a
    /// disable/enable cycle.
    fn profile_mark(&mut self) {
        if !profile::thread_profiling_enabled() {
            self.prof = None;
            return;
        }
        let now = profile::Mark::now();
        if let (Some(prev), Some(top)) = (&self.prof, self.stack.last_mut()) {
            top.wall_ns += now.at.duration_since(prev.at).as_nanos() as u64;
            top.alloc_bytes += now.bytes.wrapping_sub(prev.bytes);
            top.alloc_count += now.count.wrapping_sub(prev.count);
        }
        self.prof = Some(now);
    }

    fn emit(&mut self, line: String) {
        match &mut self.sink {
            Sink::Memory => self.data.events.push(line),
            Sink::File(w) => {
                let _ = writeln!(w, "{line}");
            }
        }
    }

    fn open(&mut self, label: String) {
        self.profile_mark();
        let seq = self.next_seq;
        self.next_seq += 1;
        self.stack.push(SpanNode {
            seq,
            label,
            ..SpanNode::default()
        });
    }

    fn close(&mut self) {
        self.profile_mark();
        // A guard can outlive its session (the session finished first and
        // the guard now closes against whatever tracer was restored); in
        // that case there is nothing to close here.
        let Some(node) = self.stack.pop() else {
            return;
        };
        let parent_seq = self.stack.last().map(|p| p.seq);
        let line = Json::obj([
            ("ev", Json::str("span")),
            ("seq", Json::U64(node.seq)),
            ("parent", parent_seq.map_or(Json::Null, Json::U64)),
            ("label", Json::str(&node.label)),
            ("rounds", Json::U64(node.rounds)),
            ("words", Json::U64(node.words)),
            ("messages", Json::U64(node.messages)),
            ("rounds_saved", Json::U64(node.rounds_saved)),
            ("total_rounds", Json::U64(node.total_rounds())),
        ])
        .render();
        self.emit(line);
        match self.stack.last_mut() {
            Some(parent) => parent.children.push(node),
            None => {
                self.data.roots.push(node);
                if let Sink::File(w) = &mut self.sink {
                    let _ = w.flush();
                }
            }
        }
    }

    fn add_cost(&mut self, rounds: u64, words: u64, messages: u64) {
        if let Some(top) = self.stack.last_mut() {
            top.rounds += rounds;
            top.words += words;
            top.messages += messages;
        }
    }

    fn add_saved(&mut self, rounds: u64) {
        if let Some(top) = self.stack.last_mut() {
            top.rounds_saved += rounds;
        }
    }

    fn add_wall(&mut self, ns: u64) {
        if let Some(top) = self.stack.last_mut() {
            top.wall_ns += ns;
        }
    }

    fn add_cache_tally(&mut self, tally: CacheTally) {
        let line = Json::obj([
            ("ev", Json::str("cache")),
            ("tree_hits", Json::U64(tally.tree_hits)),
            ("tree_misses", Json::U64(tally.tree_misses)),
            ("latency_hits", Json::U64(tally.latency_hits)),
            ("latency_misses", Json::U64(tally.latency_misses)),
            ("rounds_saved", Json::U64(tally.rounds_saved)),
        ])
        .render();
        self.emit(line);
        self.data.cache.add(&tally);
    }

    fn add_audit(&mut self, record: AuditRecord) {
        let line = record.to_event_json().render();
        self.emit(line);
        match self.stack.last_mut() {
            Some(top) => top.audits.push(record),
            None => self.data.orphan_audits.push(record),
        }
    }

    /// Splices a captured [`TraceData`] (from a worker's
    /// [`TraceSession::memory`]) into this collector exactly as if its
    /// spans had run inline on this thread, here, now.
    ///
    /// Because spans close strictly LIFO, the worker's seqs `0..k` are its
    /// open order — which is also a pre-order walk of its forest — so a
    /// constant offset of `next_seq` renumbers them to what an inline run
    /// would have assigned. The worker's event lines are re-emitted in
    /// their original order with the same offset applied (span roots get
    /// the current innermost span, if any, as parent), keeping file sinks
    /// byte-identical to sequential execution.
    fn graft(&mut self, mut data: TraceData) {
        let base = self.next_seq;
        fn renumber(node: &mut SpanNode, next: &mut u64) {
            node.seq = *next;
            *next += 1;
            for c in &mut node.children {
                renumber(c, next);
            }
        }
        let mut next = base;
        for r in &mut data.roots {
            renumber(r, &mut next);
        }
        self.next_seq = next;
        let parent_seq = self.stack.last().map(|p| p.seq);
        for line in &data.events {
            let rewritten = rewrite_grafted_event(line, base, parent_seq);
            self.emit(rewritten);
        }
        // Cache events (re-emitted above, untouched) carry the worker's
        // tally; fold it into the session total like an inline run would.
        self.data.cache.add(&data.cache);
        match self.stack.last_mut() {
            Some(top) => {
                top.children.extend(data.roots);
                top.audits.extend(data.orphan_audits);
            }
            None => {
                self.data.roots.extend(data.roots);
                self.data.orphan_audits.extend(data.orphan_audits);
                if let Sink::File(w) = &mut self.sink {
                    let _ = w.flush();
                }
            }
        }
    }
}

/// Offsets the seq/parent links of a captured span event by `base`;
/// worker-root spans (`parent: null`) are re-parented to `parent_seq`.
/// Audit events carry no seq and pass through untouched.
fn rewrite_grafted_event(line: &str, base: u64, parent_seq: Option<u64>) -> String {
    let Ok(mut v) = Json::parse(line) else {
        return line.to_owned();
    };
    if v.get("ev").and_then(Json::as_str) != Some("span") {
        return line.to_owned();
    }
    if let Json::Obj(pairs) = &mut v {
        for (k, val) in pairs.iter_mut() {
            match (k.as_str(), &*val) {
                ("seq", Json::U64(s)) => *val = Json::U64(s + base),
                ("parent", Json::U64(p)) => *val = Json::U64(p + base),
                ("parent", Json::Null) => *val = parent_seq.map_or(Json::Null, Json::U64),
                _ => {}
            }
        }
    }
    v.render()
}

enum Tracer {
    /// Not yet initialized on this thread; first use consults `MWC_TRACE`.
    Uninit,
    Disabled,
    Active(Box<Collector>),
}

thread_local! {
    static TRACER: RefCell<Tracer> = const { RefCell::new(Tracer::Uninit) };
}

fn init_from_env() -> Tracer {
    match std::env::var_os("MWC_TRACE") {
        Some(path) if !path.is_empty() => {
            let path = PathBuf::from(path);
            match File::create(&path) {
                Ok(f) => Tracer::Active(Box::new(Collector::new(Sink::File(BufWriter::new(f))))),
                Err(e) => {
                    eprintln!("mwc-trace: cannot open MWC_TRACE={}: {e}", path.display());
                    Tracer::Disabled
                }
            }
        }
        _ => Tracer::Disabled,
    }
}

/// Runs `f` with the thread's collector if tracing is active; initializes
/// from the environment on first use.
fn with_collector<R>(f: impl FnOnce(&mut Collector) -> R) -> Option<R> {
    TRACER.with(|t| {
        let mut t = t.borrow_mut();
        if matches!(*t, Tracer::Uninit) {
            *t = init_from_env();
        }
        match &mut *t {
            Tracer::Active(c) => Some(f(c)),
            _ => None,
        }
    })
}

/// `true` if a sink is active on this thread (after lazy env init).
pub fn enabled() -> bool {
    with_collector(|_| ()).is_some()
}

/// RAII guard for an open span; closing happens on drop, strictly LIFO.
///
/// When tracing is disabled the guard is inert (nothing allocated, drop is
/// a no-op).
#[must_use = "a span closes when its guard drops; binding to _ closes it immediately"]
pub struct SpanGuard {
    armed: bool,
}

impl SpanGuard {
    /// A guard that does nothing on drop.
    pub fn inert() -> SpanGuard {
        SpanGuard { armed: false }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.armed {
            with_collector(|c| c.close());
        }
    }
}

/// Opens a span with a static label. Returns an inert guard when tracing is
/// disabled.
pub fn span(label: &'static str) -> SpanGuard {
    let armed = with_collector(|c| c.open(label.to_owned())).is_some();
    SpanGuard { armed }
}

/// Opens a span whose label is built only if tracing is active — use for
/// dynamic labels so the disabled path stays allocation-free.
pub fn span_owned(label: impl FnOnce() -> String) -> SpanGuard {
    let armed = with_collector(|c| c.open(label())).is_some();
    SpanGuard { armed }
}

/// Attributes simulated cost to the innermost open span. Called by
/// `Ledger::absorb` in `mwc-congest`; a no-op when tracing is disabled or
/// no span is open.
pub fn add_cost(rounds: u64, words: u64, messages: u64) {
    with_collector(|c| c.add_cost(rounds, words, messages));
}

/// Attributes phase-cache-saved rounds to the innermost open span. Called
/// by `Ledger::credit_cached` in `mwc-congest`; a no-op when tracing is
/// disabled or no span is open.
pub fn add_saved(rounds: u64) {
    with_collector(|c| c.add_saved(rounds));
}

/// Folds externally measured wall-nanoseconds into the innermost open
/// span. Called by `mwc-par` after a fork-join to charge the busy-time of
/// its *spawned* workers to the span that spawned them (the caller-thread
/// task is already covered by the interval marks). A no-op when tracing
/// or thread profiling is disabled, or no span is open — so the disabled
/// path stays free and untraced builds never link profiling state.
pub fn add_span_wall(ns: u64) {
    if !profile::thread_profiling_enabled() {
        return;
    }
    with_collector(|c| c.add_wall(ns));
}

/// Reports one closed phase-cache scope's hit/miss counters to the
/// active trace: emits a `{"ev":"cache",...}` JSONL line and folds the
/// counters into the session-level [`TraceData::cache`] tally. Called by
/// `CacheScope::drop` in `mwc-congest`; a no-op when tracing is
/// disabled. Session-level (not per-span) because the scope outlives
/// the spans that ran under it.
pub fn add_cache_stats(
    tree_hits: u64,
    tree_misses: u64,
    latency_hits: u64,
    latency_misses: u64,
    rounds_saved: u64,
) {
    with_collector(|c| {
        c.add_cache_tally(CacheTally {
            tree_hits,
            tree_misses,
            latency_hits,
            latency_misses,
            rounds_saved,
        })
    });
}

pub(crate) fn record_audit(record: AuditRecord) {
    with_collector(|c| c.add_audit(record));
}

/// Splices a [`TraceData`] captured on another thread (via
/// [`TraceSession::memory`]) into the current thread's active trace, as if
/// its spans had run inline at this point. A no-op when tracing is
/// disabled.
///
/// This is the join half of the capture-and-graft pattern the parallel
/// bench bins use with `mwc-par`: each worker runs its item under its own
/// memory session (tracing state is thread-local), returns the finished
/// `TraceData`, and the caller grafts the results **in input order** —
/// making the merged trace, and everything derived from it (run records,
/// manifests, JSONL sinks), independent of the worker schedule and
/// byte-identical to a sequential run.
pub fn graft(data: TraceData) {
    with_collector(|c| c.graft(data));
}

/// A programmatic tracing session on the current thread.
///
/// Installs an in-memory sink (displacing whatever was active), collects
/// spans and audits until [`TraceSession::finish`], then restores the
/// previous tracer state. Used by `trace_report` and the tracing tests.
pub struct TraceSession {
    prev: Option<Tracer>,
}

impl TraceSession {
    /// Starts collecting into memory on this thread.
    pub fn memory() -> TraceSession {
        let prev = TRACER.with(|t| {
            std::mem::replace(
                &mut *t.borrow_mut(),
                Tracer::Active(Box::new(Collector::new(Sink::Memory))),
            )
        });
        TraceSession { prev: Some(prev) }
    }

    /// Stops collecting and returns everything recorded.
    ///
    /// Spans still open at finish time are closed implicitly (their guards
    /// become inert against the restored tracer — callers should finish
    /// only after all guards dropped; any stragglers are folded into the
    /// result so no data is lost).
    pub fn finish(mut self) -> TraceData {
        let prev = self.prev.take().unwrap_or(Tracer::Uninit);
        let current = TRACER.with(|t| std::mem::replace(&mut *t.borrow_mut(), prev));
        match current {
            Tracer::Active(mut c) => {
                while !c.stack.is_empty() {
                    c.close();
                }
                c.data
            }
            _ => TraceData::default(),
        }
    }
}

impl Drop for TraceSession {
    fn drop(&mut self) {
        if let Some(prev) = self.prev.take() {
            TRACER.with(|t| *t.borrow_mut() = prev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_is_inert() {
        // No MWC_TRACE in the test environment: spans are inert and cost
        // attribution goes nowhere.
        let g = span("outer");
        add_cost(10, 20, 3);
        drop(g);
        let session = TraceSession::memory();
        let data = session.finish();
        assert!(data.roots.is_empty());
    }

    #[test]
    fn spans_nest_and_accumulate() {
        let session = TraceSession::memory();
        {
            let _outer = span("outer");
            add_cost(5, 50, 1);
            {
                let _inner = span_owned(|| format!("inner/{}", 7));
                add_cost(3, 30, 1);
            }
            add_cost(2, 20, 1);
        }
        let data = session.finish();
        assert_eq!(data.roots.len(), 1);
        let outer = &data.roots[0];
        assert_eq!(outer.label, "outer");
        assert_eq!(outer.rounds, 7); // self cost only
        assert_eq!(outer.total_rounds(), 10);
        assert_eq!(outer.children.len(), 1);
        assert_eq!(outer.children[0].label, "inner/7");
        assert_eq!(outer.children[0].rounds, 3);
    }

    #[test]
    fn events_emit_in_close_order_with_parent_links() {
        let session = TraceSession::memory();
        {
            let _a = span("a");
            let _b = span("b");
        }
        let data = session.finish();
        assert_eq!(data.events.len(), 2);
        assert!(data.events[0].contains("\"label\":\"b\""));
        assert!(data.events[0].contains("\"parent\":0"));
        assert!(data.events[1].contains("\"label\":\"a\""));
        assert!(data.events[1].contains("\"parent\":null"));
    }

    #[test]
    fn golden_jsonl_event_schema() {
        // The exact event bytes are a contract: external tooling parses
        // the JSONL sink, and the CI determinism check diffs manifests
        // byte-for-byte. Any schema change must update this golden test.
        let session = TraceSession::memory();
        {
            let _s = span("alg");
            add_cost(3, 12, 2);
            check_bound(
                "test/golden",
                BoundInputs::n(8).diameter(4).h(2).k(1),
                3,
                |i| 2.0 * i.diameter as f64,
            );
        }
        let data = session.finish();
        assert_eq!(
            data.events,
            vec![
                "{\"ev\":\"audit\",\"algorithm\":\"test/golden\",\"measured_rounds\":3,\
                 \"bound_rounds\":8.0,\"ratio\":0.375,\"n\":8,\"diameter\":4,\"h\":2,\
                 \"k\":1,\"eps\":0.0}",
                "{\"ev\":\"span\",\"seq\":0,\"parent\":null,\"label\":\"alg\",\"rounds\":3,\
                 \"words\":12,\"messages\":2,\"rounds_saved\":0,\"total_rounds\":3}",
            ]
        );
    }

    #[test]
    fn session_restores_previous_state() {
        let outer = TraceSession::memory();
        {
            let inner = TraceSession::memory();
            {
                let _s = span("inner-span");
            }
            let data = inner.finish();
            assert_eq!(data.roots.len(), 1);
        }
        let _s = span("outer-span");
        let data = outer.finish();
        assert_eq!(data.roots.len(), 1);
        assert_eq!(data.roots[0].label, "outer-span");
    }

    #[test]
    fn flamegraph_and_manifest_are_deterministic() {
        let run = || {
            let session = TraceSession::memory();
            {
                let _o = span("algo");
                add_cost(8, 80, 2);
                let _i = span("algo/phase");
                add_cost(2, 20, 1);
            }
            let data = session.finish();
            (data.flamegraph(), data.to_manifest().render_pretty())
        };
        let (f1, m1) = run();
        let (f2, m2) = run();
        assert_eq!(f1, f2);
        assert_eq!(m1, m2);
        assert!(f1.contains("algo/phase"));
        assert!(m1.contains("\"schema\": \"mwc-trace-manifest/v4\""));
        assert!(m1.contains("\"total_rounds_saved\""));
        assert!(m1.contains("\"cache\""));
        assert!(m1.contains("\"audit_margins\""));
    }

    #[test]
    fn golden_cache_event_schema() {
        // Like golden_jsonl_event_schema: the cache event bytes are a
        // contract with external JSONL consumers.
        let session = TraceSession::memory();
        add_cache_stats(2, 1, 4, 3, 17);
        let data = session.finish();
        assert_eq!(
            data.events,
            vec![
                "{\"ev\":\"cache\",\"tree_hits\":2,\"tree_misses\":1,\"latency_hits\":4,\
                 \"latency_misses\":3,\"rounds_saved\":17}",
            ]
        );
        assert_eq!(data.cache.tree_hits, 2);
        assert_eq!(data.cache.rounds_saved, 17);
    }

    #[test]
    fn cache_tallies_accumulate_and_graft_like_inline() {
        let inline = {
            let session = TraceSession::memory();
            add_cache_stats(1, 1, 0, 0, 5);
            add_cache_stats(2, 0, 1, 1, 7);
            session.finish()
        };
        assert_eq!(inline.cache.tree_hits, 3);
        assert_eq!(inline.cache.rounds_saved, 12);
        let grafted = {
            let session = TraceSession::memory();
            for tally in [(1, 1, 0, 0, 5), (2, 0, 1, 1, 7)] {
                let worker = TraceSession::memory();
                let (th, tm, lh, lm, rs) = tally;
                add_cache_stats(th, tm, lh, lm, rs);
                graft(worker.finish());
            }
            session.finish()
        };
        assert_eq!(inline.events, grafted.events);
        assert_eq!(inline.cache, grafted.cache);
        assert_eq!(
            inline.to_manifest().render_pretty(),
            grafted.to_manifest().render_pretty()
        );
    }

    /// The workload used by the graft equivalence tests: two spans with
    /// costs, savings, and an audit.
    fn graft_workload(tag: u64) {
        let _o = span_owned(|| format!("work/{tag}"));
        add_cost(tag + 1, 10 * (tag + 1), 2);
        check_bound("test/graft", BoundInputs::n(8), 2, |_| 16.0);
        {
            let _i = span("inner");
            add_cost(1, 2, 3);
            add_saved(5);
        }
    }

    #[test]
    fn graft_is_byte_identical_to_inline_execution() {
        // Inline: everything on one session.
        let inline = {
            let session = TraceSession::memory();
            for tag in 0..3 {
                graft_workload(tag);
            }
            session.finish()
        };
        // Captured: each item under its own session (as a pool worker
        // would run it), grafted back in input order.
        let grafted = {
            let session = TraceSession::memory();
            let captured: Vec<TraceData> = (0..3)
                .map(|tag| {
                    let worker = TraceSession::memory();
                    graft_workload(tag);
                    worker.finish()
                })
                .collect();
            for data in captured {
                graft(data);
            }
            session.finish()
        };
        assert_eq!(inline.events, grafted.events);
        assert_eq!(
            inline.to_manifest().render_pretty(),
            grafted.to_manifest().render_pretty()
        );
        assert_eq!(
            record::RunRecord::from_trace("t", [], &inline),
            record::RunRecord::from_trace("t", [], &grafted)
        );
    }

    #[test]
    fn graft_under_an_open_span_nests_like_inline() {
        let inline = {
            let session = TraceSession::memory();
            {
                let _outer = span("sweep");
                graft_workload(7);
            }
            session.finish()
        };
        let grafted = {
            let session = TraceSession::memory();
            {
                let _outer = span("sweep");
                let worker = TraceSession::memory();
                graft_workload(7);
                graft(worker.finish());
            }
            session.finish()
        };
        assert_eq!(inline.events, grafted.events);
        assert_eq!(grafted.roots.len(), 1);
        assert_eq!(grafted.roots[0].children[0].label, "work/7");
    }

    #[test]
    fn profiling_attributes_wall_and_alloc_to_innermost_span() {
        profile::set_thread_profiling(true);
        let session = TraceSession::memory();
        {
            let _o = span("outer");
            profile::note_alloc(100);
            {
                let _i = span("inner");
                profile::note_alloc(30);
                profile::note_alloc(10);
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            profile::note_alloc(7);
        }
        let data = session.finish();
        profile::set_thread_profiling(false);
        let outer = &data.roots[0];
        let inner = &outer.children[0];
        assert_eq!(outer.alloc_bytes, 107);
        assert_eq!(outer.alloc_count, 2);
        assert_eq!(inner.alloc_bytes, 40);
        assert_eq!(inner.alloc_count, 2);
        assert_eq!(outer.total_alloc_bytes(), 147);
        assert_eq!(outer.total_alloc_count(), 4);
        assert!(inner.wall_ns >= 2_000_000, "sleep lands in inner span");
        assert!(outer.total_wall_ns() >= inner.wall_ns);
        // Profile samples must never leak into the deterministic
        // artifacts: events and manifest carry no wall/alloc fields.
        for ev in &data.events {
            assert!(!ev.contains("wall"), "event leaked wall data: {ev}");
            assert!(!ev.contains("alloc"), "event leaked alloc data: {ev}");
        }
        let manifest = data.to_manifest().render();
        assert!(!manifest.contains("wall_ns"));
        assert!(!manifest.contains("alloc_bytes"));
    }

    #[test]
    fn profiling_disabled_leaves_spans_zeroed() {
        let session = TraceSession::memory();
        {
            let _o = span("outer");
            profile::note_alloc(512);
            add_span_wall(1234);
        }
        let data = session.finish();
        let outer = &data.roots[0];
        assert_eq!(outer.wall_ns, 0);
        assert_eq!(outer.alloc_bytes, 0);
        assert_eq!(outer.alloc_count, 0);
    }

    #[test]
    fn add_span_wall_folds_into_innermost_span() {
        profile::set_thread_profiling(true);
        let session = TraceSession::memory();
        {
            let _o = span("spawner");
            add_span_wall(5_000);
            add_span_wall(2_000);
        }
        let data = session.finish();
        profile::set_thread_profiling(false);
        assert!(data.roots[0].wall_ns >= 7_000);
    }

    #[test]
    fn saved_rounds_attribute_to_innermost_span() {
        let session = TraceSession::memory();
        {
            let _o = span("outer");
            add_saved(4);
            {
                let _i = span("inner");
                add_saved(6);
            }
        }
        let data = session.finish();
        let outer = &data.roots[0];
        assert_eq!(outer.rounds_saved, 4);
        assert_eq!(outer.children[0].rounds_saved, 6);
        assert_eq!(outer.total_rounds_saved(), 10);
        // rounds_saved never leaks into charged rounds.
        assert_eq!(outer.total_rounds(), 0);
        // And it appears in the close event, right after messages.
        assert!(data.events[0].contains("\"messages\":0,\"rounds_saved\":6"));
    }
}
