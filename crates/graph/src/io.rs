//! Plain-text edge-list serialization.
//!
//! Format (whitespace-separated, `#` comments allowed):
//!
//! ```text
//! <n> directed|undirected
//! u v [w]     # one edge per line; weight defaults to 1
//! ```
//!
//! # Examples
//!
//! ```
//! use mwc_graph::{io, Graph, Orientation};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let g = Graph::from_edges(3, Orientation::Directed, [(0, 1, 2), (1, 2, 1)])?;
//! let text = io::to_edge_list(&g);
//! let back = io::parse_edge_list(&text)?;
//! assert_eq!(back.n(), 3);
//! assert_eq!(back.weight(0, 1), Some(2));
//! # Ok(())
//! # }
//! ```

use crate::graph::{Graph, GraphError, Orientation};
use std::fmt;

/// Errors produced by [`parse_edge_list`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ParseGraphError {
    /// The input had no header line.
    MissingHeader,
    /// The header was not `<n> directed|undirected`.
    BadHeader {
        /// The offending header line.
        line: String,
    },
    /// An edge line did not parse.
    BadEdge {
        /// 1-based line number in the input.
        line_no: usize,
        /// The offending line.
        line: String,
    },
    /// The edge was rejected by the graph (self-loop, duplicate, range).
    Graph {
        /// 1-based line number in the input.
        line_no: usize,
        /// The underlying graph error.
        source: GraphError,
    },
}

impl fmt::Display for ParseGraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseGraphError::MissingHeader => f.write_str("missing header line"),
            ParseGraphError::BadHeader { line } => {
                write!(
                    f,
                    "bad header {line:?}: expected \"<n> directed|undirected\""
                )
            }
            ParseGraphError::BadEdge { line_no, line } => {
                write!(f, "line {line_no}: bad edge {line:?}: expected \"u v [w]\"")
            }
            ParseGraphError::Graph { line_no, source } => {
                write!(f, "line {line_no}: {source}")
            }
        }
    }
}

impl std::error::Error for ParseGraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseGraphError::Graph { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Parses a graph from the edge-list format (see the [module docs](self)).
///
/// # Errors
///
/// Returns a [`ParseGraphError`] pinpointing the offending line.
pub fn parse_edge_list(text: &str) -> Result<Graph, ParseGraphError> {
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.split('#').next().unwrap_or("").trim()))
        .filter(|(_, l)| !l.is_empty());

    let (_, header) = lines.next().ok_or(ParseGraphError::MissingHeader)?;
    let mut h = header.split_whitespace();
    let bad_header = || ParseGraphError::BadHeader {
        line: header.to_owned(),
    };
    let n: usize = h
        .next()
        .ok_or_else(bad_header)?
        .parse()
        .map_err(|_| bad_header())?;
    let orientation = match h.next().unwrap_or("undirected") {
        "directed" => Orientation::Directed,
        "undirected" => Orientation::Undirected,
        _ => return Err(bad_header()),
    };

    let mut g = Graph::new(n, orientation);
    for (line_no, line) in lines {
        let bad = || ParseGraphError::BadEdge {
            line_no,
            line: line.to_owned(),
        };
        let mut t = line.split_whitespace();
        let u: usize = t.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let v: usize = t.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let w: u64 = match t.next() {
            Some(x) => x.parse().map_err(|_| bad())?,
            None => 1,
        };
        if t.next().is_some() {
            return Err(bad());
        }
        g.add_edge(u, v, w)
            .map_err(|source| ParseGraphError::Graph { line_no, source })?;
    }
    Ok(g)
}

/// Serializes a graph to the edge-list format (round-trips through
/// [`parse_edge_list`]).
pub fn to_edge_list(g: &Graph) -> String {
    let mut out = format!("{} {}\n", g.n(), g.orientation());
    for e in g.edges() {
        out.push_str(&format!("{} {} {}\n", e.u, e.v, e.weight));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{connected_gnm, WeightRange};

    #[test]
    fn round_trip_preserves_everything() {
        for orientation in [Orientation::Directed, Orientation::Undirected] {
            let g = connected_gnm(30, 60, orientation, WeightRange::uniform(1, 9), 3);
            let back = parse_edge_list(&to_edge_list(&g)).unwrap();
            assert_eq!(back.n(), g.n());
            assert_eq!(back.orientation(), g.orientation());
            assert_eq!(back.edges(), g.edges());
        }
    }

    #[test]
    fn parses_comments_blanks_and_default_weights() {
        let text = "
            # a triangle
            3 undirected

            0 1      # unit weight
            1 2 5
            2 0 2
        ";
        let g = parse_edge_list(text).unwrap();
        assert_eq!(g.m(), 3);
        assert_eq!(g.weight(0, 1), Some(1));
        assert_eq!(g.weight(1, 2), Some(5));
    }

    #[test]
    fn error_cases_pinpoint_lines() {
        assert_eq!(parse_edge_list(""), Err(ParseGraphError::MissingHeader));
        assert!(matches!(
            parse_edge_list("3 sideways"),
            Err(ParseGraphError::BadHeader { .. })
        ));
        assert!(matches!(
            parse_edge_list("3 directed\n0 x"),
            Err(ParseGraphError::BadEdge { line_no: 2, .. })
        ));
        assert!(matches!(
            parse_edge_list("3 directed\n0 1 2 9"),
            Err(ParseGraphError::BadEdge { .. })
        ));
        match parse_edge_list("2 directed\n0 0") {
            Err(ParseGraphError::Graph { line_no: 2, source }) => {
                assert_eq!(source, GraphError::SelfLoop { node: 0 });
            }
            other => panic!("expected self-loop error, got {other:?}"),
        }
    }

    #[test]
    fn header_defaults_to_undirected() {
        let g = parse_edge_list("2\n0 1 4").unwrap();
        assert_eq!(g.orientation(), Orientation::Undirected);
        assert_eq!(g.weight(1, 0), Some(4));
    }
}
