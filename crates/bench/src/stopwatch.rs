//! **stopwatch** — the criterion replacement: a zero-dependency
//! warmup + median-of-N wall-clock timer.
//!
//! Each benchmark is measured as `samples` timed samples after `warmup`
//! untimed ones; a sample runs the closure `iters` times, where `iters`
//! is calibrated once so a sample lasts at least `min_sample_ms`
//! (shielding fast closures from timer granularity). The reported
//! statistic is the **median** per-iteration time — robust to the odd
//! scheduler hiccup, unlike the mean.
//!
//! Results print as a table and are persisted as JSON under
//! `results/bench/<suite>.json` so CI can diff runs. Wall-clock numbers
//! are inherently machine-dependent — the JSON exists for tracking
//! *relative* regressions on one machine, while everything seeded
//! (round/message ledgers) stays byte-reproducible everywhere.
//!
//! Environment knobs: `MWC_BENCH_SAMPLES`, `MWC_BENCH_WARMUP`
//! (e.g. set both low for a smoke run in CI).
//!
//! ```no_run
//! use mwc_bench::stopwatch::Suite;
//!
//! let mut suite = Suite::new("example");
//! suite.bench("sum_1k", || (0..1000u64).sum::<u64>());
//! suite.finish();
//! ```

use crate::report::{self, Json};
use std::hint::black_box;
use std::time::Instant;

/// One benchmark's aggregated timing result (per-iteration nanoseconds).
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Benchmark name (conventionally `area/case`).
    pub name: String,
    /// Closure invocations per timed sample.
    pub iters_per_sample: u64,
    /// Number of timed samples.
    pub samples: u32,
    /// Median per-iteration time in nanoseconds.
    pub median_ns: u64,
    /// Fastest sample's per-iteration time.
    pub min_ns: u64,
    /// Slowest sample's per-iteration time.
    pub max_ns: u64,
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// A named collection of benchmarks sharing one config, printed as they
/// run and persisted together on [`Suite::finish`].
pub struct Suite {
    name: String,
    warmup: u32,
    samples: u32,
    min_sample_ms: u64,
    results: Vec<Measurement>,
}

impl Suite {
    /// A suite with the default config (3 warmup / 11 timed samples,
    /// ≥ 5 ms per sample), overridable via `MWC_BENCH_WARMUP` /
    /// `MWC_BENCH_SAMPLES`.
    pub fn new(name: &str) -> Self {
        let env = |key: &str, default: u32| {
            std::env::var(key)
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(default)
        };
        Suite {
            name: name.to_owned(),
            warmup: env("MWC_BENCH_WARMUP", 3),
            samples: env("MWC_BENCH_SAMPLES", 11).max(1),
            min_sample_ms: 5,
            results: Vec::new(),
        }
    }

    /// Measures `f`, printing one line and recording the result.
    pub fn bench<T>(&mut self, name: &str, mut f: impl FnMut() -> T) -> &Measurement {
        // Calibrate: batch fast closures until a sample is long enough
        // for the monotonic clock to resolve it cleanly.
        let t0 = Instant::now();
        black_box(f());
        let once_ns = t0.elapsed().as_nanos().max(1) as u64;
        let target_ns = self.min_sample_ms * 1_000_000;
        let iters = (target_ns / once_ns).clamp(1, 100_000);

        let run_sample = |f: &mut dyn FnMut()| -> u64 {
            let t = Instant::now();
            for _ in 0..iters {
                f();
            }
            // Clamp to 1 ns: a fully optimized-away closure would otherwise
            // report 0, which downstream ratio math can't handle.
            ((t.elapsed().as_nanos() as u64) / iters).max(1)
        };
        let mut erased = || {
            black_box(f());
        };
        for _ in 0..self.warmup {
            run_sample(&mut erased);
        }
        let mut per_iter: Vec<u64> = (0..self.samples).map(|_| run_sample(&mut erased)).collect();
        per_iter.sort_unstable();

        let m = Measurement {
            name: name.to_owned(),
            iters_per_sample: iters,
            samples: self.samples,
            median_ns: per_iter[per_iter.len() / 2],
            min_ns: per_iter[0],
            max_ns: per_iter[per_iter.len() - 1],
        };
        println!(
            "{:<44} median {:>12}   (min {:>12}, max {:>12}; {}×{} iters)",
            m.name,
            fmt_ns(m.median_ns),
            fmt_ns(m.min_ns),
            fmt_ns(m.max_ns),
            m.samples,
            m.iters_per_sample,
        );
        self.results.push(m);
        self.results.last().expect("just pushed")
    }

    /// Writes `results/bench/<suite>.json` and consumes the suite.
    pub fn finish(self) {
        report::save_artifact(&format!("bench/{}.json", self.name), &self.to_json());
    }

    /// The suite's results as a JSON document.
    pub fn to_json(&self) -> String {
        Json::obj([
            ("suite", Json::str(&self.name)),
            (
                "config",
                Json::obj([
                    ("warmup", Json::U64(u64::from(self.warmup))),
                    ("samples", Json::U64(u64::from(self.samples))),
                ]),
            ),
            (
                "benchmarks",
                Json::Arr(
                    self.results
                        .iter()
                        .map(|m| {
                            Json::obj([
                                ("name", Json::str(&m.name)),
                                ("median_ns", Json::U64(m.median_ns)),
                                ("min_ns", Json::U64(m.min_ns)),
                                ("max_ns", Json::U64(m.max_ns)),
                                ("iters_per_sample", Json::U64(m.iters_per_sample)),
                                ("samples", Json::U64(u64::from(m.samples))),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
        .render_pretty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_serializes() {
        let mut suite = Suite::new("selftest");
        suite.warmup = 1;
        suite.samples = 3;
        suite.min_sample_ms = 1;
        let m = suite.bench("spin", || {
            let mut acc = 0u64;
            for i in 0..10_000u64 {
                acc = acc.wrapping_add(black_box(i) * i);
            }
            acc
        });
        assert!(m.median_ns > 0);
        assert!(m.min_ns <= m.median_ns && m.median_ns <= m.max_ns);
        let json = suite.to_json();
        assert!(json.contains("\"suite\": \"selftest\""));
        assert!(json.contains("\"name\": \"spin\""));
    }

    #[test]
    fn formats_durations() {
        assert_eq!(fmt_ns(999), "999 ns");
        assert_eq!(fmt_ns(1_500), "1.500 µs");
        assert_eq!(fmt_ns(2_500_000), "2.500 ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.000 s");
    }
}
