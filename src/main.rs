//! `congest-mwc` command line: run the paper's algorithms on generated or
//! edge-list graphs and print outcomes with round ledgers.
//!
//! ```text
//! congest-mwc <command> [options]
//!
//! commands:
//!   exact      --graph <spec>                 exact MWC (Õ(n) baseline)
//!   approx     --graph <spec> [--eps E]       best matching approximation
//!   girth      --graph <spec>                 (2 − 1/g)-approx girth
//!   ksssp      --graph <spec> --sources a,b,c k-source BFS
//!   detect     --graph <spec> --q Q           shortest cycle within q hops
//!
//! graph specs:
//!   gnm:<n>:<extra>[:directed][:w=<min>-<max>][:seed=<s>]
//!   ring:<n>[:chords][:directed][:w=...][:seed=...]
//!   grid:<rows>x<cols>
//!   file:<path>            edge list: "n directed|undirected" header, then "u v w" lines
//!
//! options: --seed <s> (default 0), --eps <f> (default 0.25),
//!          --verbose (print the per-phase ledger)
//! ```

use congest_mwc::core::{
    approx_girth, approx_mwc_directed_weighted, approx_mwc_undirected_weighted, exact_mwc,
    k_source_bfs, shortest_cycle_within, two_approx_directed_mwc, MwcOutcome, Params,
};
use congest_mwc::graph::generators::{connected_gnm, grid, ring_with_chords, WeightRange};
use congest_mwc::graph::{Graph, NodeId, Orientation};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: congest-mwc <exact|approx|girth|ksssp|detect> --graph <spec> \
         [--sources a,b,c] [--q Q] [--eps E] [--seed S] [--verbose]\n\
         graph specs: gnm:<n>:<extra>[:directed][:w=min-max][:seed=s] | \
         ring:<n>[:chords][:directed][:w=min-max][:seed=s] | grid:<r>x<c> | file:<path>"
    );
    ExitCode::from(2)
}

#[derive(Default)]
struct Opts {
    command: String,
    graph: Option<String>,
    sources: Vec<NodeId>,
    q: u64,
    eps: f64,
    seed: u64,
    verbose: bool,
}

fn parse_args() -> Option<Opts> {
    let mut args = std::env::args().skip(1);
    let mut o = Opts {
        q: 4,
        eps: 0.25,
        ..Opts::default()
    };
    o.command = args.next()?;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--graph" => o.graph = Some(args.next()?),
            "--sources" => {
                o.sources = args
                    .next()?
                    .split(',')
                    .map(|t| t.trim().parse().ok())
                    .collect::<Option<Vec<_>>>()?;
            }
            "--q" => o.q = args.next()?.parse().ok()?,
            "--eps" => o.eps = args.next()?.parse().ok()?,
            "--seed" => o.seed = args.next()?.parse().ok()?,
            "--verbose" => o.verbose = true,
            _ => return None,
        }
    }
    Some(o)
}

fn parse_graph(spec: &str) -> Result<Graph, String> {
    let parts: Vec<&str> = spec.split(':').collect();
    let mut orientation = Orientation::Undirected;
    let mut weights = WeightRange::unit();
    let mut seed = 0u64;
    for p in &parts[1..] {
        if *p == "directed" {
            orientation = Orientation::Directed;
        } else if let Some(w) = p.strip_prefix("w=") {
            let (lo, hi) = w.split_once('-').ok_or("weights must be w=min-max")?;
            weights = WeightRange::uniform(
                lo.parse().map_err(|_| "bad weight min")?,
                hi.parse().map_err(|_| "bad weight max")?,
            );
        } else if let Some(s) = p.strip_prefix("seed=") {
            seed = s.parse().map_err(|_| "bad seed")?;
        }
    }
    let num = |i: usize, default: usize| -> usize {
        parts.get(i).and_then(|t| t.parse().ok()).unwrap_or(default)
    };
    match parts[0] {
        "gnm" => {
            let n = num(1, 100);
            let extra = num(2, 2 * n);
            Ok(connected_gnm(n, extra, orientation, weights, seed))
        }
        "ring" => {
            let n = num(1, 100);
            let chords = num(2, 0);
            Ok(ring_with_chords(n, chords, orientation, weights, seed))
        }
        "grid" => {
            let dims = parts.get(1).ok_or("grid needs <rows>x<cols>")?;
            let (r, c) = dims.split_once('x').ok_or("grid needs <rows>x<cols>")?;
            Ok(grid(
                r.parse().map_err(|_| "bad rows")?,
                c.parse().map_err(|_| "bad cols")?,
                orientation,
                weights,
                seed,
            ))
        }
        "file" => {
            let path = parts.get(1).ok_or("file needs a path")?;
            let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
            congest_mwc::graph::io::parse_edge_list(&text).map_err(|e| e.to_string())
        }
        other => Err(format!("unknown graph family {other}")),
    }
}

fn report(label: &str, g: &Graph, out: &MwcOutcome, verbose: bool) {
    println!(
        "{label}: n = {}, m = {}, {} — {} rounds, {} words",
        g.n(),
        g.m(),
        g.orientation(),
        out.ledger.rounds,
        out.ledger.words
    );
    match (&out.weight, &out.witness) {
        (Some(w), Some(c)) => {
            println!("MWC weight: {w}");
            println!("witness:    {c}");
        }
        _ => println!("no cycle found"),
    }
    if verbose {
        println!("\nledger:\n{}", out.ledger);
    }
}

fn main() -> ExitCode {
    let Some(o) = parse_args() else {
        return usage();
    };
    let Some(spec) = o.graph.as_deref() else {
        return usage();
    };
    let g = match parse_graph(spec) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("bad graph spec: {e}");
            return ExitCode::from(2);
        }
    };
    if !g.is_comm_connected() {
        eprintln!("graph's communication topology is disconnected; CONGEST requires connectivity");
        return ExitCode::from(2);
    }
    let params = Params::new().with_seed(o.seed).with_epsilon(o.eps);

    match o.command.as_str() {
        "exact" => report("exact", &g, &exact_mwc(&g), o.verbose),
        "approx" => {
            let out = if g.is_directed() {
                if g.is_unit_weight() {
                    two_approx_directed_mwc(&g, &params)
                } else {
                    approx_mwc_directed_weighted(&g, &params)
                }
            } else if g.is_unit_weight() {
                approx_girth(&g, &params)
            } else {
                approx_mwc_undirected_weighted(&g, &params)
            };
            report("approx", &g, &out, o.verbose);
        }
        "girth" => report("girth", &g, &approx_girth(&g, &params), o.verbose),
        "detect" => report(
            &format!("detect(q={})", o.q),
            &g,
            &shortest_cycle_within(&g, o.q),
            o.verbose,
        ),
        "ksssp" => {
            if o.sources.is_empty() {
                eprintln!("ksssp needs --sources a,b,c");
                return ExitCode::from(2);
            }
            let out = k_source_bfs(
                &g,
                &o.sources,
                congest_mwc::graph::seq::Direction::Forward,
                &params,
            );
            println!(
                "k-source BFS from {:?}: {} rounds, {} words",
                o.sources, out.ledger.rounds, out.ledger.words
            );
            for (row, &s) in o.sources.iter().enumerate() {
                let reach = (0..g.n())
                    .filter(|&v| out.get_row(row, v) != congest_mwc::congest::INF)
                    .count();
                let ecc = (0..g.n())
                    .map(|v| out.get_row(row, v))
                    .filter(|&d| d != congest_mwc::congest::INF)
                    .max()
                    .unwrap_or(0);
                println!(
                    "  source {s}: reaches {reach}/{} nodes, eccentricity {ecc}",
                    g.n()
                );
            }
            if o.verbose {
                println!("\nledger:\n{}", out.ledger);
            }
        }
        _ => return usage(),
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_specs_parse() {
        let g = parse_graph("gnm:40:80:directed:w=2-5:seed=9").unwrap();
        assert_eq!(g.n(), 40);
        assert!(g.is_directed());
        assert!(g.edges().iter().all(|e| (2..=5).contains(&e.weight)));

        let g = parse_graph("ring:12").unwrap();
        assert_eq!(g.n(), 12);
        assert_eq!(g.m(), 12);

        let g = parse_graph("grid:3x4").unwrap();
        assert_eq!(g.n(), 12);

        assert!(parse_graph("grid:oops").is_err());
        assert!(parse_graph("nope:3").is_err());
        assert!(parse_graph("gnm:10:10:w=5").is_err());
    }

    #[test]
    fn file_spec_round_trips() {
        let g = congest_mwc::graph::Graph::from_edges(
            3,
            Orientation::Directed,
            [(0, 1, 2), (1, 2, 3), (2, 0, 4)],
        )
        .unwrap();
        let path = std::env::temp_dir().join("congest_mwc_cli_test.txt");
        std::fs::write(&path, congest_mwc::graph::io::to_edge_list(&g)).unwrap();
        let parsed = parse_graph(&format!("file:{}", path.display())).unwrap();
        assert_eq!(parsed.edges(), g.edges());
        let _ = std::fs::remove_file(path);
    }
}
