//! Differential comparison of two [`RunRecord`]s — the perf-regression
//! gate's core.
//!
//! [`diff_records`] compares a fresh record against a committed baseline
//! span-by-span, congestion-summary-by-summary, and audit-by-audit, under
//! per-metric tolerances ([`DiffConfig`]). The result is both
//! machine-readable ([`RunDiff::to_json`]) and human-readable
//! ([`RunDiff::render`] names the culprit span and metric); `trace_diff`
//! exits nonzero iff [`RunDiff::has_regression`].
//!
//! Semantics:
//!
//! - Two records are **incomparable** when their names, schemas, or
//!   parameters differ — that is a configuration error, not a perf
//!   verdict, and gets its own exit code.
//! - A *regression* is a metric exceeding baseline by more than the
//!   tolerance, a span/summary/audit that disappeared, or a new one that
//!   appeared (structure drift silently invalidates the comparison, so it
//!   fails loudly).
//! - *Improvements* (metric below baseline) are reported but never fail
//!   the gate; refresh the baseline to lock them in.

use crate::json::Json;
use crate::record::RunRecord;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Tolerance for one metric family: a fresh value `f` against baseline
/// `b` regresses when `f > b + max(abs, b·rel)`.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Tolerance {
    /// Allowed relative increase (0.05 = +5%).
    pub rel: f64,
    /// Allowed absolute increase.
    pub abs: f64,
}

impl Tolerance {
    /// A tolerance allowing a relative increase only.
    pub fn rel(rel: f64) -> Tolerance {
        Tolerance { rel, abs: 0.0 }
    }

    fn allows(&self, base: f64, fresh: f64) -> bool {
        fresh <= base + self.abs.max(base.abs() * self.rel)
    }
}

/// Per-metric tolerances. The default is **zero tolerance everywhere**:
/// same-seed runs are byte-deterministic, so any delta is a real change.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DiffConfig {
    /// Tolerance on round counts (totals, spans, congestion summaries).
    pub rounds: Tolerance,
    /// Tolerance on word counts.
    pub words: Tolerance,
    /// Tolerance on message counts.
    pub messages: Tolerance,
    /// Tolerance on audit `max_ratio` margins.
    pub ratio: Tolerance,
    /// Tolerance on allocation counters (`alloc_bytes` / `alloc_count`).
    /// Only consulted when the alloc gate applies — both records ran the
    /// default `jobs ≤ 1, shards ≤ 1` configuration and the baseline
    /// carries nonzero alloc data.
    pub allocs: Tolerance,
}

impl DiffConfig {
    /// A uniform relative tolerance across all metric families.
    pub fn uniform_rel(rel: f64) -> DiffConfig {
        DiffConfig {
            rounds: Tolerance::rel(rel),
            words: Tolerance::rel(rel),
            messages: Tolerance::rel(rel),
            ratio: Tolerance::rel(rel),
            allocs: Tolerance::rel(rel),
        }
    }
}

/// What happened to one compared metric or structural key.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiffStatus {
    /// Fresh exceeds baseline beyond tolerance.
    Regressed,
    /// Fresh is below baseline (within no tolerance — strictly better).
    Improved,
    /// Fresh changed within tolerance (only emitted when tolerance > 0).
    WithinTolerance,
    /// Key present in the baseline but missing from the fresh record.
    Removed,
    /// Key present in the fresh record but not the baseline.
    Added,
}

impl DiffStatus {
    fn as_str(self) -> &'static str {
        match self {
            DiffStatus::Regressed => "REGRESSED",
            DiffStatus::Improved => "improved",
            DiffStatus::WithinTolerance => "within-tolerance",
            DiffStatus::Removed => "REMOVED",
            DiffStatus::Added => "ADDED",
        }
    }

    /// Whether this status fails the gate.
    pub fn is_regression(self) -> bool {
        matches!(
            self,
            DiffStatus::Regressed | DiffStatus::Removed | DiffStatus::Added
        )
    }
}

/// One changed metric (or structural drift) between baseline and fresh.
#[derive(Clone, Debug, PartialEq)]
pub struct DiffEntry {
    /// Which record section: `"total"`, `"cache"`, `"span"`,
    /// `"congestion"`, `"audit"`.
    pub section: &'static str,
    /// The key inside the section (span path, summary label, algorithm);
    /// empty for totals.
    pub key: String,
    /// The metric name, e.g. `"rounds"`.
    pub metric: &'static str,
    /// Baseline value (0 for [`DiffStatus::Added`]).
    pub base: f64,
    /// Fresh value (0 for [`DiffStatus::Removed`]).
    pub fresh: f64,
    /// Verdict for this entry.
    pub status: DiffStatus,
}

impl DiffEntry {
    fn render(&self) -> String {
        let delta = self.fresh - self.base;
        let pct = if self.base != 0.0 {
            format!(", {:+.2}%", 100.0 * delta / self.base)
        } else {
            String::new()
        };
        let key = if self.key.is_empty() {
            String::new()
        } else {
            format!(" {}", self.key)
        };
        format!(
            "{:<16} {}{} {}: {} -> {} ({:+}{})",
            self.status.as_str(),
            self.section,
            key,
            self.metric,
            trim_num(self.base),
            trim_num(self.fresh),
            delta,
            pct
        )
    }

    fn to_json(&self) -> Json {
        Json::obj([
            ("section", Json::str(self.section)),
            ("key", Json::str(&self.key)),
            ("metric", Json::str(self.metric)),
            ("base", Json::F64(self.base)),
            ("fresh", Json::F64(self.fresh)),
            ("status", Json::str(self.status.as_str())),
        ])
    }
}

fn trim_num(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.4}")
    }
}

/// The outcome of diffing one record pair.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunDiff {
    /// The records' shared name.
    pub name: String,
    /// Why the records cannot be compared at all (name/param mismatch);
    /// when set, `entries` is empty and the gate must treat the pair as a
    /// configuration error, not a pass.
    pub incomparable: Option<String>,
    /// Every changed metric and structural drift, in record order.
    pub entries: Vec<DiffEntry>,
}

impl RunDiff {
    /// `true` iff any entry fails the gate (or the pair is incomparable).
    pub fn has_regression(&self) -> bool {
        self.incomparable.is_some() || self.entries.iter().any(|e| e.status.is_regression())
    }

    /// Number of gate-failing entries.
    pub fn regression_count(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| e.status.is_regression())
            .count()
    }

    /// Human-readable report; names the culprit span/metric per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== trace_diff: {} ==", self.name);
        if let Some(why) = &self.incomparable {
            let _ = writeln!(out, "INCOMPARABLE     {why}");
            return out;
        }
        if self.entries.is_empty() {
            let _ = writeln!(out, "no deltas (records identical under tolerances)");
            return out;
        }
        for e in &self.entries {
            let _ = writeln!(out, "{}", e.render());
        }
        let _ = writeln!(
            out,
            "{} regression(s), {} entr(y/ies) total",
            self.regression_count(),
            self.entries.len()
        );
        out
    }

    /// Machine-readable report.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::str(&self.name)),
            (
                "incomparable",
                self.incomparable.as_deref().map_or(Json::Null, Json::str),
            ),
            ("regressions", Json::U64(self.regression_count() as u64)),
            (
                "entries",
                Json::Arr(self.entries.iter().map(DiffEntry::to_json).collect()),
            ),
        ])
    }
}

struct Differ<'c> {
    cfg: &'c DiffConfig,
    entries: Vec<DiffEntry>,
}

impl Differ<'_> {
    fn metric(
        &mut self,
        section: &'static str,
        key: &str,
        metric: &'static str,
        tol: Tolerance,
        base: f64,
        fresh: f64,
    ) {
        if base == fresh {
            return;
        }
        let status = if !tol.allows(base, fresh) {
            DiffStatus::Regressed
        } else if fresh < base {
            DiffStatus::Improved
        } else {
            DiffStatus::WithinTolerance
        };
        self.entries.push(DiffEntry {
            section,
            key: key.to_owned(),
            metric,
            base,
            fresh,
            status,
        });
    }

    fn structural(&mut self, section: &'static str, key: &str, status: DiffStatus, value: f64) {
        let (base, fresh) = match status {
            DiffStatus::Removed => (value, 0.0),
            _ => (0.0, value),
        };
        self.entries.push(DiffEntry {
            section,
            key: key.to_owned(),
            metric: "rounds",
            base,
            fresh,
            status,
        });
    }

    /// `rounds_saved` and the cache hit counters have inverted polarity:
    /// they measure cache effectiveness, so *more* is better and a
    /// collapse to zero (while the baseline was nonzero) means the phase
    /// cache silently stopped working — a regression, even though every
    /// cost metric would call the smaller number an improvement. A
    /// partial decrease passes: the workload may legitimately need fewer
    /// rebuilds.
    fn saved_metric(
        &mut self,
        section: &'static str,
        key: &str,
        metric: &'static str,
        base: u64,
        fresh: u64,
    ) {
        if base == fresh {
            return;
        }
        let status = if fresh == 0 && base > 0 {
            DiffStatus::Regressed
        } else if fresh > base {
            DiffStatus::Improved
        } else {
            DiffStatus::WithinTolerance
        };
        self.entries.push(DiffEntry {
            section,
            key: key.to_owned(),
            metric,
            base: base as f64,
            fresh: fresh as f64,
            status,
        });
    }

    fn cost_triple(
        &mut self,
        section: &'static str,
        key: &str,
        base: (u64, u64, u64),
        fresh: (u64, u64, u64),
    ) {
        self.metric(
            section,
            key,
            "rounds",
            self.cfg.rounds,
            base.0 as f64,
            fresh.0 as f64,
        );
        self.metric(
            section,
            key,
            "words",
            self.cfg.words,
            base.1 as f64,
            fresh.1 as f64,
        );
        self.metric(
            section,
            key,
            "messages",
            self.cfg.messages,
            base.2 as f64,
            fresh.2 as f64,
        );
    }
}

/// Compares `fresh` against `base`. See the module docs for semantics.
pub fn diff_records(base: &RunRecord, fresh: &RunRecord, cfg: &DiffConfig) -> RunDiff {
    if base.name != fresh.name {
        return RunDiff {
            name: format!("{} vs {}", base.name, fresh.name),
            incomparable: Some(format!(
                "record names differ: baseline {:?}, fresh {:?}",
                base.name, fresh.name
            )),
            entries: Vec::new(),
        };
    }
    if base.params != fresh.params {
        return RunDiff {
            name: base.name.clone(),
            incomparable: Some(format!(
                "params differ: baseline {:?}, fresh {:?} — regenerate the baseline \
                 with the gate's parameters",
                base.params, fresh.params
            )),
            entries: Vec::new(),
        };
    }

    let mut d = Differ {
        cfg,
        entries: Vec::new(),
    };

    d.cost_triple(
        "total",
        "",
        (base.rounds, base.words, base.messages),
        (fresh.rounds, fresh.words, fresh.messages),
    );
    d.saved_metric(
        "total",
        "",
        "rounds_saved",
        base.rounds_saved,
        fresh.rounds_saved,
    );

    // Allocation counters are deterministic only when both runs executed
    // the default single-threaded configuration (`jobs ≤ 1, shards ≤ 1`
    // covers 0 = not recorded and 1 = explicit default): any parallel
    // schedule moves allocations onto worker threads and the counts
    // become schedule noise. They are also skipped against baselines
    // with no alloc data (pre-v6, or recorded without the counting
    // allocator) — a zero-vs-nonzero diff there would gate on
    // instrumentation coverage, not on performance — and when the two
    // records ran different flood kernels: the kernels must agree on
    // every simulated-cost metric, but their host allocation profiles
    // legitimately differ (the whole point of the bitset kernel), so a
    // cross-kernel pair compares like a cross-jobs pair. An empty stamp
    // (pre-v7 record) matches anything, keeping the alloc gate armed
    // for default-vs-default runs against older baselines. `wall_ns`
    // and `peak_alloc_bytes` are never compared (`wall_ms` convention).
    let same_kernel = base.flood_kernel.is_empty()
        || fresh.flood_kernel.is_empty()
        || base.flood_kernel == fresh.flood_kernel;
    let default_config = base.shards <= 1 && fresh.shards <= 1 && base.jobs <= 1 && fresh.jobs <= 1;
    let gate_allocs =
        default_config && same_kernel && (base.alloc_bytes > 0 || base.alloc_count > 0);
    if gate_allocs {
        d.metric(
            "total",
            "",
            "alloc_bytes",
            cfg.allocs,
            base.alloc_bytes as f64,
            fresh.alloc_bytes as f64,
        );
        d.metric(
            "total",
            "",
            "alloc_count",
            cfg.allocs,
            base.alloc_count as f64,
            fresh.alloc_count as f64,
        );
    }

    // Cache effectiveness (deterministic, gated). Hits share
    // `rounds_saved`'s inverted polarity; misses are plain cost counters.
    // `wall_ms`, `shards`, `jobs`, and `workers` are informational and
    // deliberately never compared.
    let (bc, fc) = (&base.cache, &fresh.cache);
    d.saved_metric("cache", "", "tree_hits", bc.tree_hits, fc.tree_hits);
    d.metric(
        "cache",
        "",
        "tree_misses",
        cfg.rounds,
        bc.tree_misses as f64,
        fc.tree_misses as f64,
    );
    d.saved_metric(
        "cache",
        "",
        "latency_hits",
        bc.latency_hits,
        fc.latency_hits,
    );
    d.metric(
        "cache",
        "",
        "latency_misses",
        cfg.rounds,
        bc.latency_misses as f64,
        fc.latency_misses as f64,
    );
    d.saved_metric(
        "cache",
        "",
        "rounds_saved",
        bc.rounds_saved,
        fc.rounds_saved,
    );

    // Spans: keyed by path (both sides sorted by construction).
    let base_spans: BTreeMap<&str, _> = base.spans.iter().map(|s| (s.path.as_str(), s)).collect();
    let fresh_spans: BTreeMap<&str, _> = fresh.spans.iter().map(|s| (s.path.as_str(), s)).collect();
    for (path, b) in &base_spans {
        match fresh_spans.get(path) {
            Some(f) => {
                d.cost_triple(
                    "span",
                    path,
                    (b.rounds, b.words, b.messages),
                    (f.rounds, f.words, f.messages),
                );
                d.saved_metric("span", path, "rounds_saved", b.rounds_saved, f.rounds_saved);
                if gate_allocs {
                    d.metric(
                        "span",
                        path,
                        "alloc_bytes",
                        cfg.allocs,
                        b.alloc_bytes as f64,
                        f.alloc_bytes as f64,
                    );
                    d.metric(
                        "span",
                        path,
                        "alloc_count",
                        cfg.allocs,
                        b.alloc_count as f64,
                        f.alloc_count as f64,
                    );
                }
                d.metric(
                    "span",
                    path,
                    "count",
                    Tolerance::default(),
                    b.count as f64,
                    f.count as f64,
                );
            }
            None => d.structural("span", path, DiffStatus::Removed, b.rounds as f64),
        }
    }
    for (path, f) in &fresh_spans {
        if !base_spans.contains_key(path) {
            d.structural("span", path, DiffStatus::Added, f.rounds as f64);
        }
    }

    // Congestion summaries: keyed by label.
    let base_cong: BTreeMap<&str, _> = base
        .congestion
        .iter()
        .map(|c| (c.label.as_str(), c))
        .collect();
    let fresh_cong: BTreeMap<&str, _> = fresh
        .congestion
        .iter()
        .map(|c| (c.label.as_str(), c))
        .collect();
    for (label, b) in &base_cong {
        match fresh_cong.get(label) {
            Some(f) => {
                d.cost_triple(
                    "congestion",
                    label,
                    (b.rounds, b.words, b.messages),
                    (f.rounds, f.words, f.messages),
                );
                d.saved_metric(
                    "congestion",
                    label,
                    "rounds_saved",
                    b.rounds_saved,
                    f.rounds_saved,
                );
                d.metric(
                    "congestion",
                    label,
                    "max_words_in_round",
                    cfg.words,
                    b.max_words_in_round as f64,
                    f.max_words_in_round as f64,
                );
                d.metric(
                    "congestion",
                    label,
                    "queue_high_water",
                    cfg.words,
                    b.queue_high_water as f64,
                    f.queue_high_water as f64,
                );
                d.metric(
                    "congestion",
                    label,
                    "shard_imbalance_milli",
                    cfg.words,
                    b.shard_imbalance_milli as f64,
                    f.shard_imbalance_milli as f64,
                );
                // The reference partition has a fixed shard count, so a
                // length change is structure drift, not a metric move.
                if b.shard_words.len() != f.shard_words.len() {
                    let status = if f.shard_words.len() < b.shard_words.len() {
                        DiffStatus::Removed
                    } else {
                        DiffStatus::Added
                    };
                    d.entries.push(DiffEntry {
                        section: "congestion",
                        key: format!("{label} shard_words"),
                        metric: "shard_count",
                        base: b.shard_words.len() as f64,
                        fresh: f.shard_words.len() as f64,
                        status,
                    });
                } else {
                    for (i, (&bw, &fw)) in b.shard_words.iter().zip(&f.shard_words).enumerate() {
                        d.metric(
                            "congestion",
                            &format!("{label}[shard {i}]"),
                            "shard_words",
                            cfg.words,
                            bw as f64,
                            fw as f64,
                        );
                    }
                }
            }
            None => d.structural("congestion", label, DiffStatus::Removed, b.rounds as f64),
        }
    }
    for (label, f) in &fresh_cong {
        if !base_cong.contains_key(label) {
            d.structural("congestion", label, DiffStatus::Added, f.rounds as f64);
        }
    }

    // Audit margins: keyed by algorithm.
    let base_aud: BTreeMap<&str, _> = base
        .audit_margins
        .iter()
        .map(|a| (a.algorithm.as_str(), a))
        .collect();
    let fresh_aud: BTreeMap<&str, _> = fresh
        .audit_margins
        .iter()
        .map(|a| (a.algorithm.as_str(), a))
        .collect();
    for (alg, b) in &base_aud {
        match fresh_aud.get(alg) {
            Some(f) => {
                d.metric(
                    "audit",
                    alg,
                    "max_ratio",
                    cfg.ratio,
                    b.max_ratio,
                    f.max_ratio,
                );
                d.metric(
                    "audit",
                    alg,
                    "count",
                    Tolerance::default(),
                    b.count as f64,
                    f.count as f64,
                );
                d.metric(
                    "audit",
                    alg,
                    "total_measured",
                    cfg.rounds,
                    b.total_measured as f64,
                    f.total_measured as f64,
                );
            }
            None => d.structural("audit", alg, DiffStatus::Removed, b.total_measured as f64),
        }
    }
    for (alg, f) in &fresh_aud {
        if !base_aud.contains_key(alg) {
            d.structural("audit", alg, DiffStatus::Added, f.total_measured as f64);
        }
    }

    RunDiff {
        name: base.name.clone(),
        incomparable: None,
        entries: d.entries,
    }
}

/// One span path's contribution to the divergence between two records —
/// the unit `trace_diff --top` ranks and `results/triage.json` stores.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TriageEntry {
    /// The span path ([`crate::record::PATH_SEP`]-joined).
    pub path: String,
    /// Ranking score in integer milli-units: for each metric (rounds,
    /// words, and allocated bytes when the baseline has alloc data), the
    /// span's |delta| as a fraction of the *baseline record total*,
    /// summed and scaled by 1000. 1000 ≈ "this span alone moved one
    /// whole metric by the entire baseline total". Integer so ranking is
    /// deterministic.
    pub score_milli: u64,
    /// Fresh minus baseline self rounds.
    pub rounds_delta: i64,
    /// Fresh minus baseline self words.
    pub words_delta: i64,
    /// Fresh minus baseline self allocated bytes.
    pub alloc_delta: i64,
}

impl TriageEntry {
    /// Renders as a JSON object (insertion-ordered keys).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("path", Json::str(&self.path)),
            ("score_milli", Json::U64(self.score_milli)),
            ("rounds_delta", Json::I64(self.rounds_delta)),
            ("words_delta", Json::I64(self.words_delta)),
            ("alloc_delta", Json::I64(self.alloc_delta)),
        ])
    }
}

/// Ranks every span path by its |delta| contribution between `base` and
/// `fresh` (union of paths; a path missing on one side counts as zero).
/// Alloc deltas contribute to the score only when the baseline record
/// carries nonzero alloc data, mirroring the diff gate. Paths with no
/// movement are omitted. Sorted by score descending, ties by path — so
/// the first entry is the worst offender `trace_diff` points its
/// `mwc_replay bisect` hint at.
pub fn triage_spans(base: &RunRecord, fresh: &RunRecord) -> Vec<TriageEntry> {
    let score_allocs = base.alloc_bytes > 0;
    let mut paths: Vec<&str> = base
        .spans
        .iter()
        .chain(fresh.spans.iter())
        .map(|s| s.path.as_str())
        .collect();
    paths.sort_unstable();
    paths.dedup();

    // |delta| · 1000 / max(baseline record total, 1), in integer math.
    let contribution =
        |delta: i64, total: u64| -> u64 { (delta.unsigned_abs() * 1000) / total.max(1) };

    let mut out = Vec::new();
    for path in paths {
        let b = base.spans.iter().find(|s| s.path == path);
        let f = fresh.spans.iter().find(|s| s.path == path);
        let field = |get: fn(&crate::record::SpanMetrics) -> u64| -> i64 {
            f.map_or(0, |s| get(s) as i64) - b.map_or(0, |s| get(s) as i64)
        };
        let rounds_delta = field(|s| s.rounds);
        let words_delta = field(|s| s.words);
        let alloc_delta = field(|s| s.alloc_bytes);
        let mut score =
            contribution(rounds_delta, base.rounds) + contribution(words_delta, base.words);
        if score_allocs {
            score += contribution(alloc_delta, base.alloc_bytes);
        }
        if rounds_delta == 0 && words_delta == 0 && (!score_allocs || alloc_delta == 0) {
            continue;
        }
        out.push(TriageEntry {
            path: path.to_owned(),
            score_milli: score,
            rounds_delta,
            words_delta,
            alloc_delta,
        });
    }
    out.sort_by(|a, b| {
        b.score_milli
            .cmp(&a.score_milli)
            .then_with(|| a.path.cmp(&b.path))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{CacheTally, CongestionSummary, SpanMetrics, WorkerTally};

    fn record() -> RunRecord {
        RunRecord {
            name: "t".into(),
            params: vec![("n".into(), "64".into())],
            rounds: 100,
            words: 1000,
            messages: 50,
            rounds_saved: 12,
            wall_ms: 0,
            shards: 0,
            jobs: 0,
            flood_kernel: String::new(),
            floods_bitset: 0,
            floods_scalar: 0,
            alloc_bytes: 10_000,
            alloc_count: 40,
            peak_alloc_bytes: 5_000,
            cache: CacheTally {
                tree_hits: 3,
                tree_misses: 1,
                latency_hits: 6,
                latency_misses: 2,
                rounds_saved: 12,
            },
            workers: WorkerTally::default(),
            spans: vec![
                SpanMetrics {
                    path: "a".into(),
                    count: 1,
                    rounds: 60,
                    words: 600,
                    messages: 30,
                    rounds_saved: 12,
                    wall_ns: 0,
                    alloc_bytes: 6_000,
                    alloc_count: 25,
                },
                SpanMetrics {
                    path: "a > b".into(),
                    count: 2,
                    rounds: 40,
                    words: 400,
                    messages: 20,
                    rounds_saved: 0,
                    wall_ns: 0,
                    alloc_bytes: 4_000,
                    alloc_count: 15,
                },
            ],
            congestion: vec![CongestionSummary {
                label: "main".into(),
                rounds: 100,
                words: 1000,
                messages: 50,
                rounds_saved: 12,
                active_rounds: 80,
                max_words_in_round: 12,
                peak_round: 7,
                queue_high_water: 3,
                shard_imbalance_milli: 1200,
                shard_words: vec![300, 250, 250, 200],
                hot_links: vec![(0, 1, 99)],
            }],
            audit_margins: vec![crate::record::AuditMargin {
                algorithm: "core/x".into(),
                count: 2,
                max_ratio: 0.5,
                max_measured: 60,
                total_measured: 100,
            }],
        }
    }

    #[test]
    fn identical_records_have_no_deltas() {
        let d = diff_records(&record(), &record(), &DiffConfig::default());
        assert!(!d.has_regression());
        assert!(d.entries.is_empty());
        assert!(d.render().contains("no deltas"));
    }

    #[test]
    fn one_extra_round_regresses_with_culprit_span() {
        let mut fresh = record();
        fresh.spans[1].rounds += 1;
        fresh.rounds += 1;
        let d = diff_records(&record(), &fresh, &DiffConfig::default());
        assert!(d.has_regression());
        assert_eq!(d.regression_count(), 2); // total + span
        let report = d.render();
        assert!(report.contains("REGRESSED"), "{report}");
        assert!(report.contains("a > b"), "culprit span named: {report}");
        assert!(report.contains("40 -> 41"), "{report}");
    }

    #[test]
    fn tolerance_downgrades_small_drift() {
        let mut fresh = record();
        fresh.rounds = 102; // +2%
        let d = diff_records(&record(), &fresh, &DiffConfig::uniform_rel(0.05));
        assert!(!d.has_regression());
        assert_eq!(d.entries[0].status, DiffStatus::WithinTolerance);
        let d = diff_records(&record(), &fresh, &DiffConfig::uniform_rel(0.01));
        assert!(d.has_regression());
    }

    #[test]
    fn improvements_do_not_fail_the_gate() {
        let mut fresh = record();
        fresh.rounds = 90;
        fresh.spans[0].rounds = 50;
        let d = diff_records(&record(), &fresh, &DiffConfig::default());
        assert!(!d.has_regression());
        assert!(d.entries.iter().all(|e| e.status == DiffStatus::Improved));
    }

    #[test]
    fn structure_drift_fails_loudly() {
        let mut fresh = record();
        fresh.spans.pop();
        let d = diff_records(&record(), &fresh, &DiffConfig::default());
        assert!(d.has_regression());
        assert!(d.render().contains("REMOVED"), "{}", d.render());

        let mut fresh = record();
        fresh.spans.push(SpanMetrics {
            path: "z".into(),
            count: 1,
            rounds: 1,
            words: 1,
            messages: 1,
            ..SpanMetrics::default()
        });
        let d = diff_records(&record(), &fresh, &DiffConfig::default());
        assert!(d.has_regression());
        assert!(d.render().contains("ADDED"), "{}", d.render());
    }

    #[test]
    fn param_mismatch_is_incomparable_not_a_pass() {
        let mut fresh = record();
        fresh.params[0].1 = "128".into();
        let d = diff_records(&record(), &fresh, &DiffConfig::default());
        assert!(d.has_regression());
        assert!(d.incomparable.is_some());
        assert!(d.render().contains("INCOMPARABLE"));
    }

    #[test]
    fn rounds_saved_drop_to_zero_regresses() {
        let mut fresh = record();
        fresh.rounds_saved = 0;
        fresh.spans[0].rounds_saved = 0;
        fresh.congestion[0].rounds_saved = 0;
        let d = diff_records(&record(), &fresh, &DiffConfig::default());
        assert!(d.has_regression(), "{}", d.render());
        assert_eq!(d.regression_count(), 3); // total + span "a" + congestion
        assert!(d
            .entries
            .iter()
            .all(|e| e.metric == "rounds_saved" && e.status == DiffStatus::Regressed));
    }

    #[test]
    fn rounds_saved_increase_is_an_improvement() {
        let mut fresh = record();
        fresh.rounds_saved = 20;
        let d = diff_records(&record(), &fresh, &DiffConfig::default());
        assert!(!d.has_regression(), "{}", d.render());
        assert_eq!(d.entries[0].metric, "rounds_saved");
        assert_eq!(d.entries[0].status, DiffStatus::Improved);
    }

    #[test]
    fn rounds_saved_partial_decrease_passes() {
        let mut fresh = record();
        fresh.rounds_saved = 5;
        let d = diff_records(&record(), &fresh, &DiffConfig::default());
        assert!(!d.has_regression(), "{}", d.render());
        assert_eq!(d.entries[0].status, DiffStatus::WithinTolerance);
    }

    #[test]
    fn cache_hit_collapse_regresses() {
        let mut fresh = record();
        fresh.cache.tree_hits = 0;
        let d = diff_records(&record(), &fresh, &DiffConfig::default());
        assert!(d.has_regression(), "{}", d.render());
        assert_eq!(d.entries.len(), 1);
        assert_eq!(d.entries[0].section, "cache");
        assert_eq!(d.entries[0].metric, "tree_hits");
        assert_eq!(d.entries[0].status, DiffStatus::Regressed);
    }

    #[test]
    fn cache_hit_increase_is_an_improvement() {
        let mut fresh = record();
        fresh.cache.latency_hits += 4;
        let d = diff_records(&record(), &fresh, &DiffConfig::default());
        assert!(!d.has_regression(), "{}", d.render());
        assert_eq!(d.entries[0].metric, "latency_hits");
        assert_eq!(d.entries[0].status, DiffStatus::Improved);
    }

    #[test]
    fn cache_miss_increase_regresses() {
        let mut fresh = record();
        fresh.cache.tree_misses += 5;
        let d = diff_records(&record(), &fresh, &DiffConfig::default());
        assert!(d.has_regression(), "{}", d.render());
        assert_eq!(d.entries[0].metric, "tree_misses");
        assert_eq!(d.entries[0].status, DiffStatus::Regressed);
    }

    #[test]
    fn shard_imbalance_and_word_drift_regress_with_culprit_shard() {
        let mut fresh = record();
        fresh.congestion[0].shard_imbalance_milli = 1400;
        fresh.congestion[0].shard_words[2] = 260;
        let d = diff_records(&record(), &fresh, &DiffConfig::default());
        assert!(d.has_regression(), "{}", d.render());
        assert_eq!(d.regression_count(), 2);
        let report = d.render();
        assert!(report.contains("shard_imbalance_milli"), "{report}");
        assert!(report.contains("main[shard 2] shard_words"), "{report}");
    }

    #[test]
    fn shard_count_drift_is_structural() {
        let mut fresh = record();
        fresh.congestion[0].shard_words.pop();
        let d = diff_records(&record(), &fresh, &DiffConfig::default());
        assert!(d.has_regression(), "{}", d.render());
        assert!(d.render().contains("REMOVED"), "{}", d.render());
        assert!(d.render().contains("shard_count"), "{}", d.render());
    }

    #[test]
    fn informational_fields_are_never_compared() {
        let mut fresh = record();
        fresh.wall_ms = 991;
        fresh.shards = 8;
        fresh.jobs = 4;
        fresh.workers = WorkerTally {
            tasks_executed: 1000,
            items_grafted: 500,
            idle_joins: 3,
            busy_ms: 77,
        };
        fresh.floods_bitset = 12;
        fresh.floods_scalar = 3;
        let d = diff_records(&record(), &fresh, &DiffConfig::default());
        assert!(!d.has_regression(), "{}", d.render());
        assert!(d.entries.is_empty(), "{}", d.render());
    }

    #[test]
    fn alloc_regression_gates_in_default_config() {
        let mut fresh = record();
        fresh.alloc_bytes += 500;
        fresh.spans[1].alloc_bytes += 500;
        let d = diff_records(&record(), &fresh, &DiffConfig::default());
        assert!(d.has_regression(), "{}", d.render());
        assert_eq!(d.regression_count(), 2); // total + span "a > b"
        assert!(d
            .entries
            .iter()
            .all(|e| e.metric == "alloc_bytes" && e.status == DiffStatus::Regressed));
        assert!(d.render().contains("a > b"), "{}", d.render());
    }

    #[test]
    fn alloc_is_informational_in_parallel_configs() {
        // Same alloc regression, but one side ran sharded/jobs>1: the
        // counts are schedule noise there and must not gate.
        for (shards, jobs) in [(4, 1), (1, 4), (0, 2), (8, 8)] {
            let mut fresh = record();
            fresh.alloc_bytes += 500;
            fresh.spans[1].alloc_bytes += 500;
            fresh.shards = shards;
            fresh.jobs = jobs;
            let d = diff_records(&record(), &fresh, &DiffConfig::default());
            if shards <= 1 && jobs <= 1 {
                assert!(d.has_regression());
            } else {
                assert!(
                    !d.has_regression(),
                    "shards={shards} jobs={jobs}: {}",
                    d.render()
                );
            }
        }
    }

    #[test]
    fn alloc_is_informational_across_kernels() {
        // Same alloc regression, but the two records ran different flood
        // kernels: allocation profiles legitimately differ between
        // kernels, so the pair compares like a cross-jobs pair. An empty
        // stamp (pre-v7 baseline) matches anything and keeps the gate
        // armed; every simulated-cost metric still gates regardless.
        for (base_k, fresh_k, should_gate) in [
            ("bitset", "scalar", false),
            ("scalar", "bitset", false),
            ("", "bitset", true),
            ("bitset", "", true),
            ("bitset", "bitset", true),
            ("scalar", "scalar", true),
        ] {
            let mut base = record();
            base.flood_kernel = base_k.to_owned();
            let mut fresh = record();
            fresh.flood_kernel = fresh_k.to_owned();
            fresh.alloc_bytes += 500;
            fresh.spans[1].alloc_bytes += 500;
            let d = diff_records(&base, &fresh, &DiffConfig::default());
            assert_eq!(
                d.has_regression(),
                should_gate,
                "base={base_k:?} fresh={fresh_k:?}: {}",
                d.render()
            );
        }
        // A rounds regression still gates across kernels — only the host
        // alloc metrics become informational.
        let mut base = record();
        base.flood_kernel = "bitset".to_owned();
        let mut fresh = record();
        fresh.flood_kernel = "scalar".to_owned();
        fresh.rounds += 1;
        let d = diff_records(&base, &fresh, &DiffConfig::default());
        assert!(d.has_regression(), "{}", d.render());
        // Engagement tallies are informational, not kernel identity: two
        // same-kernel records with wildly different tallies (e.g. one run
        // raised MWC_FLOOD_RING_MAX mid-series) still arm the alloc gate.
        let mut base = record();
        base.flood_kernel = "bitset".to_owned();
        base.floods_bitset = 40;
        let mut fresh = record();
        fresh.flood_kernel = "bitset".to_owned();
        fresh.floods_scalar = 40;
        fresh.alloc_bytes += 500;
        let d = diff_records(&base, &fresh, &DiffConfig::default());
        assert!(d.has_regression(), "{}", d.render());
    }

    #[test]
    fn alloc_is_skipped_against_baselines_without_alloc_data() {
        // Pre-v6 baseline (or no counting allocator): alloc fields parse
        // as 0; a fresh profiled record must diff clean against it.
        let mut base = record();
        base.alloc_bytes = 0;
        base.alloc_count = 0;
        for s in &mut base.spans {
            s.alloc_bytes = 0;
            s.alloc_count = 0;
        }
        let d = diff_records(&base, &record(), &DiffConfig::default());
        assert!(!d.has_regression(), "{}", d.render());
        assert!(d.entries.is_empty(), "{}", d.render());
    }

    #[test]
    fn wall_and_peak_are_never_compared() {
        let mut fresh = record();
        fresh.peak_alloc_bytes = 999_999;
        fresh.spans[0].wall_ns = 123_456_789;
        let d = diff_records(&record(), &fresh, &DiffConfig::default());
        assert!(!d.has_regression(), "{}", d.render());
        assert!(d.entries.is_empty(), "{}", d.render());
    }

    #[test]
    fn triage_ranks_injected_regression_first() {
        let mut fresh = record();
        fresh.spans[1].rounds += 20; // "a > b": 20/100 rounds = 200 milli
        fresh.spans[0].words += 30; // "a": 30/1000 words = 30 milli
        let entries = triage_spans(&record(), &fresh);
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].path, "a > b");
        assert_eq!(entries[0].score_milli, 200);
        assert_eq!(entries[0].rounds_delta, 20);
        assert_eq!(entries[1].path, "a");
        assert_eq!(entries[1].score_milli, 30);
        assert_eq!(entries[1].words_delta, 30);
    }

    #[test]
    fn triage_counts_alloc_only_with_alloc_baseline() {
        let mut fresh = record();
        fresh.spans[0].alloc_bytes += 5_000; // 5000/10000 = 500 milli
        let entries = triage_spans(&record(), &fresh);
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].path, "a");
        assert_eq!(entries[0].score_milli, 500);
        assert_eq!(entries[0].alloc_delta, 5_000);

        // Zero-alloc baseline: the same byte movement scores nothing and
        // produces no entry (no other metric moved).
        let mut base = record();
        base.alloc_bytes = 0;
        for s in &mut base.spans {
            s.alloc_bytes = 0;
        }
        let mut fresh = base.clone();
        fresh.spans[0].alloc_bytes = 5_000;
        assert!(triage_spans(&base, &fresh).is_empty());
    }

    #[test]
    fn triage_handles_added_and_removed_paths() {
        let mut fresh = record();
        fresh.spans.remove(1); // "a > b" disappears: full self-cost delta
        fresh.spans.push(SpanMetrics {
            path: "new".into(),
            count: 1,
            rounds: 100,
            words: 0,
            messages: 0,
            ..SpanMetrics::default()
        });
        let entries = triage_spans(&record(), &fresh);
        // "a > b" removal contributes 40/100 rounds + 400/1000 words +
        // 4000/10000 bytes = 1200 milli, outranking "new" at 100/100
        // rounds = 1000 milli.
        assert_eq!(entries[0].path, "a > b");
        assert_eq!(entries[0].rounds_delta, -40);
        assert_eq!(entries[0].score_milli, 400 + 400 + 400);
        let added = entries.iter().find(|e| e.path == "new").unwrap();
        assert_eq!(added.score_milli, 1000);
        assert_eq!(added.rounds_delta, 100);
    }

    #[test]
    fn triage_is_empty_for_identical_records() {
        assert!(triage_spans(&record(), &record()).is_empty());
    }

    #[test]
    fn audit_margin_drift_is_flagged() {
        let mut fresh = record();
        fresh.audit_margins[0].max_ratio = 0.9;
        let d = diff_records(&record(), &fresh, &DiffConfig::default());
        assert!(d.has_regression());
        assert!(d.render().contains("core/x"));
        assert!(d.to_json().render().contains("max_ratio"));
    }
}
