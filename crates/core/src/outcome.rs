//! Result types shared by all distributed MWC algorithms.

use mwc_congest::Ledger;
use mwc_graph::{CycleWitness, Graph, NodeId, Weight};

/// The outcome of a distributed MWC computation: the reported weight, a
/// witness cycle certifying it, and the round/traffic ledger.
///
/// Per Definition 1.1 of the paper, algorithms report the weight of a
/// cycle; approximation algorithms report the weight of a real cycle within
/// the approximation factor. `weight` is `None` when the graph has no cycle
/// (the algorithm detected none — for exact algorithms that *is* the
/// answer; for approximation algorithms it is correct w.h.p.).
#[derive(Clone, Debug)]
pub struct MwcOutcome {
    /// Weight of the best cycle found (`None`: no cycle found).
    pub weight: Option<Weight>,
    /// A witness for `weight`.
    pub witness: Option<CycleWitness>,
    /// Round/word accounting of the whole computation.
    pub ledger: Ledger,
}

impl MwcOutcome {
    /// The per-node routing view of the found cycle, per Definition 1.1's
    /// remark that the cycle can be constructed "by storing the next
    /// vertex on the cycle at each vertex that is part of the MWC":
    /// `table[v] = Some(next)` iff `v` lies on the witness cycle and
    /// `next` follows it.
    ///
    /// Returns `None` if no cycle was found.
    ///
    /// # Examples
    ///
    /// ```
    /// use mwc_core::exact_mwc;
    /// use mwc_graph::{Graph, Orientation};
    ///
    /// # fn main() -> Result<(), mwc_graph::GraphError> {
    /// let g = Graph::from_edges(3, Orientation::Directed,
    ///     [(0, 1, 1), (1, 2, 1), (2, 0, 1)])?;
    /// let out = exact_mwc(&g);
    /// let table = out.cycle_routing(3).expect("cycle found");
    /// // Following the table from any on-cycle vertex walks the cycle.
    /// let mut v = 0;
    /// for _ in 0..3 { v = table[v].unwrap(); }
    /// assert_eq!(v, 0);
    /// # Ok(())
    /// # }
    /// ```
    pub fn cycle_routing(&self, n: usize) -> Option<Vec<Option<NodeId>>> {
        let w = self.witness.as_ref()?;
        let mut table = vec![None; n];
        let vs = w.vertices();
        for i in 0..vs.len() {
            table[vs[i]] = Some(vs[(i + 1) % vs.len()]);
        }
        Some(table)
    }

    /// Checks internal consistency against the input graph: if a weight is
    /// reported there is a witness, the witness is a real simple cycle,
    /// and its weight equals the reported value.
    ///
    /// # Panics
    ///
    /// Panics with a description of the violated condition. Tests call
    /// this on every outcome.
    pub fn assert_valid(&self, g: &Graph) {
        match (&self.weight, &self.witness) {
            (None, None) => {}
            (Some(w), Some(c)) => {
                let actual = c
                    .validate(g)
                    .unwrap_or_else(|e| panic!("witness invalid: {e} ({c})"));
                assert_eq!(actual, *w, "witness weight {actual} ≠ reported {w}");
            }
            (Some(w), None) => panic!("weight {w} reported without witness"),
            (None, Some(c)) => panic!("witness {c} without weight"),
        }
    }
}

/// Intermediate result of an algorithm phase: best cycle so far plus the
/// accumulated ledger. Crate-internal composition helper.
#[derive(Clone, Debug, Default)]
pub(crate) struct Partial {
    pub best: BestCycle,
    pub ledger: Ledger,
}

/// Accumulates `(weight, witness)` candidates, keeping the minimum.
///
/// Distributed algorithms discover many candidate cycles (at different
/// nodes, in different phases); this helper keeps the lightest and builds
/// the final [`MwcOutcome`].
#[derive(Clone, Debug, Default)]
pub struct BestCycle {
    best: Option<(Weight, CycleWitness)>,
}

impl BestCycle {
    /// An empty accumulator.
    pub fn new() -> Self {
        BestCycle::default()
    }

    /// Offers a candidate; kept iff strictly lighter than the current best.
    pub fn offer(&mut self, weight: Weight, witness: CycleWitness) {
        if self.best.as_ref().is_none_or(|(w, _)| weight < *w) {
            self.best = Some((weight, witness));
        }
    }

    /// The current best weight, if any.
    pub fn weight(&self) -> Option<Weight> {
        self.best.as_ref().map(|(w, _)| *w)
    }

    /// Consumes the accumulator into its `(weight, witness)` pair.
    pub fn into_parts(self) -> Option<(Weight, CycleWitness)> {
        self.best
    }

    /// Consumes the accumulator into an outcome with the given ledger.
    pub fn into_outcome(self, ledger: Ledger) -> MwcOutcome {
        match self.best {
            Some((w, c)) => MwcOutcome {
                weight: Some(w),
                witness: Some(c),
                ledger,
            },
            None => MwcOutcome {
                weight: None,
                witness: None,
                ledger,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwc_graph::{Graph, Orientation};

    #[test]
    fn best_cycle_keeps_minimum() {
        let mut b = BestCycle::new();
        assert_eq!(b.weight(), None);
        b.offer(10, CycleWitness::new(vec![0, 1, 2]));
        b.offer(12, CycleWitness::new(vec![0, 1, 3]));
        b.offer(7, CycleWitness::new(vec![1, 2, 3]));
        assert_eq!(b.weight(), Some(7));
        let o = b.into_outcome(Ledger::new());
        assert_eq!(o.weight, Some(7));
        assert_eq!(o.witness.unwrap().vertices(), &[1, 2, 3]);
    }

    #[test]
    fn cycle_routing_walks_the_cycle() {
        let o = MwcOutcome {
            weight: Some(3),
            witness: Some(CycleWitness::new(vec![4, 1, 7])),
            ledger: Ledger::new(),
        };
        let t = o.cycle_routing(8).unwrap();
        assert_eq!(t[4], Some(1));
        assert_eq!(t[1], Some(7));
        assert_eq!(t[7], Some(4));
        assert_eq!(t[0], None);
        let none = MwcOutcome {
            weight: None,
            witness: None,
            ledger: Ledger::new(),
        };
        assert!(none.cycle_routing(8).is_none());
    }

    #[test]
    fn outcome_validation_passes_for_real_cycle() {
        let g =
            Graph::from_edges(3, Orientation::Directed, [(0, 1, 2), (1, 2, 2), (2, 0, 2)]).unwrap();
        let o = MwcOutcome {
            weight: Some(6),
            witness: Some(CycleWitness::new(vec![0, 1, 2])),
            ledger: Ledger::new(),
        };
        o.assert_valid(&g);
    }

    #[test]
    #[should_panic(expected = "witness weight")]
    fn outcome_validation_catches_wrong_weight() {
        let g =
            Graph::from_edges(3, Orientation::Directed, [(0, 1, 2), (1, 2, 2), (2, 0, 2)]).unwrap();
        let o = MwcOutcome {
            weight: Some(5),
            witness: Some(CycleWitness::new(vec![0, 1, 2])),
            ledger: Ledger::new(),
        };
        o.assert_valid(&g);
    }

    #[test]
    #[should_panic(expected = "without witness")]
    fn outcome_validation_catches_missing_witness() {
        let g = Graph::directed(2);
        let o = MwcOutcome {
            weight: Some(5),
            witness: None,
            ledger: Ledger::new(),
        };
        o.assert_valid(&g);
    }
}
