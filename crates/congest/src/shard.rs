//! Graph sharding for the engine: contiguous vertex-range partitioning
//! and the barrier-synchronized round kernel.
//!
//! A [`ShardPlan`] cuts the node ids `0..n` into one contiguous range per
//! shard, balanced by out-degree. Because [`Network`](crate::Network)
//! creates link ids grouped by sender in ascending node order, a
//! contiguous vertex range owns a contiguous *link-id* range too — so a
//! shard's send queues and per-link word counters are plain disjoint
//! slices of the engine's arrays, handed to worker threads with
//! `split_at_mut` and no locking.
//!
//! # Determinism
//!
//! Sharding is purely an execution strategy; it must leave no trace in
//! any observable output. The engine guarantees that by construction,
//! using the same capture-and-graft discipline as `mwc_par::ordered_map`:
//!
//! 1. The coordinator tags each entry of the round's active-link list
//!    with its position (`idx`) and buckets the entries by owning shard.
//! 2. [`mwc_par::fork_join`] runs every shard's bucket on its own thread;
//!    each shard decrements queue heads and bumps its own slice of
//!    `per_link_words`, recording message completions tagged with `idx`.
//!    The scope join is the round barrier.
//! 3. The coordinator merges the per-shard completion buffers back into
//!    ascending `idx` order — exactly the order the sequential loop
//!    completes them in — and only then delivers, assigns transit
//!    sequence numbers, and emits trace events, all on its own thread.
//!
//! Delivery order, transit FIFO tie-breaks, event-log lines, and every
//! statistic are therefore byte-identical for any shard count (pinned by
//! `tests/shard_differential.rs`; partitioner invariants by
//! `tests/shard_props.rs`). Cut links need no special casing: a message
//! crossing shards is *processed* by the link's owner and *delivered* by
//! the coordinator at the barrier, which is the deterministic exchange.

use crate::engine::InFlight;
use mwc_graph::{Graph, NodeId};
use std::collections::VecDeque;
use std::ops::Range;

/// A contiguous, degree-balanced partition of node ids (and thereby link
/// ids) into shards. Built once per network; owns no simulation state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardPlan {
    /// `node_bounds[s]..node_bounds[s + 1]` is shard `s`'s vertex range;
    /// length `shards + 1`, first 0, last `n`, strictly increasing while
    /// nodes remain.
    node_bounds: Vec<usize>,
    /// `link_bounds[s]..link_bounds[s + 1]` is shard `s`'s link-id range:
    /// the prefix sums of out-degree at the node bounds.
    link_bounds: Vec<usize>,
}

impl ShardPlan {
    /// Partitions `out_degrees.len()` nodes into at most `shards`
    /// contiguous ranges, cutting so each range carries close to `1/k` of
    /// the total degree (the per-round work is proportional to busy
    /// links, not nodes). The effective shard count is clamped to the
    /// node count so every shard owns at least one node.
    pub fn new(out_degrees: &[usize], shards: usize) -> ShardPlan {
        let n = out_degrees.len();
        let k = shards.clamp(1, n.max(1));
        let total: u64 = out_degrees.iter().map(|&d| d as u64).sum();
        let mut node_bounds = Vec::with_capacity(k + 1);
        node_bounds.push(0usize);
        let mut v = 0usize;
        let mut cum = 0u64;
        for s in 1..k {
            // Aim the cut at s/k of the total degree, but always leave at
            // least one node for every shard on both sides.
            let target = total * s as u64 / k as u64;
            let min_v = s;
            let max_v = n - (k - s);
            while v < max_v && (v < min_v || cum < target) {
                cum += out_degrees[v] as u64;
                v += 1;
            }
            node_bounds.push(v);
        }
        node_bounds.push(n);
        let mut prefix = 0usize;
        let mut cursor = 0usize;
        let link_bounds = node_bounds
            .iter()
            .map(|&b| {
                while cursor < b {
                    prefix += out_degrees[cursor];
                    cursor += 1;
                }
                prefix
            })
            .collect();
        ShardPlan {
            node_bounds,
            link_bounds,
        }
    }

    /// [`ShardPlan::new`] over a graph's communication degrees (the
    /// undirected support — the same degrees the engine's link table
    /// uses).
    pub fn for_graph(g: &Graph, shards: usize) -> ShardPlan {
        let degrees: Vec<usize> = (0..g.n()).map(|u| g.comm_neighbors(u).len()).collect();
        ShardPlan::new(&degrees, shards)
    }

    /// Number of shards (≥ 1).
    pub fn shards(&self) -> usize {
        self.node_bounds.len() - 1
    }

    /// Number of nodes partitioned.
    pub fn n(&self) -> usize {
        *self.node_bounds.last().expect("bounds are non-empty")
    }

    /// Number of links partitioned.
    pub fn links(&self) -> usize {
        *self.link_bounds.last().expect("bounds are non-empty")
    }

    /// Shard `s`'s vertex range.
    pub fn node_range(&self, s: usize) -> Range<usize> {
        self.node_bounds[s]..self.node_bounds[s + 1]
    }

    /// Shard `s`'s link-id range.
    pub fn link_range(&self, s: usize) -> Range<usize> {
        self.link_bounds[s]..self.link_bounds[s + 1]
    }

    /// The shard owning node `v`.
    pub fn shard_of_node(&self, v: NodeId) -> usize {
        debug_assert!(v < self.n());
        self.node_bounds.partition_point(|&b| b <= v) - 1
    }

    /// The shard owning link id `l` (the sender's shard).
    pub fn shard_of_link(&self, l: usize) -> usize {
        debug_assert!(l < self.links());
        self.link_bounds.partition_point(|&b| b <= l) - 1
    }

    /// Link ids whose endpoints live on different shards — the links
    /// whose traffic crosses a shard boundary and is exchanged at the
    /// round barrier. `link_ends` is the engine's `(from, to)` table.
    pub fn cut_links(&self, link_ends: &[(NodeId, NodeId)]) -> Vec<usize> {
        link_ends
            .iter()
            .enumerate()
            .filter(|(_, &(u, v))| self.shard_of_node(u) != self.shard_of_node(v))
            .map(|(l, _)| l)
            .collect()
    }
}

/// The fixed shard count every [`ShardProfile`] is computed against.
///
/// Profiling against the *execution* shard count would make the profile
/// depend on `--shards` — a scheduling knob that must stay invisible in
/// gated artifacts. Instead the profile always folds the deterministic
/// per-link counters over one canonical degree-balanced reference
/// partition, so it measures the workload's *potential* imbalance (what
/// an 8-way split would see) and is byte-identical for any actual shard
/// count, including unsharded runs.
pub const PROFILE_SHARDS: usize = 8;

/// Deterministic per-shard load profile over the canonical
/// [`PROFILE_SHARDS`]-way reference partition: how many links carried
/// traffic, how many words each shard's links moved, and the deepest
/// send queue each shard saw. Captured per phase by
/// [`Ledger::absorb`](crate::Ledger::absorb) alongside the
/// [`CongestionProfile`](crate::CongestionProfile), and across a whole
/// run by [`Ledger::congestion_summary`](crate::Ledger::congestion_summary).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardProfile {
    /// Links that moved at least one word, per canonical shard.
    pub links: Vec<u64>,
    /// Words moved, per canonical shard.
    pub words: Vec<u64>,
    /// Deepest send-queue depth, per canonical shard.
    pub queue_high: Vec<u64>,
}

impl ShardProfile {
    /// Folds the engine's deterministic per-link counters over the
    /// canonical reference partition. `link_ends` is the engine's
    /// `(from, to)` table (link ids grouped by sender in ascending node
    /// order — the same layout [`ShardPlan`] cuts), `per_link_words` and
    /// `per_link_queue_high` are parallel to it.
    pub fn capture(
        link_ends: &[(NodeId, NodeId)],
        per_link_words: &[u64],
        per_link_queue_high: &[u64],
    ) -> ShardProfile {
        if link_ends.is_empty() {
            return ShardProfile::default();
        }
        let n = link_ends.iter().map(|&(u, v)| u.max(v)).max().unwrap() + 1;
        let mut out_degrees = vec![0usize; n];
        for &(u, _) in link_ends {
            out_degrees[u] += 1;
        }
        let plan = ShardPlan::new(&out_degrees, PROFILE_SHARDS);
        let k = plan.shards();
        let mut profile = ShardProfile {
            links: vec![0; k],
            words: vec![0; k],
            queue_high: vec![0; k],
        };
        for s in 0..k {
            for l in plan.link_range(s) {
                let w = per_link_words.get(l).copied().unwrap_or(0);
                if w > 0 {
                    profile.links[s] += 1;
                }
                profile.words[s] += w;
                let q = per_link_queue_high.get(l).copied().unwrap_or(0);
                profile.queue_high[s] = profile.queue_high[s].max(q);
            }
        }
        profile
    }

    /// The imbalance ratio max/mean of per-shard words, in integer
    /// milli-units (1000 = perfectly balanced, 2000 = the hottest shard
    /// carries twice the mean). Integer so the value is exactly
    /// reproducible and diffable; 0 when no words moved.
    pub fn imbalance_milli(&self) -> u64 {
        let total: u64 = self.words.iter().sum();
        if total == 0 {
            return 0;
        }
        let max = *self.words.iter().max().expect("nonzero total has entries");
        max * 1000 * self.words.len() as u64 / total
    }
}

/// A message whose last word left its link this round, recorded by a
/// shard worker and finished (delivered / parked in transit) by the
/// coordinator. `idx` is the message's position in the round's active
/// list — the merge key that reproduces sequential completion order.
pub(crate) struct Completion<M> {
    pub(crate) idx: u32,
    pub(crate) link: u32,
    pub(crate) payload: M,
    pub(crate) words: u64,
    pub(crate) latency: u64,
}

/// The transfer kernel signature. Stored as a `fn` pointer, instantiated
/// only inside the `M: Send`-bounded constructors, so the unbounded
/// engine methods can invoke it without infecting every `Network<M>`
/// method with a `Send` bound.
type TransferFn<M> = fn(
    &ShardPlan,
    &mut [VecDeque<InFlight<M>>],
    &mut [u64],
    &[Vec<(u32, u32)>],
    &mut [Vec<Completion<M>>],
);

/// The bulk-skip kernel signature (see [`TransferFn`] for the `fn`
/// pointer rationale).
type BulkFn<M> = fn(&ShardPlan, &mut [VecDeque<InFlight<M>>], &mut [u64], &[Vec<(u32, u32)>], u64);

/// Per-network sharding state: the plan plus reusable scratch for the
/// per-round bucket/fork/graft cycle.
pub(crate) struct Sharding<M> {
    pub(crate) plan: ShardPlan,
    /// Active-list length below which rounds stay on the sequential path
    /// (forking threads for a handful of busy links costs more than it
    /// saves; eligibility cannot affect output, so this is pure policy).
    threshold: usize,
    /// Per-shard `(active idx, link id)` buckets, ascending by idx.
    buckets: Vec<Vec<(u32, u32)>>,
    /// Per-shard completion buffers filled by the workers.
    completions: Vec<Vec<Completion<M>>>,
    /// This round's completions, merged back into active order — the
    /// graft the coordinator consumes.
    pub(crate) merged: Vec<Completion<M>>,
    transfer: TransferFn<M>,
    bulk: BulkFn<M>,
}

impl<M> Sharding<M> {
    /// Builds sharding state for `plan`, snapshotting the engagement
    /// threshold from [`mwc_par::shard_threshold`].
    pub(crate) fn new(plan: ShardPlan) -> Sharding<M>
    where
        M: Send,
    {
        let k = plan.shards();
        Sharding {
            threshold: mwc_par::shard_threshold(),
            buckets: vec![Vec::new(); k],
            completions: (0..k).map(|_| Vec::new()).collect(),
            merged: Vec::new(),
            transfer: par_transfer::<M>,
            bulk: par_bulk::<M>,
            plan,
        }
    }

    /// Unit-test hook: pins the engagement threshold after construction
    /// so tiny fixtures exercise the parallel path.
    #[cfg(test)]
    pub(crate) fn force_threshold(&mut self, threshold: usize) {
        self.threshold = threshold;
    }

    /// Whether a round with `active_len` busy links takes the parallel
    /// path.
    pub(crate) fn engaged(&self, active_len: usize) -> bool {
        self.plan.shards() > 1 && active_len >= self.threshold
    }

    fn bucket_active(&mut self, active: &[usize]) {
        for b in &mut self.buckets {
            b.clear();
        }
        for (idx, &l) in active.iter().enumerate() {
            self.buckets[self.plan.shard_of_link(l)].push((idx as u32, l as u32));
        }
    }

    /// Runs the word-transfer half of one round across the shards and
    /// leaves the round's completions in [`Sharding::merged`], sorted
    /// back into active order for the coordinator's graft.
    pub(crate) fn transfer_round(
        &mut self,
        active: &[usize],
        queues: &mut [VecDeque<InFlight<M>>],
        per_link_words: &mut [u64],
    ) {
        self.bucket_active(active);
        (self.transfer)(
            &self.plan,
            queues,
            per_link_words,
            &self.buckets,
            &mut self.completions,
        );
        self.merged.clear();
        for c in &mut self.completions {
            self.merged.append(c);
        }
        // Each buffer is already ascending; the concatenation is not.
        // idx values are unique, so unstable sorting is deterministic.
        self.merged.sort_unstable_by_key(|c| c.idx);
    }

    /// Applies a bulk advance of `skipped` rounds (see
    /// [`Network::step_bulk`](crate::Network::step_bulk)) across the
    /// shards: every active head loses `skipped` words and the per-link
    /// counters gain them. No head completes (the engine chose `skipped`
    /// so), hence no completions and no graft.
    pub(crate) fn bulk_skip(
        &mut self,
        active: &[usize],
        queues: &mut [VecDeque<InFlight<M>>],
        per_link_words: &mut [u64],
        skipped: u64,
    ) {
        self.bucket_active(active);
        (self.bulk)(&self.plan, queues, per_link_words, &self.buckets, skipped);
    }
}

/// One shard's disjoint view of the engine arrays for one round.
struct ShardTask<'a, M> {
    /// First link id of the shard's range; queue/counter slices are
    /// indexed by `link - link_base`.
    link_base: usize,
    queues: &'a mut [VecDeque<InFlight<M>>],
    per_link_words: &'a mut [u64],
    bucket: &'a [(u32, u32)],
    out: Option<&'a mut Vec<Completion<M>>>,
}

/// Splits the engine arrays into per-shard disjoint tasks along the
/// plan's link bounds. `outs` is `None` for the bulk path (no
/// completions possible).
fn split_tasks<'a, M>(
    plan: &ShardPlan,
    mut queues: &'a mut [VecDeque<InFlight<M>>],
    mut per_link_words: &'a mut [u64],
    buckets: &'a [Vec<(u32, u32)>],
    outs: Option<&'a mut [Vec<Completion<M>>]>,
) -> Vec<ShardTask<'a, M>> {
    let k = plan.shards();
    let mut outs = outs.map(|o| o.iter_mut());
    let mut tasks = Vec::with_capacity(k);
    for s in 0..k {
        let r = plan.link_range(s);
        let (q, rest_q) = queues.split_at_mut(r.len());
        let (w, rest_w) = per_link_words.split_at_mut(r.len());
        queues = rest_q;
        per_link_words = rest_w;
        let out = outs
            .as_mut()
            .map(|it| it.next().expect("one out per shard"));
        tasks.push(ShardTask {
            link_base: r.start,
            queues: q,
            per_link_words: w,
            bucket: &buckets[s],
            out,
        });
    }
    // Idle shards have nothing to do this round; don't spawn for them.
    tasks.retain(|t| !t.bucket.is_empty());
    tasks
}

/// The parallel word-transfer kernel: one thread per busy shard, each
/// walking its bucket in active order. Instantiated only via
/// [`Sharding::new`], which carries the `M: Send` bound.
fn par_transfer<M: Send>(
    plan: &ShardPlan,
    queues: &mut [VecDeque<InFlight<M>>],
    per_link_words: &mut [u64],
    buckets: &[Vec<(u32, u32)>],
    outs: &mut [Vec<Completion<M>>],
) {
    let tasks = split_tasks(plan, queues, per_link_words, buckets, Some(outs));
    mwc_par::fork_join(tasks, |task| {
        let ShardTask {
            link_base,
            queues,
            per_link_words,
            bucket,
            out,
        } = task;
        let out = out.expect("transfer tasks carry completion buffers");
        out.clear();
        for &(idx, l) in bucket {
            let rel = l as usize - link_base;
            let q = &mut queues[rel];
            let head = q.front_mut().expect("active links have queued traffic");
            head.words_left -= 1;
            per_link_words[rel] += 1;
            if head.words_left == 0 {
                let msg = q.pop_front().expect("head exists");
                out.push(Completion {
                    idx,
                    link: l,
                    payload: msg.payload,
                    words: msg.words,
                    latency: msg.latency,
                });
            }
        }
    });
}

/// The parallel bulk-skip kernel (closed-form multi-round advance; see
/// [`Sharding::bulk_skip`]).
fn par_bulk<M: Send>(
    plan: &ShardPlan,
    queues: &mut [VecDeque<InFlight<M>>],
    per_link_words: &mut [u64],
    buckets: &[Vec<(u32, u32)>],
    skipped: u64,
) {
    let tasks = split_tasks(plan, queues, per_link_words, buckets, None);
    mwc_par::fork_join(tasks, |task| {
        for &(_, l) in task.bucket {
            let rel = l as usize - task.link_base;
            let head = task.queues[rel]
                .front_mut()
                .expect("active links have queued traffic");
            head.words_left -= skipped;
            task.per_link_words[rel] += skipped;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_covers_every_node_and_link_exactly_once() {
        let degrees = [3usize, 1, 4, 1, 5, 9, 2, 6];
        let plan = ShardPlan::new(&degrees, 3);
        assert_eq!(plan.shards(), 3);
        assert_eq!(plan.n(), 8);
        assert_eq!(plan.links(), 31);
        let mut seen = [0usize; 8];
        for s in 0..plan.shards() {
            for v in plan.node_range(s) {
                seen[v] += 1;
                assert_eq!(plan.shard_of_node(v), s);
            }
            for l in plan.link_range(s) {
                assert_eq!(plan.shard_of_link(l), s);
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn link_bounds_are_degree_prefix_sums_at_node_bounds() {
        let degrees = [2usize, 2, 2, 2, 2, 2];
        let plan = ShardPlan::new(&degrees, 2);
        assert_eq!(plan.node_range(0), 0..3);
        assert_eq!(plan.link_range(0), 0..6);
        assert_eq!(plan.link_range(1), 6..12);
    }

    #[test]
    fn more_shards_than_nodes_clamps() {
        let plan = ShardPlan::new(&[1, 1], 8);
        assert_eq!(plan.shards(), 2);
        let plan = ShardPlan::new(&[], 4);
        assert_eq!(plan.shards(), 1);
        assert_eq!(plan.n(), 0);
    }

    #[test]
    fn shard_profile_folds_links_words_and_queue_highs() {
        // 4 nodes, degrees [2, 1, 1, 1] → 5 links; the canonical plan
        // clamps PROFILE_SHARDS to the node count (4 shards).
        let link_ends: Vec<(NodeId, NodeId)> = vec![(0, 1), (0, 2), (1, 0), (2, 0), (3, 0)];
        let words = [5u64, 0, 3, 2, 0];
        let queue_high = [2u64, 1, 4, 0, 0];
        let p = ShardProfile::capture(&link_ends, &words, &queue_high);
        assert_eq!(p.words.iter().sum::<u64>(), 10);
        assert_eq!(p.links.iter().sum::<u64>(), 3);
        assert_eq!(p.queue_high.iter().max(), Some(&4));
        // Node 0 owns links 0..2: 5 words, 1 busy link, queue high 2.
        assert_eq!(p.words[0], 5);
        assert_eq!(p.links[0], 1);
        assert_eq!(p.queue_high[0], 2);
    }

    #[test]
    fn shard_profile_imbalance_is_max_over_mean_in_milli() {
        let p = ShardProfile {
            links: vec![1, 1],
            words: vec![6, 2],
            queue_high: vec![0, 0],
        };
        // mean = 4, max = 6 → 1500 milli.
        assert_eq!(p.imbalance_milli(), 1500);
        let balanced = ShardProfile {
            links: vec![1, 1],
            words: vec![4, 4],
            queue_high: vec![0, 0],
        };
        assert_eq!(balanced.imbalance_milli(), 1000);
        assert_eq!(ShardProfile::default().imbalance_milli(), 0);
    }

    #[test]
    fn shard_profile_of_empty_network_is_empty() {
        let p = ShardProfile::capture(&[], &[], &[]);
        assert_eq!(p, ShardProfile::default());
    }

    #[test]
    fn skewed_degrees_still_give_every_shard_a_node() {
        // All the degree is on the first node; later shards must still
        // get non-empty vertex ranges.
        let degrees = [100usize, 0, 0, 0];
        let plan = ShardPlan::new(&degrees, 4);
        assert_eq!(plan.shards(), 4);
        for s in 0..4 {
            assert!(!plan.node_range(s).is_empty(), "shard {s} has no nodes");
        }
    }
}
