//! Set-disjointness → MWC gadget graphs for the near-linear lower bounds
//! (Theorems 1.2.A and 1.4.A).
//!
//! # Directed gadget (Theorem 1.2.A)
//!
//! `k = q²` bits indexed by pairs `(i, j)`. Four layers of `q` vertices
//! each — Alice's `u_i, x_j` and Bob's `y_j, w_i` — wired as
//!
//! ```text
//!   u_i ──(S_a[i,j])──▶ x_j ──fixed──▶ y_j ──(S_b[i,j])──▶ w_i ──fixed──▶ u_i
//! ```
//!
//! Every directed cycle alternates `u → x → y → w → u`, so its length is a
//! multiple of 4; a 4-cycle exists **iff** some `(i,j)` is set on both
//! sides, and otherwise every cycle has ≥ 8 edges. Hence even a `(2−ε)`-
//! approximation of MWC decides disjointness. The Alice/Bob cut is the
//! `2q = Θ(n)` fixed matching edges, so any `R`-round algorithm conveys at
//! most `R · Θ(n log n)` bits across — against the `Ω(q²) = Ω(n²)` bits
//! disjointness needs, forcing `R = Ω(n / log n)` (constant diameter: an
//! Alice-side hub with outgoing-only edges keeps the network connected
//! without creating cycles).
//!
//! # Undirected weighted gadget (Theorem 1.4.A)
//!
//! The same topology, undirected: bit edges weigh `W = ⌈2/ε⌉`, fixed
//! matching edges weigh 1, hub edges weigh `2W + 2`. Intersecting ⇒ a
//! 4-cycle of weight `2W + 2`; disjoint ⇒ every cycle weighs ≥ `4W ≥
//! (2−ε)(2W+2)`.

use crate::disjointness::Disjointness;
use crate::instance::LowerBoundInstance;
use mwc_graph::{Graph, Weight};

/// Builds the directed gadget for a `q² `-bit instance.
///
/// `n = 4q + 1` nodes; `inst.k()` must be `q²` with bit `(i,j)` at index
/// `i·q + j`.
///
/// # Panics
///
/// Panics if `inst.k() != q²` or `q == 0`.
pub fn directed_gadget(q: usize, inst: &Disjointness) -> LowerBoundInstance {
    assert!(q > 0, "q must be positive");
    assert_eq!(inst.k(), q * q, "instance must have q² bits");
    let n = 4 * q + 1;
    let hub = 4 * q;
    let u = |i: usize| i;
    let x = |j: usize| q + j;
    let y = |j: usize| 2 * q + j;
    let w = |i: usize| 3 * q + i;

    let mut g = Graph::directed(n);
    // Fixed crossing matchings (the Alice/Bob cut).
    for j in 0..q {
        g.add_edge(x(j), y(j), 1).expect("simple");
    }
    for i in 0..q {
        g.add_edge(w(i), u(i), 1).expect("simple");
    }
    // Bit edges.
    for i in 0..q {
        for j in 0..q {
            if inst.a[i * q + j] {
                g.add_edge(u(i), x(j), 1).expect("simple");
            }
            if inst.b[i * q + j] {
                g.add_edge(y(j), w(i), 1).expect("simple");
            }
        }
    }
    // Connectivity hub (outgoing only ⇒ adds no cycle), Alice-side.
    for i in 0..q {
        g.add_edge(hub, u(i), 1).expect("simple");
        g.add_edge(hub, x(i), 1).expect("simple");
    }

    let mut alice = vec![false; n];
    for i in 0..q {
        alice[u(i)] = true;
        alice[x(i)] = true;
    }
    alice[hub] = true;

    LowerBoundInstance {
        graph: g,
        alice,
        bits: q * q,
        yes_threshold: 4,
        no_threshold: 8,
    }
}

/// Builds the undirected weighted gadget for a `q²`-bit instance with gap
/// parameter `epsilon` (the `(2−ε)` of Theorem 1.4.A).
///
/// # Panics
///
/// Panics if `inst.k() != q²`, `q == 0`, or `epsilon` is not in `(0, 1]`.
pub fn undirected_weighted_gadget(
    q: usize,
    epsilon: f64,
    inst: &Disjointness,
) -> LowerBoundInstance {
    assert!(q > 0, "q must be positive");
    assert_eq!(inst.k(), q * q, "instance must have q² bits");
    assert!(epsilon > 0.0 && epsilon <= 1.0, "epsilon must be in (0, 1]");
    let big_w: Weight = (2.0 / epsilon).ceil() as Weight;
    let hub_w: Weight = 2 * big_w + 2;
    let n = 4 * q + 1;
    let hub = 4 * q;
    let u = |i: usize| i;
    let x = |j: usize| q + j;
    let y = |j: usize| 2 * q + j;
    let w = |i: usize| 3 * q + i;

    let mut g = Graph::undirected(n);
    for j in 0..q {
        g.add_edge(x(j), y(j), 1).expect("simple");
    }
    for i in 0..q {
        g.add_edge(w(i), u(i), 1).expect("simple");
    }
    for i in 0..q {
        for j in 0..q {
            if inst.a[i * q + j] {
                g.add_edge(u(i), x(j), big_w).expect("simple");
            }
            if inst.b[i * q + j] {
                g.add_edge(y(j), w(i), big_w).expect("simple");
            }
        }
    }
    for i in 0..q {
        g.add_edge(hub, u(i), hub_w).expect("simple");
        g.add_edge(hub, x(i), hub_w).expect("simple");
    }

    let mut alice = vec![false; n];
    for i in 0..q {
        alice[u(i)] = true;
        alice[x(i)] = true;
    }
    alice[hub] = true;

    LowerBoundInstance {
        graph: g,
        alice,
        bits: q * q,
        yes_threshold: 2 * big_w + 2,
        no_threshold: 4 * big_w,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwc_graph::seq;

    #[test]
    fn directed_yes_has_four_cycle() {
        for seed in 0..8 {
            let inst = Disjointness::random_intersecting(64, 0.3, seed);
            let lb = directed_gadget(8, &inst);
            assert!(lb.graph.is_comm_connected());
            let mwc = seq::mwc_directed_exact(&lb.graph).expect("yes ⇒ cycle");
            assert_eq!(mwc.weight, 4);
            assert!(lb.decide(Some(mwc.weight)));
        }
    }

    #[test]
    fn directed_no_has_no_short_cycle() {
        for seed in 0..8 {
            let inst = Disjointness::random_disjoint(64, 0.3, seed);
            let lb = directed_gadget(8, &inst);
            let mwc = seq::mwc_directed_exact(&lb.graph).map(|m| m.weight);
            match mwc {
                None => {}
                Some(w) => assert!(w >= 8, "disjoint instance produced cycle of weight {w}"),
            }
            assert!(!lb.decide(mwc));
        }
    }

    #[test]
    fn directed_even_half_approximation_decides() {
        // A value anywhere in [mwc, 2·mwc) still separates 4 from 8.
        let inst = Disjointness::random_intersecting(49, 0.4, 3);
        let lb = directed_gadget(7, &inst);
        let mwc = seq::mwc_directed_exact(&lb.graph).unwrap().weight;
        let approx = 2 * mwc - 1; // any (2−ε)-approximation
        assert!(approx < lb.no_threshold);
    }

    #[test]
    fn directed_cut_is_two_q() {
        let inst = Disjointness::random_disjoint(25, 0.5, 1);
        let lb = directed_gadget(5, &inst);
        assert_eq!(lb.cut_edges(), 10);
    }

    #[test]
    fn directed_diameter_is_constant() {
        for seed in [0, 9] {
            let inst = Disjointness::random_disjoint(36, 0.2, seed);
            let lb = directed_gadget(6, &inst);
            let d = lb.graph.undirected_diameter().expect("connected");
            assert!(d <= 6, "diameter {d} not constant-ish");
        }
    }

    #[test]
    fn undirected_thresholds_hold() {
        for seed in 0..6 {
            let yes = Disjointness::random_intersecting(36, 0.3, seed);
            let lb = undirected_weighted_gadget(6, 0.5, &yes);
            assert!(lb.graph.is_comm_connected());
            let mwc = seq::mwc_undirected_exact(&lb.graph)
                .expect("yes ⇒ cycle")
                .weight;
            assert!(
                mwc <= lb.yes_threshold,
                "yes mwc {mwc} > {}",
                lb.yes_threshold
            );
            assert!(lb.decide(Some(mwc)));

            let no = Disjointness::random_disjoint(36, 0.3, seed);
            let lb = undirected_weighted_gadget(6, 0.5, &no);
            let mwc = seq::mwc_undirected_exact(&lb.graph).map(|m| m.weight);
            if let Some(w) = mwc {
                assert!(w >= lb.no_threshold, "no mwc {w} < {}", lb.no_threshold);
            }
            assert!(!lb.decide(mwc));
        }
    }

    #[test]
    fn undirected_gap_is_two_minus_epsilon() {
        let eps = 0.25;
        let inst = Disjointness::random_intersecting(16, 0.5, 2);
        let lb = undirected_weighted_gadget(4, eps, &inst);
        let ratio = lb.no_threshold as f64 / lb.yes_threshold as f64;
        assert!(ratio >= 2.0 - eps, "gap {ratio} < 2 − ε");
    }
}
