//! Distributed fundamental cycle basis — one of the paper's motivating
//! applications (§1: cycles "with connections to deadlock detection and
//! computing a cycle basis" \[22, 42, 44\]).
//!
//! A BFS spanning tree `T` of a connected undirected graph induces the
//! *fundamental* cycle basis: each non-tree edge `(x, y)` closes exactly
//! one cycle with the tree paths to the LCA of `x` and `y`, and these
//! `m − n + 1` cycles form a basis of the GF(2) cycle space. Computing it
//! distributively costs only the `O(D)` tree construction plus one round
//! for endpoints to learn each other's tree depth/parent — each node then
//! knows, for every incident non-tree edge, that a basis cycle closes
//! there (the standard implicit representation); the explicit vertex
//! sequences are assembled from the tree.

use mwc_congest::{BfsTree, Ledger};
use mwc_graph::{CycleWitness, EdgeId, Graph, NodeId};

/// A fundamental cycle basis; produced by [`fundamental_cycle_basis`].
#[derive(Clone, Debug)]
pub struct CycleBasis {
    /// One basis cycle per non-tree edge, each a validated simple cycle.
    pub cycles: Vec<CycleWitness>,
    /// The non-tree edge that closes each basis cycle (parallel to
    /// `cycles`).
    pub chords: Vec<EdgeId>,
    /// Round/traffic accounting (tree construction + endpoint exchange).
    pub ledger: Ledger,
}

impl CycleBasis {
    /// Basis dimension `m − n + 1` (the graph's circuit rank).
    pub fn dimension(&self) -> usize {
        self.cycles.len()
    }

    /// The edge-incidence vector of cycle `i` over the graph's edges.
    fn edge_vector(&self, g: &Graph, i: usize) -> Vec<bool> {
        let mut v = vec![false; g.m()];
        let vs = self.cycles[i].vertices();
        for j in 0..vs.len() {
            let e = g
                .edge_id(vs[j], vs[(j + 1) % vs.len()])
                .expect("basis cycles use real edges");
            v[e] = true;
        }
        v
    }

    /// Whether the edge set of `cycle` lies in the GF(2) span of the
    /// basis — true for every cycle of the graph, which is what makes
    /// this a basis. Used by tests and as a consistency check.
    pub fn spans(&self, g: &Graph, cycle: &CycleWitness) -> bool {
        // Gaussian elimination over GF(2) on the basis vectors plus the
        // target: the target is spanned iff elimination zeroes it out.
        let mut target = vec![false; g.m()];
        let vs = cycle.vertices();
        for j in 0..vs.len() {
            match g.edge_id(vs[j], vs[(j + 1) % vs.len()]) {
                Some(e) => target[e] ^= true,
                None => return false,
            }
        }
        let mut rows: Vec<Vec<bool>> = (0..self.cycles.len())
            .map(|i| self.edge_vector(g, i))
            .collect();
        for col in 0..g.m() {
            let Some(pivot) = rows.iter().position(|r| r[col]) else {
                continue;
            };
            let prow = rows.swap_remove(pivot);
            for r in &mut rows {
                if r[col] {
                    for (a, b) in r.iter_mut().zip(&prow) {
                        *a ^= b;
                    }
                }
            }
            if target[col] {
                for (a, b) in target.iter_mut().zip(&prow) {
                    *a ^= b;
                }
            }
        }
        target.iter().all(|&b| !b)
    }
}

/// Computes the fundamental cycle basis of a connected undirected graph
/// in `O(D)` rounds (BFS tree + one neighbor exchange).
///
/// # Panics
///
/// Panics if the graph is directed or its communication topology is
/// disconnected.
///
/// # Examples
///
/// ```
/// use mwc_core::cycle_basis::fundamental_cycle_basis;
/// use mwc_graph::{Graph, Orientation};
///
/// # fn main() -> Result<(), mwc_graph::GraphError> {
/// let g = Graph::from_edges(4, Orientation::Undirected,
///     [(0, 1, 1), (1, 2, 1), (2, 3, 1), (3, 0, 1), (0, 2, 1)])?;
/// let basis = fundamental_cycle_basis(&g);
/// assert_eq!(basis.dimension(), 5 - 4 + 1); // m − n + 1
/// # Ok(())
/// # }
/// ```
pub fn fundamental_cycle_basis(g: &Graph) -> CycleBasis {
    let _span = mwc_trace::span("basis/fundamental");
    assert!(
        !g.is_directed(),
        "cycle bases are defined for undirected graphs"
    );
    let mut ledger = Ledger::new();
    let tree = BfsTree::build(g, 0, &mut ledger);

    // One round: endpoints learn each other's (depth, parent) so every
    // node knows which incident edges are non-tree chords.
    let depths: Vec<(usize, Option<NodeId>)> = (0..g.n())
        .map(|v| (tree.depth[v], tree.parent[v]))
        .collect();
    let _ = crate::exchange::exchange_with_neighbors(
        g,
        &depths,
        1,
        "cycle basis: depth exchange",
        &mut ledger,
    );

    let mut cycles = Vec::new();
    let mut chords = Vec::new();
    for (eid, e) in g.edges().iter().enumerate() {
        let (x, y) = (e.u, e.v);
        if tree.parent[x] == Some(y) || tree.parent[y] == Some(x) {
            continue; // tree edge
        }
        // Tree paths to the root, trimmed at the LCA.
        let path_up = |mut v: NodeId| {
            let mut p = vec![v];
            while let Some(parent) = tree.parent[v] {
                p.push(parent);
                v = parent;
            }
            p.reverse(); // root … v
            p
        };
        let px = path_up(x);
        let py = path_up(y);
        let mut z = 0;
        while z + 1 < px.len() && z + 1 < py.len() && px[z + 1] == py[z + 1] {
            z += 1;
        }
        let mut cyc: Vec<NodeId> = px[z..].to_vec();
        cyc.extend(py[z + 1..].iter().rev());
        debug_assert!(cyc.len() >= 3);
        cycles.push(CycleWitness::new(cyc));
        chords.push(eid);
    }
    mwc_trace::check_bound(
        "core/fundamental_cycle_basis",
        mwc_trace::BoundInputs::n(g.n()).diameter(mwc_congest::bounds::diameter_upper_bound(g)),
        ledger.rounds,
        crate::bounds::cycle_basis,
    );
    CycleBasis {
        cycles,
        chords,
        ledger,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwc_graph::generators::{connected_gnm, grid, ring_with_chords, WeightRange};
    use mwc_graph::seq;
    use mwc_graph::Orientation;

    #[test]
    fn dimension_is_circuit_rank() {
        for seed in 0..5 {
            let g = connected_gnm(40, 60, Orientation::Undirected, WeightRange::unit(), seed);
            let b = fundamental_cycle_basis(&g);
            assert_eq!(b.dimension(), g.m() - g.n() + 1);
            for c in &b.cycles {
                c.validate(&g).expect("basis cycles are real");
            }
        }
    }

    #[test]
    fn tree_has_empty_basis() {
        let mut g = Graph::undirected(9);
        for i in 1..9 {
            g.add_edge(i / 2, i, 1).unwrap();
        }
        let b = fundamental_cycle_basis(&g);
        assert_eq!(b.dimension(), 0);
    }

    #[test]
    fn basis_spans_the_minimum_weight_cycle() {
        for seed in 0..5 {
            let g = connected_gnm(
                30,
                55,
                Orientation::Undirected,
                WeightRange::uniform(1, 9),
                seed,
            );
            let b = fundamental_cycle_basis(&g);
            if let Some(m) = seq::mwc_undirected_exact(&g) {
                assert!(
                    b.spans(&g, &m.witness),
                    "MWC outside the basis span (seed {seed})"
                );
            }
        }
    }

    #[test]
    fn basis_spans_grid_faces() {
        let g = grid(5, 5, Orientation::Undirected, WeightRange::unit(), 0);
        let b = fundamental_cycle_basis(&g);
        assert_eq!(b.dimension(), g.m() - g.n() + 1); // 16 faces
                                                      // Each unit face is spanned.
        let id = |r: usize, c: usize| r * 5 + c;
        for r in 0..4 {
            for c in 0..4 {
                let face =
                    CycleWitness::new(vec![id(r, c), id(r, c + 1), id(r + 1, c + 1), id(r + 1, c)]);
                face.validate(&g).unwrap();
                assert!(b.spans(&g, &face));
            }
        }
    }

    #[test]
    fn non_cycles_are_rejected_by_span_check() {
        let g = ring_with_chords(10, 3, Orientation::Undirected, WeightRange::unit(), 1);
        let b = fundamental_cycle_basis(&g);
        // A "cycle" using a missing edge cannot be spanned.
        let fake = CycleWitness::new(vec![0, 5, 9]);
        if fake.validate(&g).is_err() {
            assert!(!b.spans(&g, &fake));
        }
    }

    #[test]
    fn rounds_are_diameter_bounded() {
        let g = grid(12, 12, Orientation::Undirected, WeightRange::unit(), 0);
        let b = fundamental_cycle_basis(&g);
        let d = g.undirected_diameter().unwrap() as u64;
        assert!(
            b.ledger.rounds <= 2 * d + 4,
            "{} rounds ≫ D = {d}",
            b.ledger.rounds
        );
    }
}
