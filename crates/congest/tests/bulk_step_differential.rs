//! Differential test for bulk round advancement: on the three graph
//! families the bound audits sweep (G(n,m), grid, ring-with-chords), an
//! identical delivery-driven workload runs once per advancement strategy —
//! plain [`Network::step`], [`Network::step_fast`], and
//! [`Network::step_bulk`] — and everything observable must match exactly:
//! the full [`NetStats`] (including the `words_per_round` ledger history
//! and `queue_high_water`), the `MWC_TRACE_EVENTS` event log, and the
//! final round counter.

use mwc_congest::{EventCapture, NetStats, Network, RoundOutput};
use mwc_graph::generators::{connected_gnm, grid, ring_with_chords, WeightRange};
use mwc_graph::{Graph, Orientation};

/// Payload: `(token, hops_left)`.
type Msg = (u32, u32);

/// How one run advances the network by one (or, for bulk, many) rounds.
/// Returns `false` when the network is drained.
type Advance = fn(&mut Network<Msg>, &mut RoundOutput<Msg>) -> bool;

fn advance_step(net: &mut Network<Msg>, out: &mut RoundOutput<Msg>) -> bool {
    if net.is_idle() {
        return false;
    }
    net.step_into(out);
    true
}

fn advance_step_fast(net: &mut Network<Msg>, out: &mut RoundOutput<Msg>) -> bool {
    net.step_fast_into(out)
}

fn advance_step_bulk(net: &mut Network<Msg>, out: &mut RoundOutput<Msg>) -> bool {
    net.step_bulk_into(out)
}

/// Runs a deterministic multi-wave workload on `g`: every node seeds a
/// token to each neighbor with varying word counts and latencies, some
/// nodes get wakeups that trigger fresh multi-word sends, and every
/// delivery with hop budget left is re-forwarded with a different size.
/// This exercises all the regimes bulk advancement must cross: long
/// multi-word transfers (skippable runs), 1-word rounds (no skip),
/// latency gaps (transit boundary), and wakeup rounds (wakeup boundary).
fn run_workload(g: &Graph, advance: Advance) -> (NetStats, Vec<String>, u64) {
    let cap = EventCapture::memory();
    let mut net: Network<Msg> = Network::new(g);
    net.enable_history();
    for v in 0..g.n() {
        for w in g.comm_neighbors(v) {
            let words = 1 + ((v + w) % 4) as u64 * 2;
            let latency = (v % 3) as u64;
            net.send_latency(v, w, (v as u32, 3), words, latency)
                .expect("neighbors are linked");
        }
        if v % 4 == 0 {
            net.schedule_wakeup(5 + (v % 7) as u64, v);
        }
    }
    let mut out = RoundOutput::default();
    while advance(&mut net, &mut out) {
        for v in out.wakeups.drain(..) {
            if let Some(&w) = g.comm_neighbors(v).first() {
                net.send(v, w, (u32::MAX, 0), 6).expect("neighbors");
            }
        }
        for d in out.deliveries.drain(..) {
            let (tok, hops) = d.payload;
            if hops == 0 {
                continue;
            }
            let nbrs = g.comm_neighbors(d.to);
            let w = nbrs[(d.to + hops as usize) % nbrs.len()];
            let words = 1 + (tok as u64 + hops as u64) % 5;
            let latency = hops as u64 % 2;
            net.send_latency(d.to, w, (tok, hops - 1), words, latency)
                .expect("neighbors");
        }
    }
    (net.stats().clone(), cap.finish(), net.round())
}

fn assert_strategies_agree(g: &Graph, family: &str) {
    let baseline = run_workload(g, advance_step);
    for (name, advance) in [
        ("step_fast", advance_step_fast as Advance),
        ("step_bulk", advance_step_bulk as Advance),
    ] {
        let got = run_workload(g, advance);
        assert_eq!(got.0, baseline.0, "{family}: NetStats diverge under {name}");
        assert_eq!(
            got.1, baseline.1,
            "{family}: event log diverges under {name}"
        );
        assert_eq!(
            got.2, baseline.2,
            "{family}: final round diverges under {name}"
        );
    }
}

#[test]
fn bulk_matches_single_stepping_on_gnm() {
    for seed in 0..3 {
        let g = connected_gnm(24, 40, Orientation::Undirected, WeightRange::unit(), seed);
        assert_strategies_agree(&g, "connected_gnm");
    }
}

#[test]
fn bulk_matches_single_stepping_on_grid() {
    let g = grid(5, 5, Orientation::Undirected, WeightRange::unit(), 7);
    assert_strategies_agree(&g, "grid");
}

#[test]
fn bulk_matches_single_stepping_on_ring_with_chords() {
    let g = ring_with_chords(20, 6, Orientation::Undirected, WeightRange::unit(), 3);
    assert_strategies_agree(&g, "ring_with_chords");
}

/// Fan-in regression (satellite d): a deep per-link queue — one sender
/// stacking several multi-word messages on the same link — must report
/// the same `queue_high_water` whether the run single-steps or bulk-skips
/// through the long transfers.
#[test]
fn queue_high_water_survives_bulk_advancement() {
    let g = grid(3, 3, Orientation::Undirected, WeightRange::unit(), 0);
    let load = |net: &mut Network<Msg>| {
        // Six 4-word messages queued on one link: depth 6.
        for i in 0..6u32 {
            net.send(0, 1, (i, 0), 4).expect("linked");
        }
        // Keep other links busy with long transfers so bulk skipping
        // actually engages while the deep queue drains.
        net.send(4, 5, (99, 0), 16).expect("linked");
        net.send(8, 7, (98, 0), 16).expect("linked");
    };
    let mut single: Network<Msg> = Network::new(&g);
    load(&mut single);
    while !single.is_idle() {
        single.step();
    }
    let mut bulk: Network<Msg> = Network::new(&g);
    load(&mut bulk);
    let mut out = RoundOutput::default();
    while bulk.step_bulk_into(&mut out) {}
    assert_eq!(single.stats().queue_high_water, 6);
    assert_eq!(
        bulk.stats().queue_high_water,
        single.stats().queue_high_water
    );
    assert_eq!(bulk.stats(), single.stats());
}
