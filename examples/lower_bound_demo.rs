//! The lower-bound reduction, end to end: watch a CONGEST network solve
//! two-party set disjointness by computing a minimum weight cycle.
//!
//! Alice and Bob each hold `q² = 1024`-bit sets. Neither ever "sends"
//! them anywhere: the bits exist only as edges of the gadget graph of
//! Theorem 1.2.A. Yet after the network computes its MWC, reading one
//! bit of the answer at any node decides whether the sets intersect —
//! so *the network's rounds are communication*, and the paper's
//! `Ω(n/log n)` bound follows from counting the bits that can cross the
//! Alice/Bob cut per round.
//!
//! Run with: `cargo run --release --example lower_bound_demo`

use congest_mwc::core::{exact_mwc, shortest_cycle_within};
use congest_mwc::lowerbounds::{directed_gadget, Disjointness};

fn main() {
    let q = 64;

    for (label, inst) in [
        (
            "intersecting",
            Disjointness::random_intersecting(q * q, 0.35, 11),
        ),
        ("disjoint", Disjointness::random_disjoint(q * q, 0.35, 11)),
    ] {
        let lb = directed_gadget(q, &inst);
        println!(
            "{label} instance: k = {} bits, gadget n = {}, D = {}, Alice/Bob cut = {} links",
            lb.bits,
            lb.graph.n(),
            lb.graph.undirected_diameter().unwrap(),
            lb.cut_edges(),
        );

        let out = exact_mwc(&lb.graph);
        match out.weight {
            Some(w) => println!("  MWC = {w}  (4 ⇔ intersecting, ≥ 8 ⇔ spurious composites only)"),
            None => println!("  no cycle at all"),
        }
        let decided = lb.decide(out.weight);
        assert_eq!(decided, inst.intersects(), "the reduction must be sound");
        println!(
            "  ⇒ network decided: sets {}",
            if decided { "INTERSECT" } else { "are disjoint" }
        );

        // The 4-cycle-detection corollary (§1.3): the same instance is
        // hard for q-cycle detection, any q ≥ 4.
        let det = shortest_cycle_within(&lb.graph, 4);
        println!(
            "  4-cycle detection agrees: {:?} in {} rounds",
            det.weight, det.ledger.rounds
        );

        // Communication accounting.
        let word_bits = 9;
        let rep = lb.report(&out.ledger, word_bits);
        println!(
            "  rounds = {}, bits across the cut = {} (capacity {} bits/round), info-theoretic floor = {} rounds\n",
            rep.rounds,
            rep.cut_bits(),
            2 * rep.cut_edges as u64 * word_bits,
            rep.round_floor,
        );
        assert!(rep.rounds >= rep.round_floor);
    }

    println!("scaling: rounds of the exact algorithm on the gadget (D stays 4):");
    for q in [8, 16, 32, 64] {
        let inst = Disjointness::random_intersecting(q * q, 0.35, 7);
        let lb = directed_gadget(q, &inst);
        let out = exact_mwc(&lb.graph);
        println!(
            "  q = {q:3} (n = {:4}, k = {:5} bits): {:6} rounds",
            lb.graph.n(),
            lb.bits,
            out.ledger.rounds
        );
    }
}
