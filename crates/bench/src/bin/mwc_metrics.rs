//! **mwc_metrics** — aggregates run records into the observability
//! artifacts the perf gate publishes.
//!
//! Subcommands:
//!
//! - `report [records_dir]` (default `results/run_records`): parses every
//!   run record, renders the combined OpenMetrics exposition as
//!   `results/metrics.prom` (validated before it lands), and prints a
//!   per-bin shard-imbalance, cache-hit-rate, and flood-kernel-engagement
//!   report (also saved as `results/metrics_report.txt`).
//! - `check <prom_file>`: validates an existing exposition with the
//!   in-tree OpenMetrics checker; exit 1 when it does not parse.
//! - `check-trace <trace.json>`: structurally validates a Chrome Trace
//!   Event Format export (`results/trace.perfetto.json`) with the
//!   in-tree checker — balanced B/E nesting per track, monotone
//!   timestamps; exit 1 when it does not validate.
//! - `append-trajectory <records_dir> <trajectory.json>`: appends one
//!   entry per record — bin, rounds, words, `rounds_saved`, `wall_ms`,
//!   `peak_alloc_bytes`, `shards`, `jobs` — to the
//!   `mwc-bench-trajectory/v2` append-log, so every gated run extends
//!   the commit-over-commit perf trajectory. A missing or pre-v2 file is
//!   replaced by a fresh log.
//!
//! Exit codes: `0` ok, `1` validation failure, `2` usage/configuration
//! error (no records, unreadable files).

use mwc_bench::report;
use mwc_bench::report::Json;
use mwc_trace::{validate_openmetrics, MetricsRegistry, RunRecord};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

/// Parses every `<name>.json` under `dir` as a [`RunRecord`], sorted by
/// name. Unparsable records are configuration errors: exit 2.
fn load_records(dir: &str) -> BTreeMap<String, RunRecord> {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("mwc_metrics: cannot read {dir}: {e}");
            std::process::exit(2);
        }
    };
    let mut out = BTreeMap::new();
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().is_none_or(|e| e != "json") {
            continue;
        }
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("mwc_metrics: cannot read {}: {e}", path.display());
            std::process::exit(2);
        });
        match RunRecord::parse(&text) {
            Ok(r) => {
                out.insert(r.name.clone(), r);
            }
            Err(e) => {
                eprintln!("mwc_metrics: {} is not a run record: {e}", path.display());
                std::process::exit(2);
            }
        }
    }
    if out.is_empty() {
        eprintln!("mwc_metrics: no run records in {dir}");
        std::process::exit(2);
    }
    out
}

/// `hits/(hits+misses)` as a percentage string, `"-"` when the cache saw
/// no traffic of this kind.
fn hit_rate(hits: u64, misses: u64) -> String {
    if hits + misses == 0 {
        "-".into()
    } else {
        format!("{:.1}%", 100.0 * hits as f64 / (hits + misses) as f64)
    }
}

fn cmd_report(records_dir: &str) {
    let records = load_records(records_dir);

    let mut registry = MetricsRegistry::new();
    for r in records.values() {
        registry.add(r);
    }
    let exposition = registry.render();
    if let Err(e) = validate_openmetrics(&exposition) {
        eprintln!("mwc_metrics: rendered exposition is invalid: {e}");
        std::process::exit(1);
    }
    report::save_artifact("metrics.prom", &exposition);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "== mwc_metrics: {} record(s) from {records_dir} ==",
        records.len()
    );
    for r in records.values() {
        let _ = writeln!(
            out,
            "{}: rounds {}, words {}, rounds_saved {}",
            r.name, r.rounds, r.words, r.rounds_saved
        );
        let c = &r.cache;
        let _ = writeln!(
            out,
            "  cache: tree {}/{} hits ({}), latency {}/{} hits ({})",
            c.tree_hits,
            c.tree_hits + c.tree_misses,
            hit_rate(c.tree_hits, c.tree_misses),
            c.latency_hits,
            c.latency_hits + c.latency_misses,
            hit_rate(c.latency_hits, c.latency_misses),
        );
        // Host-side profile context: allocator traffic, the peak
        // high-water mark, and worker utilization (pool busy-time over
        // wall-clock × workers). All informational, like wall_ms.
        let jobs = r.jobs.max(1);
        let util = if r.wall_ms == 0 {
            "-".into()
        } else {
            format!(
                "{:.1}%",
                100.0 * r.workers.busy_ms as f64 / (r.wall_ms * jobs) as f64
            )
        };
        let _ = writeln!(
            out,
            "  profile: alloc {} B / {} allocs, peak {} B, worker util {} (busy {} ms / wall {} ms x {} job(s))",
            r.alloc_bytes, r.alloc_count, r.peak_alloc_bytes, util, r.workers.busy_ms, r.wall_ms, jobs
        );
        // Flood-kernel engagement: how many flood primitives this run
        // dispatched to a bitset kernel (unit-latency or calendar-queue
        // stretched) vs. the scalar reference. Informational, like the
        // `flood_kernel` knob stamp; pre-v8 records read as 0/0.
        let knob = if r.flood_kernel.is_empty() {
            "-"
        } else {
            r.flood_kernel.as_str()
        };
        let _ = writeln!(
            out,
            "  floods: {} bitset / {} scalar (kernel knob {knob})",
            r.floods_bitset, r.floods_scalar
        );
        let worst = r
            .congestion
            .iter()
            .max_by_key(|c| (c.shard_imbalance_milli, std::cmp::Reverse(&c.label)));
        match worst {
            Some(w) if w.shard_imbalance_milli > 0 => {
                let _ = writeln!(
                    out,
                    "  shard imbalance: max {} milli (label {:?}) over {} label(s)",
                    w.shard_imbalance_milli,
                    w.label,
                    r.congestion.len()
                );
            }
            _ => {
                let _ = writeln!(out, "  shard imbalance: no shard profile recorded");
            }
        }
    }
    print!("{out}");
    report::save_artifact("metrics_report.txt", &out);
}

fn cmd_check_trace(trace_file: &str) {
    let text = std::fs::read_to_string(trace_file).unwrap_or_else(|e| {
        eprintln!("mwc_metrics: cannot read {trace_file}: {e}");
        std::process::exit(2);
    });
    match mwc_trace::validate_chrome_trace(&text) {
        Ok(s) => println!(
            "mwc_metrics: {trace_file} is a valid Chrome trace \
             ({} event(s), {} span(s), {} track(s))",
            s.events, s.spans, s.tracks
        ),
        Err(e) => {
            eprintln!("mwc_metrics: {trace_file} is invalid: {e}");
            std::process::exit(1);
        }
    }
}

fn cmd_check(prom_file: &str) {
    let text = std::fs::read_to_string(prom_file).unwrap_or_else(|e| {
        eprintln!("mwc_metrics: cannot read {prom_file}: {e}");
        std::process::exit(2);
    });
    match validate_openmetrics(&text) {
        Ok(()) => println!("mwc_metrics: {prom_file} is valid OpenMetrics"),
        Err(e) => {
            eprintln!("mwc_metrics: {prom_file} is invalid: {e}");
            std::process::exit(1);
        }
    }
}

/// Schema tag of the trajectory append-log.
const TRAJECTORY_SCHEMA: &str = "mwc-bench-trajectory/v2";

fn cmd_append_trajectory(records_dir: &str, trajectory_path: &str) {
    let records = load_records(records_dir);

    // Carry existing v2 runs forward; anything else (missing file, the
    // old v1 diff-pairs shape) starts a fresh log.
    let mut runs: Vec<Json> = match std::fs::read_to_string(trajectory_path) {
        Ok(text) => match Json::parse(&text) {
            Ok(v) if v.get("schema").and_then(Json::as_str) == Some(TRAJECTORY_SCHEMA) => {
                match v.get("runs") {
                    Some(Json::Arr(runs)) => runs.clone(),
                    _ => Vec::new(),
                }
            }
            _ => Vec::new(),
        },
        Err(_) => Vec::new(),
    };

    for r in records.values() {
        runs.push(Json::obj([
            ("bin", Json::str(&r.name)),
            ("rounds", Json::U64(r.rounds)),
            ("words", Json::U64(r.words)),
            ("rounds_saved", Json::U64(r.rounds_saved)),
            ("wall_ms", Json::U64(r.wall_ms)),
            // Additive v2 key: peak allocator high-water mark, recorded
            // beside wall_ms so memory regressions are visible in the
            // same commit-over-commit log as time regressions.
            ("peak_alloc_bytes", Json::U64(r.peak_alloc_bytes)),
            ("shards", Json::U64(r.shards)),
            ("jobs", Json::U64(r.jobs)),
        ]));
    }

    let doc = Json::obj([
        ("schema", Json::str(TRAJECTORY_SCHEMA)),
        ("runs", Json::Arr(runs)),
    ]);
    if let Some(dir) = Path::new(trajectory_path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create trajectory dir");
        }
    }
    std::fs::write(trajectory_path, doc.render_pretty()).unwrap_or_else(|e| {
        eprintln!("mwc_metrics: cannot write {trajectory_path}: {e}");
        std::process::exit(2);
    });
    println!(
        "mwc_metrics: appended {} run(s) to {trajectory_path}",
        records.len()
    );
}

fn usage() -> ! {
    eprintln!(
        "usage: mwc_metrics report [records_dir]\n\
         \x20      mwc_metrics check <metrics.prom>\n\
         \x20      mwc_metrics check-trace <trace.perfetto.json>\n\
         \x20      mwc_metrics append-trajectory <records_dir> <trajectory.json>"
    );
    std::process::exit(2);
}

fn main() {
    let cmd = report::arg_str(1, "");
    match cmd.as_str() {
        "report" => {
            let dir = report::arg_str(2, &format!("results/{}", report::RUN_RECORD_DIR));
            cmd_report(&dir);
        }
        "check" => {
            let file = report::arg_str(2, "");
            if file.is_empty() {
                usage();
            }
            cmd_check(&file);
        }
        "check-trace" => {
            let file = report::arg_str(2, "");
            if file.is_empty() {
                usage();
            }
            cmd_check_trace(&file);
        }
        "append-trajectory" => {
            let dir = report::arg_str(2, "");
            let traj = report::arg_str(3, "");
            if dir.is_empty() || traj.is_empty() {
                usage();
            }
            cmd_append_trajectory(&dir, &traj);
        }
        _ => usage(),
    }
}
