//! Writing your own CONGEST algorithm against the engine's node-program
//! API: a distributed *local triangle counter*.
//!
//! Each node sends its (id-sorted) adjacency list to every neighbor; on
//! receipt it intersects the list with its own to count triangles it
//! participates in. Locality is enforced by the runtime — a node can only
//! ever message its neighbors — and the ledger reports what the exchange
//! cost in CONGEST rounds (Θ(max degree), since adjacency lists are
//! Θ(deg) words).
//!
//! Run with: `cargo run --release --example custom_algorithm`

use congest_mwc::congest::program::{run_programs, Action, NodeCtx, NodeProgram};
use congest_mwc::congest::Ledger;
use congest_mwc::graph::generators::{connected_gnm, WeightRange};
use congest_mwc::graph::{NodeId, Orientation};
use std::sync::Arc;

struct TriangleCounter {
    my_adj: Arc<Vec<NodeId>>,
    /// Triangles this node participates in, counted with multiplicity 2
    /// (once per incident edge pair ordering).
    double_count: u64,
}

impl NodeProgram for TriangleCounter {
    type Msg = Arc<Vec<NodeId>>;

    fn init(&mut self, ctx: &NodeCtx) -> Vec<Action<Self::Msg>> {
        self.my_adj = Arc::new({
            let mut a = ctx.neighbors.clone();
            a.sort_unstable();
            a
        });
        ctx.neighbors
            .iter()
            .map(|&to| Action::Send {
                to,
                msg: Arc::clone(&self.my_adj),
                words: self.my_adj.len().max(1) as u64,
            })
            .collect()
    }

    fn on_receive(
        &mut self,
        _ctx: &NodeCtx,
        from: NodeId,
        their_adj: Self::Msg,
    ) -> Vec<Action<Self::Msg>> {
        // Common neighbors of me and `from` close triangles (me, from, x).
        for x in their_adj.iter() {
            if *x != from && self.my_adj.binary_search(x).is_ok() {
                self.double_count += 1;
            }
        }
        Vec::new()
    }
}

/// Sequential reference count.
fn triangles_sequential(g: &congest_mwc::graph::Graph) -> u64 {
    let mut count = 0;
    for e in g.edges() {
        for a in g.out_adj(e.u) {
            if a.to != e.v && g.has_edge(a.to, e.v) {
                count += 1;
            }
        }
    }
    count / 3 // each triangle counted once per vertex
}

fn main() {
    let g = connected_gnm(300, 1800, Orientation::Undirected, WeightRange::unit(), 99);
    println!("network: n = {}, m = {}", g.n(), g.m());

    let mut ledger = Ledger::new();
    let nodes = run_programs(
        &g,
        |_| TriangleCounter {
            my_adj: Arc::new(Vec::new()),
            double_count: 0,
        },
        1_000_000,
        &mut ledger,
    );

    // Every triangle is double-counted at each of its 3 vertices.
    let total: u64 = nodes.iter().map(|p| p.double_count).sum();
    let triangles = total / 6;
    let reference = triangles_sequential(&g);
    println!("distributed triangle count: {triangles} (sequential reference: {reference})");
    assert_eq!(triangles, reference);

    println!(
        "cost: {} CONGEST rounds, {} words moved (adjacency exchange ≈ max degree rounds)",
        ledger.rounds, ledger.words
    );
    let max_deg = (0..g.n()).map(|v| g.out_adj(v).len()).max().unwrap();
    println!("max degree = {max_deg}");
}
