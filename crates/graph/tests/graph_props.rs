//! Property-based tests of the graph substrate: generator invariants,
//! oracle cross-agreement, witness round-trips.
//!
//! Runs on `mwc_rng::proptest_lite`; new failures persist their case
//! seed under `proplite-regressions/`.

use mwc_graph::generators::{
    barbell, bipartite, connected_gnm, grid, planted_cycle, random_regular, ring_with_chords,
    WeightRange,
};
use mwc_graph::seq::{
    bellman_ford_hops, bfs, dijkstra, girth_exact, mwc_directed_exact, mwc_exact,
    mwc_undirected_exact, Direction, HOP_INF, INF,
};
use mwc_graph::{CycleWitness, Orientation};
use mwc_rng::proptest_lite::{Config, TestCaseResult};
use mwc_rng::{prop_assert, prop_assert_eq, prop_tests};

/// Shared body of `generators_produce_valid_graphs`, also exercised by
/// the pinned regression case below.
fn generators_valid(seed: u64, n: usize) -> TestCaseResult {
    let graphs = vec![
        connected_gnm(
            n,
            2 * n,
            Orientation::Directed,
            WeightRange::uniform(1, 9),
            seed,
        ),
        connected_gnm(n, 2 * n, Orientation::Undirected, WeightRange::unit(), seed),
        ring_with_chords(
            n,
            n / 3,
            Orientation::Undirected,
            WeightRange::uniform(1, 5),
            seed,
        ),
        random_regular(
            n + n % 2,
            4,
            Orientation::Undirected,
            WeightRange::unit(),
            true,
            seed,
        ),
        bipartite(
            n / 2 + 1,
            n / 2 + 1,
            n,
            Orientation::Undirected,
            WeightRange::unit(),
            seed,
        ),
        barbell(4, n / 4 + 1, WeightRange::unit(), seed),
    ];
    for g in graphs {
        prop_assert!(g.is_comm_connected(), "n={} m={}", g.n(), g.m());
        for e in g.edges() {
            prop_assert!(e.u < g.n() && e.v < g.n() && e.u != e.v);
            prop_assert!(e.weight >= 1);
        }
        // No duplicate edges in the declared orientation.
        let mut seen = std::collections::HashSet::new();
        for e in g.edges() {
            let key = if g.is_directed() {
                (e.u, e.v)
            } else {
                (e.u.min(e.v), e.u.max(e.v))
            };
            prop_assert!(seen.insert(key), "duplicate edge {key:?}");
        }
    }
    Ok(())
}

/// The shrunken case the old proptest suite once caught
/// (`graph_props.proptest-regressions`: "shrinks to seed = 1443,
/// n = 24"), inlined as a permanent fixed regression.
#[test]
fn regression_generators_valid_seed_1443_n_24() {
    generators_valid(1443, 24).unwrap_or_else(|e| panic!("{}", e.0));
}

prop_tests! {
    config = Config::with_cases(48);

    /// Every generator produces a simple, in-range, connected graph.
    fn generators_produce_valid_graphs(seed in 0u64..10_000, n in 4usize..40) {
        generators_valid(seed, n)?;
    }

    /// Dijkstra ≤ BFS-hops × max-weight; equal on unit weights; BFS
    /// reachability agrees with Dijkstra reachability.
    fn bfs_dijkstra_consistency(seed in 0u64..10_000, n in 4usize..30, extra in 0usize..50) {
        let g = connected_gnm(n, extra, Orientation::Directed, WeightRange::uniform(1, 7), seed);
        let b = bfs(&g, 0, Direction::Forward);
        let d = dijkstra(&g, 0, Direction::Forward);
        for v in 0..n {
            prop_assert_eq!(b.dist[v] == HOP_INF, d.dist[v] == INF);
            if b.dist[v] != HOP_INF {
                prop_assert!(d.dist[v] <= 7 * b.dist[v] as u64);
                prop_assert!(d.dist[v] >= b.dist[v] as u64);
            }
        }
    }

    /// Hop-limited distances are monotone in h and converge to Dijkstra.
    fn bellman_ford_monotone_in_h(seed in 0u64..10_000, n in 4usize..24, extra in 0usize..40) {
        let g = connected_gnm(n, extra, Orientation::Directed, WeightRange::uniform(1, 9), seed);
        let full = dijkstra(&g, 0, Direction::Forward);
        let mut prev = bellman_ford_hops(&g, 0, 0, Direction::Forward);
        for h in 1..n {
            let cur = bellman_ford_hops(&g, 0, h, Direction::Forward);
            for v in 0..n {
                prop_assert!(cur[v] <= prev[v], "h-limited distances must not grow with h");
                prop_assert!(cur[v] >= full.dist[v]);
            }
            prev = cur;
        }
        prop_assert_eq!(&prev, &full.dist);
    }

    /// The two undirected oracles agree; girth equals unit-weight MWC.
    fn oracles_agree(seed in 0u64..10_000, n in 4usize..20, extra in 0usize..30) {
        let g = connected_gnm(n, extra, Orientation::Undirected, WeightRange::unit(), seed);
        let a = girth_exact(&g).map(|m| m.weight);
        let b = mwc_undirected_exact(&g).map(|m| m.weight);
        let c = mwc_exact(&g).map(|m| m.weight);
        prop_assert_eq!(a, b);
        prop_assert_eq!(a, c);
    }

    /// Rotating or (for undirected) reversing a witness keeps it valid
    /// with the same weight.
    fn witness_rotation_invariance(seed in 0u64..10_000, n in 4usize..20, extra in 5usize..30) {
        let g = connected_gnm(n, extra, Orientation::Undirected, WeightRange::uniform(1, 9), seed);
        if let Some(m) = mwc_undirected_exact(&g) {
            let vs = m.witness.vertices().to_vec();
            for rot in 0..vs.len() {
                let mut rotated = vs.clone();
                rotated.rotate_left(rot);
                prop_assert_eq!(CycleWitness::new(rotated.clone()).validate(&g), Ok(m.weight));
                rotated.reverse();
                prop_assert_eq!(CycleWitness::new(rotated).validate(&g), Ok(m.weight));
            }
        }
    }

    /// Planted light cycles are the MWC when the background is heavy.
    fn planted_cycles_are_minimum(seed in 0u64..10_000, n in 10usize..30, len in 3usize..6) {
        let (g, cycle) = planted_cycle(
            n, 2 * n, len, 1,
            Orientation::Undirected,
            WeightRange::uniform(10 * n as u64, 20 * n as u64),
            seed,
        );
        let m = mwc_undirected_exact(&g).expect("planted cycle exists");
        prop_assert_eq!(m.weight, len as u64);
        prop_assert_eq!(CycleWitness::new(cycle).validate(&g), Ok(len as u64));
    }

    /// Reversing a directed graph preserves its MWC weight.
    fn reversal_preserves_mwc(seed in 0u64..10_000, n in 4usize..20, extra in 0usize..40) {
        let g = connected_gnm(n, extra, Orientation::Directed, WeightRange::uniform(1, 9), seed);
        let a = mwc_directed_exact(&g).map(|m| m.weight);
        let b = mwc_directed_exact(&g.reversed()).map(|m| m.weight);
        prop_assert_eq!(a, b);
    }
}

#[test]
fn grid_girth_is_four() {
    for (r, c) in [(2usize, 2usize), (3, 5), (6, 4)] {
        let g = grid(r, c, Orientation::Undirected, WeightRange::unit(), 0);
        if r >= 2 && c >= 2 {
            assert_eq!(girth_exact(&g).unwrap().weight, 4);
        }
    }
}

#[test]
fn diameter_of_barbell_spans_bridge() {
    let g = barbell(5, 7, WeightRange::unit(), 1);
    let d = g.undirected_diameter().unwrap();
    assert!((8..=12).contains(&d), "barbell diameter {d}");
}
