//! Tier-1 regression check on the theoretical round bounds.
//!
//! Every instrumented entry point registers its paper bound with
//! `mwc_trace::check_bound`; this test runs the full algorithm surface on
//! three graph families (random connected G(n,m), grids, rings with
//! chords) inside an in-memory trace session and asserts that every
//! recorded audit respects `measured ≤ bound × MWC_TRACE_BOUND_FACTOR`.
//!
//! In debug builds `check_bound` itself asserts, so this file's value is
//! (a) release-mode coverage and (b) pinning that the entry points
//! actually *emit* audits — a silently-deleted `check_bound` call would
//! otherwise pass every test.

use mwc_core::{
    approx_girth, approx_girth_parts, approx_mwc_directed_weighted, approx_mwc_undirected_weighted,
    exact_girth, exact_mwc, fundamental_cycle_basis, k_source_approx_sssp, k_source_bfs,
    shortest_cycle_within, sssp_bfs, sssp_exact_weighted, two_approx_directed_mwc, Params,
};
use mwc_graph::generators::{connected_gnm, grid, ring_with_chords, WeightRange};
use mwc_graph::seq::Direction;
use mwc_graph::{Graph, NodeId, Orientation};
use mwc_trace::TraceSession;

/// Runs `run` under a memory trace session and asserts every audit it
/// records stays within its (slacked) bound. Returns the audit count.
fn audited(label: &str, run: impl FnOnce()) -> usize {
    let session = TraceSession::memory();
    run();
    let data = session.finish();
    let audits = data.all_audits();
    assert!(!audits.is_empty(), "{label}: no bound audits recorded");
    let factor = mwc_trace::audit::bound_factor();
    for a in &audits {
        assert!(
            a.measured_rounds as f64 <= a.bound_rounds.max(1.0) * factor,
            "{label}: {} measured {} rounds > bound {:.0} × {factor} (inputs {:?})",
            a.algorithm,
            a.measured_rounds,
            a.bound_rounds,
            a.inputs,
        );
    }
    audits.len()
}

fn sources(g: &Graph, k: usize) -> Vec<NodeId> {
    (0..g.n()).step_by((g.n() / k).max(1)).collect()
}

#[test]
fn gnm_family_respects_bounds() {
    let params = Params::lean().with_seed(42);
    let gu = connected_gnm(72, 144, Orientation::Undirected, WeightRange::unit(), 5);
    let gw = connected_gnm(
        72,
        144,
        Orientation::Undirected,
        WeightRange::uniform(1, 8),
        13,
    );
    let gd = connected_gnm(72, 216, Orientation::Directed, WeightRange::unit(), 7);
    let gdw = connected_gnm(
        72,
        216,
        Orientation::Directed,
        WeightRange::uniform(1, 8),
        11,
    );
    audited("gnm/girth", || {
        approx_girth(&gu, &params);
        approx_girth_parts(&gu, &params, true, true);
        exact_girth(&gu);
    });
    audited("gnm/weighted", || {
        approx_mwc_undirected_weighted(&gw, &params);
        approx_mwc_directed_weighted(&gdw, &params);
    });
    audited("gnm/directed", || {
        two_approx_directed_mwc(&gd, &params);
    });
    audited("gnm/ksssp", || {
        k_source_bfs(&gu, &sources(&gu, 8), Direction::Forward, &params);
        k_source_approx_sssp(&gw, &sources(&gw, 8), Direction::Forward, &params);
    });
}

#[test]
fn grid_family_respects_bounds() {
    let params = Params::lean().with_seed(42);
    let g = grid(8, 8, Orientation::Undirected, WeightRange::unit(), 0);
    let gw = grid(6, 6, Orientation::Undirected, WeightRange::uniform(1, 5), 3);
    let count = audited("grid", || {
        exact_mwc(&g);
        shortest_cycle_within(&g, 12);
        fundamental_cycle_basis(&g);
        sssp_bfs(&g, 0, Direction::Forward);
        sssp_exact_weighted(&gw, 0, Direction::Forward);
        approx_girth(&g, &params);
    });
    assert!(
        count >= 6,
        "expected one audit per entry point, got {count}"
    );
}

#[test]
fn ring_family_respects_bounds() {
    let params = Params::lean().with_seed(42);
    let g = ring_with_chords(64, 16, Orientation::Undirected, WeightRange::unit(), 9);
    let gd = ring_with_chords(64, 16, Orientation::Directed, WeightRange::unit(), 17);
    audited("ring/undirected", || {
        exact_mwc(&g);
        approx_girth(&g, &params);
        k_source_bfs(&g, &sources(&g, 8), Direction::Forward, &params);
    });
    audited("ring/directed", || {
        two_approx_directed_mwc(&gd, &params);
        shortest_cycle_within(&gd, 64);
    });
}

/// Tracing must never perturb the simulation: the same run with and
/// without an active trace session produces identical ledgers.
#[test]
fn tracing_is_observation_only() {
    let params = Params::lean().with_seed(42);
    let g = connected_gnm(64, 128, Orientation::Undirected, WeightRange::unit(), 5);
    let baseline = approx_girth(&g, &params);
    let session = TraceSession::memory();
    let traced = approx_girth(&g, &params);
    let data = session.finish();
    assert!(!data.roots.is_empty());
    assert_eq!(baseline.ledger.rounds, traced.ledger.rounds);
    assert_eq!(baseline.ledger.words, traced.ledger.words);
    assert_eq!(baseline.weight, traced.weight);
}
