//! ALGORITHMS — criterion wall-clock benchmarks of the end-to-end MWC
//! algorithms at fixed sizes (round-complexity sweeps live in the
//! `src/bin/table1_*` binaries; these measure simulator throughput).

use criterion::{criterion_group, criterion_main, Criterion};
use mwc_core::{approx_girth, exact_mwc, two_approx_directed_mwc, Params};
use mwc_graph::generators::{connected_gnm, WeightRange};
use mwc_graph::Orientation;
use std::hint::black_box;

fn bench_exact(c: &mut Criterion) {
    let g = connected_gnm(256, 768, Orientation::Directed, WeightRange::unit(), 1);
    c.bench_function("mwc/exact_directed_256", |b| {
        b.iter(|| black_box(exact_mwc(&g).weight))
    });
    let gu = connected_gnm(256, 512, Orientation::Undirected, WeightRange::unit(), 2);
    c.bench_function("mwc/exact_girth_256", |b| {
        b.iter(|| black_box(exact_mwc(&gu).weight))
    });
}

fn bench_approx(c: &mut Criterion) {
    let params = Params::lean().with_seed(9);
    let g = connected_gnm(256, 768, Orientation::Directed, WeightRange::unit(), 3);
    c.bench_function("mwc/two_approx_directed_256", |b| {
        b.iter(|| black_box(two_approx_directed_mwc(&g, &params).weight))
    });
    let gu = connected_gnm(512, 1024, Orientation::Undirected, WeightRange::unit(), 4);
    c.bench_function("mwc/approx_girth_512", |b| {
        b.iter(|| black_box(approx_girth(&gu, &params).weight))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_exact, bench_approx
}
criterion_main!(benches);
