//! Event-driven **node programs**: write a CONGEST algorithm as strictly
//! node-local state machines and let the engine run them.
//!
//! The algorithm crates in this workspace orchestrate node states from a
//! global loop (equivalent information flow, much less boilerplate — see
//! DESIGN.md §2). This module provides the stricter discipline for
//! when it matters: a [`NodeProgram`] only ever sees its own id, its
//! neighbor list and its incoming messages, so locality is enforced by
//! construction. The built-in primitives have node-program twins here
//! ([`FloodMax`], [`BfsTreeProgram`]) that the tests cross-validate
//! against the orchestrated versions — pinning down that both styles
//! agree on results *and* round counts.
//!
//! # Examples
//!
//! Leader election by flooding the maximum id:
//!
//! ```
//! use mwc_congest::program::{run_programs, FloodMax};
//! use mwc_graph::generators::{connected_gnm, WeightRange};
//! use mwc_graph::Orientation;
//! use mwc_congest::Ledger;
//!
//! let g = connected_gnm(32, 48, Orientation::Undirected, WeightRange::unit(), 1);
//! let mut ledger = Ledger::new();
//! let nodes = run_programs(&g, |v| FloodMax::new(v), 10_000, &mut ledger);
//! assert!(nodes.iter().all(|p| p.leader() == 31));
//! ```

use crate::engine::{Network, RoundOutput};
use crate::ledger::Ledger;
use mwc_graph::{Graph, NodeId};

/// What a node program can do in response to an event.
#[derive(Clone, Debug)]
pub enum Action<M> {
    /// Send `msg` (`words` words) to neighbor `to`.
    Send {
        /// Recipient (must be a neighbor).
        to: NodeId,
        /// The message.
        msg: M,
        /// Bandwidth cost in words (≥ 1).
        words: u64,
    },
    /// Request a wakeup at the given (future) round.
    WakeAt(u64),
}

/// The node-local view handed to every callback: nothing global in here.
#[derive(Clone, Debug)]
pub struct NodeCtx {
    /// This node's identifier.
    pub id: NodeId,
    /// Communication neighbors (the undirected support).
    pub neighbors: Vec<NodeId>,
    /// Total node count (ids are `0..n`, known per the CONGEST model).
    pub n: usize,
    /// The current round.
    pub round: u64,
}

/// A strictly node-local CONGEST algorithm.
pub trait NodeProgram {
    /// Message type exchanged with neighbors.
    type Msg;

    /// Called once before round 1.
    fn init(&mut self, ctx: &NodeCtx) -> Vec<Action<Self::Msg>>;

    /// Called when a message arrives.
    fn on_receive(&mut self, ctx: &NodeCtx, from: NodeId, msg: Self::Msg)
        -> Vec<Action<Self::Msg>>;

    /// Called when a requested wakeup fires. Default: do nothing.
    fn on_wakeup(&mut self, ctx: &NodeCtx) -> Vec<Action<Self::Msg>> {
        let _ = ctx;
        Vec::new()
    }
}

/// Runs one program instance per node until the network is quiet or
/// `max_rounds` elapse, charging the rounds to `ledger`.
///
/// # Panics
///
/// Panics if a program sends to a non-neighbor (locality violation) or
/// the round budget is exhausted with traffic still pending.
pub fn run_programs<P, F>(g: &Graph, mut make: F, max_rounds: u64, ledger: &mut Ledger) -> Vec<P>
where
    P: NodeProgram,
    P::Msg: Send,
    F: FnMut(NodeId) -> P,
{
    let _span = mwc_trace::span("program/run");
    let n = g.n();
    let mut net: Network<P::Msg> = Network::new_auto(g);
    let ctxs: Vec<NodeCtx> = (0..n)
        .map(|v| NodeCtx {
            id: v,
            neighbors: g.comm_neighbors(v),
            n,
            round: 0,
        })
        .collect();
    let mut programs: Vec<P> = (0..n).map(&mut make).collect();

    let apply = |net: &mut Network<P::Msg>, v: NodeId, actions: Vec<Action<P::Msg>>| {
        for a in actions {
            match a {
                Action::Send { to, msg, words } => net
                    .send(v, to, msg, words)
                    .expect("node programs may only send to neighbors"),
                Action::WakeAt(round) => net.schedule_wakeup(round, v),
            }
        }
    };

    for v in 0..n {
        let actions = programs[v].init(&ctxs[v]);
        apply(&mut net, v, actions);
    }
    let mut out = RoundOutput::default();
    while net.step_bulk_into(&mut out) {
        assert!(
            net.round() <= max_rounds,
            "round budget exhausted at {}",
            net.round()
        );
        let round = net.round();
        for d in out.deliveries.drain(..) {
            let mut ctx = ctxs[d.to].clone();
            ctx.round = round;
            let actions = programs[d.to].on_receive(&ctx, d.from, d.payload);
            apply(&mut net, d.to, actions);
        }
        for v in out.wakeups.drain(..) {
            let mut ctx = ctxs[v].clone();
            ctx.round = round;
            let actions = programs[v].on_wakeup(&ctx);
            apply(&mut net, v, actions);
        }
    }
    ledger.absorb("node programs", &net);
    mwc_trace::check_bound(
        "congest/node_programs",
        mwc_trace::BoundInputs::n(n).h(max_rounds),
        net.round(),
        crate::bounds::node_programs,
    );
    programs
}

/// Leader election by flooding the maximum id: converges in `ecc ≤ D`
/// rounds with one word per improvement.
#[derive(Clone, Debug)]
pub struct FloodMax {
    best: NodeId,
}

impl FloodMax {
    /// A node that initially knows only itself.
    pub fn new(id: NodeId) -> Self {
        FloodMax { best: id }
    }

    /// The elected leader (valid after the run quiesces).
    pub fn leader(&self) -> NodeId {
        self.best
    }
}

impl NodeProgram for FloodMax {
    type Msg = NodeId;

    fn init(&mut self, ctx: &NodeCtx) -> Vec<Action<NodeId>> {
        ctx.neighbors
            .iter()
            .map(|&to| Action::Send {
                to,
                msg: self.best,
                words: 1,
            })
            .collect()
    }

    fn on_receive(&mut self, ctx: &NodeCtx, _from: NodeId, msg: NodeId) -> Vec<Action<NodeId>> {
        if msg > self.best {
            self.best = msg;
            ctx.neighbors
                .iter()
                .map(|&to| Action::Send { to, msg, words: 1 })
                .collect()
        } else {
            Vec::new()
        }
    }
}

/// Distributed BFS tree rooted at a designated node: each node adopts the
/// first sender as parent — the node-program twin of
/// [`BfsTree::build`](crate::BfsTree::build).
#[derive(Clone, Debug)]
pub struct BfsTreeProgram {
    root: NodeId,
    /// Adopted parent (None at the root or before being reached).
    pub parent: Option<NodeId>,
    /// Depth below the root (`u64::MAX` before being reached).
    pub depth: u64,
}

impl BfsTreeProgram {
    /// A node participating in a BFS-tree build rooted at `root`.
    pub fn new(id: NodeId, root: NodeId) -> Self {
        BfsTreeProgram {
            root,
            parent: None,
            depth: if id == root { 0 } else { u64::MAX },
        }
    }
}

impl NodeProgram for BfsTreeProgram {
    type Msg = u64; // sender's depth

    fn init(&mut self, ctx: &NodeCtx) -> Vec<Action<u64>> {
        if ctx.id == self.root {
            ctx.neighbors
                .iter()
                .map(|&to| Action::Send {
                    to,
                    msg: 0,
                    words: 1,
                })
                .collect()
        } else {
            Vec::new()
        }
    }

    fn on_receive(&mut self, ctx: &NodeCtx, from: NodeId, sender_depth: u64) -> Vec<Action<u64>> {
        if self.depth == u64::MAX {
            self.depth = sender_depth + 1;
            self.parent = Some(from);
            ctx.neighbors
                .iter()
                .filter(|&&to| to != from)
                .map(|&to| Action::Send {
                    to,
                    msg: self.depth,
                    words: 1,
                })
                .collect()
        } else {
            Vec::new()
        }
    }
}

/// A node that waits `delay` rounds (via wakeup), then floods one token —
/// exercises the wakeup path used by Algorithm 3's random delays.
#[derive(Clone, Debug)]
pub struct DelayedFlood {
    delay: u64,
    /// Tokens seen, by origin.
    pub seen: Vec<NodeId>,
}

impl DelayedFlood {
    /// A node that will start flooding its own token at round `delay`.
    pub fn new(delay: u64) -> Self {
        DelayedFlood {
            delay: delay.max(1),
            seen: Vec::new(),
        }
    }
}

impl NodeProgram for DelayedFlood {
    type Msg = NodeId;

    fn init(&mut self, _ctx: &NodeCtx) -> Vec<Action<NodeId>> {
        vec![Action::WakeAt(self.delay)]
    }

    fn on_wakeup(&mut self, ctx: &NodeCtx) -> Vec<Action<NodeId>> {
        self.seen.push(ctx.id);
        ctx.neighbors
            .iter()
            .map(|&to| Action::Send {
                to,
                msg: ctx.id,
                words: 1,
            })
            .collect()
    }

    fn on_receive(&mut self, ctx: &NodeCtx, _from: NodeId, origin: NodeId) -> Vec<Action<NodeId>> {
        if self.seen.contains(&origin) {
            return Vec::new();
        }
        self.seen.push(origin);
        ctx.neighbors
            .iter()
            .map(|&to| Action::Send {
                to,
                msg: origin,
                words: 1,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::BfsTree;
    use mwc_graph::generators::{connected_gnm, grid, WeightRange};
    use mwc_graph::seq::{bfs, Direction};
    use mwc_graph::Orientation;

    #[test]
    fn floodmax_elects_max_id_within_diameter() {
        let g = grid(8, 8, Orientation::Undirected, WeightRange::unit(), 0);
        let mut ledger = Ledger::new();
        let nodes = run_programs(&g, FloodMax::new, 10_000, &mut ledger);
        assert!(nodes.iter().all(|p| p.leader() == 63));
        // The max-id wave travels one hop per round but can queue behind
        // earlier (stale) improvement messages on a link, so the bound is
        // a small multiple of D rather than D+1.
        let d = g.undirected_diameter().unwrap() as u64;
        assert!(
            ledger.rounds <= 2 * (d + 1),
            "{} rounds > 2(D+1) = {}",
            ledger.rounds,
            2 * (d + 1)
        );
    }

    #[test]
    fn bfs_program_matches_orchestrated_tree() {
        let g = connected_gnm(60, 110, Orientation::Undirected, WeightRange::unit(), 9);
        let root = 17;
        let mut pl = Ledger::new();
        let nodes = run_programs(&g, |v| BfsTreeProgram::new(v, root), 10_000, &mut pl);
        let mut ol = Ledger::new();
        let tree = BfsTree::build(&g, root, &mut ol);
        let reference = bfs(&g, root, Direction::Forward);
        for v in 0..g.n() {
            assert_eq!(nodes[v].depth as usize, reference.dist[v], "depth of {v}");
            assert_eq!(nodes[v].depth as usize, tree.depth[v]);
            if let Some(p) = nodes[v].parent {
                assert!(g.has_edge(p, v) || g.has_edge(v, p));
            } else {
                assert_eq!(v, root);
            }
        }
        // Both styles pay the same rounds (the eccentricity).
        assert_eq!(pl.rounds, ol.rounds, "node-program vs orchestrated rounds");
    }

    #[test]
    fn delayed_flood_wakeups_fire_and_tokens_spread() {
        let g = grid(4, 4, Orientation::Undirected, WeightRange::unit(), 0);
        let mut ledger = Ledger::new();
        let nodes = run_programs(
            &g,
            |v| DelayedFlood::new((v as u64 % 5) + 1),
            10_000,
            &mut ledger,
        );
        // Every node eventually sees every token.
        for p in &nodes {
            assert_eq!(p.seen.len(), 16);
        }
        // Latest start is round 5; waves spread ≤ D = 6 hops each but can
        // queue behind one another on shared links.
        assert!(ledger.rounds <= 5 + 4 * 6, "{} rounds", ledger.rounds);
    }

    #[test]
    #[should_panic(expected = "only send to neighbors")]
    fn locality_is_enforced() {
        struct Cheater;
        impl NodeProgram for Cheater {
            type Msg = ();
            fn init(&mut self, ctx: &NodeCtx) -> Vec<Action<()>> {
                if ctx.id == 0 {
                    // Node 0 tries to message node 3 directly on a path
                    // graph — not a neighbor.
                    vec![Action::Send {
                        to: 3,
                        msg: (),
                        words: 1,
                    }]
                } else {
                    Vec::new()
                }
            }
            fn on_receive(&mut self, _: &NodeCtx, _: NodeId, _: ()) -> Vec<Action<()>> {
                Vec::new()
            }
        }
        let g = Graph::from_edges(
            4,
            Orientation::Undirected,
            [(0, 1, 1), (1, 2, 1), (2, 3, 1)],
        )
        .unwrap();
        let mut ledger = Ledger::new();
        let _ = run_programs(&g, |_| Cheater, 100, &mut ledger);
    }

    #[test]
    #[should_panic(expected = "round budget exhausted")]
    fn runaway_programs_hit_the_budget() {
        struct PingPong;
        impl NodeProgram for PingPong {
            type Msg = ();
            fn init(&mut self, ctx: &NodeCtx) -> Vec<Action<()>> {
                ctx.neighbors
                    .iter()
                    .map(|&to| Action::Send {
                        to,
                        msg: (),
                        words: 1,
                    })
                    .collect()
            }
            fn on_receive(&mut self, _: &NodeCtx, from: NodeId, _: ()) -> Vec<Action<()>> {
                vec![Action::Send {
                    to: from,
                    msg: (),
                    words: 1,
                }]
            }
        }
        let g = Graph::from_edges(2, Orientation::Undirected, [(0, 1, 1)]).unwrap();
        let mut ledger = Ledger::new();
        let _ = run_programs(&g, |_| PingPong, 50, &mut ledger);
    }
}
