//! End-to-end guarantees for the span profiler and its export surface:
//!
//! 1. `trace_report`'s Chrome Trace Event Format export
//!    (`results/trace.perfetto.json`) validates structurally and is
//!    **byte-identical across processes** once the wall-clock track and
//!    wall args are normalized — allocation args are deliberately NOT
//!    normalized, pinning cross-process allocation determinism in the
//!    default sequential configuration.
//! 2. The v6 run record is byte-identical across processes with only
//!    `wall_ns`/`wall_ms`/`peak_alloc_bytes` zeroed (same alloc
//!    determinism pin), and its span-level wall/alloc totals reconcile
//!    with the export's per-event args.
//! 3. `trace_diff` triage: an injected per-span regression makes the gate
//!    exit nonzero with that span ranked first in `results/triage.json`,
//!    complete with the `perf_gate.sh --bin` rerun and `mwc_replay
//!    bisect` hints; `--verbose` prints the ranking even on success;
//!    `--only` restricts pairing so single-bin gating sees no spurious
//!    unpaired-baseline errors.

use mwc_bench::report::Json;
use mwc_trace::{validate_chrome_trace, RunRecord, TraceSession};
use std::path::{Path, PathBuf};

fn scratch(case: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mwc-export-determinism-{case}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Runs `trace_report` in a scratch cwd; returns the Chrome trace export
/// and the rendered run record.
fn run_trace_report(case: &str) -> (String, String) {
    let dir = scratch(case);
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_trace_report"))
        .arg("96")
        .current_dir(&dir)
        .output()
        .expect("trace_report runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let trace = std::fs::read_to_string(dir.join("results/trace.perfetto.json")).unwrap();
    let record =
        std::fs::read_to_string(dir.join("results/run_records/trace_report.json")).unwrap();
    (trace, record)
}

/// Drops the wall-clock track (pid 2 — timestamps are host wall-clock)
/// and zeroes the `wall_ns`/`total_wall_ns` args on the remaining
/// simulated-rounds track. Everything else — event order, ts/dur in
/// simulated rounds, names, alloc args — must be byte-deterministic.
fn normalize_chrome(text: &str) -> String {
    let mut doc = Json::parse(text).expect("export parses");
    let Json::Obj(pairs) = &mut doc else {
        panic!("export is an object")
    };
    for (k, v) in pairs {
        if k != "traceEvents" {
            continue;
        }
        let Json::Arr(events) = v else {
            panic!("traceEvents is an array")
        };
        events.retain(|e| e.get("pid").and_then(Json::as_u64) != Some(2));
        for e in events {
            let Json::Obj(fields) = e else { continue };
            for (fk, fv) in fields {
                if fk != "args" {
                    continue;
                }
                let Json::Obj(args) = fv else { continue };
                for (ak, av) in args {
                    if ak == "wall_ns" || ak == "total_wall_ns" {
                        *av = Json::U64(0);
                    }
                }
            }
        }
    }
    doc.render_pretty()
}

/// Zeroes the host-time lines of a rendered run record (`wall_ns`,
/// `wall_ms`, `peak_alloc_bytes` — peak is sampled from a process-global
/// high-water mark, so allocator warmup outside the traced region can
/// shift it). `alloc_bytes`/`alloc_count` are left alone on purpose.
fn normalize_record(text: &str) -> String {
    text.lines()
        .map(|l| {
            let trimmed = l.trim_start();
            let field = ["\"wall_ns\":", "\"wall_ms\":", "\"peak_alloc_bytes\":"]
                .into_iter()
                .find(|f| trimmed.starts_with(f));
            match field {
                Some(f) => {
                    let indent = &l[..l.len() - trimmed.len()];
                    let comma = if l.trim_end().ends_with(',') { "," } else { "" };
                    format!("{indent}{f} 0{comma}")
                }
                None => l.to_string(),
            }
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// Sums one numeric arg over the B events of the simulated-rounds track.
fn sum_arg(text: &str, arg: &str) -> u64 {
    let doc = Json::parse(text).unwrap();
    let Some(Json::Arr(events)) = doc.get("traceEvents") else {
        panic!("traceEvents missing")
    };
    events
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("B"))
        .filter(|e| e.get("pid").and_then(Json::as_u64) == Some(1))
        .map(|e| {
            e.get("args")
                .and_then(|a| a.get(arg))
                .and_then(Json::as_u64)
                .unwrap_or(0)
        })
        .sum()
}

#[test]
fn chrome_export_and_v6_record_are_deterministic_across_processes() {
    let (trace_a, rec_a) = run_trace_report("run-a");
    let (trace_b, rec_b) = run_trace_report("run-b");

    let summary = validate_chrome_trace(&trace_a).expect("export validates");
    assert!(summary.spans > 0, "export should carry spans");
    assert_eq!(
        summary.tracks, 2,
        "profiled run should emit the rounds AND wall tracks"
    );
    validate_chrome_trace(&trace_b).expect("second export validates");

    assert_eq!(
        normalize_chrome(&trace_a),
        normalize_chrome(&trace_b),
        "Chrome export differs across processes beyond the wall-clock track"
    );
    assert_eq!(
        normalize_record(&rec_a),
        normalize_record(&rec_b),
        "v6 record differs across processes beyond wall/peak fields — \
         allocation profiling lost determinism"
    );

    // The record really is v6 with live profile data.
    let record = RunRecord::parse(&rec_a).unwrap();
    assert!(record.alloc_bytes > 0, "profiled run should allocate");
    assert!(record.alloc_count > 0);
    assert!(record.spans.iter().any(|s| s.wall_ns > 0));
    let span_alloc: u64 = record.spans.iter().map(|s| s.alloc_bytes).sum();
    assert_eq!(span_alloc, record.alloc_bytes, "span alloc must reconcile");

    // ... and the export's per-event args reconcile with it exactly.
    assert_eq!(sum_arg(&trace_a, "rounds"), record.rounds);
    assert_eq!(sum_arg(&trace_a, "alloc_bytes"), record.alloc_bytes);
    assert_eq!(sum_arg(&trace_a, "alloc_count"), record.alloc_count);
    let span_wall: u64 = record.spans.iter().map(|s| s.wall_ns).sum();
    assert_eq!(sum_arg(&trace_a, "wall_ns"), span_wall);
}

/// Builds a rendered run record whose `alg > hot` span carries
/// `40 + extra` simulated rounds.
fn probe_record(extra: u64) -> String {
    let session = TraceSession::memory();
    {
        let _a = mwc_trace::span("alg");
        mwc_trace::add_cost(100, 10, 5);
        {
            let _h = mwc_trace::span("hot");
            mwc_trace::add_cost(40 + extra, 4, 2);
        }
    }
    let data = session.finish();
    RunRecord::from_trace("probe", Vec::<(String, String)>::new(), &data).render()
}

/// Writes `base`/`fresh` record dirs under a scratch cwd and runs
/// `trace_diff` there with `extra_args`; returns (exit code, stdout,
/// triage.json text).
fn run_trace_diff(
    dir: &Path,
    base: &[(&str, &str)],
    fresh: &[(&str, &str)],
    extra_args: &[&str],
) -> (i32, String, String) {
    for (sub, records) in [("base", base), ("fresh", fresh)] {
        let d = dir.join(sub);
        std::fs::create_dir_all(&d).unwrap();
        for (name, text) in records {
            std::fs::write(d.join(format!("{name}.json")), text).unwrap();
        }
    }
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_trace_diff"))
        .args(extra_args)
        .arg("fresh")
        .arg("base")
        .current_dir(dir)
        .output()
        .expect("trace_diff runs");
    let triage = std::fs::read_to_string(dir.join("results/triage.json")).unwrap_or_default();
    (
        out.status.code().expect("exit code"),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        triage,
    )
}

#[test]
fn injected_span_regression_is_ranked_first_in_triage() {
    let dir = scratch("triage-regression");
    let (code, stdout, triage) = run_trace_diff(
        &dir,
        &[("probe", &probe_record(0))],
        &[("probe", &probe_record(20))],
        &[],
    );
    assert_eq!(code, 1, "injected regression must fail the gate:\n{stdout}");
    assert!(
        stdout.contains("== triage"),
        "regression must print the triage section:\n{stdout}"
    );
    assert!(stdout.contains("scripts/perf_gate.sh --bin probe"));
    assert!(stdout.contains("mwc_replay -- bisect"));

    let doc = Json::parse(&triage).expect("triage.json parses");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some("mwc-triage/v1")
    );
    assert_eq!(doc.get("regressed"), Some(&Json::Bool(true)));
    let Some(Json::Arr(entries)) = doc.get("entries") else {
        panic!("triage entries missing")
    };
    let first = entries.first().expect("ranking is non-empty");
    assert_eq!(first.get("record").and_then(Json::as_str), Some("probe"));
    assert_eq!(first.get("path").and_then(Json::as_str), Some("alg > hot"));
    let worst = doc.get("worst").expect("worst offender present");
    assert_eq!(
        worst.get("rerun").and_then(Json::as_str),
        Some("scripts/perf_gate.sh --bin probe")
    );
    assert!(worst
        .get("bisect")
        .and_then(Json::as_str)
        .unwrap()
        .contains("mwc_replay -- bisect"));
}

#[test]
fn verbose_prints_triage_even_without_regression() {
    // Fresh is an *improvement*: the gate passes, but the movement still
    // ranks — visible only with --verbose, while triage.json always lands.
    let dir = scratch("triage-verbose");
    let (code, stdout, triage) = run_trace_diff(
        &dir,
        &[("probe", &probe_record(20))],
        &[("probe", &probe_record(0))],
        &["--verbose", "--top=3"],
    );
    assert_eq!(code, 0, "improvements never fail:\n{stdout}");
    assert!(stdout.contains("== triage"), "--verbose prints triage");

    let dir = scratch("triage-quiet");
    let (code, stdout, triage_quiet) = run_trace_diff(
        &dir,
        &[("probe", &probe_record(20))],
        &[("probe", &probe_record(0))],
        &["--top=3"],
    );
    assert_eq!(code, 0);
    assert!(
        !stdout.contains("== triage"),
        "no triage section without --verbose on success:\n{stdout}"
    );
    // The artifact is written either way, with the same ranking.
    assert_eq!(triage, triage_quiet);
    let doc = Json::parse(&triage_quiet).unwrap();
    assert_eq!(doc.get("regressed"), Some(&Json::Bool(false)));
    let Some(Json::Arr(entries)) = doc.get("entries") else {
        panic!("triage entries missing")
    };
    assert!(
        !entries.is_empty(),
        "improvement still ranks in triage.json"
    );
}

#[test]
fn only_flag_restricts_pairing_to_one_record() {
    // An orphan baseline is a config error (exit 2) for a full gate run,
    // but --only=probe scopes the diff to the one record that ran.
    let dir = scratch("only-full");
    let (code, _, _) = run_trace_diff(
        &dir,
        &[("probe", &probe_record(0)), ("orphan", &probe_record(0))],
        &[("probe", &probe_record(0))],
        &[],
    );
    assert_eq!(code, 2, "orphan baseline must be a config error");

    let dir = scratch("only-scoped");
    let (code, stdout, _) = run_trace_diff(
        &dir,
        &[("probe", &probe_record(0)), ("orphan", &probe_record(0))],
        &[("probe", &probe_record(0))],
        &["--only=probe"],
    );
    assert_eq!(code, 0, "--only must ignore the orphan baseline:\n{stdout}");
    assert!(stdout.contains("1 record pair(s)"));

    let dir = scratch("only-missing");
    let (code, _, _) = run_trace_diff(
        &dir,
        &[("probe", &probe_record(0))],
        &[("probe", &probe_record(0))],
        &["--only=nonexistent"],
    );
    assert_eq!(code, 2, "--only with no match is a config error");
}
