//! Integration of the lower-bound families with the distributed
//! algorithms: the reductions must be decided correctly by exact *and*
//! (where the gap allows) approximate algorithms, and the two-party
//! accounting must be internally consistent.

use congest_mwc::core::{approx_girth, exact_mwc, two_approx_directed_mwc, Params};
use congest_mwc::graph::Orientation;
use congest_mwc::lowerbounds::{
    directed_gadget, sarma_unweighted_girth, sarma_weighted, undirected_weighted_gadget,
    Disjointness, SarmaParams,
};

#[test]
fn directed_gadget_decided_even_by_two_approx() {
    // The gadget's 4-vs-8 gap means a strictly-better-than-2 output is not
    // required: any reported value < 8 implies a 4-cycle exists. Our
    // 2-approx reports the weight of a real cycle, which on a yes-instance
    // can be 4 or 8; only the *exact* value decides (2−ε). What every
    // correct algorithm must satisfy: on no-instances NEVER report < 8.
    for seed in 0..4 {
        let q = 6;
        let no = Disjointness::random_disjoint(q * q, 0.3, seed);
        let lb = directed_gadget(q, &no);
        let out = two_approx_directed_mwc(&lb.graph, &Params::new().with_seed(seed));
        out.assert_valid(&lb.graph);
        assert!(
            !lb.decide(out.weight),
            "2-approx fabricated a short cycle on a disjoint instance"
        );
    }
}

#[test]
fn exact_decides_both_gadgets() {
    for seed in 0..3 {
        let q = 7;
        for intersecting in [true, false] {
            let inst = if intersecting {
                Disjointness::random_intersecting(q * q, 0.3, seed)
            } else {
                Disjointness::random_disjoint(q * q, 0.3, seed)
            };
            let lb = directed_gadget(q, &inst);
            assert_eq!(lb.decide(exact_mwc(&lb.graph).weight), intersecting);
            let lb = undirected_weighted_gadget(q, 0.5, &inst);
            assert_eq!(lb.decide(exact_mwc(&lb.graph).weight), intersecting);
        }
    }
}

#[test]
fn alpha_families_decided_by_matching_algorithms() {
    let p = SarmaParams {
        gamma: 6,
        ell: 6,
        alpha: 2.0,
    };
    for seed in 0..3 {
        for intersecting in [true, false] {
            let inst = if intersecting {
                Disjointness::random_intersecting(6, 0.4, seed)
            } else {
                Disjointness::random_disjoint(6, 0.4, seed)
            };
            // Weighted families via exact MWC.
            for orientation in [Orientation::Directed, Orientation::Undirected] {
                let lb = sarma_weighted(p, orientation, &inst);
                assert_eq!(
                    lb.decide(exact_mwc(&lb.graph).weight),
                    intersecting,
                    "{orientation} weighted family"
                );
            }
            // Girth family via the (2 − 1/g)-approximation (α = 2 > 2 − 1/g).
            let lb = sarma_unweighted_girth(p, &inst);
            let out = approx_girth(&lb.graph, &Params::new().with_seed(seed));
            assert_eq!(lb.decide(out.weight), intersecting, "girth family");
        }
    }
}

#[test]
fn communication_accounting_is_consistent() {
    let q = 12;
    let inst = Disjointness::random_intersecting(q * q, 0.4, 1);
    let lb = directed_gadget(q, &inst);
    let out = exact_mwc(&lb.graph);
    let word_bits = 9;
    let report = lb.report(&out.ledger, word_bits);
    // Identity: bits over the cut ≤ rounds × 2 directions × cut × bits/word.
    assert!(report.cut_bits() <= report.rounds * 2 * report.cut_edges as u64 * word_bits);
    // The run really did move information across (it had to).
    assert!(report.cut_words > 0);
    // Cut is the 2q fixed matching links.
    assert_eq!(report.cut_edges, 2 * q);
}

#[test]
fn gadget_rounds_grow_with_n_at_constant_diameter() {
    let rounds = |q: usize| {
        let inst = Disjointness::random_intersecting(q * q, 0.3, 3);
        let lb = directed_gadget(q, &inst);
        assert!(lb.graph.undirected_diameter().unwrap() <= 6);
        exact_mwc(&lb.graph).ledger.rounds
    };
    let (r8, r32) = (rounds(8), rounds(32));
    assert!(
        r32 >= 2 * r8,
        "rounds must grow with n on the gadget despite constant D: {r8} → {r32}"
    );
}

#[test]
fn four_cycle_detection_on_the_gadget() {
    // §1.3's corollary: directed 4-cycle detection inherits the Ω̃(n)
    // bound. The gadget is its hard instance: a 4-cycle exists iff the
    // sets intersect, and the bounded-length detector must agree.
    use congest_mwc::core::{has_cycle_within, shortest_cycle_within};
    let q = 8;
    let yes = Disjointness::random_intersecting(q * q, 0.3, 5);
    let lb = directed_gadget(q, &yes);
    let out = shortest_cycle_within(&lb.graph, 4);
    assert_eq!(out.weight, Some(4));

    let no = Disjointness::random_disjoint(q * q, 0.3, 5);
    let lb = directed_gadget(q, &no);
    assert!(!has_cycle_within(&lb.graph, 4));
    assert!(!has_cycle_within(&lb.graph, 7)); // nothing below 8 either
}
