//! Degenerate and boundary inputs for every public algorithm: tiny
//! graphs, single edges, smallest legal cycles. APIs must return sound
//! answers (or panic with their documented message), never crash with
//! index errors.

use congest_mwc::core::{
    approx_girth, approx_mwc_directed_weighted, approx_mwc_undirected_weighted, distributed_apsp,
    exact_mwc, has_cycle_within, k_source_bfs, shortest_cycle_within, sssp_bfs,
    two_approx_directed_mwc, Params,
};
use congest_mwc::graph::seq::Direction;
use congest_mwc::graph::{Graph, Orientation};

#[test]
fn single_node_everything() {
    for orientation in [Orientation::Directed, Orientation::Undirected] {
        let g = Graph::new(1, orientation);
        let out = exact_mwc(&g);
        out.assert_valid(&g);
        assert_eq!(out.weight, None);
        assert!(!has_cycle_within(&g, 5));
        let apsp = distributed_apsp(&g);
        assert_eq!(apsp.dist(0, 0), 0);
        assert_eq!(apsp.diameter(), None);
        let s = sssp_bfs(&g, 0, Direction::Forward);
        assert_eq!(s.dist(0), 0);
        let k = k_source_bfs(&g, &[0], Direction::Forward, &Params::new());
        assert_eq!(k.get(0, 0), 0);
    }
    let g = Graph::directed(1);
    assert_eq!(two_approx_directed_mwc(&g, &Params::new()).weight, None);
    let g = Graph::undirected(1);
    assert_eq!(approx_girth(&g, &Params::new()).weight, None);
    assert_eq!(
        approx_mwc_undirected_weighted(&g, &Params::new()).weight,
        None
    );
    let g = Graph::directed(1);
    assert_eq!(
        approx_mwc_directed_weighted(&g, &Params::new()).weight,
        None
    );
}

#[test]
fn single_edge_graphs() {
    // Undirected single edge: no cycle possible.
    let g = Graph::from_edges(2, Orientation::Undirected, [(0, 1, 3)]).unwrap();
    assert_eq!(exact_mwc(&g).weight, None);
    assert_eq!(
        approx_girth(
            &Graph::from_edges(2, Orientation::Undirected, [(0, 1, 1)]).unwrap(),
            &Params::new()
        )
        .weight,
        None
    );
    assert_eq!(
        approx_mwc_undirected_weighted(&g, &Params::new()).weight,
        None
    );
    let apsp = distributed_apsp(&g);
    assert_eq!(apsp.dist(0, 1), 3);

    // Directed single edge: still no cycle.
    let g = Graph::from_edges(2, Orientation::Directed, [(0, 1, 1)]).unwrap();
    assert_eq!(exact_mwc(&g).weight, None);
    assert_eq!(two_approx_directed_mwc(&g, &Params::new()).weight, None);
    assert!(!has_cycle_within(&g, 2));
}

#[test]
fn smallest_cycles() {
    // Directed 2-cycle — the smallest directed cycle.
    let g = Graph::from_edges(2, Orientation::Directed, [(0, 1, 2), (1, 0, 5)]).unwrap();
    let out = exact_mwc(&g);
    out.assert_valid(&g);
    assert_eq!(out.weight, Some(7));
    let out = two_approx_directed_mwc(
        &Graph::from_edges(2, Orientation::Directed, [(0, 1, 1), (1, 0, 1)]).unwrap(),
        &Params::new(),
    );
    assert_eq!(out.weight, Some(2));
    let wout = approx_mwc_directed_weighted(&g, &Params::new());
    wout.assert_valid(&g);
    let w = wout.weight.expect("2-cycle exists");
    assert!((7..=16).contains(&w));

    // Undirected triangle — the smallest undirected cycle.
    let g = Graph::from_edges(
        3,
        Orientation::Undirected,
        [(0, 1, 1), (1, 2, 1), (2, 0, 1)],
    )
    .unwrap();
    assert_eq!(exact_mwc(&g).weight, Some(3));
    assert_eq!(approx_girth(&g, &Params::new()).weight, Some(3));
    assert_eq!(shortest_cycle_within(&g, 3).weight, Some(3));
}

#[test]
fn zero_weight_edges_in_exact_paths() {
    // Exact algorithms must handle w = 0 (the paper allows {0, …, W});
    // only scaling-based approximations require w ≥ 1.
    let g = Graph::from_edges(
        4,
        Orientation::Directed,
        [(0, 1, 0), (1, 2, 0), (2, 0, 4), (2, 3, 1), (3, 0, 1)],
    )
    .unwrap();
    let out = exact_mwc(&g);
    out.assert_valid(&g);
    assert_eq!(out.weight, Some(2)); // 0 + 0 + 1 + 1 around via node 3
    let apsp = distributed_apsp(&g);
    // Zero-weight edges take a round to cross but add nothing to the
    // distance: announcements carry the true weighted candidate.
    assert_eq!(apsp.dist(0, 2), 0);
}

#[test]
fn two_node_k_source() {
    let g = Graph::from_edges(2, Orientation::Undirected, [(0, 1, 1)]).unwrap();
    let out = k_source_bfs(&g, &[0, 1], Direction::Forward, &Params::new());
    assert_eq!(out.get(0, 1), 1);
    assert_eq!(out.get(1, 0), 1);
    assert_eq!(out.path_row(0, 1), Some(vec![0, 1]));
}

#[test]
fn self_loop_and_duplicate_rejection_surface_errors() {
    let mut g = Graph::directed(2);
    assert!(g.add_edge(1, 1, 1).is_err());
    g.add_edge(0, 1, 1).unwrap();
    assert!(g.add_edge(0, 1, 9).is_err());
    // The graph is still usable after rejected mutations.
    g.add_edge(1, 0, 1).unwrap();
    assert_eq!(exact_mwc(&g).weight, Some(2));
}

#[test]
fn detection_q_equals_minimum_length() {
    let g = Graph::from_edges(2, Orientation::Directed, [(0, 1, 1), (1, 0, 1)]).unwrap();
    assert!(has_cycle_within(&g, 2));
    let g = Graph::from_edges(
        3,
        Orientation::Undirected,
        [(0, 1, 1), (1, 2, 1), (2, 0, 1)],
    )
    .unwrap();
    assert!(has_cycle_within(&g, 3));
}
