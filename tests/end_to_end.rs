//! End-to-end integration: every distributed algorithm against the
//! sequential oracles and against each other, across shared graph
//! families, with witness validation on every outcome.

use congest_mwc::core::{
    approx_girth, approx_mwc_directed_weighted, approx_mwc_undirected_weighted, exact_mwc,
    two_approx_directed_mwc, Params,
};
use congest_mwc::graph::generators::{
    connected_gnm, grid, planted_cycle, ring_with_chords, WeightRange,
};
use congest_mwc::graph::{seq, Graph, Orientation, Weight};

fn check_exact_and_approx(
    g: &Graph,
    approx: impl Fn(&Graph, &Params) -> congest_mwc::core::MwcOutcome,
    factor: f64,
    slack: Weight,
    seed: u64,
) {
    let oracle = seq::mwc_exact(g).map(|m| m.weight);
    let exact = exact_mwc(g);
    exact.assert_valid(g);
    assert_eq!(
        exact.weight, oracle,
        "distributed exact ≠ sequential oracle"
    );

    let params = Params::new().with_seed(seed);
    let out = approx(g, &params);
    out.assert_valid(g);
    match (out.weight, oracle) {
        (None, None) => {}
        (Some(w), Some(opt)) => {
            assert!(w >= opt, "approximation underestimated: {w} < {opt}");
            let bound = (factor * opt as f64).ceil() as Weight + slack;
            assert!(
                w <= bound,
                "approximation too loose: {w} > {bound} (opt {opt})"
            );
        }
        (got, want) => panic!("cyclicity mismatch: approx {got:?}, oracle {want:?}"),
    }
}

#[test]
fn directed_unweighted_pipeline() {
    for seed in 0..4 {
        let g = connected_gnm(64, 180, Orientation::Directed, WeightRange::unit(), seed);
        check_exact_and_approx(&g, two_approx_directed_mwc, 2.0, 0, seed);
    }
}

#[test]
fn girth_pipeline() {
    for seed in 0..4 {
        let g = connected_gnm(
            80,
            130,
            Orientation::Undirected,
            WeightRange::unit(),
            40 + seed,
        );
        check_exact_and_approx(&g, approx_girth, 2.0, 0, seed);
    }
}

#[test]
fn undirected_weighted_pipeline() {
    for seed in 0..3 {
        let g = connected_gnm(
            48,
            90,
            Orientation::Undirected,
            WeightRange::uniform(1, 12),
            80 + seed,
        );
        check_exact_and_approx(&g, approx_mwc_undirected_weighted, 2.25, 2, seed);
    }
}

#[test]
fn directed_weighted_pipeline() {
    for seed in 0..3 {
        let g = connected_gnm(
            40,
            100,
            Orientation::Directed,
            WeightRange::uniform(1, 12),
            120 + seed,
        );
        check_exact_and_approx(&g, approx_mwc_directed_weighted, 2.25, 2, seed);
    }
}

#[test]
fn structured_topologies() {
    // Grid: girth 4.
    let g = grid(9, 9, Orientation::Undirected, WeightRange::unit(), 0);
    check_exact_and_approx(&g, approx_girth, 2.0, 0, 1);

    // Large single ring (every algorithm must find the global cycle).
    let g = ring_with_chords(72, 0, Orientation::Directed, WeightRange::unit(), 0);
    let out = two_approx_directed_mwc(&g, &Params::new().with_seed(2));
    assert_eq!(out.weight, Some(72));

    // Planted light cycle in heavy surroundings, all four algorithms.
    let (gd, _) = planted_cycle(
        50,
        90,
        3,
        1,
        Orientation::Directed,
        WeightRange::uniform(9, 18),
        5,
    );
    check_exact_and_approx(&gd, approx_mwc_directed_weighted, 2.25, 2, 3);
    let (gu, _) = planted_cycle(
        50,
        80,
        4,
        1,
        Orientation::Undirected,
        WeightRange::uniform(9, 18),
        6,
    );
    check_exact_and_approx(&gu, approx_mwc_undirected_weighted, 2.25, 2, 4);
}

#[test]
fn acyclic_and_forest_agreement() {
    // Directed acyclic.
    let mut g = Graph::directed(20);
    for i in 0..19 {
        g.add_edge(i, i + 1, 1).unwrap();
        if i + 2 < 20 {
            g.add_edge(i, i + 2, 1).unwrap();
        }
    }
    assert_eq!(exact_mwc(&g).weight, None);
    assert_eq!(two_approx_directed_mwc(&g, &Params::new()).weight, None);

    // Undirected tree.
    let mut g = Graph::undirected(20);
    for i in 1..20 {
        g.add_edge(i / 2, i, 3).unwrap();
    }
    assert_eq!(exact_mwc(&g).weight, None);
    assert_eq!(
        approx_mwc_undirected_weighted(&g, &Params::new()).weight,
        None
    );
}

#[test]
fn every_node_knows_the_answer_convention() {
    // The algorithms end with a convergecast + flood-down; the ledger must
    // therefore contain those phases (paper Definition 1.1 output
    // convention: every node knows the weight).
    let g = connected_gnm(50, 100, Orientation::Undirected, WeightRange::unit(), 9);
    let out = approx_girth(&g, &Params::new());
    assert!(out
        .ledger
        .phases
        .iter()
        .any(|p| p.label.contains("convergecast")));
    let out = exact_mwc(&g);
    assert!(out
        .ledger
        .phases
        .iter()
        .any(|p| p.label.contains("convergecast")));
}
