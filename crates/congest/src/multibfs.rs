//! Pipelined multi-source BFS and source detection, after Lenzen,
//! Patt-Shamir & Peleg \[37\] (the paper's reference for `O(h + k)`-round
//! `k`-source `h`-hop BFS and `(S, h, σ)` source detection).
//!
//! Both primitives use the classic pipelining schedule: every node keeps a
//! priority queue of announcements `(distance, source)` and, each round,
//! forwards the smallest fresh one over all of its traversal-direction
//! links. With unit latencies this completes `k`-source `h`-hop BFS in
//! `O(h + k)` rounds; the tests assert that envelope empirically.
//!
//! Announcements can also travel with **per-edge latencies** (the scaled /
//! stretched graphs of paper §4–5): an edge of stretch `ℓ` delays delivery
//! by `ℓ` rounds and adds `ℓ` to the announced distance, which is exactly a
//! BFS on the stretched graph where each weighted edge becomes a path of
//! `ℓ` unit edges simulated at its endpoint.
//!
//! Each primitive has interchangeable inner loops selected by
//! [`crate::flood::flood_kernel`]: the engine-stepped **scalar** reference
//! and the bit-parallel **bitset** kernels (u64 frontier words, direct
//! delivery, rounds charged via `Network::charge_flood_round` /
//! `Network::charge_stretched_flood_round`). Unit-latency floods run the
//! plain bitset kernel; latency-stretched floods run its calendar-queue
//! variant (in-flight announcements parked in a
//! [`CalendarRing`](crate::flood::CalendarRing) of arrival-round buckets)
//! whenever `FloodPlan::max_latency()` fits under
//! [`flood_ring_max`](crate::flood::flood_ring_max). Every kernel is
//! byte-identical to the scalar one in every ledger count, event, and
//! output — see the [`crate::flood`] module docs for the equivalence
//! argument.

use crate::distmat::{DistMatrix, INF};
use crate::engine::{Network, RoundOutput};
use crate::flood::{
    flood_kernel, flood_ring_max, note_flood_engagement, validate_sources, BitFrontier,
    CalendarRing, FloodKernel, FloodPlan,
};
use crate::ledger::Ledger;
use mwc_graph::seq::Direction;
use mwc_graph::{Graph, NodeId, Weight};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Parameters of a multi-source search.
#[derive(Clone, Copy, Debug)]
pub struct MultiBfsSpec<'a> {
    /// Distance budget: announcements above this are not forwarded. For
    /// unit latencies this is the *hop* budget `h`; with latencies it is a
    /// stretched-distance budget. Use [`INF`] for an unbounded search.
    pub max_dist: Weight,
    /// Traversal direction over the (possibly directed) graph edges.
    pub direction: Direction,
    /// Per-[`EdgeId`](mwc_graph::EdgeId) stretch `ℓ(e) ≥ 1`; `None` means
    /// all-unit (plain BFS).
    pub latency: Option<&'a [Weight]>,
}

impl Default for MultiBfsSpec<'_> {
    fn default() -> Self {
        MultiBfsSpec {
            max_dist: INF,
            direction: Direction::Forward,
            latency: None,
        }
    }
}

/// A BFS announcement: `(source row, distance at the receiver)`.
type Announce = (u32, Weight);

/// Adds an edge's announced weight to a distance, panicking when the sum
/// saturates into the [`INF`] sentinel: a genuine huge distance aliasing
/// to "unreachable" would silently flip the reachable-vs-unreachable
/// distinction for every `DistMatrix` / detection consumer, so it is a
/// contract violation rather than a value. (Real distances are bounded by
/// `n · max latency`, so this fires only on pathological latency tables.)
fn add_dist(d: Weight, add: Weight) -> Weight {
    match d.checked_add(add) {
        Some(c) if c < INF => c,
        _ => panic!("flood distance {d} + {add} saturates into the INF sentinel"),
    }
}

/// Runs a pipelined `h`-bounded search from `sources` and returns the
/// distance table. Costs `O(max_dist + k)` rounds for unit latencies,
/// charged to `ledger` under `label`.
///
/// # Panics
///
/// Panics if a source id is out of range or repeated, if `spec.latency`
/// is provided with fewer entries than the graph has edges, or if an
/// announced distance would saturate into the [`INF`] sentinel.
pub fn multi_source_bfs(
    g: &Graph,
    sources: &[NodeId],
    spec: &MultiBfsSpec<'_>,
    label: &str,
    ledger: &mut Ledger,
) -> DistMatrix {
    if let Some(l) = spec.latency {
        assert!(l.len() >= g.m(), "latency table must cover all edges");
    }
    validate_sources(g.n(), sources);
    let _span = mwc_trace::span_owned(|| format!("multibfs/{label}"));
    let n = g.n();
    let mut mat = DistMatrix::new(n, sources.to_vec());
    let mut net: Network<Announce> = Network::new_auto(g);
    let plan = FloodPlan::build(g, &net, spec.direction, spec.latency);

    let bitset = flood_kernel() == FloodKernel::Bitset && plan.max_latency() <= flood_ring_max();
    note_flood_engagement(bitset);
    if bitset {
        if plan.unit_latency() {
            bfs_kernel_bitset(sources, spec.max_dist, &plan, &mut net, &mut mat);
        } else {
            bfs_kernel_stretched(sources, spec.max_dist, &plan, &mut net, &mut mat);
        }
    } else {
        bfs_kernel_scalar(n, sources, spec.max_dist, &plan, &mut net, &mut mat);
    }

    ledger.absorb(label, &net);
    mwc_trace::check_bound(
        "congest/multibfs",
        mwc_trace::BoundInputs::n(n)
            .h(crate::bounds::effective_hops(
                n,
                spec.max_dist,
                spec.latency,
                g.m(),
            ))
            .k(sources.len() as u64),
        net.round(),
        crate::bounds::multibfs,
    );
    mat
}

/// The engine-stepped scalar BFS loop: heap outboxes with lazy
/// stale-skipping, every announcement moved through the [`Network`]'s
/// per-link queues (and, for stretched edges, its transit heap). The
/// reference semantics every bitset kernel must replicate byte-for-byte,
/// and the fallback when a latency table overflows the calendar-ring cap.
fn bfs_kernel_scalar(
    n: usize,
    sources: &[NodeId],
    max_dist: Weight,
    plan: &FloodPlan,
    net: &mut Network<Announce>,
    mat: &mut DistMatrix,
) {
    // outbox[v]: fresh announcements not yet forwarded, smallest first.
    let mut outbox: Vec<BinaryHeap<Reverse<Announce2>>> =
        (0..n).map(|_| BinaryHeap::new()).collect();
    let mut pending: Vec<NodeId> = Vec::new();
    let mut pending_flag = vec![false; n];

    for (row, &s) in sources.iter().enumerate() {
        mat.set_row(row, s, 0, None);
        outbox[s].push(Reverse((0, row as u32)));
        if !pending_flag[s] {
            pending_flag[s] = true;
            pending.push(s);
        }
    }

    let mut out = RoundOutput::default();
    loop {
        // Node actions for this round: each pending node forwards its
        // smallest fresh announcement over every traversal link.
        let acting = std::mem::take(&mut pending);
        let mut any_sent = false;
        for v in acting {
            pending_flag[v] = false;
            // Pop entries until one is fresh (stale = improved since push).
            let fresh = loop {
                match outbox[v].pop() {
                    Some(Reverse((d, row))) => {
                        if mat.get_row(row as usize, v) == d {
                            break Some((d, row));
                        }
                    }
                    None => break None,
                }
            };
            let Some((d, row)) = fresh else { continue };
            for hop in plan.of(v) {
                let cand = add_dist(d, hop.dist_add);
                if cand > max_dist {
                    continue;
                }
                // Receiver-side pruning happens on delivery; sender-side we
                // also skip if the receiver is already known (to the
                // sender) to be closer — we cannot know that locally, so
                // no such check: CONGEST nodes only know their own state.
                any_sent = true;
                net.send_on_link(hop.link as usize, (row, cand), 1, hop.latency);
            }
            if !outbox[v].is_empty() && !pending_flag[v] {
                pending_flag[v] = true;
                pending.push(v);
            }
        }

        if !any_sent {
            if !pending.is_empty() {
                // Entirely-filtered pops: keep draining outboxes locally
                // without charging rounds (nothing was transmitted).
                continue;
            }
            if net.is_idle() {
                break;
            }
        }
        let stepped = if any_sent {
            net.step_into(&mut out);
            true
        } else {
            net.step_fast_into(&mut out)
        };
        if !stepped {
            break;
        }
        for d in out.deliveries.drain(..) {
            let (row, cand) = d.payload;
            let v = d.to;
            if cand < mat.get_row(row as usize, v) {
                mat.set_row(row as usize, v, cand, Some(d.from));
                outbox[v].push(Reverse((cand, row)));
                if !pending_flag[v] {
                    pending_flag[v] = true;
                    pending.push(v);
                }
            }
        }
    }
}

/// The bit-parallel BFS loop for unit-latency floods: per-node
/// [`BitFrontier`] outboxes (64 source rows per word, maintained eagerly
/// so every pop is fresh), deliveries applied directly in send order, and
/// each round's traffic charged in one [`Network::charge_flood_round`]
/// pass. Executes the exact scalar schedule — same pops, same sends, same
/// delivery order, same predecessor tie-breaks — without the per-message
/// queue machinery.
///
/// Superseded announcements move into a per-node *ghost* frontier rather
/// than vanishing: the scalar heap keeps stale entries until a pop walks
/// past them, and "heap nonempty" is its re-pend test — so ghost
/// occupancy must feed the bitset re-pend test too, or nodes would enter
/// the pending list at different positions and the send order (observed
/// by the event log) would drift.
fn bfs_kernel_bitset(
    sources: &[NodeId],
    max_dist: Weight,
    plan: &FloodPlan,
    net: &mut Network<Announce>,
    mat: &mut DistMatrix,
) {
    let mut outbox: Vec<BitFrontier> = vec![BitFrontier::default(); mat.n()];
    let mut ghost: Vec<BitFrontier> = vec![BitFrontier::default(); mat.n()];
    let mut pending: Vec<NodeId> = Vec::new();
    let mut pending_flag = vec![false; mat.n()];

    for (row, &s) in sources.iter().enumerate() {
        mat.set_row(row, s, 0, None);
        outbox[s].insert(0, row as u32);
        if !pending_flag[s] {
            pending_flag[s] = true;
            pending.push(s);
        }
    }

    // This round's traffic: the links charged and the deliveries they
    // carry as `(to, row, dist, from)`, both in send order.
    let mut links: Vec<u32> = Vec::new();
    let mut deliv: Vec<(u32, u32, Weight, u32)> = Vec::new();
    loop {
        let acting = std::mem::take(&mut pending);
        links.clear();
        deliv.clear();
        for v in acting {
            pending_flag[v] = false;
            // Eager maintenance means no stale entries: the first pop is
            // the smallest fresh announcement. The scalar pop walk would
            // have consumed the stale (ghost) entries ahead of it — or
            // the whole heap when nothing fresh remains.
            let Some((d, row)) = outbox[v].pop_min() else {
                ghost[v].clear();
                continue;
            };
            ghost[v].drain_below(d, row);
            for hop in plan.of(v) {
                let cand = add_dist(d, hop.dist_add);
                if cand > max_dist {
                    continue;
                }
                links.push(hop.link);
                deliv.push((hop.to, row, cand, v as u32));
            }
            if (!outbox[v].is_empty() || !ghost[v].is_empty()) && !pending_flag[v] {
                pending_flag[v] = true;
                pending.push(v);
            }
        }

        if links.is_empty() {
            if !pending.is_empty() {
                // Entirely-filtered pops: no traffic, no round charged.
                continue;
            }
            break;
        }
        net.charge_flood_round(&links);
        for &(to, row, cand, from) in &deliv {
            let v = to as usize;
            let old = mat.get_row(row as usize, v);
            if cand < old {
                if old != INF && outbox[v].remove(old, row) {
                    // The eager move: the superseded announcement becomes
                    // a ghost (the scalar heap would keep it as a stale
                    // entry). Already-forwarded rows have no bit to move.
                    ghost[v].insert(old, row);
                }
                mat.set_row(row as usize, v, cand, Some(from as usize));
                outbox[v].insert(cand, row);
                if !pending_flag[v] {
                    pending_flag[v] = true;
                    pending.push(v);
                }
            }
        }
    }
}

/// An in-flight announcement parked in the calendar ring:
/// `(link, to, row, dist, from)` — the link whose transfer was already
/// charged in its send round, and everything delivery needs on expiry.
type RingMsg = (u32, u32, u32, Weight, u32);

/// The calendar-queue BFS loop for latency-stretched floods: the same
/// eager [`BitFrontier`] outbox/ghost discipline as [`bfs_kernel_bitset`],
/// plus a [`CalendarRing`] standing in for the scalar engine's transit
/// heap. A send over a hop with latency `ℓ ≥ 1` is charged as a transfer
/// in its send round but parked `ℓ` buckets ahead; zero-latency sends are
/// delivered in the send round itself, *before* that round's calendar
/// expiries — exactly the scalar `step_into` order (same-round completions
/// in send order, then transit pops in `(arrival, send-sequence)` order,
/// which per-bucket insertion order reproduces).
///
/// Round control mirrors the scalar loop branch for branch: filtered pops
/// with pending work left spin without charging a round; a round with
/// sends is charged via `Network::charge_stretched_flood_round` with this
/// round's links and arrivals; and when nothing was sent but arrivals are
/// still in flight, [`CalendarRing::next_arrival`] fast-forwards to the
/// next expiry (`step_fast_into` in the scalar path) — a charged round
/// with zero transfers, messages only.
fn bfs_kernel_stretched(
    sources: &[NodeId],
    max_dist: Weight,
    plan: &FloodPlan,
    net: &mut Network<Announce>,
    mat: &mut DistMatrix,
) {
    let n = mat.n();
    let mut outbox: Vec<BitFrontier> = vec![BitFrontier::default(); n];
    let mut ghost: Vec<BitFrontier> = vec![BitFrontier::default(); n];
    let mut pending: Vec<NodeId> = Vec::new();
    let mut pending_flag = vec![false; n];
    let mut ring: CalendarRing<RingMsg> = CalendarRing::new(plan.max_latency());

    for (row, &s) in sources.iter().enumerate() {
        mat.set_row(row, s, 0, None);
        outbox[s].insert(0, row as u32);
        if !pending_flag[s] {
            pending_flag[s] = true;
            pending.push(s);
        }
    }

    // This round's traffic: every charged link in send order, and the
    // messages *delivered* this round — zero-latency sends first (send
    // order), then calendar expiries — as parallel delivered-link /
    // payload vectors.
    let mut links: Vec<u32> = Vec::new();
    let mut dlinks: Vec<u32> = Vec::new();
    let mut deliv: Vec<(u32, u32, Weight, u32)> = Vec::new();
    let mut expiries: Vec<RingMsg> = Vec::new();
    loop {
        let acting = std::mem::take(&mut pending);
        links.clear();
        dlinks.clear();
        deliv.clear();
        // If anything is sent this iteration, it is charged at this round.
        let send_round = net.round() + 1;
        for v in acting {
            pending_flag[v] = false;
            let Some((d, row)) = outbox[v].pop_min() else {
                ghost[v].clear();
                continue;
            };
            ghost[v].drain_below(d, row);
            for hop in plan.of(v) {
                let cand = add_dist(d, hop.dist_add);
                if cand > max_dist {
                    continue;
                }
                links.push(hop.link);
                if hop.latency == 0 {
                    dlinks.push(hop.link);
                    deliv.push((hop.to, row, cand, v as u32));
                } else {
                    ring.push(
                        send_round + hop.latency,
                        (hop.link, hop.to, row, cand, v as u32),
                    );
                }
            }
            if (!outbox[v].is_empty() || !ghost[v].is_empty()) && !pending_flag[v] {
                pending_flag[v] = true;
                pending.push(v);
            }
        }

        let round = if links.is_empty() {
            if !pending.is_empty() {
                // Entirely-filtered pops: no traffic, no round charged.
                continue;
            }
            // Nothing to send and nothing ever will be unless an arrival
            // lands: fast-forward to the next expiry, or finish.
            let Some(next) = ring.next_arrival(net.round()) else {
                break;
            };
            next
        } else {
            send_round
        };
        expiries.clear();
        ring.drain_round_into(round, &mut expiries);
        for &(link, to, row, cand, from) in &expiries {
            dlinks.push(link);
            deliv.push((to, row, cand, from));
        }
        net.charge_stretched_flood_round(round, &links, &dlinks);
        for &(to, row, cand, from) in &deliv {
            let v = to as usize;
            let old = mat.get_row(row as usize, v);
            if cand < old {
                if old != INF && outbox[v].remove(old, row) {
                    ghost[v].insert(old, row);
                }
                mat.set_row(row as usize, v, cand, Some(from as usize));
                outbox[v].insert(cand, row);
                if !pending_flag[v] {
                    pending_flag[v] = true;
                    pending.push(v);
                }
            }
        }
    }
}

/// `(dist, src)` ordering helper — distance first, then source row for a
/// deterministic tiebreak.
type Announce2 = (Weight, u32);

/// Result of [`source_detection`]: for each node, its detected sources as
/// `(distance, source)` pairs sorted lexicographically — the `σ` closest
/// sources within distance `h`, ties broken by source id.
pub type DetectionLists = Vec<Vec<(Weight, NodeId)>>;

/// Output of [`source_detection`]: the per-node top-`σ` lists plus
/// predecessor bookkeeping for witness-path reconstruction.
#[derive(Clone, Debug)]
pub struct Detection {
    /// Per node, the detected `(distance, source)` pairs (≤ `σ`, sorted).
    pub lists: DetectionLists,
    /// Per node, every source ever admitted with its best `(dist, pred)`
    /// (the neighbor the announcement arrived from).
    best: Vec<HashMap<NodeId, (Weight, NodeId)>>,
}

impl Detection {
    /// Best-known distance from `src` to `node`, if any announcement for
    /// `src` ever reached `node` (superset of the truncated lists).
    pub fn dist(&self, node: NodeId, src: NodeId) -> Option<Weight> {
        self.best[node].get(&src).map(|&(d, _)| d)
    }

    /// The first hop of [`Detection::path_to_source`] without walking or
    /// allocating the path: the neighbor `node`'s best announcement for
    /// `src` arrived from (`node` itself when `node == src`, mirroring the
    /// self-admission's predecessor). Predecessor chains always close —
    /// a sender admits its own entry before announcing, entries are never
    /// removed, and admission times strictly decrease along a chain — so
    /// this equals `path_to_source(node, src)?[1]` whenever that path has
    /// a second vertex.
    pub fn pred(&self, node: NodeId, src: NodeId) -> Option<NodeId> {
        self.best[node].get(&src).map(|&(_, p)| p)
    }

    /// The discovered path `node → … → src` following predecessor
    /// pointers (real graph edges). `None` if `src` never reached `node`.
    pub fn path_to_source(&self, node: NodeId, src: NodeId) -> Option<Vec<NodeId>> {
        let mut path = vec![node];
        let mut cur = node;
        while cur != src {
            let &(_, pred) = self.best[cur].get(&src)?;
            cur = pred;
            path.push(cur);
            if path.len() > self.best.len() {
                return None;
            }
        }
        Some(path)
    }
}

/// Per-node detection state shared by both kernels: current best
/// `(distance, pred)` per source row and the top-`σ` set the truncation
/// discipline maintains. Stored flat — a `(dist, pred)` matrix with an
/// [`INF`] absent-sentinel and per-node sorted vectors of at most `σ`
/// entries — so the admit fast path is an array index plus a short
/// binary search instead of hash-map and B-tree traffic.
struct DetectState {
    n: usize,
    rows: usize,
    best: Vec<(Weight, NodeId)>,
    top: Vec<Vec<(Weight, u32)>>,
    sigma: usize,
}

impl DetectState {
    fn new(n: usize, rows: usize, sigma: usize) -> DetectState {
        DetectState {
            n,
            rows,
            best: vec![(INF, NodeId::MAX); n * rows],
            top: (0..n).map(|_| Vec::with_capacity(sigma + 1)).collect(),
            sigma,
        }
    }

    /// Best-known distance of `row`'s source at `v` ([`INF`] when no
    /// announcement was ever admitted).
    fn best_dist(&self, v: NodeId, row: u32) -> Weight {
        self.best[v * self.rows + row as usize].0
    }

    /// Whether `entry` is currently in `v`'s top-`σ` set.
    fn in_top(&self, v: NodeId, entry: (Weight, u32)) -> bool {
        self.top[v].binary_search(&entry).is_ok()
    }

    /// Offers `(d, src_row)` arriving at `v` from `pred`. Updates the
    /// best/top structures and returns whether the entry survived
    /// truncation (= should be forwarded). `retire` is called for every
    /// announcement this displaces — the superseded distance on an
    /// improvement, and each truncation eviction — which is how the
    /// bitset kernel keeps its frontier eagerly fresh (the scalar kernel
    /// passes a no-op and skips stale heap entries lazily at pop time).
    fn admit(
        &mut self,
        v: NodeId,
        src_row: u32,
        d: Weight,
        pred: NodeId,
        mut retire: impl FnMut(Weight, u32),
    ) -> bool {
        let slot = &mut self.best[v * self.rows + src_row as usize];
        let old = slot.0;
        // Admitted distances never reach `INF` (announcements assert
        // against saturation), so the absent sentinel can only lose here.
        if old <= d {
            return false;
        }
        *slot = (d, pred);
        let top = &mut self.top[v];
        if old != INF {
            // The superseded entry may already have been truncated away.
            if let Ok(i) = top.binary_search(&(old, src_row)) {
                top.remove(i);
            }
            retire(old, src_row);
        }
        let pos = top.binary_search(&(d, src_row)).unwrap_err();
        top.insert(pos, (d, src_row));
        while top.len() > self.sigma {
            let worst = top.pop().expect("nonempty");
            retire(worst.0, worst.1);
        }
        // Forward only if the entry survived truncation (it did exactly
        // when it landed inside the first σ slots).
        pos < self.sigma
    }
}

/// `(S, h, σ)` source detection \[37\]: every node learns the `σ`
/// lexicographically-smallest `(distance, source)` pairs among sources
/// within distance `h`. Costs `O(h + σ)` rounds for unit latencies.
///
/// Nodes only store and forward their current top-`σ` lists, so the
/// per-node memory and traffic stay proportional to `σ` — this is what
/// makes the girth algorithm's `√n`-neighborhood computation affordable
/// (paper §4). With `latency` set, distances are measured in the
/// stretched metric (paper §4's stretched graphs).
///
/// # Panics
///
/// Panics if a source id is out of range or repeated, if `latency` is
/// provided with fewer entries than the graph has edges, or if an
/// announced distance would saturate into the [`INF`] sentinel.
#[allow(clippy::too_many_arguments)] // mirrors the primitive's full (S, h, σ) signature
pub fn source_detection(
    g: &Graph,
    sources: &[NodeId],
    h: Weight,
    sigma: usize,
    direction: Direction,
    latency: Option<&[Weight]>,
    label: &str,
    ledger: &mut Ledger,
) -> Detection {
    if let Some(l) = latency {
        assert!(l.len() >= g.m(), "latency table must cover all edges");
    }
    validate_sources(g.n(), sources);
    let _span = mwc_trace::span_owned(|| format!("detect/{label}"));
    let n = g.n();
    let mut net: Network<(u32, Weight)> = Network::new_auto(g);
    let plan = FloodPlan::build(g, &net, direction, latency);

    // Sort sources so "source row" order matches id order (consistent
    // tie-breaking is what makes truncated detection exact).
    let mut srcs: Vec<NodeId> = sources.to_vec();
    srcs.sort_unstable();

    let mut state = DetectState::new(n, srcs.len(), sigma);
    let bitset = flood_kernel() == FloodKernel::Bitset && plan.max_latency() <= flood_ring_max();
    note_flood_engagement(bitset);
    if bitset {
        if plan.unit_latency() {
            detect_kernel_bitset(&srcs, h, &plan, &mut net, &mut state);
        } else {
            detect_kernel_stretched(&srcs, h, &plan, &mut net, &mut state);
        }
    } else {
        detect_kernel_scalar(n, &srcs, h, &plan, &mut net, &mut state);
    }
    ledger.absorb(label, &net);
    mwc_trace::check_bound(
        "congest/source_detection",
        mwc_trace::BoundInputs::n(n)
            .h(crate::bounds::effective_hops(n, h, latency, g.m()))
            .k(sigma.min(srcs.len()) as u64),
        net.round(),
        crate::bounds::source_detection,
    );

    let lists: DetectionLists = (0..n)
        .map(|v| {
            state.top[v]
                .iter()
                .map(|&(d, row)| (d, srcs[row as usize]))
                .collect()
        })
        .collect();
    let best_by_id: Vec<HashMap<NodeId, (Weight, NodeId)>> = (0..n)
        .map(|v| {
            (0..srcs.len())
                .filter_map(|row| {
                    let dp = state.best[v * srcs.len() + row];
                    (dp.0 != INF).then_some((srcs[row], dp))
                })
                .collect()
        })
        .collect();
    Detection {
        lists,
        best: best_by_id,
    }
}

/// The engine-stepped scalar detection loop (reference semantics; the
/// fallback when a latency table overflows the calendar-ring cap). Heap
/// outboxes hold entries that may go stale — superseded by a closer
/// announcement or evicted from the top-`σ` set — and are skipped lazily
/// at pop time.
fn detect_kernel_scalar(
    n: usize,
    srcs: &[NodeId],
    h: Weight,
    plan: &FloodPlan,
    net: &mut Network<(u32, Weight)>,
    state: &mut DetectState,
) {
    let mut outbox: Vec<BinaryHeap<Reverse<(Weight, u32)>>> =
        (0..n).map(|_| BinaryHeap::new()).collect();
    let mut pending: Vec<NodeId> = Vec::new();
    let mut pending_flag = vec![false; n];

    for (row, &s) in srcs.iter().enumerate() {
        if state.admit(s, row as u32, 0, s, |_, _| {}) {
            outbox[s].push(Reverse((0, row as u32)));
            if !pending_flag[s] {
                pending_flag[s] = true;
                pending.push(s);
            }
        }
    }

    let mut out = RoundOutput::default();
    loop {
        let acting = std::mem::take(&mut pending);
        let mut any_action = false;
        for v in acting {
            pending_flag[v] = false;
            let fresh = loop {
                match outbox[v].pop() {
                    Some(Reverse((d, row))) => {
                        // Fresh = still our best and still within top-σ.
                        if state.best_dist(v, row) == d && state.in_top(v, (d, row)) {
                            break Some((d, row));
                        }
                    }
                    None => break None,
                }
            };
            let Some((d, row)) = fresh else { continue };
            any_action = true;
            for hop in plan.of(v) {
                let cand = add_dist(d, hop.dist_add);
                if cand > h {
                    continue;
                }
                net.send_on_link(hop.link as usize, (row, cand), 1, hop.latency);
            }
            if !outbox[v].is_empty() && !pending_flag[v] {
                pending_flag[v] = true;
                pending.push(v);
            }
        }

        if !any_action && net.is_idle() {
            break;
        }
        let stepped = if any_action {
            net.step_into(&mut out);
            true
        } else {
            net.step_fast_into(&mut out)
        };
        if !stepped {
            break;
        }
        for dmsg in out.deliveries.drain(..) {
            let (row, cand) = dmsg.payload;
            let v = dmsg.to;
            if state.admit(v, row, cand, dmsg.from, |_, _| {}) {
                outbox[v].push(Reverse((cand, row)));
                if !pending_flag[v] {
                    pending_flag[v] = true;
                    pending.push(v);
                }
            }
        }
    }
}

/// The bit-parallel detection loop for unit-latency floods: frontier
/// words maintained eagerly through `DetectState::admit`'s retire hook
/// (improvements and top-`σ` evictions clear bits on the spot), direct
/// delivery in send order, rounds charged via
/// [`Network::charge_flood_round`]. Note the round-control contract it
/// mirrors from the scalar loop: a round is charged whenever any node
/// popped a fresh announcement, even if the distance budget then filtered
/// every send (an empty charge advances the round like an idle
/// `step_into`).
fn detect_kernel_bitset(
    srcs: &[NodeId],
    h: Weight,
    plan: &FloodPlan,
    net: &mut Network<(u32, Weight)>,
    state: &mut DetectState,
) {
    let n = state.n;
    let mut outbox: Vec<BitFrontier> = vec![BitFrontier::default(); n];
    let mut ghost: Vec<BitFrontier> = vec![BitFrontier::default(); n];
    let mut pending: Vec<NodeId> = Vec::new();
    let mut pending_flag = vec![false; n];

    for (row, &s) in srcs.iter().enumerate() {
        let (ob, gh) = (&mut outbox[s], &mut ghost[s]);
        let retire = |d, r| {
            if ob.remove(d, r) {
                gh.insert(d, r);
            }
        };
        if state.admit(s, row as u32, 0, s, retire) {
            outbox[s].insert(0, row as u32);
            if !pending_flag[s] {
                pending_flag[s] = true;
                pending.push(s);
            }
        }
    }

    let mut links: Vec<u32> = Vec::new();
    let mut deliv: Vec<(u32, u32, Weight, u32)> = Vec::new();
    loop {
        let acting = std::mem::take(&mut pending);
        links.clear();
        deliv.clear();
        let mut any_action = false;
        for v in acting {
            pending_flag[v] = false;
            // As in the BFS kernel: replay the scalar pop walk's ghost
            // consumption so the re-pend test below matches its "heap
            // nonempty, stale entries included" semantics.
            let Some((d, row)) = outbox[v].pop_min() else {
                ghost[v].clear();
                continue;
            };
            ghost[v].drain_below(d, row);
            any_action = true;
            for hop in plan.of(v) {
                let cand = add_dist(d, hop.dist_add);
                if cand > h {
                    continue;
                }
                links.push(hop.link);
                deliv.push((hop.to, row, cand, v as u32));
            }
            if (!outbox[v].is_empty() || !ghost[v].is_empty()) && !pending_flag[v] {
                pending_flag[v] = true;
                pending.push(v);
            }
        }

        if !any_action {
            break;
        }
        net.charge_flood_round(&links);
        for &(to, row, cand, from) in &deliv {
            let v = to as usize;
            let (ob, gh) = (&mut outbox[v], &mut ghost[v]);
            let retire = |d, r| {
                if ob.remove(d, r) {
                    gh.insert(d, r);
                }
            };
            if state.admit(v, row, cand, from as usize, retire) {
                outbox[v].insert(cand, row);
                if !pending_flag[v] {
                    pending_flag[v] = true;
                    pending.push(v);
                }
            }
        }
    }
}

/// The calendar-queue detection loop for latency-stretched floods:
/// [`detect_kernel_bitset`]'s eager frontier/ghost discipline with a
/// [`CalendarRing`] in place of the engine's transit heap, delivering
/// zero-latency sends before the round's calendar expiries exactly as the
/// stretched BFS kernel does (see [`bfs_kernel_stretched`]).
///
/// Detection's round-control contract differs from BFS and is mirrored
/// here: a round is charged whenever any node popped a fresh announcement
/// — even if the budget then filtered every send, in which case the
/// charge carries zero links (an idle `step_into`: the round advances,
/// nothing is transferred, and that round's arrivals still land).
fn detect_kernel_stretched(
    srcs: &[NodeId],
    h: Weight,
    plan: &FloodPlan,
    net: &mut Network<(u32, Weight)>,
    state: &mut DetectState,
) {
    let n = state.n;
    let mut outbox: Vec<BitFrontier> = vec![BitFrontier::default(); n];
    let mut ghost: Vec<BitFrontier> = vec![BitFrontier::default(); n];
    let mut pending: Vec<NodeId> = Vec::new();
    let mut pending_flag = vec![false; n];
    let mut ring: CalendarRing<RingMsg> = CalendarRing::new(plan.max_latency());

    for (row, &s) in srcs.iter().enumerate() {
        let (ob, gh) = (&mut outbox[s], &mut ghost[s]);
        let retire = |d, r| {
            if ob.remove(d, r) {
                gh.insert(d, r);
            }
        };
        if state.admit(s, row as u32, 0, s, retire) {
            outbox[s].insert(0, row as u32);
            if !pending_flag[s] {
                pending_flag[s] = true;
                pending.push(s);
            }
        }
    }

    let mut links: Vec<u32> = Vec::new();
    let mut dlinks: Vec<u32> = Vec::new();
    let mut deliv: Vec<(u32, u32, Weight, u32)> = Vec::new();
    let mut expiries: Vec<RingMsg> = Vec::new();
    loop {
        let acting = std::mem::take(&mut pending);
        links.clear();
        dlinks.clear();
        deliv.clear();
        let send_round = net.round() + 1;
        let mut any_action = false;
        for v in acting {
            pending_flag[v] = false;
            let Some((d, row)) = outbox[v].pop_min() else {
                ghost[v].clear();
                continue;
            };
            ghost[v].drain_below(d, row);
            any_action = true;
            for hop in plan.of(v) {
                let cand = add_dist(d, hop.dist_add);
                if cand > h {
                    continue;
                }
                links.push(hop.link);
                if hop.latency == 0 {
                    dlinks.push(hop.link);
                    deliv.push((hop.to, row, cand, v as u32));
                } else {
                    ring.push(
                        send_round + hop.latency,
                        (hop.link, hop.to, row, cand, v as u32),
                    );
                }
            }
            if (!outbox[v].is_empty() || !ghost[v].is_empty()) && !pending_flag[v] {
                pending_flag[v] = true;
                pending.push(v);
            }
        }

        let round = if any_action {
            // Charged even when the budget filtered every send: the
            // scalar loop still steps the engine for a popped node.
            send_round
        } else {
            let Some(next) = ring.next_arrival(net.round()) else {
                break;
            };
            next
        };
        expiries.clear();
        ring.drain_round_into(round, &mut expiries);
        for &(link, to, row, cand, from) in &expiries {
            dlinks.push(link);
            deliv.push((to, row, cand, from));
        }
        net.charge_stretched_flood_round(round, &links, &dlinks);
        for &(to, row, cand, from) in &deliv {
            let v = to as usize;
            let (ob, gh) = (&mut outbox[v], &mut ghost[v]);
            let retire = |d, r| {
                if ob.remove(d, r) {
                    gh.insert(d, r);
                }
            };
            if state.admit(v, row, cand, from as usize, retire) {
                outbox[v].insert(cand, row);
                if !pending_flag[v] {
                    pending_flag[v] = true;
                    pending.push(v);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwc_graph::generators::{connected_gnm, grid, WeightRange};
    use mwc_graph::seq::{bellman_ford_hops, bfs, HOP_INF};
    use mwc_graph::Orientation;
    use std::sync::{Mutex, MutexGuard};

    /// Serializes tests that flip the process-global flood kernel and
    /// restores the default on drop.
    static KERNEL_GLOBAL: Mutex<()> = Mutex::new(());

    struct KernelGuard {
        _guard: MutexGuard<'static, ()>,
    }

    fn with_kernel(k: FloodKernel) -> KernelGuard {
        let guard = KERNEL_GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
        crate::flood::set_flood_kernel(k);
        KernelGuard { _guard: guard }
    }

    impl Drop for KernelGuard {
        fn drop(&mut self) {
            crate::flood::set_flood_kernel(FloodKernel::Bitset);
        }
    }

    fn assert_matches_bfs(g: &Graph, sources: &[NodeId], h: Weight, dir: Direction) {
        let mut ledger = Ledger::new();
        let spec = MultiBfsSpec {
            max_dist: h,
            direction: dir,
            latency: None,
        };
        let mat = multi_source_bfs(g, sources, &spec, "test", &mut ledger);
        for (row, &s) in sources.iter().enumerate() {
            let t = bfs(g, s, dir);
            for v in 0..g.n() {
                let expect = if t.dist[v] == HOP_INF || (t.dist[v] as Weight) > h {
                    INF
                } else {
                    t.dist[v] as Weight
                };
                assert_eq!(
                    mat.get_row(row, v),
                    expect,
                    "src {s} node {v} (dir {dir:?})"
                );
            }
        }
    }

    #[test]
    fn single_source_bfs_exact() {
        let g = connected_gnm(60, 90, Orientation::Undirected, WeightRange::unit(), 5);
        assert_matches_bfs(&g, &[0], INF, Direction::Forward);
    }

    #[test]
    fn multi_source_bfs_exact_undirected() {
        let g = connected_gnm(50, 70, Orientation::Undirected, WeightRange::unit(), 9);
        assert_matches_bfs(&g, &[0, 7, 13, 31, 49], INF, Direction::Forward);
    }

    #[test]
    fn multi_source_bfs_exact_directed_both_directions() {
        let g = connected_gnm(50, 120, Orientation::Directed, WeightRange::unit(), 11);
        assert_matches_bfs(&g, &[1, 2, 3, 20, 40], INF, Direction::Forward);
        assert_matches_bfs(&g, &[1, 2, 3, 20, 40], INF, Direction::Reverse);
    }

    #[test]
    fn hop_budget_truncates() {
        let g = grid(6, 6, Orientation::Undirected, WeightRange::unit(), 0);
        assert_matches_bfs(&g, &[0, 35], 4, Direction::Forward);
    }

    #[test]
    fn bfs_rounds_within_h_plus_k_envelope() {
        // Grid: D = 28; 20 sources; pipelining must keep rounds ≲ c(h + k).
        let g = grid(15, 15, Orientation::Undirected, WeightRange::unit(), 0);
        let sources: Vec<NodeId> = (0..20).map(|i| i * 11).collect();
        let mut ledger = Ledger::new();
        let spec = MultiBfsSpec::default();
        let _ = multi_source_bfs(&g, &sources, &spec, "bfs", &mut ledger);
        let h = 28u64;
        let k = 20u64;
        assert!(
            ledger.rounds <= 3 * (h + k),
            "pipelined BFS took {} rounds, envelope {}",
            ledger.rounds,
            3 * (h + k)
        );
    }

    #[test]
    fn predecessor_chains_are_real_paths() {
        let g = connected_gnm(40, 60, Orientation::Directed, WeightRange::unit(), 2);
        let mut ledger = Ledger::new();
        let mat = multi_source_bfs(&g, &[3, 17], &MultiBfsSpec::default(), "t", &mut ledger);
        for row in 0..2 {
            for v in 0..g.n() {
                if mat.get_row(row, v) == INF {
                    continue;
                }
                let path = mat.path_from_source(row, v).expect("reached");
                assert_eq!(path.len() as Weight - 1, mat.get_row(row, v));
                for w in path.windows(2) {
                    assert!(g.has_edge(w[0], w[1]), "edge {}→{} missing", w[0], w[1]);
                }
            }
        }
    }

    #[test]
    fn latency_bfs_computes_weighted_distances() {
        // Stretched search: latency = edge weight ⇒ distances = weighted
        // shortest paths (exact, because waves travel at weight-speed).
        let g = connected_gnm(
            40,
            80,
            Orientation::Directed,
            WeightRange::uniform(1, 6),
            21,
        );
        let lat: Vec<Weight> = g.edges().iter().map(|e| e.weight).collect();
        let spec = MultiBfsSpec {
            max_dist: INF,
            direction: Direction::Forward,
            latency: Some(&lat),
        };
        let mut ledger = Ledger::new();
        let mat = multi_source_bfs(&g, &[0, 5], &spec, "t", &mut ledger);
        for (row, &s) in [0usize, 5].iter().enumerate() {
            let exact = bellman_ford_hops(&g, s, g.n(), Direction::Forward);
            for v in 0..g.n() {
                assert_eq!(mat.get_row(row, v), exact[v], "src {s} node {v}");
            }
        }
    }

    #[test]
    fn latency_budget_is_weighted_budget() {
        // Path with weights 3,3,3: budget 6 reaches two hops only.
        let g = Graph::from_edges(
            4,
            Orientation::Undirected,
            [(0, 1, 3), (1, 2, 3), (2, 3, 3)],
        )
        .unwrap();
        let lat: Vec<Weight> = g.edges().iter().map(|e| e.weight).collect();
        let spec = MultiBfsSpec {
            max_dist: 6,
            direction: Direction::Forward,
            latency: Some(&lat),
        };
        let mut ledger = Ledger::new();
        let mat = multi_source_bfs(&g, &[0], &spec, "t", &mut ledger);
        assert_eq!(mat.get_row(0, 2), 6);
        assert_eq!(mat.get_row(0, 3), INF);
    }

    #[test]
    fn reverse_direction_with_latency_matches_oracle() {
        // Weighted reverse BFS: distances *to* the sources along edge
        // orientation, measured in the stretched metric.
        let g = connected_gnm(
            36,
            90,
            Orientation::Directed,
            WeightRange::uniform(1, 7),
            14,
        );
        let lat: Vec<Weight> = g.edges().iter().map(|e| e.weight).collect();
        let spec = MultiBfsSpec {
            max_dist: INF,
            direction: Direction::Reverse,
            latency: Some(&lat),
        };
        let mut ledger = Ledger::new();
        let mat = multi_source_bfs(&g, &[3, 30], &spec, "rl", &mut ledger);
        for (row, &s) in [3usize, 30].iter().enumerate() {
            let t = mwc_graph::seq::dijkstra(&g, s, Direction::Reverse);
            for v in 0..g.n() {
                let expect = if t.dist[v] == mwc_graph::seq::INF {
                    INF
                } else {
                    t.dist[v]
                };
                assert_eq!(mat.get_row(row, v), expect, "to {s} from {v}");
            }
        }
    }

    #[test]
    fn budget_zero_reaches_only_sources() {
        let g = grid(4, 4, Orientation::Undirected, WeightRange::unit(), 0);
        let spec = MultiBfsSpec {
            max_dist: 0,
            direction: Direction::Forward,
            latency: None,
        };
        let mut ledger = Ledger::new();
        let mat = multi_source_bfs(&g, &[5], &spec, "z", &mut ledger);
        assert_eq!(mat.get_row(0, 5), 0);
        assert!((0..16)
            .filter(|&v| v != 5)
            .all(|v| mat.get_row(0, v) == INF));
        assert_eq!(ledger.rounds, 0);
    }

    #[test]
    fn zero_weight_edges_stay_exact() {
        // w = 0 edges add nothing to distance but one round of travel.
        let g =
            Graph::from_edges(4, Orientation::Directed, [(0, 1, 0), (1, 2, 0), (2, 3, 5)]).unwrap();
        let lat: Vec<Weight> = g.edges().iter().map(|e| e.weight).collect();
        let spec = MultiBfsSpec {
            max_dist: INF,
            direction: Direction::Forward,
            latency: Some(&lat),
        };
        let mut ledger = Ledger::new();
        let mat = multi_source_bfs(&g, &[0], &spec, "t", &mut ledger);
        assert_eq!(mat.get_row(0, 1), 0);
        assert_eq!(mat.get_row(0, 2), 0);
        assert_eq!(mat.get_row(0, 3), 5);
        // Travel still takes ≥ 1 round per hop.
        assert!(ledger.rounds >= 3);
    }

    #[test]
    fn zero_weight_edges_identical_across_kernels() {
        // `dist_add = 0` with `stretch = 1` must cost one round and add
        // zero distance in BOTH kernels. All weights ≤ 1, so the flood is
        // unit-latency and the plain (ring-free) bitset kernel engages.
        let g = Graph::from_edges(
            6,
            Orientation::Directed,
            [
                (0, 1, 0),
                (1, 2, 1),
                (2, 3, 0),
                (3, 4, 0),
                (4, 5, 1),
                (0, 5, 1),
                (5, 2, 0),
            ],
        )
        .unwrap();
        let lat: Vec<Weight> = g.edges().iter().map(|e| e.weight).collect();
        let spec = MultiBfsSpec {
            max_dist: INF,
            direction: Direction::Forward,
            latency: Some(&lat),
        };
        let mut results = Vec::new();
        for kernel in [FloodKernel::Scalar, FloodKernel::Bitset] {
            let _k = with_kernel(kernel);
            let mut ledger = Ledger::new();
            let mat = multi_source_bfs(&g, &[0, 3], &spec, "zw", &mut ledger);
            // Zero-weight edges added no distance…
            assert_eq!(mat.get_row(0, 1), 0, "{kernel:?}");
            assert_eq!(mat.get_row(1, 4), 0, "{kernel:?}");
            // …but still cost a round each to cross.
            assert!(ledger.rounds >= 3, "{kernel:?}: {} rounds", ledger.rounds);
            results.push((mat.digest(), ledger.rounds, ledger.words, ledger.messages));
        }
        assert_eq!(results[0], results[1], "kernels disagree on w = 0 flood");
    }

    #[test]
    fn stretched_flood_identical_across_kernels() {
        // Latency-stretched floods now have a bitset kernel too (the
        // calendar ring): pin digests, predecessors, and every ledger
        // count against the scalar engine-stepped reference, for both a
        // bounded and an unbounded search.
        let g = connected_gnm(
            44,
            100,
            Orientation::Directed,
            WeightRange::uniform(0, 9),
            17,
        );
        let lat: Vec<Weight> = g.edges().iter().map(|e| e.weight).collect();
        for max_dist in [INF, 11] {
            let spec = MultiBfsSpec {
                max_dist,
                direction: Direction::Forward,
                latency: Some(&lat),
            };
            let mut results = Vec::new();
            for kernel in [FloodKernel::Scalar, FloodKernel::Bitset] {
                let _k = with_kernel(kernel);
                let mut ledger = Ledger::new();
                let mat = multi_source_bfs(&g, &[0, 7, 21], &spec, "st", &mut ledger);
                results.push((
                    mat.digest(),
                    ledger.rounds,
                    ledger.words,
                    ledger.messages,
                    ledger.hot_links(8),
                ));
            }
            assert_eq!(
                results[0], results[1],
                "kernels disagree on stretched flood (max_dist {max_dist})"
            );
        }
    }

    #[test]
    fn stretched_detection_identical_across_kernels() {
        let g = connected_gnm(
            40,
            90,
            Orientation::Undirected,
            WeightRange::uniform(1, 8),
            23,
        );
        let lat: Vec<Weight> = g.edges().iter().map(|e| e.weight).collect();
        let sources: Vec<NodeId> = (0..40).step_by(3).collect();
        let mut results = Vec::new();
        for kernel in [FloodKernel::Scalar, FloodKernel::Bitset] {
            let _k = with_kernel(kernel);
            let mut ledger = Ledger::new();
            let det = source_detection(
                &g,
                &sources,
                20,
                4,
                Direction::Forward,
                Some(&lat),
                "sd",
                &mut ledger,
            );
            results.push((det.lists, ledger.rounds, ledger.words, ledger.messages));
        }
        assert_eq!(
            results[0], results[1],
            "kernels disagree on stretched detection"
        );
    }

    #[test]
    #[should_panic(expected = "source 60 out of range")]
    fn multibfs_rejects_out_of_range_source() {
        let g = connected_gnm(60, 90, Orientation::Undirected, WeightRange::unit(), 5);
        let mut ledger = Ledger::new();
        let _ = multi_source_bfs(&g, &[60], &MultiBfsSpec::default(), "t", &mut ledger);
    }

    #[test]
    #[should_panic(expected = "source 7 repeated")]
    fn multibfs_rejects_repeated_source() {
        let g = connected_gnm(60, 90, Orientation::Undirected, WeightRange::unit(), 5);
        let mut ledger = Ledger::new();
        let _ = multi_source_bfs(&g, &[0, 7, 7], &MultiBfsSpec::default(), "t", &mut ledger);
    }

    #[test]
    #[should_panic(expected = "saturates into the INF sentinel")]
    fn multibfs_rejects_distance_saturation() {
        // A pathological latency table: one edge "adds" INF, which the
        // old saturating_add silently aliased to unreachable.
        let g = Graph::from_edges(2, Orientation::Undirected, [(0, 1, 1)]).unwrap();
        let lat = vec![INF];
        let spec = MultiBfsSpec {
            max_dist: INF,
            direction: Direction::Forward,
            latency: Some(&lat),
        };
        let mut ledger = Ledger::new();
        let _ = multi_source_bfs(&g, &[0], &spec, "sat", &mut ledger);
    }

    fn detection_oracle(g: &Graph, sources: &[NodeId], h: Weight, sigma: usize) -> DetectionLists {
        let mut lists: DetectionLists = vec![Vec::new(); g.n()];
        let mut srcs = sources.to_vec();
        srcs.sort_unstable();
        for &s in &srcs {
            let t = bfs(g, s, Direction::Forward);
            for v in 0..g.n() {
                if t.dist[v] != HOP_INF && (t.dist[v] as Weight) <= h {
                    lists[v].push((t.dist[v] as Weight, s));
                }
            }
        }
        for l in &mut lists {
            l.sort_unstable();
            l.truncate(sigma);
        }
        lists
    }

    #[test]
    fn source_detection_matches_oracle() {
        let g = connected_gnm(48, 70, Orientation::Undirected, WeightRange::unit(), 33);
        let sources: Vec<NodeId> = (0..48).step_by(3).collect();
        let mut ledger = Ledger::new();
        let got = source_detection(
            &g,
            &sources,
            6,
            4,
            Direction::Forward,
            None,
            "sd",
            &mut ledger,
        )
        .lists;
        let want = detection_oracle(&g, &sources, 6, 4);
        assert_eq!(got, want);
    }

    #[test]
    fn source_detection_all_sources_neighborhood() {
        // The girth algorithm's use: every node a source, σ nearest.
        let g = grid(7, 7, Orientation::Undirected, WeightRange::unit(), 0);
        let sources: Vec<NodeId> = (0..g.n()).collect();
        let mut ledger = Ledger::new();
        let got = source_detection(
            &g,
            &sources,
            12,
            7,
            Direction::Forward,
            None,
            "sd",
            &mut ledger,
        )
        .lists;
        let want = detection_oracle(&g, &sources, 12, 7);
        assert_eq!(got, want);
        // Rounds stay O(h + σ), far below O(n).
        assert!(
            ledger.rounds <= 4 * (12 + 7),
            "took {} rounds",
            ledger.rounds
        );
    }

    #[test]
    fn detection_pred_paths_are_real() {
        let g = connected_gnm(40, 60, Orientation::Undirected, WeightRange::unit(), 12);
        let sources: Vec<NodeId> = (0..40).step_by(4).collect();
        let mut ledger = Ledger::new();
        let det = source_detection(
            &g,
            &sources,
            8,
            5,
            Direction::Forward,
            None,
            "sd",
            &mut ledger,
        );
        for v in 0..g.n() {
            for &(d, s) in &det.lists[v] {
                let p = det.path_to_source(v, s).expect("detected ⇒ path");
                assert_eq!(*p.first().unwrap(), v);
                assert_eq!(*p.last().unwrap(), s);
                assert_eq!(p.len() as Weight - 1, d, "path hops ≠ detected dist");
                for w in p.windows(2) {
                    assert!(g.has_edge(w[0], w[1]) || g.has_edge(w[1], w[0]));
                }
            }
        }
    }

    #[test]
    fn detection_with_latency_uses_stretched_metric() {
        // Path 0 -5- 1 -1- 2: source 0; at node 2 stretched dist = 6.
        let g = Graph::from_edges(3, Orientation::Undirected, [(0, 1, 5), (1, 2, 1)]).unwrap();
        let lat: Vec<Weight> = g.edges().iter().map(|e| e.weight).collect();
        let mut ledger = Ledger::new();
        let det = source_detection(
            &g,
            &[0],
            10,
            2,
            Direction::Forward,
            Some(&lat),
            "sd",
            &mut ledger,
        );
        assert_eq!(det.lists[2], vec![(6, 0)]);
        assert_eq!(det.dist(2, 0), Some(6));
        // Budget cuts off stretched-far nodes.
        let mut ledger = Ledger::new();
        let det = source_detection(
            &g,
            &[0],
            4,
            2,
            Direction::Forward,
            Some(&lat),
            "sd",
            &mut ledger,
        );
        assert!(det.lists[1].is_empty());
    }

    #[test]
    fn source_detection_directed() {
        let g = connected_gnm(30, 80, Orientation::Directed, WeightRange::unit(), 8);
        let sources: Vec<NodeId> = (0..30).step_by(2).collect();
        let mut ledger = Ledger::new();
        let got = source_detection(
            &g,
            &sources,
            5,
            3,
            Direction::Forward,
            None,
            "sd",
            &mut ledger,
        )
        .lists;
        // Oracle with forward BFS.
        let mut want: DetectionLists = vec![Vec::new(); g.n()];
        for &s in &sources {
            let t = bfs(&g, s, Direction::Forward);
            for v in 0..g.n() {
                if t.dist[v] != HOP_INF && t.dist[v] <= 5 {
                    want[v].push((t.dist[v] as Weight, s));
                }
            }
        }
        for l in &mut want {
            l.sort_unstable();
            l.truncate(3);
        }
        assert_eq!(got, want);
    }

    #[test]
    #[should_panic(expected = "source 30 out of range")]
    fn detection_rejects_out_of_range_source() {
        let g = connected_gnm(30, 80, Orientation::Directed, WeightRange::unit(), 8);
        let mut ledger = Ledger::new();
        let _ = source_detection(
            &g,
            &[0, 30],
            5,
            3,
            Direction::Forward,
            None,
            "sd",
            &mut ledger,
        );
    }

    #[test]
    #[should_panic(expected = "source 4 repeated")]
    fn detection_rejects_repeated_source() {
        let g = connected_gnm(30, 80, Orientation::Directed, WeightRange::unit(), 8);
        let mut ledger = Ledger::new();
        let _ = source_detection(
            &g,
            &[4, 2, 4],
            5,
            3,
            Direction::Forward,
            None,
            "sd",
            &mut ledger,
        );
    }

    #[test]
    #[should_panic(expected = "saturates into the INF sentinel")]
    fn detection_rejects_distance_saturation() {
        let g = Graph::from_edges(2, Orientation::Undirected, [(0, 1, 1)]).unwrap();
        let lat = vec![INF];
        let mut ledger = Ledger::new();
        let _ = source_detection(
            &g,
            &[0],
            INF,
            2,
            Direction::Forward,
            Some(&lat),
            "sat",
            &mut ledger,
        );
    }

    #[test]
    fn detection_identical_across_kernels() {
        // Unit-weight flood: the bitset kernel engages by default; pin
        // that the scalar fallback produces identical lists, paths, and
        // ledger counts.
        let g = connected_gnm(48, 70, Orientation::Undirected, WeightRange::unit(), 33);
        let sources: Vec<NodeId> = (0..48).step_by(3).collect();
        let mut results = Vec::new();
        for kernel in [FloodKernel::Scalar, FloodKernel::Bitset] {
            let _k = with_kernel(kernel);
            let mut ledger = Ledger::new();
            let det = source_detection(
                &g,
                &sources,
                6,
                4,
                Direction::Forward,
                None,
                "sd",
                &mut ledger,
            );
            results.push((det.lists, ledger.rounds, ledger.words, ledger.messages));
        }
        assert_eq!(results[0], results[1], "kernels disagree on detection");
    }
}
