//! Hermetic deterministic parallelism: `ordered_map` fork-join over
//! `std::thread::scope`, no external dependencies (rayon-shaped hole,
//! `crates/rng`-style fill).
//!
//! The contract is **output determinism**: `ordered_map(items, f)` returns
//! exactly `items.into_iter().map(f).collect()` — same values, same order —
//! regardless of the worker count. Workers claim item *indices* from an
//! atomic counter (dynamic load balancing, since per-item cost varies
//! wildly across graph sizes), but results are joined back in input order,
//! so callers see no trace of the schedule. Anything order-sensitive that
//! `f` does internally (tracing, RNG) must be confined per item and merged
//! by the caller in input order; see `mwc_trace::TraceSession::memory` for
//! the capture-and-graft pattern the bench bins use.
//!
//! Worker count resolution, highest priority first:
//!
//! 1. [`set_jobs`] — process-wide override, for `--jobs=N` CLI flags;
//! 2. the `MWC_JOBS` environment variable;
//! 3. `1` (sequential; parallelism is strictly opt-in so default runs stay
//!    byte-for-byte comparable to the pre-pool codebase by construction).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Process-wide override set by [`set_jobs`]; `0` = unset.
static JOBS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Overrides the worker count for the whole process (clamped to ≥ 1).
/// Bench bins call this when given a `--jobs=N` flag; it wins over
/// `MWC_JOBS`.
pub fn set_jobs(n: usize) {
    JOBS_OVERRIDE.store(n.max(1), Ordering::Relaxed);
}

/// The effective worker count: [`set_jobs`] override, else `MWC_JOBS`,
/// else 1.
pub fn jobs() -> usize {
    let o = JOBS_OVERRIDE.load(Ordering::Relaxed);
    if o > 0 {
        return o;
    }
    std::env::var("MWC_JOBS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1)
}

/// Maps `f` over `items` on [`jobs`] worker threads, returning results in
/// input order. With one worker (or ≤ 1 item) this is exactly
/// `items.into_iter().map(f).collect()` on the calling thread — no pool,
/// no overhead.
///
/// A panic in `f` propagates to the caller (after the scope joins all
/// workers).
pub fn ordered_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    ordered_map_jobs(items, jobs(), f)
}

/// [`ordered_map`] with an explicit worker count (mainly for tests; real
/// callers go through [`jobs`]).
pub fn ordered_map_jobs<T, R, F>(items: Vec<T>, jobs: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if jobs <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    // Item and result slots are lock-per-slot: each index is claimed by
    // exactly one worker (the fetch_add hands out every index once), so
    // locks never contend — they exist to make the slot vectors Sync.
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..jobs.min(n) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .expect("slot lock")
                    .take()
                    .expect("each index is claimed exactly once");
                let r = f(item);
                *results[i].lock().expect("result lock") = Some(r);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result lock")
                .expect("worker filled every claimed slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_input_order_for_any_worker_count() {
        let items: Vec<u64> = (0..97).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for jobs in [1, 2, 3, 4, 8, 16] {
            let got = ordered_map_jobs(items.clone(), jobs, |x| x * x);
            assert_eq!(got, expect, "jobs={jobs}");
        }
    }

    #[test]
    fn unbalanced_work_still_joins_in_order() {
        // Early items are much heavier than late ones, so a naive
        // completion-order join would be reversed.
        let items: Vec<usize> = (0..32).collect();
        let got = ordered_map_jobs(items.clone(), 4, |i| {
            let spins = (32 - i) * 10_000;
            let mut acc = i as u64;
            for k in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k as u64);
            }
            (i, acc)
        });
        let seq: Vec<(usize, u64)> = items
            .into_iter()
            .map(|i| {
                let spins = (32 - i) * 10_000;
                let mut acc = i as u64;
                for k in 0..spins {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k as u64);
                }
                (i, acc)
            })
            .collect();
        assert_eq!(got, seq);
    }

    #[test]
    fn empty_and_singleton_inputs_stay_inline() {
        assert_eq!(
            ordered_map_jobs(Vec::<u8>::new(), 8, |x| x),
            Vec::<u8>::new()
        );
        assert_eq!(ordered_map_jobs(vec![41], 8, |x| x + 1), vec![42]);
    }

    #[test]
    fn non_clone_items_move_through_the_pool() {
        let items: Vec<String> = (0..10).map(|i| format!("s{i}")).collect();
        let got = ordered_map_jobs(items, 3, |s| s.len());
        assert_eq!(got, vec![2; 10]);
    }

    #[test]
    fn worker_panic_propagates() {
        let caught = std::panic::catch_unwind(|| {
            ordered_map_jobs(vec![1, 2, 3], 2, |x| {
                assert_ne!(x, 2, "boom");
                x
            })
        });
        assert!(caught.is_err());
    }
}
