//! Property-based tests of the [`CalendarRing`] behind the stretched
//! flood kernels: against a reference `BinaryHeap<Reverse<(arrival,
//! seq)>>` (the scalar engine's transit order), random insert schedules
//! must agree on pop order, bucket rotation across many wraparounds, and
//! quiet-gap fast-forwards; and random stretched floods must leave both
//! kernels — including the ghost-frontier stale-entry replay — in
//! byte-identical agreement.
//!
//! Runs on `mwc_rng::proptest_lite`; new failures persist their case
//! seed under `proplite-regressions/`.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use mwc_congest::{
    multi_source_bfs, set_flood_kernel, source_detection, CalendarRing, FloodKernel, Ledger,
    MultiBfsSpec,
};
use mwc_graph::generators::{connected_gnm, WeightRange};
use mwc_graph::seq::Direction;
use mwc_graph::{NodeId, Orientation, Weight};
use mwc_rng::proptest_lite::{self as plite, Config};
use mwc_rng::{prop_assert, prop_assert_eq, prop_tests};

/// Ring span used by the schedule tests: small enough that long schedules
/// lap the ring many times (the rotation being tested), large enough for
/// same-round pileups of fast and slow arrivals.
const MAX_LAT: u64 = 7;

prop_tests! {
    config = Config::with_cases(64);

    /// Round-by-round schedule: each batch of latencies is inserted at
    /// its send round and that round's expiries are drained. The ring
    /// must pop exactly what the scalar transit heap pops, in `(arrival,
    /// send sequence)` order, with occupancy in lockstep.
    fn ring_matches_transit_heap(batches in plite::vec(plite::vec(0u64..MAX_LAT + 1, 0..5), 1..24)) {
        let mut ring: CalendarRing<u64> = CalendarRing::new(MAX_LAT);
        let mut heap: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut round = 0u64;
        let mut got = Vec::new();
        for batch in &batches {
            round += 1;
            for &lat in batch {
                let arrival = round + lat;
                ring.push(arrival, seq);
                heap.push(Reverse((arrival, seq)));
                seq += 1;
            }
            got.clear();
            ring.drain_round_into(round, &mut got);
            let mut want = Vec::new();
            while let Some(&Reverse((a, s))) = heap.peek() {
                if a > round {
                    break;
                }
                heap.pop();
                want.push(s);
            }
            prop_assert_eq!(&got, &want, "round {} expiries diverge", round);
            prop_assert_eq!(ring.len(), heap.len());
        }
        // Tail: no more sends, so every remaining arrival is reached via
        // the quiet-gap fast-forward — `next_arrival` must land exactly
        // on the heap's minimum, every time, until both are empty.
        while let Some(next) = ring.next_arrival(round) {
            prop_assert!(next > round, "fast-forward must advance");
            prop_assert_eq!(
                heap.peek().map(|&Reverse((a, _))| a),
                Some(next),
                "fast-forward skipped or invented an arrival"
            );
            round = next;
            got.clear();
            ring.drain_round_into(round, &mut got);
            let mut want = Vec::new();
            while let Some(&Reverse((a, s))) = heap.peek() {
                if a > round {
                    break;
                }
                heap.pop();
                want.push(s);
            }
            prop_assert_eq!(&got, &want, "tail round {} expiries diverge", round);
        }
        prop_assert!(ring.is_empty() && heap.is_empty(), "pending arrivals leaked");
        prop_assert_eq!(ring.next_arrival(round), None);
    }

    /// Random stretched floods agree across kernels: the calendar-queue
    /// bitset kernel (ghost drains included) must reproduce the scalar
    /// reference's distances, predecessors, detection lists, and every
    /// ledger total on arbitrary connected graphs with zero-weight edges
    /// mixed in.
    fn stretched_kernels_agree(seed in 0u64..5000, n in 4usize..24, extra in 0usize..48, wmax in 1u64..9) {
        let g = connected_gnm(n, extra, Orientation::Directed, WeightRange::uniform(0, wmax), seed);
        let lat: Vec<Weight> = g.edges().iter().map(|e| e.weight).collect();
        let sources: Vec<NodeId> = (0..n).step_by(3).collect();
        let spec = MultiBfsSpec {
            direction: Direction::Forward,
            latency: Some(&lat),
            ..MultiBfsSpec::default()
        };
        let mut results = Vec::new();
        for kernel in [FloodKernel::Scalar, FloodKernel::Bitset] {
            set_flood_kernel(kernel);
            let mut ledger = Ledger::new();
            let mat = multi_source_bfs(&g, &sources, &spec, "p", &mut ledger);
            let det = source_detection(
                &g,
                &sources,
                3 * wmax,
                3,
                Direction::Forward,
                Some(&lat),
                "p",
                &mut ledger,
            );
            results.push((
                mat.digest(),
                det.lists,
                ledger.rounds,
                ledger.words,
                ledger.messages,
                ledger.hot_links(8),
            ));
        }
        set_flood_kernel(FloodKernel::Bitset);
        prop_assert_eq!(&results[0], &results[1], "kernels disagree on stretched flood");
    }
}
