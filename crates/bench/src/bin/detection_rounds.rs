//! **§1.3 corollary** — directed `q`-cycle detection: the paper's Ω̃(n)
//! lower bound holds for every `q ≥ 4` even though the *answer* concerns
//! only constant-size structures. This binary shows both sides
//! empirically with the `O(n + q)` detector:
//!
//! - on the disjointness gadget (the bound's hard family), detection
//!   rounds grow ~linearly in `n` at constant diameter and constant `q`;
//! - on sparse benign graphs, the same detector is far cheaper — the
//!   hardness is a property of the family, not of the problem size alone.
//!
//! Usage: `detection_rounds [max_q_gadget]` (default 48).

use mwc_bench::{fit_exponent, report, Table};
use mwc_core::shortest_cycle_within;
use mwc_graph::generators::{ring_with_chords, WeightRange};
use mwc_graph::Orientation;
use mwc_lowerbounds::{directed_gadget, Disjointness};

/// Count allocator traffic so this bin's run record and optional Chrome
/// trace export carry allocation profile data alongside simulated rounds.
#[global_allocator]
static ALLOC: mwc_trace::profile::CountingAlloc = mwc_trace::profile::CountingAlloc;

fn main() {
    report::init_profiling();
    report::init_flood_kernel();
    let max_q: usize = report::arg(1, 48);
    let mut rec = report::RunRecorder::start("detection_rounds");
    rec.param("max_q", max_q);

    let mut t = Table::new(
        "directed 4-cycle detection on the Thm 1.2.A gadget (hard family)",
        &["q", "n", "D", "detected", "rounds"],
    );
    let (mut ns, mut rs) = (Vec::new(), Vec::new());
    let mut q = 6;
    while q <= max_q {
        let inst = Disjointness::random_intersecting(q * q, 0.35, q as u64);
        let lb = directed_gadget(q, &inst);
        let out = shortest_cycle_within(&lb.graph, 4);
        rec.congestion(&format!("q={q} gadget"), &out.ledger);
        assert_eq!(out.weight, Some(4));
        t.row(vec![
            q.to_string(),
            lb.graph.n().to_string(),
            lb.graph.undirected_diameter().unwrap().to_string(),
            "4-cycle".into(),
            out.ledger.rounds.to_string(),
        ]);
        ns.push(lb.graph.n() as f64);
        rs.push(out.ledger.rounds as f64);
        q *= 2;
    }
    t.print();
    t.save_tsv("detection_gadget");
    if ns.len() >= 2 {
        println!(
            "rounds grow n^{:.2} on the gadget at constant D and q = 4 (paper: Ω̃(n) for any q ≥ 4)\n",
            fit_exponent(&ns, &rs)
        );
    }

    let mut t = Table::new(
        "the same detector on benign sparse graphs (ring + n/8 chords, q = 4)",
        &["n", "D", "detected", "rounds", "rounds/n"],
    );
    let mut n = 128;
    while n <= 2048 {
        let g = ring_with_chords(
            n,
            n / 8,
            Orientation::Directed,
            WeightRange::unit(),
            n as u64,
        );
        let out = shortest_cycle_within(&g, 4);
        let d = g.undirected_diameter().unwrap();
        t.row(vec![
            n.to_string(),
            d.to_string(),
            out.weight
                .map(|w| w.to_string())
                .unwrap_or_else(|| "none".into()),
            out.ledger.rounds.to_string(),
            format!("{:.2}", out.ledger.rounds as f64 / n as f64),
        ]);
        n *= 2;
    }
    t.print();
    t.save_tsv("detection_benign");
    println!(
        "benign instances cost ~D + small, far below n — the gadget's congestion is the hardness."
    );
    rec.finish();
}
