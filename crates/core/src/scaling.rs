//! Weight scaling and stretched-graph search — the technique of Nanongkai
//! \[41\] the paper uses for all its weighted algorithms (§2 "Weighted
//! Graphs", §5).
//!
//! To approximate `h`-hop bounded weighted distances with BFS-like waves:
//! for a guessed distance range `d ∈ [2^i, 2^{i+1})`, scale each weight to
//! `⌈w / μ_i⌉` units of `μ_i = ε·2^i / h`, so any `h`-hop path of weight
//! `d` has scaled length at most `d/μ_i + h ≤ 2h/ε + h` — a *constant
//! budget* `B` independent of the scale. Running a stretched BFS (edge
//! latency = scaled weight) to depth `B` per scale and rescaling the
//! result gives estimates `d ≤ est ≤ (1+ε)·d (+1 from rounding)`.
//!
//! Two reproductions-specific refinements, both conservative:
//!
//! - `ε` is quantized to a rational `en/16 ≤ ε` so all arithmetic is exact
//!   integer arithmetic (no float rounding can ever underestimate).
//! - Scales whose whole range `[2^i, 2^{i+1})` fits inside the budget `B`
//!   are replaced by a single **exact** stretched run with latency `w(e)`
//!   and budget `B`, which is both cheaper and tighter.

use crate::pipeline::Segments;
use mwc_congest::{multi_source_bfs, DistMatrix, Ledger, MultiBfsSpec, PhaseCache, INF};
use mwc_graph::seq::Direction;
use mwc_graph::{Graph, NodeId, Weight};
use std::sync::Arc;

/// Quantized approximation parameter `ε_q = num/16`, with `ε_q ≤ ε`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct EpsQ {
    /// Numerator over a fixed denominator of 16; in `1..=64`.
    pub num: u64,
}

impl EpsQ {
    /// Denominator of the quantization.
    pub const DEN: u64 = 16;

    /// The quantization floor: the smallest representable ε, `1/16`.
    pub const MIN: f64 = 1.0 / Self::DEN as f64;

    /// Largest representable `ε_q ≤ eps`, clamped to `[1/16, 4]`.
    ///
    /// **Floor:** requests below [`EpsQ::MIN`] cannot be represented and
    /// are clamped **up** to `1/16` — for those the effective parameter is
    /// *larger* than requested and `ε_q ≤ ε` does not hold. Callers that
    /// surface an ε (e.g. `KSourceApproxSssp::epsilon`) must therefore
    /// report [`EpsQ::value`], the ε actually used, never echo the
    /// request. Use [`EpsQ::floors`] to detect the clamp.
    pub fn from_f64(eps: f64) -> Self {
        let num = (eps * Self::DEN as f64).floor().clamp(1.0, 64.0) as u64;
        EpsQ { num }
    }

    /// `true` iff [`EpsQ::from_f64`] would clamp `eps` *up* — i.e. the
    /// effective `ε_q` would exceed the request.
    pub fn floors(eps: f64) -> bool {
        eps < Self::MIN
    }

    /// The quantized value as f64.
    pub fn value(&self) -> f64 {
        self.num as f64 / Self::DEN as f64
    }
}

struct Run {
    mat: DistMatrix,
    /// `None`: exact run (estimates are the raw distances). `Some(i)`:
    /// scale index, estimates are `⌈raw · en·2^i / (16h)⌉`.
    scale: Option<u32>,
}

/// `h`-hop-bounded `(1+ε)`-approximate distances from `k` sources,
/// computed by per-scale stretched BFS. Produced by [`scaled_hop_sssp`].
pub(crate) struct ScaledSegments {
    n: usize,
    est: Vec<Weight>,
    choice: Vec<u8>,
    runs: Vec<Run>,
}

impl ScaledSegments {
    /// How many stretched runs actually executed (exact + one per scale).
    /// [`scale_run_count`] must predict exactly this number — pinned by a
    /// unit test so the hand-mirrored loops cannot drift.
    #[cfg(test)]
    pub(crate) fn run_count(&self) -> u64 {
        self.runs.len() as u64
    }
}

impl Segments for ScaledSegments {
    fn get(&self, row: usize, v: NodeId) -> Weight {
        self.est[row * self.n + v]
    }

    fn path(&self, row: usize, v: NodeId) -> Option<Vec<NodeId>> {
        if self.est[row * self.n + v] == INF {
            return None;
        }
        let run = &self.runs[self.choice[row * self.n + v] as usize];
        run.mat.path_from_source(row, v)
    }
}

impl Segments for DistMatrix {
    fn get(&self, row: usize, v: NodeId) -> Weight {
        self.get_row(row, v)
    }

    fn path(&self, row: usize, v: NodeId) -> Option<Vec<NodeId>> {
        self.path_from_source(row, v)
    }
}

fn rescale(raw: Weight, scale_pow: u32, en: u64, h: u64) -> Weight {
    // ⌈raw · en · 2^i / (16h)⌉ in exact u128 arithmetic.
    let num = raw as u128 * en as u128 * (1u128 << scale_pow);
    let den = 16u128 * h as u128;
    num.div_ceil(den) as Weight
}

/// Budget shared by all runs: `⌈2h/ε_q⌉ + h = ⌈32h/en⌉ + h`.
pub(crate) fn scale_budget(h: u64, eps: EpsQ) -> Weight {
    (32 * h as u128).div_ceil(eps.num as u128) as Weight + h
}

/// The canonical stretched latency table `⌈16·h·w(e)/(en·2^s)⌉.max(1)` per
/// edge, memoized per `(graph, h, ε_q, s)` in the active [`PhaseCache`].
///
/// Both consumers reduce to this one formula: [`scaled_hop_sssp`] uses
/// scale `s = i` directly, and `weighted::scaled_latencies` uses
/// `s = i − 1` (its `⌈32·h·w/(en·2ⁱ)⌉` equals `⌈16·h·w/(en·2^{i−1})⌉`
/// since `⌈2a/2b⌉ = ⌈a/b⌉`), so within one cache scope the two derive
/// each table exactly once.
pub(crate) fn stretched_latency_table(g: &Graph, h: u64, eps: EpsQ, s: u32) -> Arc<Vec<Weight>> {
    PhaseCache::latency_table(g, h, eps.num, s, || {
        g.edges()
            .iter()
            .map(|e| {
                let num = 16 * h as u128 * e.weight as u128;
                let den = eps.num as u128 * (1u128 << s);
                (num.div_ceil(den) as Weight).max(1)
            })
            .collect()
    })
}

/// The unstretched per-edge weight table, memoized under the sentinel key
/// `(h, en, s) = (0, 0, 0)` — unreachable by [`stretched_latency_table`],
/// whose `h` is always ≥ 1.
pub(crate) fn exact_latency_table(g: &Graph) -> Arc<Vec<Weight>> {
    PhaseCache::latency_table(g, 0, 0, 0, || g.edges().iter().map(|e| e.weight).collect())
}

/// Number of stretched runs [`scaled_hop_sssp`] performs for this
/// instance (the exact run plus one per scale) — recomputed locally for
/// bound auditing, mirroring the loop below.
pub(crate) fn scale_run_count(g: &Graph, h_hops: u64, eps: EpsQ) -> u64 {
    let h = h_hops.max(1);
    let budget = scale_budget(h, eps);
    let max_dist = h.saturating_mul(g.max_weight().max(1));
    let mut i = 0u32;
    while (1u128 << i) <= budget as u128 {
        i += 1;
    }
    let mut i = i.saturating_sub(1);
    let mut runs = 1u64;
    while (1u128 << i) <= 2 * max_dist as u128 {
        runs += 1;
        i += 1;
    }
    runs
}

/// Computes `(1+ε_q)`-approximate `h`-hop bounded distances from
/// `sources` (forward orientation) by stretched BFS over `O(log(hW))`
/// scales, each bounded by [`scale_budget`]. Round cost is charged per
/// scale to `ledger`.
///
/// # Panics
///
/// Panics if any edge weight is zero (scaling-based approximation assumes
/// `w ≥ 1`, as is standard).
pub(crate) fn scaled_hop_sssp(
    g: &Graph,
    sources: &[NodeId],
    h_hops: u64,
    eps: EpsQ,
    label: &str,
    ledger: &mut Ledger,
) -> ScaledSegments {
    assert!(
        g.edges().iter().all(|e| e.weight >= 1),
        "scaled approximation requires weights ≥ 1"
    );
    let n = g.n();
    let k = sources.len();
    let h = h_hops.max(1);
    let budget = scale_budget(h, eps);
    let max_dist = h.saturating_mul(g.max_weight().max(1));

    let mut runs: Vec<Run> = Vec::new();

    // Exact run covering all d ≤ budget.
    let lat_exact = exact_latency_table(g);
    let spec = MultiBfsSpec {
        max_dist: budget,
        direction: Direction::Forward,
        latency: Some(&lat_exact),
    };
    let mat = multi_source_bfs(g, sources, &spec, &format!("{label}: exact scale"), ledger);
    runs.push(Run { mat, scale: None });

    // Scaled runs for d in (budget, h·W].
    let mut i = 0u32;
    while (1u128 << i) <= budget as u128 {
        i += 1;
    }
    // Start one scale lower so the range boundary is safely covered.
    let mut i = i.saturating_sub(1);
    while (1u128 << i) <= 2 * max_dist as u128 {
        let lat = stretched_latency_table(g, h, eps, i);
        let spec = MultiBfsSpec {
            max_dist: budget,
            direction: Direction::Forward,
            latency: Some(&lat),
        };
        let mat = multi_source_bfs(g, sources, &spec, &format!("{label}: scale 2^{i}"), ledger);
        runs.push(Run {
            mat,
            scale: Some(i),
        });
        i += 1;
    }

    // Fold: min estimate across runs. `choice` stores run indices as u8,
    // which is sound only while the run count fits — `scale_run_count`
    // grows as log₂(h·W), so 256 runs would need W ≈ 2^256; guard anyway
    // so a future widening of Weight can't truncate silently.
    debug_assert!(
        runs.len() <= u8::MAX as usize + 1,
        "{} stretched runs overflow the u8 choice index",
        runs.len()
    );
    let mut est = vec![INF; k * n];
    let mut choice = vec![0u8; k * n];
    for (ri, run) in runs.iter().enumerate() {
        for row in 0..k {
            for v in 0..n {
                let raw = run.mat.get_row(row, v);
                if raw == INF {
                    continue;
                }
                let e = match run.scale {
                    None => raw,
                    Some(i) => rescale(raw, i, eps.num, h),
                };
                let cell = &mut est[row * n + v];
                if e < *cell {
                    *cell = e;
                    choice[row * n + v] = ri as u8;
                }
            }
        }
    }

    ScaledSegments {
        n,
        est,
        choice,
        runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwc_graph::generators::{connected_gnm, WeightRange};
    use mwc_graph::seq::{bellman_ford_hops, Direction as SeqDir, INF as SEQ_INF};
    use mwc_graph::Orientation;

    #[test]
    fn eps_quantization_never_exceeds() {
        for &e in &[0.1, 0.25, 0.3, 0.5, 1.0, 2.0] {
            let q = EpsQ::from_f64(e);
            assert!(q.value() <= e + 1e-12, "{e} → {}", q.value());
            assert!(q.value() >= 1.0 / 16.0);
        }
    }

    #[test]
    fn eps_below_floor_clamps_up_to_min() {
        // Regression: ε = 0.01 < 1/16 cannot be represented; the clamp
        // goes *up* to 1/16 and EpsQ::floors must flag it so callers
        // report the effective value instead of the request.
        let q = EpsQ::from_f64(0.01);
        assert_eq!(q.num, 1);
        assert!((q.value() - EpsQ::MIN).abs() < 1e-12);
        assert!(q.value() > 0.01, "effective ε exceeds the request");
        assert!(EpsQ::floors(0.01));
        assert!(!EpsQ::floors(EpsQ::MIN));
        assert!(!EpsQ::floors(0.25));
    }

    #[test]
    fn scale_run_count_pins_the_actual_loop() {
        // scale_run_count is hand-mirrored from scaled_hop_sssp's scale
        // loop; this pins the two together across h, ε, and weight ranges.
        let configs = [
            (8u64, 0.25, 1u64, 1u64, 0u64),
            (8, 0.25, 1, 30, 1),
            (4, 0.5, 1, 100, 2),
            (12, 0.0625, 5, 60, 3),
            (1, 2.0, 1, 7, 4),
            (20, 1.0, 1, 1, 5),
        ];
        for (h, eps, lo, hi, seed) in configs {
            let g = connected_gnm(
                30,
                60,
                Orientation::Directed,
                WeightRange::uniform(lo, hi),
                seed,
            );
            let q = EpsQ::from_f64(eps);
            let mut ledger = Ledger::new();
            let seg = scaled_hop_sssp(&g, &[0, 7], h, q, "t", &mut ledger);
            assert_eq!(
                scale_run_count(&g, h, q),
                seg.run_count(),
                "h={h} eps={eps} weights=[{lo},{hi}]"
            );
            assert!(seg.run_count() <= u8::MAX as u64 + 1);
        }
    }

    #[test]
    fn rescale_rounds_up() {
        // raw=3, i=4, en=4, h=2: 3·4·16/(16·2) = 6 exactly.
        assert_eq!(rescale(3, 4, 4, 2), 6);
        // raw=3, i=4, en=4, h=5: 192/80 = 2.4 → 3.
        assert_eq!(rescale(3, 4, 4, 5), 3);
    }

    fn check_bounds(g: &Graph, sources: &[NodeId], h: u64, eps: f64) {
        let q = EpsQ::from_f64(eps);
        let mut ledger = Ledger::new();
        let seg = scaled_hop_sssp(g, sources, h, q, "t", &mut ledger);
        for (row, &s) in sources.iter().enumerate() {
            let exact_h = bellman_ford_hops(g, s, h as usize, SeqDir::Forward);
            let exact_any = bellman_ford_hops(g, s, g.n(), SeqDir::Forward);
            for v in 0..g.n() {
                let est = seg.get(row, v);
                // Never underestimates the unrestricted distance.
                if est != INF {
                    assert!(
                        exact_any[v] != SEQ_INF && est >= exact_any[v],
                        "est {est} < true {} (s={s}, v={v})",
                        exact_any[v]
                    );
                    // ... and the estimate is realized by a real path.
                    let p = seg.path(row, v).expect("estimate ⇒ path");
                    let mut w = 0;
                    for e in p.windows(2) {
                        w += g.weight(e[0], e[1]).expect("path edge exists");
                    }
                    assert!(w <= est, "witness path weight {w} > estimate {est}");
                }
                // Close to the h-hop distance from above.
                if exact_h[v] != SEQ_INF {
                    assert!(est != INF, "h-hop reachable but no estimate (s={s}, v={v})");
                    let bound = ((1.0 + eps) * exact_h[v] as f64).ceil() as Weight + 2;
                    assert!(
                        est <= bound,
                        "est {est} > (1+ε)·d_h + 2 = {bound} (d_h {}, s={s}, v={v})",
                        exact_h[v]
                    );
                }
            }
        }
    }

    #[test]
    fn approximates_weighted_distances_directed() {
        let g = connected_gnm(
            60,
            140,
            Orientation::Directed,
            WeightRange::uniform(1, 30),
            3,
        );
        check_bounds(&g, &[0, 11, 25], 12, 0.25);
    }

    #[test]
    fn approximates_weighted_distances_undirected() {
        let g = connected_gnm(
            50,
            90,
            Orientation::Undirected,
            WeightRange::uniform(1, 50),
            9,
        );
        check_bounds(&g, &[4, 44], 10, 0.5);
    }

    #[test]
    fn unit_weights_become_exact() {
        let g = connected_gnm(40, 70, Orientation::Directed, WeightRange::unit(), 5);
        let q = EpsQ::from_f64(0.25);
        let mut ledger = Ledger::new();
        let seg = scaled_hop_sssp(&g, &[0], 10, q, "t", &mut ledger);
        let exact = bellman_ford_hops(&g, 0, 10, SeqDir::Forward);
        for v in 0..g.n() {
            if exact[v] != SEQ_INF {
                assert_eq!(seg.get(0, v), exact[v]);
            }
        }
    }

    #[test]
    #[should_panic(expected = "weights ≥ 1")]
    fn zero_weights_rejected() {
        let g = Graph::from_edges(2, Orientation::Directed, [(0, 1, 0)]).unwrap();
        let mut ledger = Ledger::new();
        let _ = scaled_hop_sssp(&g, &[0], 4, EpsQ::from_f64(0.25), "t", &mut ledger);
    }

    #[test]
    fn tighter_eps_costs_more_rounds() {
        let g = connected_gnm(
            40,
            80,
            Orientation::Directed,
            WeightRange::uniform(1, 20),
            1,
        );
        let rounds = |eps: f64| {
            let mut ledger = Ledger::new();
            let _ = scaled_hop_sssp(&g, &[0], 8, EpsQ::from_f64(eps), "t", &mut ledger);
            ledger.rounds
        };
        assert!(rounds(0.125) > rounds(1.0));
    }
}
