//! **T1-DIR-UB** — Table 1, directed MWC row (upper bounds):
//! exact `Õ(n)` \[8\] vs 2-approximation `Õ(n^{4/5} + D)` (Theorem 1.2.C)
//! and `(2+ε)`-approximation for weighted graphs (Theorem 1.2.D).
//!
//! For each `n` the binary builds a connected random directed graph, runs
//! the exact baseline and the approximation, and reports measured rounds,
//! the rounds ratio, and the approximation quality (reported / optimum).
//! The fitted exponents of rounds-vs-n are printed at the end; the paper
//! predicts ≈1.0 for exact and ≈0.8 (+polylogs) for the approximation.
//!
//! Usage: `table1_directed [max_n]` (default 1024; sweep doubles from 128).

use mwc_bench::{fit_exponent, ratio, report, Table};
use mwc_core::{approx_mwc_directed_weighted, exact_mwc, two_approx_directed_mwc, Params};
use mwc_graph::generators::{connected_gnm, WeightRange};
use mwc_graph::Orientation;

/// Count allocator traffic so this bin's run record and optional Chrome
/// trace export carry allocation profile data alongside simulated rounds.
#[global_allocator]
static ALLOC: mwc_trace::profile::CountingAlloc = mwc_trace::profile::CountingAlloc;

fn main() {
    report::init_profiling();
    report::init_shards();
    report::init_flood_kernel();
    let max_n: usize = report::arg(1, 1024);
    let params = Params::lean().with_seed(42);
    let mut rec = report::RunRecorder::start("table1_directed");
    rec.param("max_n", max_n);
    rec.param("seed", 42);

    // ---- unweighted: exact vs 2-approx (Theorem 1.2.C) ----
    let mut t = Table::new(
        "Table 1 / directed unweighted MWC: exact Õ(n) vs 2-approx Õ(n^{4/5}+D)",
        &[
            "n",
            "m",
            "D",
            "exact_rounds",
            "approx_rounds",
            "approx/exact",
            "opt",
            "reported",
            "quality",
        ],
    );
    let mut ns = Vec::new();
    let mut exact_rounds = Vec::new();
    let mut approx_rounds = Vec::new();
    let mut n = 128;
    while n <= max_n {
        let g = connected_gnm(
            n,
            3 * n,
            Orientation::Directed,
            WeightRange::unit(),
            7 + n as u64,
        );
        let d = g.undirected_diameter().expect("connected");
        let exact = exact_mwc(&g);
        let approx = two_approx_directed_mwc(&g, &params);
        rec.congestion(&format!("n={n} exact"), &exact.ledger);
        rec.congestion(&format!("n={n} 2-approx"), &approx.ledger);
        let opt = exact
            .weight
            .expect("random graphs of this density have cycles");
        let rep = approx.weight.expect("approximation must find a cycle");
        assert!(
            rep >= opt && rep <= 2 * opt,
            "2-approx violated: {rep} vs {opt}"
        );
        t.row(vec![
            n.to_string(),
            g.m().to_string(),
            d.to_string(),
            exact.ledger.rounds.to_string(),
            approx.ledger.rounds.to_string(),
            ratio(approx.ledger.rounds, exact.ledger.rounds),
            opt.to_string(),
            rep.to_string(),
            format!("{:.2}", rep as f64 / opt as f64),
        ]);
        ns.push(n as f64);
        exact_rounds.push(exact.ledger.rounds as f64);
        approx_rounds.push(approx.ledger.rounds as f64);
        n *= 2;
    }
    t.print();
    t.save_tsv("table1_directed_unweighted");
    if ns.len() >= 2 {
        // The approximation's polylog factors (sampling ~ln n, |S|² ~ln²n)
        // dominate at benchable sizes; the ln²-normalized exponent shows
        // the underlying power law (paper: 0.8).
        let norm: Vec<f64> = ns
            .iter()
            .zip(&approx_rounds)
            .map(|(n, r)| r / n.ln().powi(2))
            .collect();
        println!(
            "fitted exponents: exact n^{:.2} (paper ~1.0), 2-approx n^{:.2} raw, n^{:.2} after ln²n normalization (paper ~0.8)\n",
            fit_exponent(&ns, &exact_rounds),
            fit_exponent(&ns, &approx_rounds),
            fit_exponent(&ns, &norm)
        );
    }

    // ---- weighted: exact vs (2+ε)-approx (Theorem 1.2.D) ----
    let mut t = Table::new(
        "Table 1 / directed weighted MWC: exact Õ(n) vs (2+ε)-approx Õ(n^{4/5}+D)",
        &[
            "n",
            "m",
            "W",
            "exact_rounds",
            "approx_rounds",
            "approx/exact",
            "opt",
            "reported",
            "quality",
        ],
    );
    let w_max = 8;
    let max_wn = (max_n / 2).max(128);
    let mut n = 64;
    let (mut ns, mut er, mut ar) = (Vec::new(), Vec::new(), Vec::new());
    while n <= max_wn {
        let g = connected_gnm(
            n,
            3 * n,
            Orientation::Directed,
            WeightRange::uniform(1, w_max),
            11 + n as u64,
        );
        let exact = exact_mwc(&g);
        let approx = approx_mwc_directed_weighted(&g, &params);
        rec.congestion(&format!("n={n} weighted exact"), &exact.ledger);
        rec.congestion(&format!("n={n} (2+eps)-approx"), &approx.ledger);
        let opt = exact.weight.expect("cycle exists");
        let rep = approx.weight.expect("approximation must find a cycle");
        let bound = ((2.0 + params.epsilon) * opt as f64).ceil() as u64 + 2;
        assert!(rep >= opt && rep <= bound, "(2+ε) violated: {rep} vs {opt}");
        t.row(vec![
            n.to_string(),
            g.m().to_string(),
            w_max.to_string(),
            exact.ledger.rounds.to_string(),
            approx.ledger.rounds.to_string(),
            ratio(approx.ledger.rounds, exact.ledger.rounds),
            opt.to_string(),
            rep.to_string(),
            format!("{:.2}", rep as f64 / opt as f64),
        ]);
        ns.push(n as f64);
        er.push(exact.ledger.rounds as f64);
        ar.push(approx.ledger.rounds as f64);
        n *= 2;
    }
    t.print();
    t.save_tsv("table1_directed_weighted");
    if ns.len() >= 2 {
        let norm: Vec<f64> = ns
            .iter()
            .zip(&ar)
            .map(|(n, r)| r / n.ln().powi(2))
            .collect();
        println!(
            "fitted exponents: exact n^{:.2}, (2+ε)-approx n^{:.2} raw, n^{:.2} after ln²n normalization (paper ~0.8 + log(nW))",
            fit_exponent(&ns, &er),
            fit_exponent(&ns, &ar),
            fit_exponent(&ns, &norm)
        );
    }
    rec.finish();
}
