//! **trace_diff** — the differential perf gate: compares fresh run records
//! against committed baselines span-by-span and exits nonzero on
//! regression.
//!
//! Pairs `<name>.json` files between the fresh and baseline directories,
//! parses each pair as a [`RunRecord`], and diffs with per-metric
//! tolerances ([`diff_records`]). Improvements never fail; structural
//! drift (spans appearing/disappearing, baselines without fresh records
//! or vice versa) fails loudly so the gate cannot rot silently.
//!
//! On regression (or always with `--verbose`) the report ends with a
//! **triage** section: the top-K span paths across all record pairs,
//! ranked by their |delta| contribution to the regressed totals (rounds,
//! words, and — for baselines that carry allocation data — bytes), plus
//! the ready-to-run commands to reproduce the worst offender
//! (`scripts/perf_gate.sh --bin <name>`) and to bisect it at message
//! level (`mwc_replay bisect` over two `MWC_TRACE_EVENTS` captures).
//!
//! Artifacts (all under `results/`):
//!
//! - `trace_diff_report.txt` — the human report printed to stdout,
//! - `trace_diff_report.json` — machine-readable per-pair entries,
//! - `triage.json` — the ranked span triage (written on every run, empty
//!   ranking when nothing moved),
//! - `BENCH_trajectory.json` — per-record baseline vs fresh totals, the
//!   commit-over-commit round-complexity trajectory.
//!
//! Exit codes: `0` no regressions, `1` at least one regression, `2`
//! configuration error (unpaired or unparsable records — refresh the
//! baselines, see `docs/observability.md`).
//!
//! Usage: `trace_diff [fresh_dir] [base_dir] [rel_tolerance]`
//! (defaults `results/run_records`, `results/baselines`, `0`).
//! Flags (never shift the positionals):
//!
//! - `--only=NAME` — restrict pairing to one record name (for
//!   `perf_gate.sh --bin`, where other baselines have no fresh record),
//! - `--top=K` — triage ranking depth (default 5),
//! - `--verbose` — print the triage section even without a regression.

use mwc_bench::report;
use mwc_bench::report::Json;
use mwc_trace::{diff_records, triage_spans, DiffConfig, RunDiff, RunRecord, TriageEntry};
use std::collections::BTreeMap;
use std::path::Path;

/// Reads every `<name>.json` under `dir` as `(name, text)`.
fn load_dir(dir: &Path) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return out,
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.extension().is_some_and(|e| e == "json") {
            let name = path
                .file_stem()
                .and_then(|s| s.to_str())
                .unwrap_or_default()
                .to_owned();
            if let Ok(text) = std::fs::read_to_string(&path) {
                out.insert(name, text);
            }
        }
    }
    out
}

fn incomparable(name: &str, why: String) -> RunDiff {
    RunDiff {
        name: name.to_owned(),
        incomparable: Some(why),
        entries: Vec::new(),
    }
}

fn totals_json(r: &RunRecord) -> Json {
    Json::obj([
        ("rounds", Json::U64(r.rounds)),
        ("words", Json::U64(r.words)),
        ("messages", Json::U64(r.messages)),
        ("rounds_saved", Json::U64(r.rounds_saved)),
        // Informational only (never gated): the wall-clock/allocation
        // trajectory and the parallelism knobs the record was produced
        // under. `alloc_*` IS gated in the default config, but the
        // trajectory keeps it here too so sweeps stay attributable.
        ("wall_ms", Json::U64(r.wall_ms)),
        ("alloc_bytes", Json::U64(r.alloc_bytes)),
        ("alloc_count", Json::U64(r.alloc_count)),
        ("peak_alloc_bytes", Json::U64(r.peak_alloc_bytes)),
        ("shards", Json::U64(r.shards)),
        ("jobs", Json::U64(r.jobs)),
    ])
}

/// One human-report line for the informational fields — printed, never
/// gated, so the reader sees the wall-clock/allocation/parallelism
/// context instead of the report silently dropping it.
fn info_line(base: &RunRecord, fresh: &RunRecord) -> String {
    format!(
        "{:<16} wall_ms {} -> {}, peak_alloc {} -> {}, shards {} -> {}, jobs {} -> {} \
         (informational, never gated)\n",
        "info",
        base.wall_ms,
        fresh.wall_ms,
        base.peak_alloc_bytes,
        fresh.peak_alloc_bytes,
        base.shards,
        fresh.shards,
        base.jobs,
        fresh.jobs
    )
}

/// `--verbose` / `--top=K` / `--only=NAME`. Flags are filtered out of
/// [`report::arg`]'s positional view by construction, so they never shift
/// `[fresh_dir] [base_dir] [rel_tolerance]`.
struct Flags {
    verbose: bool,
    top: usize,
    only: Option<String>,
}

fn parse_flags() -> Flags {
    let mut f = Flags {
        verbose: false,
        top: 5,
        only: None,
    };
    for a in std::env::args().skip(1) {
        if a == "--verbose" {
            f.verbose = true;
        } else if let Some(v) = a.strip_prefix("--top=") {
            if let Ok(n) = v.trim().parse::<usize>() {
                f.top = n.max(1);
            }
        } else if let Some(v) = a.strip_prefix("--only=") {
            f.only = Some(v.trim().to_owned());
        }
    }
    f
}

fn triage_entry_json(record: &str, e: &TriageEntry) -> Json {
    let mut pairs = match e.to_json() {
        Json::Obj(pairs) => pairs,
        _ => unreachable!("TriageEntry::to_json returns an object"),
    };
    pairs.insert(0, ("record".to_owned(), Json::str(record)));
    Json::Obj(pairs)
}

/// The ready-to-run message-level bisect recipe for a record name: two
/// `MWC_TRACE_EVENTS` captures (baseline commit vs. working tree) fed to
/// `mwc_replay bisect`, which prints the first divergent (round, link).
fn bisect_hint(name: &str) -> String {
    format!(
        "cargo run --release -p mwc-bench --bin mwc_replay -- bisect \
         results/{name}.base.events.jsonl results/{name}.fresh.events.jsonl"
    )
}

fn main() {
    let fresh_dir = report::arg_str(1, &format!("results/{}", report::RUN_RECORD_DIR));
    let base_dir = report::arg_str(2, "results/baselines");
    let rel: f64 = report::arg(3, 0.0);
    let flags = parse_flags();
    let cfg = if rel > 0.0 {
        DiffConfig::uniform_rel(rel)
    } else {
        DiffConfig::default()
    };

    let fresh = load_dir(Path::new(&fresh_dir));
    let base = load_dir(Path::new(&base_dir));
    let names: Vec<&String> = base.keys().chain(fresh.keys()).collect();
    let mut names: Vec<String> = names.into_iter().cloned().collect();
    names.sort();
    names.dedup();
    if let Some(only) = &flags.only {
        names.retain(|n| n == only);
        if names.is_empty() {
            eprintln!("trace_diff: --only={only} matches no record in {fresh_dir} or {base_dir}");
            std::process::exit(2);
        }
    }
    if names.is_empty() {
        eprintln!("trace_diff: no records in {fresh_dir} or {base_dir}");
        std::process::exit(2);
    }

    let mut diffs: Vec<RunDiff> = Vec::new();
    let mut trajectory: Vec<Json> = Vec::new();
    let mut info_lines: BTreeMap<String, String> = BTreeMap::new();
    let mut pairs: Vec<(String, RunRecord, RunRecord)> = Vec::new();
    for name in &names {
        let diff = match (base.get(name), fresh.get(name)) {
            (Some(_), None) => incomparable(
                name,
                format!("baseline exists but no fresh record in {fresh_dir} — did the bin run?"),
            ),
            (None, Some(_)) => incomparable(
                name,
                format!(
                    "fresh record has no committed baseline in {base_dir} — \
                     refresh baselines (docs/observability.md)"
                ),
            ),
            (Some(b), Some(f)) => match (RunRecord::parse(b), RunRecord::parse(f)) {
                (Ok(b), Ok(f)) => {
                    trajectory.push(Json::obj([
                        ("name", Json::str(name)),
                        ("base", totals_json(&b)),
                        ("fresh", totals_json(&f)),
                    ]));
                    info_lines.insert(name.clone(), info_line(&b, &f));
                    let d = diff_records(&b, &f, &cfg);
                    pairs.push((name.clone(), b, f));
                    d
                }
                (Err(e), _) => incomparable(name, format!("baseline unparsable: {e}")),
                (_, Err(e)) => incomparable(name, format!("fresh record unparsable: {e}")),
            },
            (None, None) => unreachable!("name came from one of the maps"),
        };
        diffs.push(diff);
    }

    let config_errors = diffs.iter().filter(|d| d.incomparable.is_some()).count();
    let regressions: usize = diffs.iter().map(RunDiff::regression_count).sum();

    // Triage: every span path that moved, across all pairs, ranked by its
    // |delta| contribution to the baseline totals. Computed on every run
    // (the artifact always lands); printed on regression or --verbose.
    let mut triage: Vec<(String, TriageEntry)> = Vec::new();
    for (name, b, f) in &pairs {
        for e in triage_spans(b, f) {
            triage.push((name.clone(), e));
        }
    }
    triage.sort_by(|a, b| {
        b.1.score_milli
            .cmp(&a.1.score_milli)
            .then_with(|| a.0.cmp(&b.0))
            .then_with(|| a.1.path.cmp(&b.1.path))
    });
    triage.truncate(flags.top);

    let mut human = String::new();
    for d in &diffs {
        human.push_str(&d.render());
        if let Some(info) = info_lines.get(&d.name) {
            human.push_str(info);
        }
        human.push('\n');
    }
    human.push_str(&format!(
        "trace_diff: {} record pair(s), {regressions} regression(s), {config_errors} config error(s)\n",
        names.len()
    ));
    if !triage.is_empty() && (regressions > 0 || flags.verbose) {
        human.push_str(&format!(
            "\n== triage: top {} span path(s) by |delta| contribution ==\n",
            triage.len()
        ));
        for (i, (name, e)) in triage.iter().enumerate() {
            human.push_str(&format!(
                "  {:>2}. {:<24} {:<40} score {}.{:03} (rounds {:+}, words {:+}, alloc {:+})\n",
                i + 1,
                name,
                e.path,
                e.score_milli / 1000,
                e.score_milli % 1000,
                e.rounds_delta,
                e.words_delta,
                e.alloc_delta
            ));
        }
        if let Some((worst, _)) = triage.first() {
            human.push_str(&format!("  rerun:  scripts/perf_gate.sh --bin {worst}\n"));
            human.push_str(&format!(
                "  bisect: capture MWC_TRACE_EVENTS=results/{worst}.base.events.jsonl (baseline \
                 commit) and results/{worst}.fresh.events.jsonl (this tree), then:\n"
            ));
            human.push_str(&format!("          {}\n", bisect_hint(worst)));
        }
    }
    print!("{human}");
    report::save_artifact("trace_diff_report.txt", &human);
    report::save_json(
        "trace_diff_report.json",
        &Json::obj([
            ("schema", Json::str("mwc-trace-diff/v1")),
            ("tolerance_rel", Json::F64(rel)),
            ("regressions", Json::U64(regressions as u64)),
            ("config_errors", Json::U64(config_errors as u64)),
            (
                "diffs",
                Json::Arr(diffs.iter().map(RunDiff::to_json).collect()),
            ),
        ]),
    );
    let worst = triage.first();
    report::save_json(
        "triage.json",
        &Json::obj([
            ("schema", Json::str("mwc-triage/v1")),
            ("regressed", Json::Bool(regressions > 0)),
            ("top", Json::U64(flags.top as u64)),
            (
                "entries",
                Json::Arr(
                    triage
                        .iter()
                        .map(|(n, e)| triage_entry_json(n, e))
                        .collect(),
                ),
            ),
            (
                "worst",
                match worst {
                    Some((name, e)) => Json::obj([
                        ("record", Json::str(name)),
                        ("path", Json::str(&e.path)),
                        (
                            "rerun",
                            Json::Str(format!("scripts/perf_gate.sh --bin {name}")),
                        ),
                        ("bisect", Json::Str(bisect_hint(name))),
                    ]),
                    None => Json::Null,
                },
            ),
        ]),
    );
    report::save_json(
        "BENCH_trajectory.json",
        &Json::obj([
            ("schema", Json::str("mwc-bench-trajectory/v1")),
            ("records", Json::Arr(trajectory)),
        ]),
    );

    if config_errors > 0 {
        std::process::exit(2);
    }
    if regressions > 0 {
        std::process::exit(1);
    }
}
