//! Round-complexity shape tests: the headline claims of Table 1, asserted
//! as conservative envelopes on measured simulator rounds.
//!
//! These are the "does the sublinear algorithm actually beat the linear
//! baseline" checks — the girth row, where the asymptotic gap is widest,
//! must show a crossover at test sizes; the others must stay inside
//! generous polylog envelopes.

use congest_mwc::core::{approx_girth, exact_mwc, k_source_bfs, Params};
use congest_mwc::graph::generators::{connected_gnm, WeightRange};
use congest_mwc::graph::seq::Direction;
use congest_mwc::graph::{NodeId, Orientation};

#[test]
fn girth_approximation_beats_exact_baseline() {
    // Theorem 1.3.B vs [28]: at n = 1024 the Õ(√n + D) algorithm must use
    // several times fewer rounds than the O(n) baseline.
    let n = 1024;
    let g = connected_gnm(n, 2 * n, Orientation::Undirected, WeightRange::unit(), 77);
    let params = Params::lean().with_seed(5);
    let exact = exact_mwc(&g);
    let approx = approx_girth(&g, &params);
    assert!(
        approx.ledger.rounds * 3 <= exact.ledger.rounds,
        "approximation ({}) should be ≥3x cheaper than exact ({}) at n = {n}",
        approx.ledger.rounds,
        exact.ledger.rounds
    );
}

#[test]
fn girth_rounds_scale_sublinearly() {
    let params = Params::lean().with_seed(5);
    let rounds = |n: usize| {
        let g = connected_gnm(
            n,
            2 * n,
            Orientation::Undirected,
            WeightRange::unit(),
            n as u64,
        );
        approx_girth(&g, &params).ledger.rounds
    };
    let (r512, r2048) = (rounds(512), rounds(2048));
    // 4× the nodes must cost well under 4× the rounds (√n predicts 2×;
    // allow 3× for polylogs).
    assert!(
        r2048 * 10 <= r512 * 30,
        "girth approximation is not sublinear: {r512} → {r2048}"
    );
}

#[test]
fn exact_girth_is_linear() {
    let rounds = |n: usize| {
        let g = connected_gnm(
            n,
            2 * n,
            Orientation::Undirected,
            WeightRange::unit(),
            n as u64,
        );
        exact_mwc(&g).ledger.rounds
    };
    let (r256, r1024) = (rounds(256), rounds(1024));
    let growth = r1024 as f64 / r256 as f64;
    assert!(
        (2.0..8.0).contains(&growth),
        "exact girth should grow ~linearly (×4): got ×{growth:.1}"
    );
}

#[test]
fn ksssp_scales_with_sqrt_nk() {
    // Theorem 1.6.A at fixed n: moving from k to 4k in the √(nk) regime
    // should far less than quadruple the rounds.
    let n = 1024;
    let g = connected_gnm(n, 3 * n, Orientation::Directed, WeightRange::unit(), 3);
    let params = Params::lean().with_seed(8);
    let srcs = |k: usize| (0..k).map(|i| i * n / k).collect::<Vec<NodeId>>();
    let r64 = k_source_bfs(&g, &srcs(64), Direction::Forward, &params)
        .ledger
        .rounds;
    let r256 = k_source_bfs(&g, &srcs(256), Direction::Forward, &params)
        .ledger
        .rounds;
    assert!(
        r256 <= r64 * 3,
        "k-source BFS should scale ~√k in the large-k regime: {r64} → {r256}"
    );
}

#[test]
fn diameter_term_shows_up_on_path_like_graphs() {
    // The +D term: on a long thin graph, even the approximation pays ~D.
    let n = 600;
    let mut g = congest_mwc::graph::Graph::undirected(n);
    for i in 0..n - 1 {
        g.add_edge(i, i + 1, 1).unwrap();
    }
    g.add_edge(n - 1, 0, 1).unwrap(); // one huge ring: D ≈ n/2
    let params = Params::lean().with_seed(2);
    let out = approx_girth(&g, &params);
    assert_eq!(out.weight, Some(n as u64));
    assert!(
        out.ledger.rounds as usize >= n / 2,
        "a D ≈ n/2 network cannot be solved in fewer than D rounds: {}",
        out.ledger.rounds
    );
}
