//! A minimal, deterministic JSON value type and writer.
//!
//! The repo is hermetic (no serde); every artifact writer in the workspace
//! shares this module so JSON output is produced by exactly one escaper and
//! one number formatter. Rendering is fully deterministic: object keys keep
//! insertion order, floats use Rust's shortest round-trip formatting, and no
//! wall-clock data is ever injected — byte-identical output across runs is
//! a tested guarantee (see the `trace_report` CI check).

use std::fmt::Write as _;

/// A JSON value. Objects preserve insertion order (no hashing), which keeps
/// rendering deterministic.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (the common case for round/word counts).
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float; non-finite values render as `null`.
    F64(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn obj<I, K>(pairs: I) -> Json
    where
        I: IntoIterator<Item = (K, Json)>,
        K: Into<String>,
    {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Renders on one line with no whitespace (JSONL-friendly).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Renders with 2-space indentation for human-readable artifacts.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => write_f64(*v, out),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    indent(out, depth + 1);
                    write_escaped(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                    if i + 1 < pairs.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                indent(out, depth);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_f64(v: f64, out: &mut String) {
    if !v.is_finite() {
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 1e15 {
        // Integral floats render with a ".0" so the type survives a
        // round-trip through stricter parsers.
        let _ = write!(out, "{v:.1}");
    } else {
        let _ = write!(out, "{v}");
    }
}

/// Writes `s` as a JSON string literal (quoted, escaped) into `out`.
pub fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact() {
        let v = Json::obj([
            ("a", Json::U64(3)),
            ("b", Json::Arr(vec![Json::Bool(true), Json::Null])),
            ("s", Json::str("x\"y\n")),
        ]);
        assert_eq!(v.render(), r#"{"a":3,"b":[true,null],"s":"x\"y\n"}"#);
    }

    #[test]
    fn floats_are_deterministic() {
        assert_eq!(Json::F64(1.0).render(), "1.0");
        assert_eq!(Json::F64(0.5).render(), "0.5");
        assert_eq!(Json::F64(f64::NAN).render(), "null");
        assert_eq!(Json::F64(f64::INFINITY).render(), "null");
    }

    #[test]
    fn pretty_rendering_is_stable() {
        let v = Json::obj([("k", Json::Arr(vec![Json::U64(1), Json::U64(2)]))]);
        assert_eq!(v.render_pretty(), "{\n  \"k\": [\n    1,\n    2\n  ]\n}\n");
        assert_eq!(Json::Obj(vec![]).render_pretty(), "{}\n");
    }

    #[test]
    fn control_chars_escape() {
        assert_eq!(Json::str("\u{1}").render(), "\"\\u0001\"");
    }
}
