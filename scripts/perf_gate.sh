#!/usr/bin/env bash
# Perf gate: regenerate every bench bin's RunRecord at pinned gate sizes
# and diff them against the committed baselines in results/baselines/.
#
# Usage:
#   scripts/perf_gate.sh              # run bins + trace_diff (exit 1 on
#                                     # regression, 2 on unpaired records)
#   scripts/perf_gate.sh refresh      # run bins, diff against the OLD
#                                     # baselines (tolerated — the diff and
#                                     # trajectory document the change), then
#                                     # overwrite the baselines (the
#                                     # one-command path for intentional perf
#                                     # changes — commit the result)
#   scripts/perf_gate.sh --bin NAME   # run and gate ONE bin (trace_diff is
#                                     # restricted to that record with
#                                     # --only, so other baselines are not
#                                     # reported unpaired) — the fast inner
#                                     # loop when triage names an offender
#
# refresh and --bin compose: `scripts/perf_gate.sh refresh --bin NAME`
# refreshes only that bin's baseline.
#
# The bins run in a scratch directory (target/perf_gate) so the committed
# full-size artifacts under results/ are never clobbered by the smaller
# gate-size runs; only results/baselines/ and the
# results/BENCH_trajectory.json append-log live in the repo.
#
# Every gated run also exports results/trace.perfetto.json (the
# trace_report fixture's Chrome Trace Event Format profile — load it in
# ui.perfetto.dev) and results/triage.json (the ranked span triage from
# trace_diff); both are validated/structured artifacts, uploaded by CI.
#
# The sizes below are the gate contract: records are only comparable when
# name AND parameters match, so changing a size here requires a baseline
# refresh in the same commit.
set -euo pipefail
REPO="$(cd "$(dirname "$0")/.." && pwd)"
WORK="$REPO/target/perf_gate"

REFRESH=0
ONLY=""
while [ "$#" -gt 0 ]; do
  case "$1" in
    refresh) REFRESH=1 ;;
    --bin)
      if [ "$#" -lt 2 ]; then
        echo "perf_gate: --bin needs a name" >&2
        exit 2
      fi
      ONLY="$2"
      shift
      ;;
    --bin=*) ONLY="${1#--bin=}" ;;
    *) echo "perf_gate: unknown argument '$1'" >&2; exit 2 ;;
  esac
  shift
done

# --bin accepts either the bin name or the record name; they differ only
# for phase_breakdown, whose record is phase_breakdown_<algo>.
ONLY_RECORD="$ONLY"
case "$ONLY" in
  phase_breakdown) ONLY_RECORD=phase_breakdown_directed ;;
  phase_breakdown_*) ONLY=phase_breakdown ;;
esac

rm -rf "$WORK"
mkdir -p "$WORK"
cd "$WORK"

# Ask every bin for the Chrome trace export of its run (written to
# results/trace.perfetto.json in the scratch dir; last bin wins, and
# trace_report always writes its own regardless).
export MWC_TRACE_EXPORT=1

run() {
  cargo run --manifest-path "$REPO/Cargo.toml" --release --offline \
    -p mwc-bench --bin "$@" > /dev/null
}

# Runs a gated workload bin unless --bin=NAME filtered it out. The filter
# matches the bin name, so `--bin=phase_breakdown` selects the
# phase_breakdown_directed record.
gate() {
  if [ -n "$ONLY" ] && [ "$1" != "$ONLY" ]; then
    return 0
  fi
  RAN_ANY=1
  run "$@"
}

RAN_ANY=0
gate table1_girth 1024
gate table1_directed 256
gate table1_undirected_weighted 128
gate table1_lower_bounds 12
gate thm16_ksssp 256
gate approx_quality 64 3
gate ablation 128
gate detection_rounds 12
gate traffic_profile 12
gate phase_breakdown directed 256
gate trace_report 96

if [ "$RAN_ANY" = 0 ]; then
  echo "perf_gate: --bin=$ONLY matches no gated bin" >&2
  exit 2
fi

# Diff fresh records against the committed baselines FIRST, so a refresh
# still produces a meaningful BENCH_trajectory.json (base = old committed
# baselines, fresh = this run). Reports land in $WORK/results/
# (trace_diff_report.{txt,json}, triage.json, BENCH_trajectory.json).
DIFF_STATUS=0
cargo run --manifest-path "$REPO/Cargo.toml" --release --offline \
  -p mwc-bench --bin trace_diff -- ${ONLY:+--only="$ONLY_RECORD"} \
  results/run_records "$REPO/results/baselines" \
  || DIFF_STATUS=$?

# Aggregate the gated run's observability artifacts: the per-bin
# shard-imbalance/cache-hit/profile report, the combined OpenMetrics
# exposition (validated by the in-tree checker), the Chrome trace export
# (validated by the in-tree structural checker), and one appended entry
# per bin in the committed perf-trajectory log.
run mwc_metrics report results/run_records
run mwc_metrics check results/metrics.prom
run mwc_metrics check-trace results/trace.perfetto.json
cargo run --manifest-path "$REPO/Cargo.toml" --release --offline \
  -p mwc-bench --bin mwc_metrics append-trajectory results/run_records \
  "$REPO/results/BENCH_trajectory.json" > /dev/null

if [ "$REFRESH" = 1 ]; then
  # Refreshing: regressions against the old baselines are being accepted
  # deliberately; only configuration errors (exit 2) still abort.
  if [ "$DIFF_STATUS" -ge 2 ]; then
    echo "perf_gate: trace_diff configuration error ($DIFF_STATUS)" >&2
    exit "$DIFF_STATUS"
  fi

  # The weighted benches must show the phase cache working: a refreshed
  # baseline with rounds_saved == 0 everywhere means the cache silently
  # stopped firing, and committing it would let the gate rot. In --bin
  # mode only the bins that actually ran are checked.
  for rec in table1_undirected_weighted table1_girth phase_breakdown_directed; do
    if [ ! -f "results/run_records/$rec.json" ]; then
      continue
    fi
    if ! grep -q '"rounds_saved": *[1-9]' "results/run_records/$rec.json"; then
      echo "perf_gate: refreshed $rec.json has no nonzero rounds_saved —" \
           "the phase cache is not firing; refusing to refresh" >&2
      exit 1
    fi
  done

  # The trajectory is NOT copied: it is an append-log that
  # `mwc_metrics append-trajectory` already extended above.
  mkdir -p "$REPO/results/baselines"
  cp results/run_records/*.json "$REPO/results/baselines/"
  echo "baselines refreshed from $WORK/results/run_records/"
else
  exit "$DIFF_STATUS"
fi
