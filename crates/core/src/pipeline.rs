//! The skeleton-graph pipeline shared by exact `k`-source BFS (Theorem
//! 1.6.A) and approximate `k`-source SSSP (Theorem 1.6.B).
//!
//! Algorithm 1's structure is independent of *how* the `h`-bounded
//! segment distances are computed: plain BFS for unweighted graphs, scaled
//! stretched BFS for the `(1+ε)` weighted variant (§2, "Weighted Graphs").
//! This module implements the structure once, generic over a [`Segments`]
//! provider.

use crate::params::Params;
use crate::util::sample_vertices;
use mwc_congest::{broadcast, Ledger, PhaseCache, INF};
use mwc_graph::{Graph, NodeId, Weight};

pub(crate) const SALT_SAMPLES: u64 = 0xA1;

/// An `h`-bounded multi-source distance table with path reconstruction.
pub(crate) trait Segments {
    /// Distance from the `row`-th source to `v`, [`INF`] if not found.
    fn get(&self, row: usize, v: NodeId) -> Weight;
    /// A real path from the `row`-th source to `v` realizing (at most) the
    /// reported distance, in forward orientation.
    fn path(&self, row: usize, v: NodeId) -> Option<Vec<NodeId>>;
}

/// Output of [`skeleton_pipeline`].
#[derive(Clone, Debug)]
pub(crate) enum Pipeline<S> {
    /// One unbounded run covered everything (small `n` or `k ≈ n`).
    Direct(S),
    /// Full skeleton composition.
    Skeleton(Box<SkeletonParts<S>>),
}

#[derive(Clone, Debug)]
pub(crate) struct SkeletonParts<S> {
    pub samples: Vec<NodeId>,
    /// `h`-bounded segments from the sources `U`.
    pub seg_u: S,
    /// `h`-bounded segments from the samples `S`.
    pub seg_s: S,
    /// Exact/approx source→sample distances, `k × |S|`.
    pub d_us: Vec<Weight>,
    /// Skeleton APSP distances, `|S| × |S|`.
    pub skel_dist: Vec<Weight>,
    /// Skeleton APSP predecessors (sample indices), `|S| × |S|`.
    pub skel_pred: Vec<u32>,
    /// Combined distances, `k × n`.
    pub final_dist: Vec<Weight>,
    pub n: usize,
}

impl<S: Segments> Pipeline<S> {
    pub(crate) fn get_row(&self, row: usize, v: NodeId) -> Weight {
        match self {
            Pipeline::Direct(s) => s.get(row, v),
            Pipeline::Skeleton(p) => p.final_dist[row * p.n + v],
        }
    }

    /// Path in forward orientation; may be a walk (callers simplify).
    pub(crate) fn path_row(&self, row: usize, v: NodeId) -> Option<Vec<NodeId>> {
        match self {
            Pipeline::Direct(s) => s.path(row, v),
            Pipeline::Skeleton(p) => p.path(row, v),
        }
    }
}

impl<S: Segments> SkeletonParts<S> {
    fn ns(&self) -> usize {
        self.samples.len()
    }

    fn path(&self, row: usize, v: NodeId) -> Option<Vec<NodeId>> {
        let d = self.final_dist[row * self.n + v];
        if d == INF {
            return None;
        }
        if self.seg_u.get(row, v) <= d {
            return self.seg_u.path(row, v);
        }
        // Argmin sample for the combined distance.
        let ns = self.ns();
        let si = (0..ns)
            .filter(|&si| self.d_us[row * ns + si] != INF && self.seg_s.get(si, v) != INF)
            .min_by_key(|&si| self.d_us[row * ns + si] + self.seg_s.get(si, v))?;
        let mut p = self.path_to_sample(row, si)?;
        let tail = self.seg_s.path(si, v)?;
        p.extend_from_slice(&tail[1..]);
        Some(p)
    }

    fn path_to_sample(&self, row: usize, si: usize) -> Option<Vec<NodeId>> {
        let ns = self.ns();
        let d = self.d_us[row * ns + si];
        let s_node = self.samples[si];
        if self.seg_u.get(row, s_node) <= d {
            return self.seg_u.path(row, s_node);
        }
        let t = (0..ns)
            .filter(|&t| {
                self.seg_u.get(row, self.samples[t]) != INF && self.skel_dist[t * ns + si] != INF
            })
            .min_by_key(|&t| self.seg_u.get(row, self.samples[t]) + self.skel_dist[t * ns + si])?;
        let mut p = self.seg_u.path(row, self.samples[t])?;
        let mut hops = vec![si];
        let mut cur = si;
        while cur != t {
            let pr = self.skel_pred[t * ns + cur];
            if pr == u32::MAX || hops.len() > ns {
                return None;
            }
            cur = pr as usize;
            hops.push(cur);
        }
        hops.reverse();
        for w in hops.windows(2) {
            let seg = self.seg_s.path(w[0], self.samples[w[1]])?;
            p.extend_from_slice(&seg[1..]);
        }
        Some(p)
    }
}

/// Local (free) APSP on the skeleton graph.
fn skeleton_apsp(ns: usize, edges: &[(u32, u32, Weight)]) -> (Vec<Weight>, Vec<u32>) {
    let mut adj: Vec<Vec<(u32, Weight)>> = vec![Vec::new(); ns];
    for &(a, b, w) in edges {
        adj[a as usize].push((b, w));
    }
    let mut dist = vec![INF; ns * ns];
    let mut pred = vec![u32::MAX; ns * ns];
    for src in 0..ns {
        let base = src * ns;
        let mut heap = std::collections::BinaryHeap::new();
        dist[base + src] = 0;
        heap.push(std::cmp::Reverse((0u64, src as u32)));
        while let Some(std::cmp::Reverse((d, u))) = heap.pop() {
            if d > dist[base + u as usize] {
                continue;
            }
            for &(v, w) in &adj[u as usize] {
                let nd = d + w;
                if nd < dist[base + v as usize] {
                    dist[base + v as usize] = nd;
                    pred[base + v as usize] = u;
                    heap.push(std::cmp::Reverse((nd, v)));
                }
            }
        }
    }
    (dist, pred)
}

/// Runs Algorithm 1's skeleton composition. `runner(g, sources, label,
/// ledger)` must produce `h_hops`-bounded segments; sampling uses
/// `h_hops/2`-windows so consecutive samples on any shortest path are
/// within `h_hops` of each other w.h.p.
pub(crate) fn skeleton_pipeline<S: Segments>(
    g: &Graph,
    sources: &[NodeId],
    h_hops: u64,
    params: &Params,
    ledger: &mut Ledger,
    mut runner: impl FnMut(&Graph, &[NodeId], &str, &mut Ledger) -> S,
) -> Pipeline<S> {
    let n = g.n();
    let k = sources.len();

    let p = params.sample_prob(n, (h_hops / 2).max(1));
    let samples = sample_vertices(n, p, params.seed, SALT_SAMPLES);
    let ns = samples.len();

    // Line 2: h-hop segments from the samples.
    let seg_s = {
        let _s = mwc_trace::span("ksssp/segments-from-S");
        runner(g, &samples, "h-hop segments from S", ledger)
    };

    // Lines 4–5: broadcast skeleton edges.
    let tree = PhaseCache::bfs_tree(g, 0, ledger);
    let mut skel_items: Vec<(NodeId, (u32, u32, Weight))> = Vec::new();
    for i in 0..ns {
        for (j, &t) in samples.iter().enumerate() {
            if i == j {
                continue;
            }
            let d = seg_s.get(i, t);
            if d != INF {
                skel_items.push((t, (i as u32, j as u32, d)));
            }
        }
    }
    let skel_edges: Vec<(u32, u32, Weight)> = {
        let _s = mwc_trace::span("ksssp/skeleton-broadcast");
        broadcast(g, &tree, skel_items, 1, ledger)
            .into_iter()
            .map(|(_, e)| e)
            .collect()
    };

    // Line 6: local skeleton APSP.
    let (skel_dist, skel_pred) = {
        let _s = mwc_trace::span("ksssp/skeleton-apsp");
        skeleton_apsp(ns, &skel_edges)
    };

    // Line 7: h-hop segments from the sources, broadcast source→sample
    // distances.
    let seg_u = {
        let _s = mwc_trace::span("ksssp/segments-from-U");
        runner(g, sources, "h-hop segments from U", ledger)
    };
    let mut us_items: Vec<(NodeId, (u32, u32, Weight))> = Vec::new();
    for row in 0..k {
        for (si, &s) in samples.iter().enumerate() {
            let d = seg_u.get(row, s);
            if d != INF {
                us_items.push((s, (row as u32, si as u32, d)));
            }
        }
    }
    let us_edges: Vec<(u32, u32, Weight)> = {
        let _s = mwc_trace::span("ksssp/source-broadcast");
        broadcast(g, &tree, us_items, 1, ledger)
            .into_iter()
            .map(|(_, e)| e)
            .collect()
    };

    // Line 8 (local everywhere): source→sample distances via entry samples.
    let mut d_us = vec![INF; k * ns];
    for &(row, si, d) in &us_edges {
        let cell = &mut d_us[row as usize * ns + si as usize];
        *cell = (*cell).min(d);
    }
    let d_us_hop = d_us.clone();
    for row in 0..k {
        for si in 0..ns {
            let mut best = d_us[row * ns + si];
            for t in 0..ns {
                let a = d_us_hop[row * ns + t];
                let b = skel_dist[t * ns + si];
                if a != INF && b != INF {
                    best = best.min(a + b);
                }
            }
            d_us[row * ns + si] = best;
        }
    }

    // Lines 9–10 (local, justified by the global broadcasts — see the
    // ksssp module docs): combine.
    let mut final_dist = vec![INF; k * n];
    for row in 0..k {
        for v in 0..n {
            let mut best = seg_u.get(row, v);
            for si in 0..ns {
                let a = d_us[row * ns + si];
                let b = seg_s.get(si, v);
                if a != INF && b != INF {
                    best = best.min(a + b);
                }
            }
            final_dist[row * n + v] = best;
        }
    }

    Pipeline::Skeleton(Box::new(SkeletonParts {
        samples,
        seg_u,
        seg_s,
        d_us,
        skel_dist,
        skel_pred,
        final_dist,
        n,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwc_congest::{multi_source_bfs, DistMatrix, MultiBfsSpec};
    use mwc_graph::generators::{ring_with_chords, WeightRange};
    use mwc_graph::seq::Direction;
    use mwc_graph::Orientation;

    /// Witness soundness of [`SkeletonParts::path`]: every reconstructed
    /// path must be a walk over real edges from the source to `v` whose
    /// total weight is at most the reported `final_dist` — including on
    /// the skeleton branch, where the path is stitched from `seg_u`, a
    /// skeleton predecessor walk, and `seg_s` tails.
    #[test]
    fn skeleton_paths_are_real_and_within_final_dist() {
        // 96-ring with a few chords, h = 8: most of the ring is far
        // outside any single h-hop segment, so the combination step (and
        // the skeleton-hop expansion in `path_to_sample`) must do real
        // work for distant targets.
        let g = ring_with_chords(96, 4, Orientation::Undirected, WeightRange::unit(), 11);
        let sources = [0usize, 17];
        let h = 8u64;
        let params = Params::new().with_seed(5);
        let mut ledger = Ledger::new();
        let spec = MultiBfsSpec {
            max_dist: h,
            direction: Direction::Forward,
            latency: None,
        };
        let pipe: Pipeline<DistMatrix> = skeleton_pipeline(
            &g,
            &sources,
            h,
            &params,
            &mut ledger,
            |g, srcs, label, ledger| multi_source_bfs(g, srcs, &spec, label, ledger),
        );
        let Pipeline::Skeleton(parts) = pipe else {
            panic!("direct skeleton_pipeline call must produce the skeleton variant");
        };

        let n = g.n();
        let ns = parts.samples.len();
        let mut beyond_segment = 0usize; // pairs only coverable via the skeleton
        let mut expanded_hops = 0usize; // paths that walked skeleton predecessors
        for (row, &s) in sources.iter().enumerate() {
            for v in 0..n {
                let d = parts.final_dist[row * n + v];
                if d == INF {
                    assert!(parts.path(row, v).is_none(), "INF pair returned a path");
                    continue;
                }
                let p = parts.path(row, v).expect("finite distance ⇒ path");
                assert_eq!(*p.first().unwrap(), s, "path must start at the source");
                assert_eq!(*p.last().unwrap(), v, "path must end at the target");
                let mut w: Weight = 0;
                for e in p.windows(2) {
                    w += g
                        .weight(e[0], e[1])
                        .unwrap_or_else(|| panic!("path edge {}→{} not in graph", e[0], e[1]));
                }
                assert!(
                    w <= d,
                    "witness weight {w} > final_dist {d} (row {row}, v {v})"
                );

                if parts.seg_u.get_row(row, v) == INF {
                    beyond_segment += 1;
                    // Re-derive the argmin sample the way `path` does; if
                    // its direct entry is worse than the combined
                    // source→sample distance, `path_to_sample` had to
                    // expand skeleton hops.
                    if let Some(si) = (0..ns)
                        .filter(|&si| {
                            parts.d_us[row * ns + si] != INF && parts.seg_s.get_row(si, v) != INF
                        })
                        .min_by_key(|&si| parts.d_us[row * ns + si] + parts.seg_s.get_row(si, v))
                    {
                        if parts.seg_u.get_row(row, parts.samples[si]) > parts.d_us[row * ns + si] {
                            expanded_hops += 1;
                        }
                    }
                }
            }
        }
        assert!(
            beyond_segment > 0,
            "test graph too easy: every pair was covered by seg_u alone"
        );
        assert!(
            expanded_hops > 0,
            "no reconstructed path exercised the skeleton-hop expansion"
        );
    }
}
