//! Witness cycles.
//!
//! Per Definition 1.1 of the paper, the distributed algorithms compute the
//! *weight* of a (near-)minimum weight cycle but can also reconstruct the
//! cycle itself. Every algorithm in this repository returns a
//! [`CycleWitness`] alongside the weight so tests can check that the
//! reported value is the weight of a **real simple cycle** — this is what
//! makes the "never underestimates the MWC" guarantee checkable.

use crate::graph::{Graph, NodeId, Weight};
use std::collections::HashSet;
use std::fmt;

/// A simple cycle given as its vertex sequence `v₀, v₁, …, v_{k−1}`; the
/// edges are `(v₀,v₁), …, (v_{k−2},v_{k−1}), (v_{k−1},v₀)`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct CycleWitness {
    vertices: Vec<NodeId>,
}

/// Reasons a [`CycleWitness`] can fail validation against a graph.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WitnessError {
    /// Fewer vertices than a simple cycle needs (2 for directed graphs,
    /// 3 for undirected graphs, where a 2-cycle would reuse one edge).
    TooShort {
        /// Number of vertices in the witness.
        len: usize,
        /// Minimum required for this orientation.
        min: usize,
    },
    /// A vertex appears twice.
    RepeatedVertex {
        /// The repeated vertex.
        node: NodeId,
    },
    /// A vertex id is `>= n`.
    NodeOutOfRange {
        /// The out-of-range vertex.
        node: NodeId,
    },
    /// A required edge is missing from the graph.
    MissingEdge {
        /// Tail endpoint.
        u: NodeId,
        /// Head endpoint.
        v: NodeId,
    },
}

impl fmt::Display for WitnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            WitnessError::TooShort { len, min } => {
                write!(f, "cycle has {len} vertices, fewer than the minimum {min}")
            }
            WitnessError::RepeatedVertex { node } => {
                write!(f, "vertex {node} repeats, cycle is not simple")
            }
            WitnessError::NodeOutOfRange { node } => write!(f, "vertex {node} not in graph"),
            WitnessError::MissingEdge { u, v } => write!(f, "edge ({u}, {v}) not in graph"),
        }
    }
}

impl std::error::Error for WitnessError {}

impl CycleWitness {
    /// Wraps a vertex sequence as a witness. No validation happens here;
    /// call [`CycleWitness::validate`] to check it against a graph.
    pub fn new(vertices: Vec<NodeId>) -> Self {
        CycleWitness { vertices }
    }

    /// The vertex sequence.
    pub fn vertices(&self) -> &[NodeId] {
        &self.vertices
    }

    /// Number of vertices (equivalently, edges) on the cycle — the *hop
    /// length* in the paper's terminology.
    pub fn hop_len(&self) -> usize {
        self.vertices.len()
    }

    /// Checks that this is a simple cycle of `graph` and returns its total
    /// weight.
    ///
    /// # Errors
    ///
    /// Returns a [`WitnessError`] describing the first violated condition:
    /// minimum length (2 directed / 3 undirected), vertex range,
    /// simplicity, and existence of every edge including the closing edge.
    ///
    /// # Examples
    ///
    /// ```
    /// use mwc_graph::{Graph, CycleWitness};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let g = Graph::from_edges(3, mwc_graph::Orientation::Directed,
    ///     [(0, 1, 2), (1, 2, 3), (2, 0, 4)])?;
    /// let w = CycleWitness::new(vec![0, 1, 2]);
    /// assert_eq!(w.validate(&g)?, 9);
    /// # Ok(())
    /// # }
    /// ```
    pub fn validate(&self, graph: &Graph) -> Result<Weight, WitnessError> {
        let min = if graph.is_directed() { 2 } else { 3 };
        if self.vertices.len() < min {
            return Err(WitnessError::TooShort {
                len: self.vertices.len(),
                min,
            });
        }
        let mut seen = HashSet::with_capacity(self.vertices.len());
        for &v in &self.vertices {
            if v >= graph.n() {
                return Err(WitnessError::NodeOutOfRange { node: v });
            }
            if !seen.insert(v) {
                return Err(WitnessError::RepeatedVertex { node: v });
            }
        }
        let mut total: Weight = 0;
        for i in 0..self.vertices.len() {
            let u = self.vertices[i];
            let v = self.vertices[(i + 1) % self.vertices.len()];
            match graph.weight(u, v) {
                Some(w) => total += w,
                None => return Err(WitnessError::MissingEdge { u, v }),
            }
        }
        Ok(total)
    }
}

impl fmt::Display for CycleWitness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cycle[")?;
        for (i, v) in self.vertices.iter().enumerate() {
            if i > 0 {
                write!(f, " → ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, " → …]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Orientation;

    fn triangle() -> Graph {
        Graph::from_edges(
            4,
            Orientation::Undirected,
            [(0, 1, 1), (1, 2, 2), (2, 0, 3), (2, 3, 9)],
        )
        .unwrap()
    }

    #[test]
    fn valid_triangle() {
        let w = CycleWitness::new(vec![0, 1, 2]);
        assert_eq!(w.validate(&triangle()), Ok(6));
        assert_eq!(w.hop_len(), 3);
    }

    #[test]
    fn order_reversed_is_also_valid_undirected() {
        let w = CycleWitness::new(vec![2, 1, 0]);
        assert_eq!(w.validate(&triangle()), Ok(6));
    }

    #[test]
    fn undirected_two_cycle_rejected() {
        let w = CycleWitness::new(vec![0, 1]);
        assert_eq!(
            w.validate(&triangle()),
            Err(WitnessError::TooShort { len: 2, min: 3 })
        );
    }

    #[test]
    fn directed_two_cycle_allowed() {
        let g = Graph::from_edges(2, Orientation::Directed, [(0, 1, 4), (1, 0, 6)]).unwrap();
        let w = CycleWitness::new(vec![0, 1]);
        assert_eq!(w.validate(&g), Ok(10));
    }

    #[test]
    fn rejects_repeat() {
        let w = CycleWitness::new(vec![0, 1, 0, 2]);
        assert_eq!(
            w.validate(&triangle()),
            Err(WitnessError::RepeatedVertex { node: 0 })
        );
    }

    #[test]
    fn rejects_missing_edge() {
        let w = CycleWitness::new(vec![0, 1, 3]);
        assert_eq!(
            w.validate(&triangle()),
            Err(WitnessError::MissingEdge { u: 1, v: 3 })
        );
    }

    #[test]
    fn rejects_out_of_range() {
        let w = CycleWitness::new(vec![0, 1, 17]);
        assert_eq!(
            w.validate(&triangle()),
            Err(WitnessError::NodeOutOfRange { node: 17 })
        );
    }

    #[test]
    fn directed_orientation_matters() {
        let g =
            Graph::from_edges(3, Orientation::Directed, [(0, 1, 1), (1, 2, 1), (2, 0, 1)]).unwrap();
        assert!(CycleWitness::new(vec![0, 1, 2]).validate(&g).is_ok());
        assert_eq!(
            CycleWitness::new(vec![2, 1, 0]).validate(&g),
            Err(WitnessError::MissingEdge { u: 2, v: 1 })
        );
    }
}
