//! A minimal, deterministic JSON value type and writer.
//!
//! The repo is hermetic (no serde); every artifact writer in the workspace
//! shares this module so JSON output is produced by exactly one escaper and
//! one number formatter. Rendering is fully deterministic: object keys keep
//! insertion order, floats use Rust's shortest round-trip formatting, and no
//! wall-clock data is ever injected — byte-identical output across runs is
//! a tested guarantee (see the `trace_report` CI check).

use std::fmt::Write as _;

/// A JSON value. Objects preserve insertion order (no hashing), which keeps
/// rendering deterministic.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (the common case for round/word counts).
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float; non-finite values render as `null`.
    F64(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn obj<I, K>(pairs: I) -> Json
    where
        I: IntoIterator<Item = (K, Json)>,
        K: Into<String>,
    {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Looks up `key` in an object; `None` for other variants or missing
    /// keys (first match wins, mirroring the writer's no-duplicates use).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64` ([`Json::U64`] or a non-negative integral
    /// [`Json::I64`]); `None` otherwise.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::U64(v) => Some(v),
            Json::I64(v) => u64::try_from(v).ok(),
            _ => None,
        }
    }

    /// The value as `f64` (any numeric variant); `None` otherwise.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::U64(v) => Some(v as f64),
            Json::I64(v) => Some(v as f64),
            Json::F64(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a string slice; `None` for non-strings.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice; `None` for non-arrays.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders on one line with no whitespace (JSONL-friendly).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Renders with 2-space indentation for human-readable artifacts.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => write_f64(*v, out),
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    indent(out, depth + 1);
                    write_escaped(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                    if i + 1 < pairs.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                indent(out, depth);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

/// Error from [`Json::parse`]: what went wrong and the byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of the failure.
    pub message: String,
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

impl Json {
    /// Parses a JSON document (the subset this module emits: no scientific
    /// notation requirements beyond what Rust's float parser accepts, no
    /// `\u` surrogate pairs outside the BMP). Object key order is
    /// preserved, so `parse(render(v)) == v` for every value this module
    /// renders — the round-trip contract baselines and event logs rely on.
    ///
    /// # Errors
    ///
    /// [`ParseError`] with a byte offset on malformed input or trailing
    /// garbage.
    pub fn parse(input: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(v)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_owned(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') if self.eat("null") => Ok(Json::Null),
            Some(b't') if self.eat("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat("false") => Ok(Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.pos += 1; // '{'
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected string key in object"));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected ':' after object key"));
            }
            self.pos += 1;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.pos += 1; // '"'
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\' && c >= 0x20) {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("\\u escape is not a scalar value"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| self.err("malformed number"))
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_f64(v: f64, out: &mut String) {
    if !v.is_finite() {
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 1e15 {
        // Integral floats render with a ".0" so the type survives a
        // round-trip through stricter parsers.
        let _ = write!(out, "{v:.1}");
    } else {
        let _ = write!(out, "{v}");
    }
}

/// Writes `s` as a JSON string literal (quoted, escaped) into `out`.
pub fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact() {
        let v = Json::obj([
            ("a", Json::U64(3)),
            ("b", Json::Arr(vec![Json::Bool(true), Json::Null])),
            ("s", Json::str("x\"y\n")),
        ]);
        assert_eq!(v.render(), r#"{"a":3,"b":[true,null],"s":"x\"y\n"}"#);
    }

    #[test]
    fn floats_are_deterministic() {
        assert_eq!(Json::F64(1.0).render(), "1.0");
        assert_eq!(Json::F64(0.5).render(), "0.5");
        assert_eq!(Json::F64(f64::NAN).render(), "null");
        assert_eq!(Json::F64(f64::INFINITY).render(), "null");
    }

    #[test]
    fn pretty_rendering_is_stable() {
        let v = Json::obj([("k", Json::Arr(vec![Json::U64(1), Json::U64(2)]))]);
        assert_eq!(v.render_pretty(), "{\n  \"k\": [\n    1,\n    2\n  ]\n}\n");
        assert_eq!(Json::Obj(vec![]).render_pretty(), "{}\n");
    }

    #[test]
    fn control_chars_escape() {
        assert_eq!(Json::str("\u{1}").render(), "\"\\u0001\"");
    }

    #[test]
    fn parse_round_trips_rendered_values() {
        let v = Json::obj([
            ("u", Json::U64(u64::MAX)),
            ("i", Json::I64(-42)),
            ("f", Json::F64(0.375)),
            ("whole", Json::F64(8.0)),
            ("s", Json::str("x\"y\n\u{1}π")),
            ("b", Json::Bool(false)),
            ("nul", Json::Null),
            (
                "nest",
                Json::Arr(vec![Json::U64(1), Json::obj([("k", Json::str(""))])]),
            ),
        ]);
        for text in [v.render(), v.render_pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), v);
        }
    }

    #[test]
    fn parse_classifies_numbers() {
        assert_eq!(Json::parse("3").unwrap(), Json::U64(3));
        assert_eq!(Json::parse("-3").unwrap(), Json::I64(-3));
        assert_eq!(Json::parse("3.5").unwrap(), Json::F64(3.5));
        assert_eq!(Json::parse("1e3").unwrap(), Json::F64(1000.0));
        // Larger than i64 but not u64: falls through to float.
        assert_eq!(
            Json::parse("99999999999999999999999").unwrap(),
            Json::F64(1e23)
        );
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in ["", "{", "[1,", "\"abc", "{\"a\":}", "1 2", "nulll", "{a:1}"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should not parse");
        }
        let e = Json::parse("[1, garbage]").unwrap_err();
        assert!(e.to_string().contains("byte 4"), "{e}");
    }

    #[test]
    fn accessors_navigate_parsed_documents() {
        let v = Json::parse(r#"{"a":{"b":[1,-2,"s"]},"r":1.5}"#).unwrap();
        let arr = v.get("a").unwrap().get("b").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_u64(), None);
        assert_eq!(arr[1].as_f64(), Some(-2.0));
        assert_eq!(arr[2].as_str(), Some("s"));
        assert_eq!(v.get("r").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("missing"), None);
    }
}
