//! Sequential shortest-path algorithms: BFS, Dijkstra and hop-limited
//! Bellman–Ford, with parent trees for path extraction.

use crate::graph::{Adj, Graph, NodeId, Weight};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Sentinel for an unreachable node in weighted distances.
pub const INF: Weight = Weight::MAX;

/// Sentinel for an unreachable node in hop distances.
pub const HOP_INF: usize = usize::MAX;

/// Which way to traverse the edges of a directed graph. On an undirected
/// graph the two directions coincide.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Direction {
    /// Follow edges `u → v` from tail to head (distances *from* the source).
    #[default]
    Forward,
    /// Follow edges against their orientation (distances *to* the source).
    Reverse,
}

impl Direction {
    /// Adjacency list of `v` in this traversal direction.
    pub fn adj<'g>(&self, g: &'g Graph, v: NodeId) -> &'g [Adj] {
        match self {
            Direction::Forward => g.out_adj(v),
            Direction::Reverse => g.in_adj(v),
        }
    }
}

/// Result of a hop-based search: distances in hops and a shortest-path tree.
#[derive(Clone, Debug)]
pub struct HopDistTree {
    /// `dist[v]` = hop distance from the source ([`HOP_INF`] if unreachable).
    pub dist: Vec<usize>,
    /// `parent[v]` = predecessor of `v` on a shortest path from the source.
    pub parent: Vec<Option<NodeId>>,
}

/// Result of a weighted search: distances and a shortest-path tree.
#[derive(Clone, Debug)]
pub struct DistTree {
    /// `dist[v]` = weighted distance from the source ([`INF`] if
    /// unreachable).
    pub dist: Vec<Weight>,
    /// `parent[v]` = predecessor of `v` on a shortest path from the source.
    pub parent: Vec<Option<NodeId>>,
}

/// Breadth-first search from `src`, following edges in `dir`.
///
/// # Examples
///
/// ```
/// use mwc_graph::{Graph, Orientation};
/// use mwc_graph::seq::{bfs, Direction, HOP_INF};
///
/// # fn main() -> Result<(), mwc_graph::GraphError> {
/// let g = Graph::from_edges(3, Orientation::Directed, [(0, 1, 1), (1, 2, 1)])?;
/// let t = bfs(&g, 0, Direction::Forward);
/// assert_eq!(t.dist, vec![0, 1, 2]);
/// let r = bfs(&g, 0, Direction::Reverse);
/// assert_eq!(r.dist[2], HOP_INF);
/// # Ok(())
/// # }
/// ```
pub fn bfs(g: &Graph, src: NodeId, dir: Direction) -> HopDistTree {
    let mut dist = vec![HOP_INF; g.n()];
    let mut parent = vec![None; g.n()];
    let mut queue = VecDeque::new();
    dist[src] = 0;
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        for a in dir.adj(g, u) {
            if dist[a.to] == HOP_INF {
                dist[a.to] = dist[u] + 1;
                parent[a.to] = Some(u);
                queue.push_back(a.to);
            }
        }
    }
    HopDistTree { dist, parent }
}

/// Dijkstra's algorithm from `src`, following edges in `dir`. Weights are
/// non-negative by the [`Graph`] invariant.
pub fn dijkstra(g: &Graph, src: NodeId, dir: Direction) -> DistTree {
    dijkstra_skipping(g, src, dir, usize::MAX)
}

/// Dijkstra that ignores the edge with id `skip_edge` in both directions —
/// the workhorse of the per-edge-deletion MWC oracle. Pass
/// `skip_edge = usize::MAX` to skip nothing.
pub(crate) fn dijkstra_skipping(
    g: &Graph,
    src: NodeId,
    dir: Direction,
    skip_edge: usize,
) -> DistTree {
    let mut dist = vec![INF; g.n()];
    let mut parent = vec![None; g.n()];
    let mut heap = BinaryHeap::new();
    dist[src] = 0;
    heap.push(Reverse((0, src)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u] {
            continue;
        }
        for a in dir.adj(g, u) {
            if a.edge == skip_edge {
                continue;
            }
            let nd = d + a.weight;
            if nd < dist[a.to] {
                dist[a.to] = nd;
                parent[a.to] = Some(u);
                heap.push(Reverse((nd, a.to)));
            }
        }
    }
    DistTree { dist, parent }
}

/// Exact *hop-limited* shortest-path distances: `dist[v]` is the minimum
/// weight of a path from `src` to `v` with at most `h` edges, or [`INF`].
///
/// This is the sequential analogue of the `h`-hop-bounded distances that
/// Algorithm 1 of the paper computes distributively, and the oracle the
/// distributed version is tested against.
pub fn bellman_ford_hops(g: &Graph, src: NodeId, h: usize, dir: Direction) -> Vec<Weight> {
    let mut dist = vec![INF; g.n()];
    dist[src] = 0;
    let mut frontier: Vec<NodeId> = vec![src];
    // `cur` holds the best distance using at most i hops after iteration i.
    let mut cur = dist.clone();
    for _ in 0..h {
        if frontier.is_empty() {
            break;
        }
        let mut next = Vec::new();
        for &u in &frontier {
            let du = dist[u];
            if du == INF {
                continue;
            }
            for a in dir.adj(g, u) {
                let nd = du + a.weight;
                if nd < cur[a.to] {
                    if cur[a.to] == dist[a.to] {
                        next.push(a.to);
                    }
                    cur[a.to] = nd;
                }
            }
        }
        // A node improved this round participates in the next relaxation
        // round; `dist` tracks ≤ i-hop distances, `cur` ≤ i+1.
        next.sort_unstable();
        next.dedup();
        dist.copy_from_slice(&cur);
        frontier = next;
    }
    dist
}

/// Reconstructs the path from the tree's source to `v` (inclusive) from a
/// parent array. Returns `None` if `v` has no parent chain (unreachable and
/// not the source itself — pass the source's distance to disambiguate).
pub fn extract_path(parent: &[Option<NodeId>], src: NodeId, v: NodeId) -> Option<Vec<NodeId>> {
    let mut path = vec![v];
    let mut cur = v;
    while cur != src {
        cur = parent[cur]?;
        path.push(cur);
        if path.len() > parent.len() {
            return None; // defensive: malformed parent array
        }
    }
    path.reverse();
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Orientation;

    fn weighted_diamond() -> Graph {
        // 0 → 1 → 3 cost 2+2=4, 0 → 2 → 3 cost 1+1=2.
        Graph::from_edges(
            4,
            Orientation::Directed,
            [(0, 1, 2), (1, 3, 2), (0, 2, 1), (2, 3, 1)],
        )
        .unwrap()
    }

    #[test]
    fn bfs_forward_and_reverse() {
        let g = weighted_diamond();
        let f = bfs(&g, 0, Direction::Forward);
        assert_eq!(f.dist, vec![0, 1, 1, 2]);
        let r = bfs(&g, 3, Direction::Reverse);
        assert_eq!(r.dist, vec![2, 1, 1, 0]);
    }

    #[test]
    fn bfs_undirected_symmetric() {
        let g = Graph::from_edges(
            4,
            Orientation::Undirected,
            [(0, 1, 1), (1, 2, 1), (2, 3, 1)],
        )
        .unwrap();
        let f = bfs(&g, 3, Direction::Forward);
        assert_eq!(f.dist, vec![3, 2, 1, 0]);
        let r = bfs(&g, 3, Direction::Reverse);
        assert_eq!(f.dist, r.dist);
    }

    #[test]
    fn dijkstra_prefers_light_path() {
        let g = weighted_diamond();
        let t = dijkstra(&g, 0, Direction::Forward);
        assert_eq!(t.dist, vec![0, 2, 1, 2]);
        assert_eq!(extract_path(&t.parent, 0, 3), Some(vec![0, 2, 3]));
    }

    #[test]
    fn dijkstra_reverse() {
        let g = weighted_diamond();
        let t = dijkstra(&g, 3, Direction::Reverse);
        assert_eq!(t.dist, vec![2, 2, 1, 0]);
    }

    #[test]
    fn dijkstra_unreachable_is_inf() {
        let mut g = Graph::directed(3);
        g.add_edge(0, 1, 5).unwrap();
        let t = dijkstra(&g, 0, Direction::Forward);
        assert_eq!(t.dist[2], INF);
        assert_eq!(extract_path(&t.parent, 0, 2), None);
    }

    #[test]
    fn hop_limited_matches_tradeoff() {
        // 0 → 3 direct weight 10 (1 hop) vs 0 → 1 → 2 → 3 weight 3 (3 hops).
        let g = Graph::from_edges(
            4,
            Orientation::Directed,
            [(0, 3, 10), (0, 1, 1), (1, 2, 1), (2, 3, 1)],
        )
        .unwrap();
        assert_eq!(bellman_ford_hops(&g, 0, 1, Direction::Forward)[3], 10);
        assert_eq!(bellman_ford_hops(&g, 2, 1, Direction::Forward)[3], 1);
        assert_eq!(bellman_ford_hops(&g, 0, 3, Direction::Forward)[3], 3);
        assert_eq!(bellman_ford_hops(&g, 0, 0, Direction::Forward)[3], INF);
    }

    #[test]
    fn hop_limited_equals_dijkstra_when_h_large() {
        let g = weighted_diamond();
        let bf = bellman_ford_hops(&g, 0, g.n(), Direction::Forward);
        let dj = dijkstra(&g, 0, Direction::Forward);
        assert_eq!(bf, dj.dist);
    }

    #[test]
    fn skipping_edge_reroutes() {
        let g = weighted_diamond();
        let cheap_edge = g.edge_id(2, 3).unwrap();
        let t = dijkstra_skipping(&g, 0, Direction::Forward, cheap_edge);
        assert_eq!(t.dist[3], 4); // forced through 0 → 1 → 3
    }
}
