//! **mwc-replay** — reader for message-level event logs captured with
//! `MWC_TRACE_EVENTS=<path>` (see `mwc_congest::events`).
//!
//! Subcommands:
//!
//! - `mwc_replay summary <log.jsonl>` — per-phase table (global round
//!   ranges, words, messages).
//! - `mwc_replay window <log.jsonl> <lo> <hi> [vertex]` — replays the
//!   global-round window `[lo, hi]` as per-vertex inbox/outbox views,
//!   optionally restricted to one vertex.
//! - `mwc_replay bisect <a.jsonl> <b.jsonl>` — locates the first
//!   divergent (round, link) between two logs; exits `1` when the logs
//!   diverge, `0` when identical.
//!
//! Exit codes: `0` success/identical, `1` divergence found (bisect), `2`
//! usage or unreadable/unparsable log.

use mwc_congest::{first_divergence, EventLog};

fn load(path: &str) -> EventLog {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("mwc-replay: cannot read {path}: {e}");
        std::process::exit(2);
    });
    EventLog::parse(&text).unwrap_or_else(|e| {
        eprintln!("mwc-replay: {path}: {e}");
        std::process::exit(2);
    })
}

fn usage() -> ! {
    eprintln!(
        "usage: mwc_replay summary <log.jsonl>\n\
         \x20      mwc_replay window <log.jsonl> <lo> <hi> [vertex]\n\
         \x20      mwc_replay bisect <a.jsonl> <b.jsonl>"
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("summary") => {
            let [path] = &args[2..] else { usage() };
            print!("{}", load(path).render_summary());
        }
        Some("window") => {
            let (path, lo, hi, vertex) = match &args[2..] {
                [p, lo, hi] => (p, lo, hi, None),
                [p, lo, hi, v] => (p, lo, hi, Some(v)),
                _ => usage(),
            };
            let parse = |s: &String| -> u64 {
                s.parse().unwrap_or_else(|_| {
                    eprintln!("mwc-replay: not a number: {s}");
                    std::process::exit(2);
                })
            };
            let vertex = vertex.map(|v| parse(v) as usize);
            print!("{}", load(path).render_window(parse(lo), parse(hi), vertex));
        }
        Some("bisect") => {
            let [a_path, b_path] = &args[2..] else {
                usage()
            };
            let (a, b) = (load(a_path), load(b_path));
            match first_divergence(&a, &b) {
                None => println!("logs identical ({} message(s))", a.messages.len()),
                Some(d) => {
                    println!("first divergence: {}", d.detail);
                    println!("-- replay of round {} in {a_path} --", d.round);
                    print!("{}", a.render_window(d.round, d.round, None));
                    println!("-- replay of round {} in {b_path} --", d.round);
                    print!("{}", b.render_window(d.round, d.round, None));
                    std::process::exit(1);
                }
            }
        }
        _ => usage(),
    }
}
