//! Congestion-timeline demonstration of **random-delay scheduling**
//! (\[24, 36\], used by Algorithm 3 line 9): when every vertex starts a
//! flood simultaneously, per-round link traffic spikes (the analogue of
//! phase-overflow); spreading the start times over `ρ` rounds flattens
//! the peak to ~`total/ρ` at the cost of a longer tail — which is
//! exactly why Algorithm 3 can cap per-phase messages at `Θ(log n)` and
//! bound the overflow set.
//!
//! Uses the engine's per-round traffic history on a radius-limited
//! k-token flood over a grid (the shape of Algorithm 3's h-hop restricted
//! BFS), with delay ranges ρ ∈ {1 (no delays), √n, n^{4/5}}.
//!
//! Usage: `traffic_profile [n_side]` (default 24, i.e. a 24×24 grid).

use mwc_bench::plot::{downsample_max, sparkline_scaled};
use mwc_bench::{report, Table};
use mwc_congest::{flood_engagement, Ledger, Network};
use mwc_graph::generators::{grid, WeightRange};
use mwc_graph::{NodeId, Orientation};
use mwc_rng::StdRng;
use std::collections::HashSet;

/// Floods one radius-`h`-limited token per source with per-source start
/// delays; returns the ledger carrying the congestion timeline and
/// per-link totals. Message = (token, hops left).
fn flood_with_delays(g: &mwc_graph::Graph, sources: &[NodeId], delays: &[u64], h: u32) -> Ledger {
    let n = g.n();
    let mut net: Network<(u32, u32)> = Network::new(g);
    net.enable_history();
    let mut seen: Vec<HashSet<u32>> = vec![HashSet::new(); n];
    for (i, &s) in sources.iter().enumerate() {
        seen[s].insert(i as u32);
        net.schedule_wakeup(delays[i].max(1), s);
    }
    let mut started: Vec<bool> = vec![false; sources.len()];
    let mut out = mwc_congest::RoundOutput::default();
    while net.step_bulk_into(&mut out) {
        for v in out.wakeups.drain(..) {
            for (i, &s) in sources.iter().enumerate() {
                if s == v && !started[i] {
                    started[i] = true;
                    for w in g.comm_neighbors(v) {
                        net.send(v, w, (i as u32, h - 1), 1).expect("neighbors");
                    }
                }
            }
        }
        for d in out.deliveries.drain(..) {
            let (token, left) = d.payload;
            if seen[d.to].insert(token) && left > 0 {
                for w in g.comm_neighbors(d.to) {
                    if w != d.from {
                        net.send(d.to, w, (token, left - 1), 1).expect("neighbors");
                    }
                }
            }
        }
    }
    let mut ledger = Ledger::new();
    ledger.absorb("delayed flood", &net);
    ledger
}

/// Count allocator traffic so this bin's run record and optional Chrome
/// trace export carry allocation profile data alongside simulated rounds.
#[global_allocator]
static ALLOC: mwc_trace::profile::CountingAlloc = mwc_trace::profile::CountingAlloc;

fn main() {
    report::init_profiling();
    report::init_flood_kernel();
    let side: usize = report::arg(1, 24);
    let mut rec = report::RunRecorder::start("traffic_profile");
    rec.param("side", side);
    let g = grid(side, side, Orientation::Undirected, WeightRange::unit(), 0);
    let n = g.n();
    let h = 6u32; // restricted-BFS-style radius
    let sources: Vec<NodeId> = (0..n).step_by(5).collect();

    let mut t = Table::new(
        &format!(
            "random-delay scheduling on a radius-{h} flood, {} sources ({side}×{side} grid)",
            sources.len()
        ),
        &[
            "delay range ρ",
            "makespan (rounds)",
            "peak words/round",
            "mean words/round",
            "peak/mean",
            "hottest link",
        ],
    );
    let rho_values = [
        ("1 (none)", 1u64),
        ("√n", (n as f64).sqrt().ceil() as u64),
        ("n^{4/5}", (n as f64).powf(0.8).ceil() as u64),
    ];
    let mut timelines: Vec<(String, Vec<u64>)> = Vec::new();
    for (label, rho) in rho_values {
        let mut rng = StdRng::seed_from_u64(7);
        let delays: Vec<u64> = sources.iter().map(|_| rng.random_range(1..=rho)).collect();
        let ledger = flood_with_delays(&g, &sources, &delays, h);
        rec.congestion(&format!("rho={label}"), &ledger);
        let hist = ledger.words_per_round();
        let makespan = hist.last().map(|&(r, _)| r).unwrap_or(0);
        let peak = hist.iter().map(|&(_, w)| w).max().unwrap_or(0);
        let total: u64 = hist.iter().map(|&(_, w)| w).sum();
        let mean = total as f64 / hist.len().max(1) as f64;
        let hot = ledger
            .hot_links(1)
            .first()
            .map(|((u, v), w)| format!("{u}→{v}: {w}"))
            .unwrap_or_default();
        t.row(vec![
            label.into(),
            makespan.to_string(),
            peak.to_string(),
            format!("{mean:.0}"),
            format!("{:.2}", peak as f64 / mean),
            hot,
        ]);
        // Dense timeline (fill quiet rounds) for the sparkline.
        let mut dense = vec![0u64; makespan as usize + 1];
        for &(r, w) in hist {
            dense[r as usize] = w;
        }
        timelines.push((label.to_string(), dense));
    }
    t.print();
    println!("\ncongestion timelines (words/round, max-pooled, shared time and value axes):");
    let span = timelines.iter().map(|(_, d)| d.len()).max().unwrap_or(1);
    let global_max = timelines
        .iter()
        .flat_map(|(_, d)| d.iter().copied())
        .max()
        .unwrap_or(1);
    for (label, mut dense) in timelines {
        dense.resize(span, 0);
        println!(
            "  ρ = {label:<9} {}",
            sparkline_scaled(&downsample_max(&dense, 64), global_max)
        );
    }
    t.save_tsv("traffic_profile");
    println!(
        "\nrandom delays trade a longer makespan for a flat profile — the property\n\
         that lets Algorithm 3 cap per-phase messages at Θ(log n) and bound |Z|."
    );
    // Kernel-engagement tally for this run (exported as the informational
    // `mwc_info_floods_*` gauges and stamped on the run record): the
    // delayed flood above is hand-rolled on the Network, so a nonzero
    // count here would mean a flood primitive sneaked into the pipeline.
    let (bitset, scalar) = flood_engagement();
    println!("flood-kernel engagement this run: {bitset} bitset / {scalar} scalar");
    rec.finish();
}
