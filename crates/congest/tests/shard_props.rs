//! Property-based tests for the engine's shard partitioner and the
//! sharded round kernel (`mwc_rng::proptest_lite`):
//!
//! - the [`ShardPlan`] is a true partition — every vertex (and every
//!   link id) lands in exactly one shard, ranges are contiguous, and the
//!   point lookups agree with the ranges;
//! - the cut-link set is complete (exactly the links whose endpoints
//!   live on different shards) and symmetric on undirected graphs;
//! - congestion artifacts derived from per-link word counts —
//!   [`Ledger::words_across`] and [`Ledger::hot_links`] — are invariant
//!   under the shard count;
//! - wakeups scheduled on nodes owned by remote shards fire at exactly
//!   the scheduled round.
//!
//! The shard knobs are process globals, so the properties that engage
//! the parallel kernel serialize on a lock and restore the unsharded
//! default before releasing it.

use std::sync::Mutex;

use mwc_congest::{multi_source_bfs, Ledger, MultiBfsSpec, Network, RoundOutput, ShardPlan};
use mwc_graph::generators::{connected_gnm, WeightRange};
use mwc_graph::{NodeId, Orientation};
use mwc_rng::proptest_lite::{self as plite, Config};
use mwc_rng::{prop_assert, prop_assert_eq, prop_tests};

static SHARD_GLOBALS: Mutex<()> = Mutex::new(());

prop_tests! {
    config = Config::with_cases(32);

    /// The plan partitions vertices and link ids: ranges are contiguous,
    /// cover everything exactly once, and the point lookups agree.
    fn plan_is_a_partition(degrees in plite::vec(0usize..6, 1..40), shards in 1usize..12) {
        let plan = ShardPlan::new(&degrees, shards);
        let n = degrees.len();
        prop_assert_eq!(plan.n(), n);
        prop_assert!(plan.shards() >= 1 && plan.shards() <= shards.max(1));

        let mut next_node = 0;
        let mut next_link = 0;
        for s in 0..plan.shards() {
            let nodes = plan.node_range(s);
            let links = plan.link_range(s);
            prop_assert_eq!(nodes.start, next_node, "vertex ranges must be contiguous");
            prop_assert_eq!(links.start, next_link, "link ranges must be contiguous");
            // A shard's link range is the degree sum of its vertex range.
            let degree_sum: usize = degrees[nodes.clone()].iter().sum();
            prop_assert_eq!(links.len(), degree_sum);
            for v in nodes.clone() {
                prop_assert_eq!(plan.shard_of_node(v), s, "node lookup disagrees with range");
            }
            for l in links.clone() {
                prop_assert_eq!(plan.shard_of_link(l), s, "link lookup disagrees with range");
            }
            next_node = nodes.end;
            next_link = links.end;
        }
        prop_assert_eq!(next_node, n, "vertex ranges must cover every node");
        prop_assert_eq!(next_link, degrees.iter().sum::<usize>());
    }

    /// The cut-link set is exactly the links whose endpoints live on
    /// different shards, and on undirected graphs it is symmetric: the
    /// reverse of every cut link is cut too.
    fn cut_links_complete_and_symmetric(seed in 0u64..5000, n in 2usize..28, extra in 0usize..50, shards in 1usize..9) {
        let g = connected_gnm(n, extra, Orientation::Undirected, WeightRange::unit(), seed);
        let plan = ShardPlan::for_graph(&g, shards);
        let net: Network<u8> = Network::new(&g);
        let ends = net.link_ends();
        let cut = plan.cut_links(ends);

        let in_cut: std::collections::HashSet<usize> = cut.iter().copied().collect();
        prop_assert_eq!(in_cut.len(), cut.len(), "cut set must not repeat links");
        for (l, &(u, v)) in ends.iter().enumerate() {
            let crosses = plan.shard_of_node(u) != plan.shard_of_node(v);
            prop_assert_eq!(in_cut.contains(&l), crosses, "completeness fails at link {}", l);
        }
        // Symmetry: undirected graphs create both directions of every
        // edge as links, so the reversed endpoint pair of a cut link is
        // itself a cut link.
        let pairs: std::collections::HashSet<(NodeId, NodeId)> =
            cut.iter().map(|&l| ends[l]).collect();
        for &(u, v) in &pairs {
            prop_assert!(pairs.contains(&(v, u)), "cut set asymmetric at ({}, {})", u, v);
        }
    }

    /// Per-link word counts — and with them `words_across` over arbitrary
    /// vertex sides and the `hot_links` ranking — do not depend on the
    /// shard count.
    fn congestion_artifacts_shard_invariant(seed in 0u64..5000, n in 4usize..24, extra in 0usize..40, shards in 2usize..9) {
        let g = connected_gnm(n, extra, Orientation::Undirected, WeightRange::unit(), seed);
        let sources: Vec<NodeId> = (0..n).step_by(3).collect();
        let run = |k: usize| {
            let _guard = SHARD_GLOBALS.lock().unwrap_or_else(|e| e.into_inner());
            mwc_par::set_shard_threshold(0);
            mwc_par::set_shards(k);
            let mut ledger = Ledger::new();
            let _ = multi_source_bfs(&g, &sources, &MultiBfsSpec::default(), "p", &mut ledger);
            mwc_par::set_shards(1);
            ledger
        };
        let base = run(1);
        let sharded = run(shards);
        prop_assert_eq!(sharded.hot_links(6), base.hot_links(6));
        // words_across over an alternating side and every singleton side.
        let stripes: Vec<bool> = (0..n).map(|v| v % 2 == 0).collect();
        prop_assert_eq!(sharded.words_across(&stripes), base.words_across(&stripes));
        for v in 0..n {
            let mut side = vec![false; n];
            side[v] = true;
            prop_assert_eq!(sharded.words_across(&side), base.words_across(&side));
        }
        prop_assert_eq!((sharded.rounds, sharded.words, sharded.messages),
                        (base.rounds, base.words, base.messages));
    }

    /// Wakeups land at exactly the scheduled round regardless of which
    /// shard owns the node, with cross-shard traffic keeping the sharded
    /// kernel engaged while the clock advances.
    fn remote_wakeups_fire_on_time(seed in 0u64..5000, n in 6usize..24, shards in 2usize..9) {
        let g = connected_gnm(n, n, Orientation::Undirected, WeightRange::unit(), seed);
        let _guard = SHARD_GLOBALS.lock().unwrap_or_else(|e| e.into_inner());
        mwc_par::set_shard_threshold(0);
        let mut net: Network<u32> = Network::new_sharded(&g, shards);
        mwc_par::set_shards(1);
        prop_assert!(net.shards() > 1, "kernel must actually shard {} nodes", n);
        // Long transfers on every link keep rounds busy past the wakeups.
        for v in 0..n {
            for w in g.comm_neighbors(v) {
                net.send(v, w, v as u32, 12).unwrap();
            }
        }
        // One wakeup per node, spread over the active window; every node
        // that is remote from shard 0 exercises the cross-shard path.
        let scheduled: Vec<(u64, NodeId)> = (0..n).map(|v| (1 + (v as u64 * 3) % 10, v)).collect();
        for &(round, v) in &scheduled {
            net.schedule_wakeup(round, v);
        }
        let mut fired: Vec<(u64, NodeId)> = Vec::new();
        let mut out = RoundOutput::default();
        while !net.is_idle() {
            net.step_into(&mut out);
            for v in out.wakeups.drain(..) {
                fired.push((net.round(), v));
            }
            out.deliveries.clear();
        }
        let mut want = scheduled;
        want.sort_unstable();
        fired.sort_unstable();
        prop_assert_eq!(fired, want);
    }
}
