//! Dense distance tables produced by the multi-source primitives.

use mwc_graph::{NodeId, Weight};

/// Sentinel distance for "not reached".
pub const INF: Weight = Weight::MAX;

const NO_PRED: u32 = u32::MAX;

/// A `k × n` table of distances from `k` sources to all nodes, with
/// predecessor pointers for witness reconstruction.
///
/// Storage is **node-major** (`[v * k + row]`): the dominant consumers —
/// per-delivery updates in the pipelined BFS, per-node column extraction
/// for the neighbor exchange, and the per-edge all-source candidate scans
/// — fix a node and vary the source row, so keeping a node's column
/// contiguous turns their inner loops into sequential reads. With `k = n`
/// the table is hundreds of megabytes at bench sizes; layout is what
/// decides whether those loops run at cache or DRAM speed.
///
/// For a **forward** search from source `s`, `pred(s, v)` is the node
/// preceding `v` on the discovered `s → … → v` path. For a **reverse**
/// search (distances *to* `s` in a directed graph), `pred(s, v)` is the
/// node following `v` on the discovered `v → … → s` path. Either way,
/// repeatedly following predecessors from `v` leads to `s`.
#[derive(Clone, Debug)]
pub struct DistMatrix {
    sources: Vec<NodeId>,
    /// `index_of[v]` = row of source `v`, or `u32::MAX`.
    index_of: Vec<u32>,
    n: usize,
    dist: Vec<Weight>,
    pred: Vec<u32>,
}

impl DistMatrix {
    /// An all-[`INF`] table for the given sources over `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics if a source id is `>= n` or appears twice.
    pub fn new(n: usize, sources: Vec<NodeId>) -> Self {
        let mut index_of = vec![u32::MAX; n];
        for (i, &s) in sources.iter().enumerate() {
            assert!(s < n, "source {s} out of range");
            assert!(index_of[s] == u32::MAX, "duplicate source {s}");
            index_of[s] = i as u32;
        }
        let k = sources.len();
        DistMatrix {
            sources,
            index_of,
            n,
            dist: vec![INF; k * n],
            pred: vec![NO_PRED; k * n],
        }
    }

    /// The sources, in row order.
    pub fn sources(&self) -> &[NodeId] {
        &self.sources
    }

    /// Number of sources.
    pub fn k(&self) -> usize {
        self.sources.len()
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Row index of source `s`, if `s` is a source.
    pub fn row_of(&self, s: NodeId) -> Option<usize> {
        let i = self.index_of[s];
        (i != u32::MAX).then_some(i as usize)
    }

    /// Distance from source `s` to node `v` ([`INF`] if unreached).
    ///
    /// # Panics
    ///
    /// Panics if `s` is not a source.
    pub fn get(&self, s: NodeId, v: NodeId) -> Weight {
        let row = self.row_of(s).expect("s must be a source");
        self.dist[v * self.k() + row]
    }

    /// Distance by row index.
    pub fn get_row(&self, row: usize, v: NodeId) -> Weight {
        self.dist[v * self.k() + row]
    }

    /// Sets the distance and predecessor for `(row, v)`.
    pub fn set_row(&mut self, row: usize, v: NodeId, d: Weight, pred: Option<NodeId>) {
        let i = v * self.k() + row;
        self.dist[i] = d;
        self.pred[i] = pred.map_or(NO_PRED, |p| p as u32);
    }

    /// Predecessor of `v` in the search from row `row` (see the type docs
    /// for direction semantics).
    pub fn pred_row(&self, row: usize, v: NodeId) -> Option<NodeId> {
        let p = self.pred[v * self.k() + row];
        (p != NO_PRED).then_some(p as usize)
    }

    /// The discovered chain from `v` back to the source of `row`,
    /// inclusive: `[v, pred(v), …, s]`. Returns `None` if `v` was not
    /// reached.
    pub fn chain_to_source(&self, row: usize, v: NodeId) -> Option<Vec<NodeId>> {
        if self.get_row(row, v) == INF {
            return None;
        }
        let s = self.sources[row];
        let mut path = vec![v];
        let mut cur = v;
        while cur != s {
            cur = self.pred_row(row, cur)?;
            path.push(cur);
            if path.len() > self.n {
                return None; // defensive: corrupted predecessor chain
            }
        }
        Some(path)
    }

    /// The path from the source of `row` to `v` in forward order
    /// `[s, …, v]`. Only meaningful for forward searches.
    pub fn path_from_source(&self, row: usize, v: NodeId) -> Option<Vec<NodeId>> {
        let mut p = self.chain_to_source(row, v)?;
        p.reverse();
        Some(p)
    }

    /// SplitMix64 digest over the full table — sources, every distance,
    /// and every predecessor. Two tables digest equal iff a primitive
    /// produced identical output (up to a hash collision), which lets
    /// differential harnesses compare megabyte tables as one word (the
    /// shard suite pins digests across `--shards` counts).
    pub fn digest(&self) -> u64 {
        fn mix(state: &mut u64, word: u64) {
            *state ^= word;
            mwc_rng::splitmix64(state);
        }
        let mut state: u64 = 0x6d77_6364_6973_746d; // "mwcdistm"
        mix(&mut state, self.n as u64);
        mix(&mut state, self.k() as u64);
        for &s in &self.sources {
            mix(&mut state, s as u64);
        }
        for &d in &self.dist {
            mix(&mut state, d);
        }
        for &p in &self.pred {
            mix(&mut state, p as u64);
        }
        mwc_rng::splitmix64(&mut state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_table_is_inf() {
        let m = DistMatrix::new(5, vec![1, 3]);
        assert_eq!(m.k(), 2);
        assert_eq!(m.get(1, 4), INF);
        assert_eq!(m.row_of(3), Some(1));
        assert_eq!(m.row_of(0), None);
    }

    #[test]
    fn set_get_roundtrip() {
        let mut m = DistMatrix::new(4, vec![2]);
        m.set_row(0, 2, 0, None);
        m.set_row(0, 0, 7, Some(2));
        assert_eq!(m.get(2, 0), 7);
        assert_eq!(m.pred_row(0, 0), Some(2));
    }

    #[test]
    fn chain_reconstruction() {
        let mut m = DistMatrix::new(4, vec![0]);
        m.set_row(0, 0, 0, None);
        m.set_row(0, 1, 1, Some(0));
        m.set_row(0, 2, 2, Some(1));
        assert_eq!(m.chain_to_source(0, 2), Some(vec![2, 1, 0]));
        assert_eq!(m.path_from_source(0, 2), Some(vec![0, 1, 2]));
        assert_eq!(m.chain_to_source(0, 3), None);
    }

    #[test]
    fn digest_tracks_every_field() {
        let mut a = DistMatrix::new(4, vec![0]);
        let b = a.clone();
        assert_eq!(a.digest(), b.digest());
        a.set_row(0, 1, 5, Some(0));
        assert_ne!(a.digest(), b.digest(), "distance change must show");
        let mut c = DistMatrix::new(4, vec![0]);
        c.set_row(0, 1, 5, Some(2));
        assert_ne!(a.digest(), c.digest(), "predecessor change must show");
    }

    #[test]
    #[should_panic(expected = "duplicate source")]
    fn duplicate_sources_panic() {
        let _ = DistMatrix::new(3, vec![1, 1]);
    }
}
