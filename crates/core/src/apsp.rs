//! Distributed all-pairs shortest paths — the substrate of the exact MWC
//! reductions (paper Table 1 upper bounds; \[8, 28, 37\]).
//!
//! Unweighted graphs use the classic pipelined all-source BFS (`O(n + D)`
//! rounds, Holzer & Wattenhofer \[28\]). Weighted graphs use a *stretched*
//! all-source BFS whose waves travel at weight-speed — **exact**, in
//! `O(n + max-distance)` rounds; this is the documented stand-in for
//! Bernstein–Nanongkai's `Õ(n)` exact APSP \[8\] (DESIGN.md §2), with the
//! same linear-in-`n` shape for the bounded weights used here.
//!
//! After the run, node `v` knows `d(s, v)` for **every** source `s` —
//! the CONGEST convention for APSP outputs.

use mwc_congest::{multi_source_bfs, DistMatrix, Ledger, MultiBfsSpec, INF};
use mwc_graph::seq::Direction;
use mwc_graph::{Graph, NodeId, Weight};

/// All-pairs distances with path reconstruction and round accounting;
/// produced by [`distributed_apsp`].
#[derive(Clone, Debug)]
pub struct ApspResult {
    mat: DistMatrix,
    /// Round/traffic accounting.
    pub ledger: Ledger,
}

impl ApspResult {
    /// Distance from `u` to `v` ([`INF`] if unreachable). For undirected
    /// graphs this is symmetric.
    pub fn dist(&self, u: NodeId, v: NodeId) -> Weight {
        self.mat.get_row(u, v)
    }

    /// A shortest path `u → … → v`, or `None` if unreachable.
    pub fn path(&self, u: NodeId, v: NodeId) -> Option<Vec<NodeId>> {
        self.mat.path_from_source(u, v)
    }

    /// The eccentricity of `u` over reachable nodes, or `None` if `u`
    /// reaches nothing but itself.
    pub fn eccentricity(&self, u: NodeId) -> Option<Weight> {
        (0..self.mat.n())
            .filter(|&v| v != u)
            .map(|v| self.dist(u, v))
            .filter(|&d| d != INF)
            .max()
    }

    /// The weighted diameter: max finite pairwise distance (`None` for a
    /// single node or an empty graph).
    pub fn diameter(&self) -> Option<Weight> {
        (0..self.mat.n()).filter_map(|u| self.eccentricity(u)).max()
    }

    /// Access to the raw distance table.
    pub fn matrix(&self) -> &DistMatrix {
        &self.mat
    }
}

/// Computes exact APSP distributively: pipelined all-source BFS,
/// stretched to weight-speed for weighted graphs.
///
/// # Examples
///
/// ```
/// use mwc_core::apsp::distributed_apsp;
/// use mwc_graph::{Graph, Orientation};
///
/// # fn main() -> Result<(), mwc_graph::GraphError> {
/// let g = Graph::from_edges(4, Orientation::Undirected,
///     [(0, 1, 2), (1, 2, 3), (2, 3, 1), (3, 0, 9)])?;
/// let apsp = distributed_apsp(&g);
/// assert_eq!(apsp.dist(0, 2), 5);
/// assert_eq!(apsp.dist(0, 3), 6); // around, not the weight-9 edge
/// assert_eq!(apsp.diameter(), Some(6));
/// # Ok(())
/// # }
/// ```
pub fn distributed_apsp(g: &Graph) -> ApspResult {
    let _span = mwc_trace::span("apsp/all-source");
    let mut ledger = Ledger::new();
    let sources: Vec<NodeId> = (0..g.n()).collect();
    let lat: Option<Vec<Weight>> = if g.is_unit_weight() {
        None
    } else {
        Some(g.edges().iter().map(|e| e.weight).collect())
    };
    let spec = MultiBfsSpec {
        max_dist: INF,
        direction: Direction::Forward,
        latency: lat.as_deref(),
    };
    let mat = multi_source_bfs(g, &sources, &spec, "all-source APSP", &mut ledger);
    mwc_trace::check_bound(
        "core/apsp",
        mwc_trace::BoundInputs::n(g.n())
            .diameter(mwc_congest::bounds::diameter_upper_bound(g))
            .h(mwc_congest::bounds::effective_hops(
                g.n(),
                INF,
                lat.as_deref(),
                g.m(),
            ))
            .k(g.n() as u64),
        ledger.rounds,
        crate::bounds::apsp,
    );
    ApspResult { mat, ledger }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwc_graph::generators::{connected_gnm, WeightRange};
    use mwc_graph::seq::{dijkstra, INF as SEQ_INF};
    use mwc_graph::Orientation;

    #[test]
    fn matches_dijkstra_everywhere() {
        for orientation in [Orientation::Directed, Orientation::Undirected] {
            let g = connected_gnm(40, 90, orientation, WeightRange::uniform(1, 9), 5);
            let apsp = distributed_apsp(&g);
            for u in 0..g.n() {
                let t = dijkstra(&g, u, Direction::Forward);
                for v in 0..g.n() {
                    let expect = if t.dist[v] == SEQ_INF { INF } else { t.dist[v] };
                    assert_eq!(apsp.dist(u, v), expect, "{orientation} {u}→{v}");
                }
            }
        }
    }

    #[test]
    fn unweighted_rounds_are_linear() {
        let g = connected_gnm(150, 300, Orientation::Undirected, WeightRange::unit(), 2);
        let apsp = distributed_apsp(&g);
        assert!(
            apsp.ledger.rounds <= 4 * 150,
            "rounds {}",
            apsp.ledger.rounds
        );
    }

    #[test]
    fn diameter_and_eccentricity() {
        let mut g = Graph::undirected(5);
        for i in 0..4 {
            g.add_edge(i, i + 1, 2).unwrap();
        }
        let apsp = distributed_apsp(&g);
        assert_eq!(apsp.eccentricity(2), Some(4));
        assert_eq!(apsp.eccentricity(0), Some(8));
        assert_eq!(apsp.diameter(), Some(8));
    }

    #[test]
    fn paths_are_shortest_and_real() {
        let g = connected_gnm(30, 60, Orientation::Directed, WeightRange::uniform(1, 7), 8);
        let apsp = distributed_apsp(&g);
        for u in 0..g.n() {
            for v in 0..g.n() {
                if u == v || apsp.dist(u, v) == INF {
                    continue;
                }
                let p = apsp.path(u, v).expect("reachable");
                let mut w = 0;
                for e in p.windows(2) {
                    w += g.weight(e[0], e[1]).expect("real edge");
                }
                assert_eq!(w, apsp.dist(u, v));
            }
        }
    }
}
