//! Hermetic deterministic parallelism: `ordered_map` fork-join over
//! `std::thread::scope`, no external dependencies (rayon-shaped hole,
//! `crates/rng`-style fill).
//!
//! The contract is **output determinism**: `ordered_map(items, f)` returns
//! exactly `items.into_iter().map(f).collect()` — same values, same order —
//! regardless of the worker count. Workers claim item *indices* from an
//! atomic counter (dynamic load balancing, since per-item cost varies
//! wildly across graph sizes), but results are joined back in input order,
//! so callers see no trace of the schedule. Anything order-sensitive that
//! `f` does internally (tracing, RNG) must be confined per item and merged
//! by the caller in input order; see `mwc_trace::TraceSession::memory` for
//! the capture-and-graft pattern the bench bins use.
//!
//! Worker count resolution, highest priority first:
//!
//! 1. [`set_jobs`] — process-wide override, for `--jobs=N` CLI flags;
//! 2. the `MWC_JOBS` environment variable;
//! 3. `1` (sequential; parallelism is strictly opt-in so default runs stay
//!    byte-for-byte comparable to the pre-pool codebase by construction).
//!
//! Two axes of parallelism share this crate. `ordered_map` parallelizes
//! **across** independent work items (sweep configs). [`fork_join`] is the
//! round-barrier primitive for parallelism **inside** one simulation: the
//! CONGEST engine splits a round's link work into per-shard tasks, forks
//! one thread per shard, and the scope join is the barrier at which the
//! coordinator grafts shard results back in deterministic order. Shard
//! count resolves like the worker count ([`set_shards`] → `MWC_SHARDS` →
//! 1) so `--jobs` and `--shards` compose without interfering.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Process-wide override set by [`set_jobs`]; `0` = unset.
static JOBS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Overrides the worker count for the whole process (clamped to ≥ 1).
/// Bench bins call this when given a `--jobs=N` flag; it wins over
/// `MWC_JOBS`.
pub fn set_jobs(n: usize) {
    JOBS_OVERRIDE.store(n.max(1), Ordering::Relaxed);
}

/// The effective worker count: [`set_jobs`] override, else `MWC_JOBS`,
/// else 1.
pub fn jobs() -> usize {
    let o = JOBS_OVERRIDE.load(Ordering::Relaxed);
    if o > 0 {
        return o;
    }
    std::env::var("MWC_JOBS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1)
}

/// Process-wide override set by [`set_shards`]; `0` = unset.
static SHARDS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Stored as `threshold + 1` so `0` can mean "unset" while a threshold of
/// `0` (always shard) stays expressible for tests.
static SHARD_THRESHOLD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Active-link count below which the engine's sharded round path is not
/// worth a fork-join: per-link work is a few nanoseconds, so a round has
/// to carry thousands of busy links before spawning threads wins.
/// Sharding never changes output (the differential suite pins this), so
/// the threshold is pure scheduling policy.
pub const DEFAULT_SHARD_THRESHOLD: usize = 4096;

/// Overrides the engine shard count for the whole process (clamped to
/// ≥ 1). Bench bins call this when given a `--shards=N` flag; it wins
/// over `MWC_SHARDS`.
pub fn set_shards(n: usize) {
    SHARDS_OVERRIDE.store(n.max(1), Ordering::Relaxed);
}

/// The effective engine shard count: [`set_shards`] override, else
/// `MWC_SHARDS`, else 1 (unsharded; like jobs, intra-simulation
/// parallelism is strictly opt-in).
pub fn shards() -> usize {
    let o = SHARDS_OVERRIDE.load(Ordering::Relaxed);
    if o > 0 {
        return o;
    }
    std::env::var("MWC_SHARDS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(1)
}

/// Overrides the sharding engagement threshold (see
/// [`DEFAULT_SHARD_THRESHOLD`]). `0` means "always engage" — the
/// differential tests use that to force tiny graphs through the sharded
/// path.
pub fn set_shard_threshold(n: usize) {
    SHARD_THRESHOLD_OVERRIDE.store(n + 1, Ordering::Relaxed);
}

/// The effective sharding engagement threshold:
/// [`set_shard_threshold`] override, else `MWC_SHARD_THRESHOLD`, else
/// [`DEFAULT_SHARD_THRESHOLD`].
pub fn shard_threshold() -> usize {
    let o = SHARD_THRESHOLD_OVERRIDE.load(Ordering::Relaxed);
    if o > 0 {
        return o - 1;
    }
    std::env::var("MWC_SHARD_THRESHOLD")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .unwrap_or(DEFAULT_SHARD_THRESHOLD)
}

/// Fork-join tasks executed (every task body run by [`fork_join`]).
static TASKS_EXECUTED: AtomicU64 = AtomicU64::new(0);
/// Items mapped by [`ordered_map_jobs`] and joined back in input order.
static ITEMS_GRAFTED: AtomicU64 = AtomicU64::new(0);
/// Pool entry points that stayed inline (≤ 1 task/item or 1 worker) and
/// therefore spawned no thread.
static IDLE_JOINS: AtomicU64 = AtomicU64::new(0);
/// Coordinator wall-time spent inside pool entry points, nanoseconds.
/// Machine-dependent — informational only, like a run record's `wall_ms`.
static BUSY_NS: AtomicU64 = AtomicU64::new(0);

/// A snapshot of the process-wide runtime counters. The three count
/// fields are exact tallies of work the pool performed; `busy_ns` is
/// host wall-clock and must never enter a gated artifact.
///
/// All of these depend on how a run was scheduled (`--jobs`, `--shards`,
/// the engagement threshold), so the whole snapshot is **informational**:
/// run records stamp it the way they stamp `wall_ms` — never diffed,
/// normalized to zero in byte-comparisons.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerCounters {
    /// Task bodies executed by [`fork_join`] (engine shard tasks).
    pub tasks_executed: u64,
    /// Items mapped and joined in input order by [`ordered_map`].
    pub items_grafted: u64,
    /// Entry points that ran inline without spawning any worker.
    pub idle_joins: u64,
    /// Coordinator wall-time inside the pool, nanoseconds (informational).
    pub busy_ns: u64,
}

/// Reads the process-wide [`WorkerCounters`]. Counters accumulate from
/// process start (or the last [`reset_worker_counters`]); bench bins
/// reset at `RunRecorder::start` and snapshot at `finish` so each record
/// sees only its own run.
pub fn worker_counters() -> WorkerCounters {
    WorkerCounters {
        tasks_executed: TASKS_EXECUTED.load(Ordering::Relaxed),
        items_grafted: ITEMS_GRAFTED.load(Ordering::Relaxed),
        idle_joins: IDLE_JOINS.load(Ordering::Relaxed),
        busy_ns: BUSY_NS.load(Ordering::Relaxed),
    }
}

/// Zeroes the process-wide [`WorkerCounters`].
pub fn reset_worker_counters() {
    TASKS_EXECUTED.store(0, Ordering::Relaxed);
    ITEMS_GRAFTED.store(0, Ordering::Relaxed);
    IDLE_JOINS.store(0, Ordering::Relaxed);
    BUSY_NS.store(0, Ordering::Relaxed);
}

/// Runs every task on its own thread and returns only when all of them
/// finished — the round barrier for barrier-synchronized shard stepping.
/// Task 0 runs on the calling thread (the common `len() == 1` case pays
/// for no spawn at all); the scope join is the barrier.
///
/// Determinism is the caller's job: tasks must own disjoint state (the
/// engine hands each shard its own queue/stats slices) and the caller
/// merges anything order-sensitive after the join, in task order — the
/// same capture-and-graft discipline as [`ordered_map`].
///
/// A panic in any task propagates to the caller after the scope joins.
pub fn fork_join<T, F>(tasks: Vec<T>, f: F)
where
    T: Send,
    F: Fn(T) + Sync,
{
    let started = Instant::now();
    let count = tasks.len() as u64;
    let mut iter = tasks.into_iter();
    let Some(first) = iter.next() else {
        return;
    };
    TASKS_EXECUTED.fetch_add(count, Ordering::Relaxed);
    if count == 1 {
        IDLE_JOINS.fetch_add(1, Ordering::Relaxed);
    }
    let f = &f;
    // Busy-time of the *spawned* task bodies. The inline task runs on the
    // calling thread under whatever span is open there, so the caller's
    // interval marks already cover it; spawned workers run where no span
    // is open and their wall-time would otherwise vanish from profiles.
    // Folding the sum back via `add_span_wall` charges it to the span
    // that forked them (a no-op unless the caller thread is profiling).
    let spawned_ns = AtomicU64::new(0);
    let spawned_ns = &spawned_ns;
    std::thread::scope(|s| {
        for t in iter {
            s.spawn(move || {
                let t0 = Instant::now();
                f(t);
                spawned_ns.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            });
        }
        f(first);
    });
    mwc_trace::add_span_wall(spawned_ns.load(Ordering::Relaxed));
    BUSY_NS.fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
}

/// Maps `f` over `items` on [`jobs`] worker threads, returning results in
/// input order. With one worker (or ≤ 1 item) this is exactly
/// `items.into_iter().map(f).collect()` on the calling thread — no pool,
/// no overhead.
///
/// A panic in `f` propagates to the caller (after the scope joins all
/// workers).
pub fn ordered_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    ordered_map_jobs(items, jobs(), f)
}

/// [`ordered_map`] with an explicit worker count (mainly for tests; real
/// callers go through [`jobs`]).
pub fn ordered_map_jobs<T, R, F>(items: Vec<T>, jobs: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if jobs <= 1 || n <= 1 {
        let started = Instant::now();
        ITEMS_GRAFTED.fetch_add(n as u64, Ordering::Relaxed);
        IDLE_JOINS.fetch_add(1, Ordering::Relaxed);
        let out = items.into_iter().map(f).collect();
        BUSY_NS.fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
        return out;
    }
    let started = Instant::now();
    ITEMS_GRAFTED.fetch_add(n as u64, Ordering::Relaxed);
    // Item and result slots are lock-per-slot: each index is claimed by
    // exactly one worker (the fetch_add hands out every index once), so
    // locks never contend — they exist to make the slot vectors Sync.
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    // Thread profiling is a thread-local opt-in, so fresh worker threads
    // start with it off. Propagate the caller's flag so spans a worker
    // opens under its own memory session (the capture-and-graft pattern)
    // carry wall/alloc profile data whenever the coordinator's do.
    let prof = mwc_trace::profile::thread_profiling_enabled();
    std::thread::scope(|s| {
        for _ in 0..jobs.min(n) {
            s.spawn(|| {
                mwc_trace::profile::set_thread_profiling(prof);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let item = slots[i]
                        .lock()
                        .expect("slot lock")
                        .take()
                        .expect("each index is claimed exactly once");
                    let r = f(item);
                    *results[i].lock().expect("result lock") = Some(r);
                }
            });
        }
    });
    let out = results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result lock")
                .expect("worker filled every claimed slot")
        })
        .collect();
    BUSY_NS.fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_input_order_for_any_worker_count() {
        let items: Vec<u64> = (0..97).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for jobs in [1, 2, 3, 4, 8, 16] {
            let got = ordered_map_jobs(items.clone(), jobs, |x| x * x);
            assert_eq!(got, expect, "jobs={jobs}");
        }
    }

    #[test]
    fn unbalanced_work_still_joins_in_order() {
        // Early items are much heavier than late ones, so a naive
        // completion-order join would be reversed.
        let items: Vec<usize> = (0..32).collect();
        let got = ordered_map_jobs(items.clone(), 4, |i| {
            let spins = (32 - i) * 10_000;
            let mut acc = i as u64;
            for k in 0..spins {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k as u64);
            }
            (i, acc)
        });
        let seq: Vec<(usize, u64)> = items
            .into_iter()
            .map(|i| {
                let spins = (32 - i) * 10_000;
                let mut acc = i as u64;
                for k in 0..spins {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k as u64);
                }
                (i, acc)
            })
            .collect();
        assert_eq!(got, seq);
    }

    #[test]
    fn empty_and_singleton_inputs_stay_inline() {
        assert_eq!(
            ordered_map_jobs(Vec::<u8>::new(), 8, |x| x),
            Vec::<u8>::new()
        );
        assert_eq!(ordered_map_jobs(vec![41], 8, |x| x + 1), vec![42]);
    }

    #[test]
    fn non_clone_items_move_through_the_pool() {
        let items: Vec<String> = (0..10).map(|i| format!("s{i}")).collect();
        let got = ordered_map_jobs(items, 3, |s| s.len());
        assert_eq!(got, vec![2; 10]);
    }

    #[test]
    fn fork_join_runs_every_task_to_completion() {
        use std::sync::atomic::AtomicU64;
        let hits: Vec<AtomicU64> = (0..7).map(|_| AtomicU64::new(0)).collect();
        let tasks: Vec<usize> = (0..7).collect();
        fork_join(tasks, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        // The call returning IS the barrier: every task ran exactly once.
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "task {i}");
        }
    }

    #[test]
    fn fork_join_handles_empty_and_single() {
        fork_join(Vec::<u8>::new(), |_| panic!("no tasks to run"));
        let ran = AtomicUsize::new(0);
        fork_join(vec![5usize], |x| {
            ran.fetch_add(x, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 5);
    }

    #[test]
    fn fork_join_task_panic_propagates() {
        let caught = std::panic::catch_unwind(|| {
            fork_join(vec![1, 2, 3], |x| assert_ne!(x, 2, "boom"));
        });
        assert!(caught.is_err());
    }

    #[test]
    fn shard_threshold_override_expresses_zero() {
        // Not run in parallel with other threshold readers: overrides are
        // process-wide, so this test owns the knob for its duration.
        assert_eq!(shard_threshold(), DEFAULT_SHARD_THRESHOLD);
        set_shard_threshold(0);
        assert_eq!(shard_threshold(), 0);
        set_shard_threshold(128);
        assert_eq!(shard_threshold(), 128);
        SHARD_THRESHOLD_OVERRIDE.store(0, Ordering::Relaxed);
    }

    #[test]
    fn worker_counters_tally_pool_work() {
        // Counters are process-global and other tests run concurrently,
        // so assert on deltas with ≥, never on absolute values.
        let before = worker_counters();
        let got = ordered_map_jobs((0..9u64).collect(), 3, |x| x + 1);
        assert_eq!(got.len(), 9);
        fork_join(vec![0usize, 1, 2], |_| {});
        fork_join(vec![7usize], |_| {});
        let _ = ordered_map_jobs(vec![1u8], 8, |x| x);
        let after = worker_counters();
        assert!(after.items_grafted >= before.items_grafted + 10);
        assert!(after.tasks_executed >= before.tasks_executed + 4);
        // The singleton fork_join and the singleton map both stay inline.
        assert!(after.idle_joins >= before.idle_joins + 2);
    }

    #[test]
    fn fork_join_folds_spawned_wall_into_open_span() {
        let session = mwc_trace::TraceSession::memory();
        mwc_trace::profile::set_thread_profiling(true);
        {
            let _g = mwc_trace::span("fork");
            fork_join(vec![0usize, 1, 2], |_| {
                std::thread::sleep(std::time::Duration::from_millis(2));
            });
        }
        mwc_trace::profile::set_thread_profiling(false);
        let data = session.finish();
        let fork = &data.roots[0];
        assert_eq!(fork.label, "fork");
        // Two spawned tasks slept ≥ 2 ms each; their busy-time must land
        // on the span that forked them (the inline task's time arrives
        // via the caller's interval marks on top of this floor).
        assert!(
            fork.wall_ns >= 4_000_000,
            "spawned wall not folded: {} ns",
            fork.wall_ns
        );
    }

    #[test]
    fn fork_join_without_profiling_leaves_spans_zeroed() {
        let session = mwc_trace::TraceSession::memory();
        {
            let _g = mwc_trace::span("fork");
            fork_join(vec![0usize, 1], |_| {
                std::thread::sleep(std::time::Duration::from_millis(1));
            });
        }
        let data = session.finish();
        assert_eq!(data.roots[0].wall_ns, 0);
    }

    #[test]
    fn ordered_map_workers_inherit_profiling_flag() {
        mwc_trace::profile::set_thread_profiling(true);
        let flags = ordered_map_jobs((0..4u8).collect(), 4, |_| {
            mwc_trace::profile::thread_profiling_enabled()
        });
        mwc_trace::profile::set_thread_profiling(false);
        assert_eq!(flags, vec![true; 4]);
    }

    #[test]
    fn worker_panic_propagates() {
        let caught = std::panic::catch_unwind(|| {
            ordered_map_jobs(vec![1, 2, 3], 2, |x| {
                assert_ne!(x, 2, "boom");
                x
            })
        });
        assert!(caught.is_err());
    }
}
