//! Exact distributed MWC baselines — the `Õ(n)`-round upper-bound rows of
//! Table 1.
//!
//! The paper obtains exact MWC by reducing to APSP:
//!
//! - **Girth** (undirected unweighted): Holzer & Wattenhofer's `O(n)`
//!   pipelined all-source BFS \[28\]; for every source, every non-tree edge
//!   closes a candidate cycle, and the minimum over sources and edges is
//!   exactly the girth (the "antipodal edge" argument).
//! - **Directed MWC**: APSP, then the minimum over edges `(v, s)` of
//!   `d(s, v) + w(v, s)` \[8, 37\].
//! - **Undirected weighted MWC**: APSP, then the minimum over sources `s`
//!   and non-BFS-tree edges `(x, y)` of `d(s,x) + w(x,y) + d(s,y)` \[3, 50\];
//!   the BFS-tree LCA argument shows every candidate is a real simple
//!   cycle, and a potential argument shows a source on the MWC attains it.
//!
//! **Substitution note (DESIGN.md §2):** the paper's weighted APSP
//! reference is Bernstein–Nanongkai's `Õ(n)` algorithm \[8\]. This
//! reproduction computes exact weighted APSP with a pipelined *stretched*
//! all-source BFS (waves travel at weight-speed), costing
//! `O(n + max-distance)` rounds — near-linear for the bounded weights the
//! benchmarks use, preserving the linear-in-`n` shape of the baseline.

use crate::apsp::distributed_apsp;
use crate::exchange::{exchange_matrix_columns, lca_cycle};
use crate::outcome::{BestCycle, MwcOutcome};
use crate::util::simplify_path;
use mwc_congest::{convergecast_min, Ledger, PhaseCache, INF};
use mwc_graph::{CycleWitness, Graph, Weight};

/// Exact distributed MWC (any orientation, any weights) in `Õ(n)` rounds
/// for bounded weights. Returns `None` weight iff the graph is acyclic.
///
/// Every node ends up knowing the MWC weight (final convergecast +
/// flood-down), matching the paper's output convention.
///
/// # Panics
///
/// Panics if the communication topology is disconnected.
///
/// # Examples
///
/// ```
/// use mwc_core::exact::exact_mwc;
/// use mwc_graph::{Graph, Orientation};
///
/// # fn main() -> Result<(), mwc_graph::GraphError> {
/// let g = Graph::from_edges(4, Orientation::Directed,
///     [(0, 1, 1), (1, 2, 1), (2, 0, 1), (2, 3, 5), (3, 0, 5)])?;
/// let out = exact_mwc(&g);
/// assert_eq!(out.weight, Some(3));
/// # Ok(())
/// # }
/// ```
pub fn exact_mwc(g: &Graph) -> MwcOutcome {
    let _span = mwc_trace::span("exact/mwc");
    let _cache = PhaseCache::scope();
    let n = g.n();
    let mut ledger = Ledger::new();
    if n == 0 {
        return BestCycle::new().into_outcome(ledger);
    }
    let apsp = distributed_apsp(g);
    ledger.merge(&apsp.ledger);
    let mat = apsp.matrix().clone();
    let mut best = BestCycle::new();
    let mut local_best: Vec<Weight> = vec![INF; n];

    if g.is_directed() {
        // Candidate at v for each out-edge (v, s): d(s, v) + w(v, s).
        for v in 0..n {
            for a in g.out_adj(v) {
                let s = a.to;
                let d = mat.get_row(s, v);
                if d == INF {
                    continue;
                }
                let cand = d + a.weight;
                local_best[v] = local_best[v].min(cand);
                if best.weight().is_none_or(|b| cand < b) {
                    if let Some(path) = mat.path_from_source(s, v) {
                        let cyc = simplify_path(path);
                        if cyc.len() >= 2 {
                            best.offer(cand, CycleWitness::new(cyc));
                        }
                    }
                }
            }
        }
    } else {
        // Undirected: neighbors exchange distance columns, then every edge
        // endpoint scans all sources.
        let cols = exchange_matrix_columns(g, &mat, "neighbor column exchange", &mut ledger);
        for e in g.edges() {
            let (x, y, w) = (e.u, e.v, e.weight);
            let ycol = &cols[x][&y];
            for s in 0..n {
                let dx = mat.get_row(s, x);
                let (dy, ypred) = ycol[s];
                if dx == INF || dy == INF {
                    continue;
                }
                // Skip BFS-tree edges (they close no cycle).
                if mat.pred_row(s, x) == Some(y) || ypred as usize == x {
                    continue;
                }
                let cand = dx + w + dy;
                local_best[x] = local_best[x].min(cand);
                if best.weight().is_none_or(|b| cand < b) {
                    if let Some(cyc) = lca_cycle(&mat, s, x, y) {
                        best.offer(cand, CycleWitness::new(cyc));
                    }
                }
            }
        }
    }

    // Every node learns the global minimum.
    let tree = PhaseCache::bfs_tree(g, 0, &mut ledger);
    let global = convergecast_min(g, &tree, local_best, &mut ledger);
    debug_assert_eq!(
        global,
        best.weight().unwrap_or(INF),
        "convergecast ≠ tracked best"
    );

    let lat: Option<Vec<Weight>> = if g.is_unit_weight() {
        None
    } else {
        Some(g.edges().iter().map(|e| e.weight).collect())
    };
    mwc_trace::check_bound(
        "core/exact_mwc",
        mwc_trace::BoundInputs::n(n)
            .diameter(mwc_congest::bounds::diameter_upper_bound(g))
            .h(mwc_congest::bounds::effective_hops(
                n,
                INF,
                lat.as_deref(),
                g.m(),
            ))
            .k(n as u64),
        ledger.rounds,
        crate::bounds::exact,
    );

    let mut out = best.into_outcome(ledger);
    // The candidate value at the argmin equals the witness cycle's weight
    // (LCA trimming cannot make it lighter than the MWC); recompute
    // defensively so the reported value always matches the witness.
    if let (Some(w), Some(c)) = (&mut out.weight, &out.witness) {
        if let Ok(actual) = c.validate(g) {
            debug_assert_eq!(actual, *w, "witness weight deviates from candidate");
            *w = actual;
        }
    }
    out
}

/// Exact distributed girth — [`exact_mwc`] specialized to undirected
/// unweighted graphs (`O(n + D)` rounds, \[28\]).
///
/// # Panics
///
/// Panics if the graph is directed or weighted.
pub fn exact_girth(g: &Graph) -> MwcOutcome {
    let _span = mwc_trace::span("exact/girth");
    assert!(!g.is_directed(), "girth is defined for undirected graphs");
    assert!(g.is_unit_weight(), "girth is defined for unweighted graphs");
    exact_mwc(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwc_graph::generators::{
        connected_gnm, grid, planted_cycle, ring_with_chords, WeightRange,
    };
    use mwc_graph::seq;
    use mwc_graph::Orientation;

    fn check(g: &Graph) {
        let out = exact_mwc(g);
        out.assert_valid(g);
        let oracle = seq::mwc_exact(g).map(|m| m.weight);
        assert_eq!(out.weight, oracle, "n={} {:?}", g.n(), g.orientation());
    }

    #[test]
    fn directed_unweighted_matches_oracle() {
        for seed in 0..8 {
            let g = connected_gnm(40, 70, Orientation::Directed, WeightRange::unit(), seed);
            check(&g);
        }
    }

    #[test]
    fn directed_weighted_matches_oracle() {
        for seed in 0..8 {
            let g = connected_gnm(
                35,
                80,
                Orientation::Directed,
                WeightRange::uniform(1, 12),
                seed,
            );
            check(&g);
        }
    }

    #[test]
    fn undirected_unweighted_matches_oracle() {
        for seed in 0..8 {
            let g = connected_gnm(40, 60, Orientation::Undirected, WeightRange::unit(), seed);
            check(&g);
        }
    }

    #[test]
    fn undirected_weighted_matches_oracle() {
        for seed in 0..8 {
            let g = connected_gnm(
                35,
                70,
                Orientation::Undirected,
                WeightRange::uniform(1, 15),
                seed,
            );
            check(&g);
        }
    }

    #[test]
    fn acyclic_directed_reports_none() {
        let mut g = Graph::directed(6);
        for i in 0..5 {
            g.add_edge(i, i + 1, 1).unwrap();
        }
        let out = exact_mwc(&g);
        out.assert_valid(&g);
        assert_eq!(out.weight, None);
    }

    #[test]
    fn tree_reports_none() {
        let mut g = Graph::undirected(7);
        for i in 1..7 {
            g.add_edge(i / 2, i, 3).unwrap();
        }
        let out = exact_mwc(&g);
        assert_eq!(out.weight, None);
    }

    #[test]
    fn planted_cycle_is_found() {
        let (g, _) = planted_cycle(
            50,
            70,
            4,
            1,
            Orientation::Directed,
            WeightRange::uniform(20, 40),
            11,
        );
        let out = exact_mwc(&g);
        assert_eq!(out.weight, Some(4));
        out.assert_valid(&g);
    }

    #[test]
    fn girth_of_grid_is_four() {
        let g = grid(6, 6, Orientation::Undirected, WeightRange::unit(), 0);
        let out = exact_girth(&g);
        assert_eq!(out.weight, Some(4));
        out.assert_valid(&g);
    }

    #[test]
    fn girth_rounds_are_near_linear() {
        // O(n + D) rounds: the defining property of the baseline.
        let g = ring_with_chords(128, 64, Orientation::Undirected, WeightRange::unit(), 3);
        let out = exact_mwc(&g);
        out.assert_valid(&g);
        let n = 128u64;
        assert!(
            out.ledger.rounds <= 8 * n,
            "exact girth took {} rounds, budget {}",
            out.ledger.rounds,
            8 * n
        );
    }

    #[test]
    fn directed_two_cycle() {
        let g = Graph::from_edges(
            4,
            Orientation::Directed,
            [(0, 1, 3), (1, 0, 3), (1, 2, 1), (2, 3, 1), (3, 1, 1)],
        )
        .unwrap();
        let out = exact_mwc(&g);
        assert_eq!(out.weight, Some(3));
        out.assert_valid(&g);
    }
}
