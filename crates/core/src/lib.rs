//! The paper's core contribution: distributed minimum-weight-cycle
//! algorithms in the CONGEST model, from Manoharan & Ramachandran,
//! PODC 2024 (DOI 10.1145/3662158.3662801).
//!
//! # Algorithms
//!
//! | function | paper | rounds | guarantee |
//! |---|---|---|---|
//! | [`exact_mwc`] / [`exact_girth`] | Table 1 baselines \[8, 28, 3, 50\] | `Õ(n)` | exact |
//! | [`two_approx_directed_mwc`] | Thm 1.2.C (Algs 2+3) | `Õ(n^{4/5} + D)` | ≤ 2× |
//! | [`approx_girth`] | Thm 1.3.B (§4) | `Õ(√n + D)` | ≤ (2 − 1/g)× |
//! | [`approx_mwc_undirected_weighted`] | Thm 1.4.C (§5.1) | `Õ(n^{2/3} + D)` | ≤ (2+ε)× |
//! | [`approx_mwc_directed_weighted`] | Thm 1.2.D (§5.2) | `Õ(n^{4/5} + D)` | ≤ (2+ε)× |
//! | [`k_source_bfs`] / [`k_source_approx_sssp`] | Thm 1.6 (Alg 1) | `Õ(√(nk) + D)` | exact / (1+ε) |
//! | [`shortest_cycle_within`] | §1.3 corollary | `O(n + q)` | exact ≤q-girth |
//!
//! Every MWC algorithm returns an [`MwcOutcome`]: the weight, a
//! [`CycleWitness`](mwc_graph::CycleWitness) certifying it against the
//! real graph (so reported values **never underestimate** the true MWC),
//! and a [`Ledger`](mwc_congest::Ledger) of simulated CONGEST rounds.
//! Randomized choices are controlled by [`Params`] (seed, sampling and
//! scheduling constants, ε).
//!
//! # Examples
//!
//! ```
//! use mwc_core::{exact_mwc, two_approx_directed_mwc, Params};
//! use mwc_graph::generators::{connected_gnm, WeightRange};
//! use mwc_graph::Orientation;
//!
//! let g = connected_gnm(120, 360, Orientation::Directed, WeightRange::unit(), 3);
//! let exact = exact_mwc(&g);
//! let approx = two_approx_directed_mwc(&g, &Params::new());
//! let (opt, rep) = (exact.weight.unwrap(), approx.weight.unwrap());
//! assert!(opt <= rep && rep <= 2 * opt);
//! approx.witness.unwrap().validate(&g).expect("a real directed cycle");
//! ```

#![forbid(unsafe_code)]
// Node-indexed state vectors are idiomatic for this simulator; indexing
// loops over node ids are deliberate.
#![allow(clippy::needless_range_loop, clippy::type_complexity)]
#![warn(missing_docs)]

pub mod apsp;
mod bounds;
pub mod cycle_basis;
pub mod detection;
pub mod directed;
pub mod exact;
mod exchange;
pub mod girth;
pub mod ksssp;
pub mod outcome;
pub mod params;
mod pipeline;
pub mod scaling;
pub mod sssp;
pub mod util;
pub mod weighted;

pub use apsp::{distributed_apsp, ApspResult};
pub use cycle_basis::{fundamental_cycle_basis, CycleBasis};
pub use detection::{has_cycle_within, shortest_cycle_within};
pub use directed::two_approx_directed_mwc;
pub use exact::{exact_girth, exact_mwc};
pub use girth::{approx_girth, approx_girth_parts};
pub use ksssp::{k_source_approx_sssp, k_source_bfs, KSourceApproxSssp, KSourceDistances};
pub use outcome::{BestCycle, MwcOutcome};
pub use params::Params;
pub use sssp::{
    k_source_bfs_auto, k_source_bfs_repeated, sssp_approx, sssp_bfs, sssp_exact_weighted,
    KSourceStrategy, SsspResult,
};
pub use weighted::{approx_mwc_directed_weighted, approx_mwc_undirected_weighted};
