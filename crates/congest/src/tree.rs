//! Global BFS tree, broadcast and convergecast — the standard CONGEST
//! building blocks the paper invokes from \[43\] (§1.1):
//!
//! - building a BFS tree of the communication topology costs `O(D)` rounds;
//! - broadcasting `M` words to all nodes costs `O(M + D)` rounds;
//! - a convergecast of an associative operation costs `O(D)` rounds.
//!
//! All three are *simulated* (the data really flows through the engine), so
//! their measured round counts are the ones charged to algorithms.

use crate::engine::{Network, RoundOutput};
use crate::ledger::Ledger;
use mwc_graph::{Graph, NodeId};

/// A BFS spanning tree of the communication topology, the backbone for
/// [`broadcast`] and [`convergecast_min`].
#[derive(Clone, Debug)]
pub struct BfsTree {
    /// The root node.
    pub root: NodeId,
    /// `parent[v]` for every non-root node.
    pub parent: Vec<Option<NodeId>>,
    /// Hop depth of every node below the root.
    pub depth: Vec<usize>,
    /// Children lists (inverse of `parent`).
    pub children: Vec<Vec<NodeId>>,
    /// Height of the tree (max depth) — at most the diameter `D`.
    pub height: usize,
}

impl BfsTree {
    /// Builds the tree by flooding from `root`, charging `O(ecc(root)) ≤
    /// O(D)` rounds to `ledger`.
    ///
    /// # Panics
    ///
    /// Panics if the communication topology is disconnected (a CONGEST
    /// network is connected by assumption).
    pub fn build(g: &Graph, root: NodeId, ledger: &mut Ledger) -> BfsTree {
        let _span = mwc_trace::span("tree/build");
        let n = g.n();
        let mut net: Network<u64> = Network::new_auto(g);
        let mut parent: Vec<Option<NodeId>> = vec![None; n];
        let mut depth = vec![usize::MAX; n];
        depth[root] = 0;
        for w in g.comm_neighbors(root) {
            net.send(root, w, 1, 1).expect("neighbors are linked");
        }
        let mut out = RoundOutput::default();
        while net.step_bulk_into(&mut out) {
            for d in out.deliveries.drain(..) {
                let v = d.to;
                if depth[v] == usize::MAX {
                    depth[v] = d.payload as usize;
                    parent[v] = Some(d.from);
                    for w in g.comm_neighbors(v) {
                        if depth[w] == usize::MAX {
                            net.send(v, w, d.payload + 1, 1)
                                .expect("neighbors are linked");
                        }
                    }
                }
            }
        }
        ledger.absorb("bfs tree", &net);
        assert!(
            depth.iter().all(|&d| d != usize::MAX),
            "communication topology must be connected"
        );
        let mut children = vec![Vec::new(); n];
        for v in 0..n {
            if let Some(p) = parent[v] {
                children[p].push(v);
            }
        }
        let height = depth.iter().copied().max().unwrap_or(0);
        mwc_trace::check_bound(
            "congest/bfs_tree",
            mwc_trace::BoundInputs::n(n).diameter(height as u64),
            net.round(),
            crate::bounds::bfs_tree,
        );
        BfsTree {
            root,
            parent,
            depth,
            children,
            height,
        }
    }
}

/// Broadcasts every `(origin, item)` to **all** nodes by pipelining items
/// up to the root and flooding them back down the tree. Each item occupies
/// `words_per_item` words. Costs `O(M · words_per_item + D)` rounds.
///
/// Returns the items in a deterministic (engine-arrival) order together
/// with their origins; conceptually every node now holds this list.
pub fn broadcast<T: Clone + Send>(
    g: &Graph,
    tree: &BfsTree,
    items: Vec<(NodeId, T)>,
    words_per_item: u64,
    ledger: &mut Ledger,
) -> Vec<(NodeId, T)> {
    let _span = mwc_trace::span("tree/broadcast");
    let n = g.n();
    // Upcast: every node forwards items toward the root.
    let mut net: Network<(NodeId, T)> = Network::new_auto(g);
    let mut collected: Vec<(NodeId, T)> = Vec::with_capacity(items.len());
    for (origin, item) in items {
        match tree.parent[origin] {
            Some(p) => net
                .send(origin, p, (origin, item), words_per_item)
                .expect("tree edges are links"),
            None => collected.push((origin, item)),
        }
    }
    let mut out = RoundOutput::default();
    while net.step_bulk_into(&mut out) {
        for d in out.deliveries.drain(..) {
            let v = d.to;
            match tree.parent[v] {
                Some(p) => net
                    .send(v, p, d.payload, words_per_item)
                    .expect("tree edges are links"),
                None => collected.push(d.payload),
            }
        }
    }
    ledger.absorb("broadcast: upcast", &net);
    let up_rounds = net.round();

    // Downcast: the root streams the full list down every tree edge. The
    // schedule is a fully saturated pipeline (item `i` reaches depth `d`
    // at round `words_per_item·(i+d)`), so under the bitset kernel the
    // whole phase is charged in closed form instead of stepping the
    // engine per message — byte-identical ledger, O(links + rounds)
    // instead of O(items · links) work. The scalar kernel keeps the
    // engine-stepped loop as the executable reference.
    let mut net: Network<(NodeId, T)> = Network::new_auto(g);
    if crate::flood::flood_kernel() == crate::flood::FloodKernel::Bitset {
        // Tree links in BFS order (depth ascending, siblings in
        // `children[]` order) — the order the engine's active list
        // settles into, which pins the event-log order.
        let mut links: Vec<(u32, u32)> = Vec::with_capacity(n.saturating_sub(1));
        let mut queue: std::collections::VecDeque<NodeId> = std::collections::VecDeque::new();
        queue.push_back(tree.root);
        while let Some(v) = queue.pop_front() {
            for &c in &tree.children[v] {
                let l = net.link_id(v, c).expect("tree edges are links");
                links.push((l as u32, tree.depth[c] as u32));
                queue.push_back(c);
            }
        }
        net.charge_pipelined_downcast(&links, collected.len() as u64, words_per_item);
    } else {
        let mut received: Vec<usize> = vec![0; n];
        for &c in &tree.children[tree.root] {
            for item in &collected {
                net.send(tree.root, c, item.clone(), words_per_item)
                    .expect("tree edges are links");
            }
        }
        let mut out = RoundOutput::default();
        while net.step_bulk_into(&mut out) {
            for d in out.deliveries.drain(..) {
                let v = d.to;
                received[v] += 1;
                for &c in &tree.children[v] {
                    net.send(v, c, d.payload.clone(), words_per_item)
                        .expect("tree edges are links");
                }
            }
        }
        debug_assert!((0..n).all(|v| v == tree.root || received[v] == collected.len()));
    }
    ledger.absorb("broadcast: downcast", &net);
    mwc_trace::check_bound(
        "congest/broadcast",
        mwc_trace::BoundInputs::n(n)
            .diameter(tree.height as u64)
            .k((collected.len() as u64).saturating_mul(words_per_item.max(1))),
        up_rounds + net.round(),
        crate::bounds::broadcast,
    );
    collected
}

/// Convergecast of an associative, commutative operation over one value per
/// node, followed by flooding the result down so **every node knows it**.
/// Costs `O(D)` rounds (values are single words).
pub fn convergecast<T, F>(
    g: &Graph,
    tree: &BfsTree,
    values: Vec<T>,
    op: F,
    ledger: &mut Ledger,
) -> T
where
    T: Copy + Send,
    F: Fn(T, T) -> T,
{
    let _span = mwc_trace::span("tree/convergecast");
    let n = g.n();
    assert_eq!(values.len(), n, "one value per node");
    let mut pending: Vec<usize> = (0..n).map(|v| tree.children[v].len()).collect();
    let mut acc: Vec<T> = values;
    let mut net: Network<T> = Network::new_auto(g);
    // Leaves start immediately; internal nodes send once all children
    // reported.
    for v in 0..n {
        if pending[v] == 0 {
            if let Some(p) = tree.parent[v] {
                net.send(v, p, acc[v], 1).expect("tree edges are links");
            }
        }
    }
    let mut out = RoundOutput::default();
    while net.step_bulk_into(&mut out) {
        for d in out.deliveries.drain(..) {
            let v = d.to;
            acc[v] = op(acc[v], d.payload);
            pending[v] -= 1;
            if pending[v] == 0 {
                if let Some(p) = tree.parent[v] {
                    net.send(v, p, acc[v], 1).expect("tree edges are links");
                }
            }
        }
    }
    ledger.absorb("convergecast: up", &net);
    let up_rounds = net.round();
    let result = acc[tree.root];

    // Flood the result down so every node knows it (the paper requires
    // every node to know the final MWC weight).
    let mut net: Network<T> = Network::new_auto(g);
    for &c in &tree.children[tree.root] {
        net.send(tree.root, c, result, 1)
            .expect("tree edges are links");
    }
    let mut out = RoundOutput::default();
    while net.step_bulk_into(&mut out) {
        for d in out.deliveries.drain(..) {
            for &c in &tree.children[d.to] {
                net.send(d.to, c, result, 1).expect("tree edges are links");
            }
        }
    }
    ledger.absorb("convergecast: down", &net);
    mwc_trace::check_bound(
        "congest/convergecast",
        mwc_trace::BoundInputs::n(n).diameter(tree.height as u64),
        up_rounds + net.round(),
        crate::bounds::convergecast,
    );
    result
}

/// Convenience: convergecast of the minimum of one `u64` per node.
pub fn convergecast_min(g: &Graph, tree: &BfsTree, values: Vec<u64>, ledger: &mut Ledger) -> u64 {
    convergecast(g, tree, values, u64::min, ledger)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwc_graph::generators::{connected_gnm, WeightRange};
    use mwc_graph::seq::{bfs, Direction};
    use mwc_graph::Orientation;

    fn path(n: usize) -> Graph {
        let mut g = Graph::undirected(n);
        for i in 0..n - 1 {
            g.add_edge(i, i + 1, 1).unwrap();
        }
        g
    }

    #[test]
    fn tree_depths_match_bfs() {
        let g = connected_gnm(40, 60, Orientation::Undirected, WeightRange::unit(), 7);
        let mut ledger = Ledger::new();
        let tree = BfsTree::build(&g, 3, &mut ledger);
        let reference = bfs(&g, 3, Direction::Forward);
        for v in 0..g.n() {
            assert_eq!(tree.depth[v], reference.dist[v]);
        }
        assert_eq!(tree.height, *reference.dist.iter().max().unwrap());
        // Building the tree costs Θ(ecc(root)) rounds.
        assert!(ledger.rounds as usize <= tree.height + 1);
    }

    #[test]
    fn tree_parents_are_one_level_up() {
        let g = connected_gnm(30, 40, Orientation::Undirected, WeightRange::unit(), 1);
        let mut ledger = Ledger::new();
        let tree = BfsTree::build(&g, 0, &mut ledger);
        for v in 0..g.n() {
            if let Some(p) = tree.parent[v] {
                assert_eq!(tree.depth[v], tree.depth[p] + 1);
                assert!(g.has_edge(p, v) || g.has_edge(v, p));
            } else {
                assert_eq!(v, 0);
            }
        }
    }

    #[test]
    fn tree_works_on_directed_support() {
        // Directed edges all one way; the communication tree still spans.
        let mut g = Graph::directed(5);
        for i in 0..4 {
            g.add_edge(i, i + 1, 1).unwrap();
        }
        let mut ledger = Ledger::new();
        let tree = BfsTree::build(&g, 4, &mut ledger);
        assert_eq!(tree.depth[0], 4);
    }

    #[test]
    fn broadcast_reaches_everyone_within_budget() {
        let g = path(16);
        let mut ledger = Ledger::new();
        let tree = BfsTree::build(&g, 0, &mut ledger);
        let items: Vec<(NodeId, u64)> = (0..16).map(|v| (v, 100 + v as u64)).collect();
        let mut bl = Ledger::new();
        let all = broadcast(&g, &tree, items, 1, &mut bl);
        assert_eq!(all.len(), 16);
        let mut values: Vec<u64> = all.iter().map(|(_, x)| *x).collect();
        values.sort_unstable();
        assert_eq!(values, (100..116).collect::<Vec<_>>());
        // O(M + D): M = 16 items, D = 15 → comfortably under 4·(M + D).
        assert!(
            bl.rounds <= 4 * (16 + 15),
            "broadcast took {} rounds",
            bl.rounds
        );
    }

    #[test]
    fn broadcast_rounds_scale_linearly_in_items() {
        let g = path(12);
        let mut ledger = Ledger::new();
        let tree = BfsTree::build(&g, 0, &mut ledger);
        let cost = |m: usize| {
            let items: Vec<(NodeId, u64)> = (0..m).map(|i| (11, i as u64)).collect();
            let mut bl = Ledger::new();
            broadcast(&g, &tree, items, 1, &mut bl);
            bl.rounds
        };
        let c10 = cost(10);
        let c100 = cost(100);
        // Pipelining: 10× the items must be far less than 10× rounds.
        assert!(c100 < c10 * 6, "items 10: {c10} rounds, 100: {c100} rounds");
    }

    #[test]
    fn broadcast_multiword_items_cost_proportionally() {
        let g = path(8);
        let mut ledger = Ledger::new();
        let tree = BfsTree::build(&g, 0, &mut ledger);
        let mut l1 = Ledger::new();
        broadcast(&g, &tree, vec![(7, 0u64); 20], 1, &mut l1);
        let mut l3 = Ledger::new();
        broadcast(&g, &tree, vec![(7, 0u64); 20], 3, &mut l3);
        assert!(
            l3.rounds > l1.rounds * 2,
            "3-word items must cost ~3×: {} vs {}",
            l3.rounds,
            l1.rounds
        );
    }

    #[test]
    fn convergecast_min_within_depth_budget() {
        let g = path(20);
        let mut ledger = Ledger::new();
        let tree = BfsTree::build(&g, 10, &mut ledger);
        let mut values: Vec<u64> = (0..20).map(|v| 50 + v as u64).collect();
        values[17] = 3;
        let mut cl = Ledger::new();
        let m = convergecast_min(&g, &tree, values, &mut cl);
        assert_eq!(m, 3);
        // Up + down ≤ 2·height + slack.
        assert!(
            cl.rounds as usize <= 2 * tree.height + 2,
            "convergecast took {} rounds",
            cl.rounds
        );
    }

    #[test]
    fn single_node_tree_and_broadcast() {
        let g = Graph::undirected(1);
        let mut ledger = Ledger::new();
        let tree = BfsTree::build(&g, 0, &mut ledger);
        assert_eq!(tree.height, 0);
        assert_eq!(ledger.rounds, 0);
        let all = broadcast(&g, &tree, vec![(0, 42u64)], 1, &mut ledger);
        assert_eq!(all, vec![(0, 42)]);
        let m = convergecast_min(&g, &tree, vec![7], &mut ledger);
        assert_eq!(m, 7);
    }

    #[test]
    fn star_tree_has_height_one() {
        let mut g = Graph::undirected(9);
        for i in 1..9 {
            g.add_edge(0, i, 1).unwrap();
        }
        let mut ledger = Ledger::new();
        let tree = BfsTree::build(&g, 0, &mut ledger);
        assert_eq!(tree.height, 1);
        assert_eq!(tree.children[0].len(), 8);
        // Convergecast over a star: up + down ≤ 4 rounds.
        let mut cl = Ledger::new();
        let m = convergecast_min(&g, &tree, (10..19).collect(), &mut cl);
        assert_eq!(m, 10);
        assert!(cl.rounds <= 4);
    }

    #[test]
    fn empty_broadcast_costs_nothing() {
        let g = path(6);
        let mut ledger = Ledger::new();
        let tree = BfsTree::build(&g, 0, &mut ledger);
        let mut bl = Ledger::new();
        let all: Vec<(NodeId, u64)> = broadcast(&g, &tree, vec![], 1, &mut bl);
        assert!(all.is_empty());
        assert_eq!(bl.rounds, 0);
    }

    #[test]
    fn convergecast_sum() {
        let g = connected_gnm(25, 30, Orientation::Undirected, WeightRange::unit(), 3);
        let mut ledger = Ledger::new();
        let tree = BfsTree::build(&g, 0, &mut ledger);
        let s = convergecast(&g, &tree, vec![1u64; 25], |a, b| a + b, &mut ledger);
        assert_eq!(s, 25);
    }
}
