//! Pipelined multi-source BFS and source detection, after Lenzen,
//! Patt-Shamir & Peleg \[37\] (the paper's reference for `O(h + k)`-round
//! `k`-source `h`-hop BFS and `(S, h, σ)` source detection).
//!
//! Both primitives use the classic pipelining schedule: every node keeps a
//! priority queue of announcements `(distance, source)` and, each round,
//! forwards the smallest fresh one over all of its traversal-direction
//! links. With unit latencies this completes `k`-source `h`-hop BFS in
//! `O(h + k)` rounds; the tests assert that envelope empirically.
//!
//! Announcements can also travel with **per-edge latencies** (the scaled /
//! stretched graphs of paper §4–5): an edge of stretch `ℓ` delays delivery
//! by `ℓ` rounds and adds `ℓ` to the announced distance, which is exactly a
//! BFS on the stretched graph where each weighted edge becomes a path of
//! `ℓ` unit edges simulated at its endpoint.

use crate::distmat::{DistMatrix, INF};
use crate::engine::{Network, RoundOutput};
use crate::ledger::Ledger;
use mwc_graph::seq::Direction;
use mwc_graph::{Graph, NodeId, Weight};
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, HashMap};

/// Parameters of a multi-source search.
#[derive(Clone, Copy, Debug)]
pub struct MultiBfsSpec<'a> {
    /// Distance budget: announcements above this are not forwarded. For
    /// unit latencies this is the *hop* budget `h`; with latencies it is a
    /// stretched-distance budget. Use [`INF`] for an unbounded search.
    pub max_dist: Weight,
    /// Traversal direction over the (possibly directed) graph edges.
    pub direction: Direction,
    /// Per-[`EdgeId`](mwc_graph::EdgeId) stretch `ℓ(e) ≥ 1`; `None` means
    /// all-unit (plain BFS).
    pub latency: Option<&'a [Weight]>,
}

impl Default for MultiBfsSpec<'_> {
    fn default() -> Self {
        MultiBfsSpec {
            max_dist: INF,
            direction: Direction::Forward,
            latency: None,
        }
    }
}

/// A BFS announcement: `(source row, distance at the receiver)`.
type Announce = (u32, Weight);

/// Distance contribution of an edge (the *announced* weight — may be 0).
fn dist_add(latency: Option<&[Weight]>, edge: usize) -> Weight {
    latency.map_or(1, |l| l[edge])
}

/// Travel time of an edge in rounds (≥ 1: even a zero-weight edge takes a
/// round to cross).
fn stretch(latency: Option<&[Weight]>, edge: usize) -> Weight {
    latency.map_or(1, |l| l[edge].max(1))
}

/// Per traversal edge, everything the flood's inner loop needs: the link
/// to occupy, the announced distance increment, and the extra delivery
/// latency. Distance and travel time are decoupled so zero-weight edges
/// (the paper allows `w = 0`) stay exact: they add 0 to the distance but
/// still take one round to cross. Resolving link ids and latency-table
/// entries once up front keeps the per-announcement loop free of adjacency
/// searches — it matters at millions of announcements per run.
struct FloodPlan {
    /// CSR offsets: node `v`'s hops are `hops[start[v]..start[v + 1]]`.
    start: Vec<u32>,
    /// `(link id, dist_add, latency = stretch − 1)` per traversal edge.
    hops: Vec<(u32, Weight, u64)>,
}

impl FloodPlan {
    fn build<M>(
        g: &Graph,
        net: &Network<M>,
        direction: Direction,
        latency: Option<&[Weight]>,
    ) -> FloodPlan {
        let n = g.n();
        let mut start = Vec::with_capacity(n + 1);
        let mut hops = Vec::new();
        start.push(0);
        for v in 0..n {
            for a in direction.adj(g, v) {
                let l = net
                    .link_id(v, a.to)
                    .expect("traversal edges are communication links");
                hops.push((
                    l as u32,
                    dist_add(latency, a.edge),
                    stretch(latency, a.edge) - 1,
                ));
            }
            start.push(u32::try_from(hops.len()).expect("edge count fits u32"));
        }
        FloodPlan { start, hops }
    }

    fn of(&self, v: NodeId) -> &[(u32, Weight, u64)] {
        &self.hops[self.start[v] as usize..self.start[v + 1] as usize]
    }
}

/// Runs a pipelined `h`-bounded search from `sources` and returns the
/// distance table. Costs `O(max_dist + k)` rounds for unit latencies,
/// charged to `ledger` under `label`.
///
/// # Panics
///
/// Panics if a source id is out of range or repeated, or if
/// `spec.latency` is provided with fewer entries than the graph has edges.
pub fn multi_source_bfs(
    g: &Graph,
    sources: &[NodeId],
    spec: &MultiBfsSpec<'_>,
    label: &str,
    ledger: &mut Ledger,
) -> DistMatrix {
    if let Some(l) = spec.latency {
        assert!(l.len() >= g.m(), "latency table must cover all edges");
    }
    let _span = mwc_trace::span_owned(|| format!("multibfs/{label}"));
    let n = g.n();
    let mut mat = DistMatrix::new(n, sources.to_vec());
    let mut net: Network<Announce> = Network::new_auto(g);
    let plan = FloodPlan::build(g, &net, spec.direction, spec.latency);

    // outbox[v]: fresh announcements not yet forwarded, smallest first.
    let mut outbox: Vec<BinaryHeap<Reverse<Announce2>>> =
        (0..n).map(|_| BinaryHeap::new()).collect();
    let mut pending: Vec<NodeId> = Vec::new();
    let mut pending_flag = vec![false; n];

    for (row, &s) in sources.iter().enumerate() {
        mat.set_row(row, s, 0, None);
        outbox[s].push(Reverse((0, row as u32)));
        if !pending_flag[s] {
            pending_flag[s] = true;
            pending.push(s);
        }
    }

    let mut out = RoundOutput::default();
    loop {
        // Node actions for this round: each pending node forwards its
        // smallest fresh announcement over every traversal link.
        let acting = std::mem::take(&mut pending);
        let mut any_sent = false;
        for v in acting {
            pending_flag[v] = false;
            // Pop entries until one is fresh (stale = improved since push).
            let fresh = loop {
                match outbox[v].pop() {
                    Some(Reverse((d, row))) => {
                        if mat.get_row(row as usize, v) == d {
                            break Some((d, row));
                        }
                    }
                    None => break None,
                }
            };
            let Some((d, row)) = fresh else { continue };
            for &(l, add, lat) in plan.of(v) {
                let cand = d.saturating_add(add);
                if cand > spec.max_dist {
                    continue;
                }
                // Receiver-side pruning happens on delivery; sender-side we
                // also skip if the receiver is already known (to the
                // sender) to be closer — we cannot know that locally, so
                // no such check: CONGEST nodes only know their own state.
                any_sent = true;
                net.send_on_link(l as usize, (row, cand), 1, lat);
            }
            if !outbox[v].is_empty() && !pending_flag[v] {
                pending_flag[v] = true;
                pending.push(v);
            }
        }

        if !any_sent {
            if !pending.is_empty() {
                // Entirely-filtered pops: keep draining outboxes locally
                // without charging rounds (nothing was transmitted).
                continue;
            }
            if net.is_idle() {
                break;
            }
        }
        let stepped = if any_sent {
            net.step_into(&mut out);
            true
        } else {
            net.step_fast_into(&mut out)
        };
        if !stepped {
            break;
        }
        for d in out.deliveries.drain(..) {
            let (row, cand) = d.payload;
            let v = d.to;
            if cand < mat.get_row(row as usize, v) {
                mat.set_row(row as usize, v, cand, Some(d.from));
                outbox[v].push(Reverse((cand, row)));
                if !pending_flag[v] {
                    pending_flag[v] = true;
                    pending.push(v);
                }
            }
        }
    }
    ledger.absorb(label, &net);
    mwc_trace::check_bound(
        "congest/multibfs",
        mwc_trace::BoundInputs::n(n)
            .h(crate::bounds::effective_hops(
                n,
                spec.max_dist,
                spec.latency,
                g.m(),
            ))
            .k(sources.len() as u64),
        net.round(),
        crate::bounds::multibfs,
    );
    mat
}

/// `(dist, src)` ordering helper — distance first, then source row for a
/// deterministic tiebreak.
type Announce2 = (Weight, u32);

/// Result of [`source_detection`]: for each node, its detected sources as
/// `(distance, source)` pairs sorted lexicographically — the `σ` closest
/// sources within distance `h`, ties broken by source id.
pub type DetectionLists = Vec<Vec<(Weight, NodeId)>>;

/// Output of [`source_detection`]: the per-node top-`σ` lists plus
/// predecessor bookkeeping for witness-path reconstruction.
#[derive(Clone, Debug)]
pub struct Detection {
    /// Per node, the detected `(distance, source)` pairs (≤ `σ`, sorted).
    pub lists: DetectionLists,
    /// Per node, every source ever admitted with its best `(dist, pred)`
    /// (the neighbor the announcement arrived from).
    best: Vec<HashMap<NodeId, (Weight, NodeId)>>,
}

impl Detection {
    /// Best-known distance from `src` to `node`, if any announcement for
    /// `src` ever reached `node` (superset of the truncated lists).
    pub fn dist(&self, node: NodeId, src: NodeId) -> Option<Weight> {
        self.best[node].get(&src).map(|&(d, _)| d)
    }

    /// The discovered path `node → … → src` following predecessor
    /// pointers (real graph edges). `None` if `src` never reached `node`.
    pub fn path_to_source(&self, node: NodeId, src: NodeId) -> Option<Vec<NodeId>> {
        let mut path = vec![node];
        let mut cur = node;
        while cur != src {
            let &(_, pred) = self.best[cur].get(&src)?;
            cur = pred;
            path.push(cur);
            if path.len() > self.best.len() {
                return None;
            }
        }
        Some(path)
    }
}

/// `(S, h, σ)` source detection \[37\]: every node learns the `σ`
/// lexicographically-smallest `(distance, source)` pairs among sources
/// within distance `h`. Costs `O(h + σ)` rounds for unit latencies.
///
/// Nodes only store and forward their current top-`σ` lists, so the
/// per-node memory and traffic stay proportional to `σ` — this is what
/// makes the girth algorithm's `√n`-neighborhood computation affordable
/// (paper §4). With `latency` set, distances are measured in the
/// stretched metric (paper §4's stretched graphs).
#[allow(clippy::too_many_arguments)] // mirrors the primitive's full (S, h, σ) signature
pub fn source_detection(
    g: &Graph,
    sources: &[NodeId],
    h: Weight,
    sigma: usize,
    direction: Direction,
    latency: Option<&[Weight]>,
    label: &str,
    ledger: &mut Ledger,
) -> Detection {
    if let Some(l) = latency {
        assert!(l.len() >= g.m(), "latency table must cover all edges");
    }
    let _span = mwc_trace::span_owned(|| format!("detect/{label}"));
    let n = g.n();
    let mut net: Network<(u32, Weight)> = Network::new_auto(g);
    let plan = FloodPlan::build(g, &net, direction, latency);

    // Per node: current best (distance, pred) per source, the top-σ set,
    // and the outbox of fresh entries.
    let mut best: Vec<HashMap<u32, (Weight, NodeId)>> = (0..n).map(|_| HashMap::new()).collect();
    let mut top: Vec<BTreeSet<(Weight, u32)>> = (0..n).map(|_| BTreeSet::new()).collect();
    let mut outbox: Vec<BinaryHeap<Reverse<(Weight, u32)>>> =
        (0..n).map(|_| BinaryHeap::new()).collect();
    let mut pending: Vec<NodeId> = Vec::new();
    let mut pending_flag = vec![false; n];

    // Sort sources so "source row" order matches id order (consistent
    // tie-breaking is what makes truncated detection exact).
    let mut srcs: Vec<NodeId> = sources.to_vec();
    srcs.sort_unstable();
    srcs.dedup();

    let admit = |v: NodeId,
                 src_row: u32,
                 d: Weight,
                 pred: NodeId,
                 best: &mut Vec<HashMap<u32, (Weight, NodeId)>>,
                 top: &mut Vec<BTreeSet<(Weight, u32)>>|
     -> bool {
        match best[v].get(&src_row) {
            Some(&(old, _)) if old <= d => return false,
            Some(&(old, _)) => {
                top[v].remove(&(old, src_row));
            }
            None => {}
        }
        best[v].insert(src_row, (d, pred));
        top[v].insert((d, src_row));
        while top[v].len() > sigma {
            let worst = *top[v].iter().next_back().expect("nonempty");
            top[v].remove(&worst);
        }
        // Forward only if the entry survived truncation.
        top[v].contains(&(d, src_row))
    };

    for (row, &s) in srcs.iter().enumerate() {
        if admit(s, row as u32, 0, s, &mut best, &mut top) {
            outbox[s].push(Reverse((0, row as u32)));
            if !pending_flag[s] {
                pending_flag[s] = true;
                pending.push(s);
            }
        }
    }

    let mut out = RoundOutput::default();
    loop {
        let acting = std::mem::take(&mut pending);
        let mut any_action = false;
        for v in acting {
            pending_flag[v] = false;
            let fresh = loop {
                match outbox[v].pop() {
                    Some(Reverse((d, row))) => {
                        // Fresh = still our best and still within top-σ.
                        if best[v].get(&row).map(|&(bd, _)| bd) == Some(d)
                            && top[v].contains(&(d, row))
                        {
                            break Some((d, row));
                        }
                    }
                    None => break None,
                }
            };
            let Some((d, row)) = fresh else { continue };
            any_action = true;
            for &(l, add, lat) in plan.of(v) {
                let cand = d.saturating_add(add);
                if cand > h {
                    continue;
                }
                net.send_on_link(l as usize, (row, cand), 1, lat);
            }
            if !outbox[v].is_empty() && !pending_flag[v] {
                pending_flag[v] = true;
                pending.push(v);
            }
        }

        if !any_action && net.is_idle() {
            break;
        }
        let stepped = if any_action {
            net.step_into(&mut out);
            true
        } else {
            net.step_fast_into(&mut out)
        };
        if !stepped {
            break;
        }
        for dmsg in out.deliveries.drain(..) {
            let (row, cand) = dmsg.payload;
            let v = dmsg.to;
            if admit(v, row, cand, dmsg.from, &mut best, &mut top) {
                outbox[v].push(Reverse((cand, row)));
                if !pending_flag[v] {
                    pending_flag[v] = true;
                    pending.push(v);
                }
            }
        }
    }
    ledger.absorb(label, &net);
    mwc_trace::check_bound(
        "congest/source_detection",
        mwc_trace::BoundInputs::n(n)
            .h(crate::bounds::effective_hops(n, h, latency, g.m()))
            .k(sigma.min(srcs.len()) as u64),
        net.round(),
        crate::bounds::source_detection,
    );

    let lists: DetectionLists = (0..n)
        .map(|v| {
            top[v]
                .iter()
                .map(|&(d, row)| (d, srcs[row as usize]))
                .collect()
        })
        .collect();
    let best_by_id: Vec<HashMap<NodeId, (Weight, NodeId)>> = best
        .into_iter()
        .map(|m| {
            m.into_iter()
                .map(|(row, dp)| (srcs[row as usize], dp))
                .collect()
        })
        .collect();
    Detection {
        lists,
        best: best_by_id,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwc_graph::generators::{connected_gnm, grid, WeightRange};
    use mwc_graph::seq::{bellman_ford_hops, bfs, HOP_INF};
    use mwc_graph::Orientation;

    fn assert_matches_bfs(g: &Graph, sources: &[NodeId], h: Weight, dir: Direction) {
        let mut ledger = Ledger::new();
        let spec = MultiBfsSpec {
            max_dist: h,
            direction: dir,
            latency: None,
        };
        let mat = multi_source_bfs(g, sources, &spec, "test", &mut ledger);
        for (row, &s) in sources.iter().enumerate() {
            let t = bfs(g, s, dir);
            for v in 0..g.n() {
                let expect = if t.dist[v] == HOP_INF || (t.dist[v] as Weight) > h {
                    INF
                } else {
                    t.dist[v] as Weight
                };
                assert_eq!(
                    mat.get_row(row, v),
                    expect,
                    "src {s} node {v} (dir {dir:?})"
                );
            }
        }
    }

    #[test]
    fn single_source_bfs_exact() {
        let g = connected_gnm(60, 90, Orientation::Undirected, WeightRange::unit(), 5);
        assert_matches_bfs(&g, &[0], INF, Direction::Forward);
    }

    #[test]
    fn multi_source_bfs_exact_undirected() {
        let g = connected_gnm(50, 70, Orientation::Undirected, WeightRange::unit(), 9);
        assert_matches_bfs(&g, &[0, 7, 13, 31, 49], INF, Direction::Forward);
    }

    #[test]
    fn multi_source_bfs_exact_directed_both_directions() {
        let g = connected_gnm(50, 120, Orientation::Directed, WeightRange::unit(), 11);
        assert_matches_bfs(&g, &[1, 2, 3, 20, 40], INF, Direction::Forward);
        assert_matches_bfs(&g, &[1, 2, 3, 20, 40], INF, Direction::Reverse);
    }

    #[test]
    fn hop_budget_truncates() {
        let g = grid(6, 6, Orientation::Undirected, WeightRange::unit(), 0);
        assert_matches_bfs(&g, &[0, 35], 4, Direction::Forward);
    }

    #[test]
    fn bfs_rounds_within_h_plus_k_envelope() {
        // Grid: D = 28; 20 sources; pipelining must keep rounds ≲ c(h + k).
        let g = grid(15, 15, Orientation::Undirected, WeightRange::unit(), 0);
        let sources: Vec<NodeId> = (0..20).map(|i| i * 11).collect();
        let mut ledger = Ledger::new();
        let spec = MultiBfsSpec::default();
        let _ = multi_source_bfs(&g, &sources, &spec, "bfs", &mut ledger);
        let h = 28u64;
        let k = 20u64;
        assert!(
            ledger.rounds <= 3 * (h + k),
            "pipelined BFS took {} rounds, envelope {}",
            ledger.rounds,
            3 * (h + k)
        );
    }

    #[test]
    fn predecessor_chains_are_real_paths() {
        let g = connected_gnm(40, 60, Orientation::Directed, WeightRange::unit(), 2);
        let mut ledger = Ledger::new();
        let mat = multi_source_bfs(&g, &[3, 17], &MultiBfsSpec::default(), "t", &mut ledger);
        for row in 0..2 {
            for v in 0..g.n() {
                if mat.get_row(row, v) == INF {
                    continue;
                }
                let path = mat.path_from_source(row, v).expect("reached");
                assert_eq!(path.len() as Weight - 1, mat.get_row(row, v));
                for w in path.windows(2) {
                    assert!(g.has_edge(w[0], w[1]), "edge {}→{} missing", w[0], w[1]);
                }
            }
        }
    }

    #[test]
    fn latency_bfs_computes_weighted_distances() {
        // Stretched search: latency = edge weight ⇒ distances = weighted
        // shortest paths (exact, because waves travel at weight-speed).
        let g = connected_gnm(
            40,
            80,
            Orientation::Directed,
            WeightRange::uniform(1, 6),
            21,
        );
        let lat: Vec<Weight> = g.edges().iter().map(|e| e.weight).collect();
        let spec = MultiBfsSpec {
            max_dist: INF,
            direction: Direction::Forward,
            latency: Some(&lat),
        };
        let mut ledger = Ledger::new();
        let mat = multi_source_bfs(&g, &[0, 5], &spec, "t", &mut ledger);
        for (row, &s) in [0usize, 5].iter().enumerate() {
            let exact = bellman_ford_hops(&g, s, g.n(), Direction::Forward);
            for v in 0..g.n() {
                assert_eq!(mat.get_row(row, v), exact[v], "src {s} node {v}");
            }
        }
    }

    #[test]
    fn latency_budget_is_weighted_budget() {
        // Path with weights 3,3,3: budget 6 reaches two hops only.
        let g = Graph::from_edges(
            4,
            Orientation::Undirected,
            [(0, 1, 3), (1, 2, 3), (2, 3, 3)],
        )
        .unwrap();
        let lat: Vec<Weight> = g.edges().iter().map(|e| e.weight).collect();
        let spec = MultiBfsSpec {
            max_dist: 6,
            direction: Direction::Forward,
            latency: Some(&lat),
        };
        let mut ledger = Ledger::new();
        let mat = multi_source_bfs(&g, &[0], &spec, "t", &mut ledger);
        assert_eq!(mat.get_row(0, 2), 6);
        assert_eq!(mat.get_row(0, 3), INF);
    }

    #[test]
    fn reverse_direction_with_latency_matches_oracle() {
        // Weighted reverse BFS: distances *to* the sources along edge
        // orientation, measured in the stretched metric.
        let g = connected_gnm(
            36,
            90,
            Orientation::Directed,
            WeightRange::uniform(1, 7),
            14,
        );
        let lat: Vec<Weight> = g.edges().iter().map(|e| e.weight).collect();
        let spec = MultiBfsSpec {
            max_dist: INF,
            direction: Direction::Reverse,
            latency: Some(&lat),
        };
        let mut ledger = Ledger::new();
        let mat = multi_source_bfs(&g, &[3, 30], &spec, "rl", &mut ledger);
        for (row, &s) in [3usize, 30].iter().enumerate() {
            let t = mwc_graph::seq::dijkstra(&g, s, Direction::Reverse);
            for v in 0..g.n() {
                let expect = if t.dist[v] == mwc_graph::seq::INF {
                    INF
                } else {
                    t.dist[v]
                };
                assert_eq!(mat.get_row(row, v), expect, "to {s} from {v}");
            }
        }
    }

    #[test]
    fn budget_zero_reaches_only_sources() {
        let g = grid(4, 4, Orientation::Undirected, WeightRange::unit(), 0);
        let spec = MultiBfsSpec {
            max_dist: 0,
            direction: Direction::Forward,
            latency: None,
        };
        let mut ledger = Ledger::new();
        let mat = multi_source_bfs(&g, &[5], &spec, "z", &mut ledger);
        assert_eq!(mat.get_row(0, 5), 0);
        assert!((0..16)
            .filter(|&v| v != 5)
            .all(|v| mat.get_row(0, v) == INF));
        assert_eq!(ledger.rounds, 0);
    }

    #[test]
    fn zero_weight_edges_stay_exact() {
        // w = 0 edges add nothing to distance but one round of travel.
        let g =
            Graph::from_edges(4, Orientation::Directed, [(0, 1, 0), (1, 2, 0), (2, 3, 5)]).unwrap();
        let lat: Vec<Weight> = g.edges().iter().map(|e| e.weight).collect();
        let spec = MultiBfsSpec {
            max_dist: INF,
            direction: Direction::Forward,
            latency: Some(&lat),
        };
        let mut ledger = Ledger::new();
        let mat = multi_source_bfs(&g, &[0], &spec, "t", &mut ledger);
        assert_eq!(mat.get_row(0, 1), 0);
        assert_eq!(mat.get_row(0, 2), 0);
        assert_eq!(mat.get_row(0, 3), 5);
        // Travel still takes ≥ 1 round per hop.
        assert!(ledger.rounds >= 3);
    }

    fn detection_oracle(g: &Graph, sources: &[NodeId], h: Weight, sigma: usize) -> DetectionLists {
        let mut lists: DetectionLists = vec![Vec::new(); g.n()];
        let mut srcs = sources.to_vec();
        srcs.sort_unstable();
        for &s in &srcs {
            let t = bfs(g, s, Direction::Forward);
            for v in 0..g.n() {
                if t.dist[v] != HOP_INF && (t.dist[v] as Weight) <= h {
                    lists[v].push((t.dist[v] as Weight, s));
                }
            }
        }
        for l in &mut lists {
            l.sort_unstable();
            l.truncate(sigma);
        }
        lists
    }

    #[test]
    fn source_detection_matches_oracle() {
        let g = connected_gnm(48, 70, Orientation::Undirected, WeightRange::unit(), 33);
        let sources: Vec<NodeId> = (0..48).step_by(3).collect();
        let mut ledger = Ledger::new();
        let got = source_detection(
            &g,
            &sources,
            6,
            4,
            Direction::Forward,
            None,
            "sd",
            &mut ledger,
        )
        .lists;
        let want = detection_oracle(&g, &sources, 6, 4);
        assert_eq!(got, want);
    }

    #[test]
    fn source_detection_all_sources_neighborhood() {
        // The girth algorithm's use: every node a source, σ nearest.
        let g = grid(7, 7, Orientation::Undirected, WeightRange::unit(), 0);
        let sources: Vec<NodeId> = (0..g.n()).collect();
        let mut ledger = Ledger::new();
        let got = source_detection(
            &g,
            &sources,
            12,
            7,
            Direction::Forward,
            None,
            "sd",
            &mut ledger,
        )
        .lists;
        let want = detection_oracle(&g, &sources, 12, 7);
        assert_eq!(got, want);
        // Rounds stay O(h + σ), far below O(n).
        assert!(
            ledger.rounds <= 4 * (12 + 7),
            "took {} rounds",
            ledger.rounds
        );
    }

    #[test]
    fn detection_pred_paths_are_real() {
        let g = connected_gnm(40, 60, Orientation::Undirected, WeightRange::unit(), 12);
        let sources: Vec<NodeId> = (0..40).step_by(4).collect();
        let mut ledger = Ledger::new();
        let det = source_detection(
            &g,
            &sources,
            8,
            5,
            Direction::Forward,
            None,
            "sd",
            &mut ledger,
        );
        for v in 0..g.n() {
            for &(d, s) in &det.lists[v] {
                let p = det.path_to_source(v, s).expect("detected ⇒ path");
                assert_eq!(*p.first().unwrap(), v);
                assert_eq!(*p.last().unwrap(), s);
                assert_eq!(p.len() as Weight - 1, d, "path hops ≠ detected dist");
                for w in p.windows(2) {
                    assert!(g.has_edge(w[0], w[1]) || g.has_edge(w[1], w[0]));
                }
            }
        }
    }

    #[test]
    fn detection_with_latency_uses_stretched_metric() {
        // Path 0 -5- 1 -1- 2: source 0; at node 2 stretched dist = 6.
        let g = Graph::from_edges(3, Orientation::Undirected, [(0, 1, 5), (1, 2, 1)]).unwrap();
        let lat: Vec<Weight> = g.edges().iter().map(|e| e.weight).collect();
        let mut ledger = Ledger::new();
        let det = source_detection(
            &g,
            &[0],
            10,
            2,
            Direction::Forward,
            Some(&lat),
            "sd",
            &mut ledger,
        );
        assert_eq!(det.lists[2], vec![(6, 0)]);
        assert_eq!(det.dist(2, 0), Some(6));
        // Budget cuts off stretched-far nodes.
        let mut ledger = Ledger::new();
        let det = source_detection(
            &g,
            &[0],
            4,
            2,
            Direction::Forward,
            Some(&lat),
            "sd",
            &mut ledger,
        );
        assert!(det.lists[1].is_empty());
    }

    #[test]
    fn source_detection_directed() {
        let g = connected_gnm(30, 80, Orientation::Directed, WeightRange::unit(), 8);
        let sources: Vec<NodeId> = (0..30).step_by(2).collect();
        let mut ledger = Ledger::new();
        let got = source_detection(
            &g,
            &sources,
            5,
            3,
            Direction::Forward,
            None,
            "sd",
            &mut ledger,
        )
        .lists;
        // Oracle with forward BFS.
        let mut want: DetectionLists = vec![Vec::new(); g.n()];
        for &s in &sources {
            let t = bfs(&g, s, Direction::Forward);
            for v in 0..g.n() {
                if t.dist[v] != HOP_INF && t.dist[v] <= 5 {
                    want[v].push((t.dist[v] as Weight, s));
                }
            }
        }
        for l in &mut want {
            l.sort_unstable();
            l.truncate(3);
        }
        assert_eq!(got, want);
    }
}
