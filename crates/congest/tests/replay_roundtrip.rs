//! End-to-end replay-reader tests over a real algorithm workload: the
//! JSONL event schema round-trips through [`EventLog::parse`], and the
//! bisector locates the exact first divergent `(round, link)` between two
//! logs that differ by a single message.

use mwc_congest::{
    first_divergence, multi_source_bfs, EventCapture, EventLog, Ledger, MultiBfsSpec, Network,
};
use mwc_graph::generators::{connected_gnm, WeightRange};
use mwc_graph::Orientation;

fn bfs_log(seed: u64) -> EventLog {
    EventLog::capture(|| {
        let g = connected_gnm(24, 48, Orientation::Undirected, WeightRange::unit(), seed);
        let mut ledger = Ledger::new();
        multi_source_bfs(&g, &[0, 7], &MultiBfsSpec::default(), "bfs", &mut ledger);
    })
}

#[test]
fn event_schema_round_trips_through_replay_reader() {
    let cap = EventCapture::memory();
    let g = connected_gnm(24, 48, Orientation::Undirected, WeightRange::unit(), 3);
    let mut ledger = Ledger::new();
    multi_source_bfs(&g, &[0, 7], &MultiBfsSpec::default(), "bfs", &mut ledger);
    let lines = cap.finish();
    assert!(!lines.is_empty());

    // Every line parses, and parse ∘ render is the identity on the log.
    let text = lines.join("\n");
    let log = EventLog::parse(&text).expect("sink emits valid JSONL");
    assert_eq!(log.phases.len(), 1, "one absorb → one phase line");
    assert_eq!(log.phases[0].label, "bfs");
    let reparsed = EventLog::parse(&log.render()).unwrap();
    assert_eq!(reparsed, log);

    // The log's totals agree with the ledger-reported phase costs.
    let total_msgs: u64 = log.messages.len() as u64;
    assert_eq!(total_msgs, log.phases[0].messages);
    let total_words: u64 = log.messages.iter().map(|m| m.words).sum();
    assert_eq!(total_words, log.phases[0].words);
    assert!(log
        .messages
        .iter()
        .all(|m| log.global_round(m) <= log.phases[0].rounds));
}

#[test]
fn same_seed_runs_produce_identical_logs() {
    let a = bfs_log(11);
    let b = bfs_log(11);
    assert_eq!(a, b);
    assert_eq!(first_divergence(&a, &b), None);
}

#[test]
fn bisect_locates_single_extra_message_in_real_workload() {
    // Run the BFS twice; in run B, smuggle one extra unit message onto a
    // known link in a trailing phase. The bisector must name exactly that
    // (global round, link), not merely "the logs differ".
    let a = bfs_log(11);
    let b = EventLog::capture(|| {
        let g = connected_gnm(24, 48, Orientation::Undirected, WeightRange::unit(), 11);
        let mut ledger = Ledger::new();
        multi_source_bfs(&g, &[0, 7], &MultiBfsSpec::default(), "bfs", &mut ledger);
        let mut net: Network<u8> = Network::new(&g);
        net.send(0, g.comm_neighbors(0)[0], 1, 1).unwrap();
        while !net.is_idle() {
            net.step();
        }
        ledger.absorb("extra", &net);
    });
    assert_eq!(b.messages.len(), a.messages.len() + 1);

    let d = first_divergence(&a, &b).expect("logs differ by one message");
    // The BFS prefix is identical, so the first divergence is the injected
    // message: global round = bfs rounds + 1, on the link we sent it over.
    let g = connected_gnm(24, 48, Orientation::Undirected, WeightRange::unit(), 11);
    let expect_round = a.phases[0].rounds + 1;
    let expect_link = (0, g.comm_neighbors(0)[0]);
    assert_eq!(d.round, expect_round, "{}", d.detail);
    assert_eq!(d.link, Some(expect_link), "{}", d.detail);
    assert!(d.detail.contains("log A delivered nothing"), "{}", d.detail);

    // Windowed replay around the divergence shows the culprit delivery.
    let view = b.render_window(d.round, d.round, Some(expect_link.0));
    assert!(
        view.contains(&format!("{} out -> {}", expect_link.0, expect_link.1)),
        "{view}"
    );
}
