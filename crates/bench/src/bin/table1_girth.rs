//! **T1-GIRTH** — Table 1, girth row: exact `O(n)` \[28\] vs `(2 − 1/g)`-
//! approximation in `Õ(√n + D)` (Theorem 1.3.B).
//!
//! The paper predicts the approximation overtakes the exact baseline with
//! a fitted exponent ≈0.5 (+polylogs) against ≈1.0 — this is the row where
//! the asymptotic gap is widest and the crossover is visible at benchable
//! sizes.
//!
//! Usage: `table1_girth [max_n]` (default 4096; sweep doubles from 128).

use mwc_bench::plot::loglog_chart;
use mwc_bench::{fit_exponent, ratio, report, Table};
use mwc_core::{approx_girth, exact_mwc, Params};
use mwc_graph::generators::{connected_gnm, WeightRange};
use mwc_graph::Orientation;

/// Count allocator traffic so this bin's run record and optional Chrome
/// trace export carry allocation profile data alongside simulated rounds.
#[global_allocator]
static ALLOC: mwc_trace::profile::CountingAlloc = mwc_trace::profile::CountingAlloc;

fn main() {
    report::init_profiling();
    report::init_jobs();
    report::init_shards();
    report::init_flood_kernel();
    let max_n: usize = report::arg(1, 4096);
    let params = Params::lean().with_seed(4242);
    let mut rec = report::RunRecorder::start("table1_girth");
    rec.param("max_n", max_n);
    rec.param("seed", 4242);

    let mut t = Table::new(
        "Table 1 / girth: exact O(n) vs (2 − 1/g)-approx Õ(√n + D)",
        &[
            "n",
            "m",
            "D",
            "exact_rounds",
            "approx_rounds",
            "approx/exact",
            "girth",
            "reported",
            "quality",
        ],
    );
    let sizes: Vec<usize> = std::iter::successors(Some(128usize), |&n| Some(n * 2))
        .take_while(|&n| n <= max_n)
        .collect();
    // Per-size configs are independent: run them on the worker pool
    // (`--jobs` / `MWC_JOBS`), each under its own trace session and cache
    // scope, then graft the traces back in input order — output is
    // byte-identical for every worker count.
    let runs = mwc_par::ordered_map(sizes, |n| {
        let session = mwc_trace::TraceSession::memory();
        let g = connected_gnm(
            n,
            2 * n,
            Orientation::Undirected,
            WeightRange::unit(),
            5 + n as u64,
        );
        let d = g.undirected_diameter().expect("connected");
        // One cache scope per graph: exact and approx share the BFS tree,
        // so the second algorithm replays it instead of re-charging.
        let cache = mwc_congest::PhaseCache::scope();
        let exact = exact_mwc(&g);
        let approx = approx_girth(&g, &params);
        drop(cache);
        (n, g.m(), d, exact, approx, session.finish())
    });
    let (mut ns, mut er, mut ar) = (Vec::new(), Vec::new(), Vec::new());
    for (n, m, d, exact, approx, trace) in runs {
        mwc_trace::graft(trace);
        rec.congestion(&format!("n={n} exact"), &exact.ledger);
        rec.congestion(&format!("n={n} approx"), &approx.ledger);
        let girth = exact.weight.expect("cycle exists");
        let rep = approx.weight.expect("approximation must find a cycle");
        // `2g − 1` is the (2 − 1/g)·g bound written the paper's way.
        #[allow(clippy::int_plus_one)]
        let within = rep >= girth && rep <= 2 * girth - 1;
        assert!(within, "(2 − 1/g) violated: {rep} vs girth {girth}");
        t.row(vec![
            n.to_string(),
            m.to_string(),
            d.to_string(),
            exact.ledger.rounds.to_string(),
            approx.ledger.rounds.to_string(),
            ratio(approx.ledger.rounds, exact.ledger.rounds),
            girth.to_string(),
            rep.to_string(),
            format!("{:.2}", rep as f64 / girth as f64),
        ]);
        ns.push(n as f64);
        er.push(exact.ledger.rounds as f64);
        ar.push(approx.ledger.rounds as f64);
    }
    t.print();
    t.save_tsv("table1_girth");
    if ns.len() >= 2 {
        println!(
            "fitted exponents: exact n^{:.2} (paper ~1.0), approx n^{:.2} (paper ~0.5 + polylog)\n",
            fit_exponent(&ns, &er),
            fit_exponent(&ns, &ar)
        );
        let series = vec![
            (
                "exact O(n)",
                ns.iter().zip(&er).map(|(&x, &y)| (x, y)).collect(),
            ),
            (
                "(2-1/g)-approx",
                ns.iter().zip(&ar).map(|(&x, &y)| (x, y)).collect(),
            ),
        ];
        print!("{}", loglog_chart("rounds vs n", &series, 56, 12));
    }
    rec.finish();
}
