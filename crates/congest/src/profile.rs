//! Per-phase congestion profiles: how a phase's traffic was *shaped*, not
//! just how much there was.
//!
//! A [`Phase`](crate::Phase) used to carry only round/word totals; the
//! profile adds the engine's always-on congestion metrics (peak round load,
//! active-round count, queue backpressure, hot links, and the per-round
//! word histogram) so benchmark reports and the `mwc-trace` flamegraph can
//! show *where* a phase saturates the network.

use crate::engine::{NetStats, Network, HIST_BUCKETS};
use mwc_graph::NodeId;

/// How many hot links a phase profile retains.
pub const PROFILE_HOT_LINKS: usize = 3;

/// The congestion shape of one finished phase.
#[derive(Clone, Debug, Default)]
pub struct CongestionProfile {
    /// Messages the phase delivered.
    pub messages: u64,
    /// Rounds that actually transferred words (≤ the phase's rounds;
    /// the difference is latency waits and wakeup gaps).
    pub active_rounds: u64,
    /// Peak words transferred in any single round.
    pub max_words_in_round: u64,
    /// The phase-local round at which the peak was first reached
    /// (earliest-round tie-break — deterministic); 0 for quiet phases.
    pub peak_round: u64,
    /// High-water mark of any link's send queue.
    pub queue_high_water: u64,
    /// The most-loaded links as `((from, to), words)`, heaviest first
    /// (top [`PROFILE_HOT_LINKS`], deterministic tie-break).
    pub hot_links: Vec<((NodeId, NodeId), u64)>,
    /// Histogram of per-round delivered words over power-of-two buckets
    /// (see [`crate::hist_bucket`]).
    pub round_histogram: [u64; HIST_BUCKETS],
}

impl CongestionProfile {
    /// Captures the profile of a finished phase from its network.
    pub fn capture<M>(net: &Network<M>) -> CongestionProfile {
        let stats: &NetStats = net.stats();
        CongestionProfile {
            messages: stats.messages,
            active_rounds: stats.active_rounds,
            max_words_in_round: stats.max_words_in_round,
            peak_round: stats.peak_round,
            queue_high_water: stats.queue_high_water,
            hot_links: net.hot_links(PROFILE_HOT_LINKS),
            round_histogram: stats.round_histogram,
        }
    }

    /// Mean words per *active* round — the phase's sustained parallelism.
    pub fn mean_active_load(&self, words: u64) -> f64 {
        if self.active_rounds == 0 {
            0.0
        } else {
            words as f64 / self.active_rounds as f64
        }
    }
}

/// The `k` heaviest `(link, words)` pairs from a per-link load table.
///
/// The order is a *total* order — load descending, then `(from, to)`
/// ascending — never map or insertion order, so every hot-link report
/// (engine, ledger, run records, diffs) is deterministic even on ties.
pub fn top_links(
    link_ends: &[(NodeId, NodeId)],
    per_link_words: &[u64],
    k: usize,
) -> Vec<((NodeId, NodeId), u64)> {
    let mut loaded: Vec<((NodeId, NodeId), u64)> = link_ends
        .iter()
        .copied()
        .zip(per_link_words.iter().copied())
        .filter(|&(_, w)| w > 0)
        .collect();
    loaded.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    loaded.truncate(k);
    loaded
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwc_graph::{Graph, Orientation};

    #[test]
    fn capture_reads_engine_metrics() {
        let g = Graph::from_edges(3, Orientation::Undirected, [(0, 1, 1), (1, 2, 1)]).unwrap();
        let mut net: Network<u8> = Network::new(&g);
        net.send(0, 1, 1, 2).unwrap();
        net.send(0, 1, 2, 1).unwrap();
        net.send(1, 2, 3, 1).unwrap();
        while !net.is_idle() {
            net.step();
        }
        let p = CongestionProfile::capture(&net);
        assert_eq!(p.messages, 3);
        assert_eq!(p.queue_high_water, 2); // two messages queued on 0→1
        assert_eq!(p.max_words_in_round, 2); // round 1: links 0→1 and 1→2
        assert_eq!(p.active_rounds, 3);
        assert_eq!(p.hot_links[0], ((0, 1), 3));
        // Histogram: one round moved 2 words (bucket 1), two rounds moved 1
        // word (bucket 0).
        assert_eq!(p.round_histogram[0], 2);
        assert_eq!(p.round_histogram[1], 1);
    }

    #[test]
    fn top_links_is_deterministic_on_ties() {
        let ends = [(0, 1), (1, 0), (1, 2)];
        let words = [5, 5, 1];
        let top = top_links(&ends, &words, 2);
        assert_eq!(top, vec![((0, 1), 5), ((1, 0), 5)]);
        assert!(top_links(&ends, &[0, 0, 0], 2).is_empty());
    }

    #[test]
    fn top_links_ties_break_by_link_id_even_when_table_is_shuffled() {
        // The tie-break is on the (from, to) pair itself, not on the
        // position in the link table: a reordered table must produce the
        // identical report.
        let ends = [(2, 0), (0, 1), (1, 0)];
        let words = [5, 5, 5];
        let top = top_links(&ends, &words, 3);
        assert_eq!(top, vec![((0, 1), 5), ((1, 0), 5), ((2, 0), 5)]);
    }
}
