//! Property-based integration tests: invariants that must hold for every
//! algorithm on arbitrary (generated) inputs.
//!
//! The two one-sided guarantees that hold *deterministically* (not just
//! w.h.p.) are the backbone: every reported weight is certified by a real
//! simple cycle (so it is ≥ the true MWC), and the exact algorithms agree
//! with the sequential oracles exactly.
//!
//! Runs on `mwc_rng::proptest_lite`; new failures persist their case
//! seed under `proplite-regressions/`.

use congest_mwc::core::{
    approx_girth, approx_mwc_undirected_weighted, exact_mwc, two_approx_directed_mwc, Params,
};
use congest_mwc::graph::generators::{connected_gnm, WeightRange};
use congest_mwc::graph::{seq, Orientation};
use congest_mwc::rng::proptest_lite::Config;
use congest_mwc::rng::{prop_assert, prop_assert_eq, prop_tests};

prop_tests! {
    config = Config::with_cases(24);

    fn exact_matches_oracle_directed(seed in 0u64..10_000, n in 8usize..40, extra in 0usize..80) {
        let g = connected_gnm(n, extra, Orientation::Directed, WeightRange::uniform(1, 9), seed);
        let out = exact_mwc(&g);
        out.assert_valid(&g);
        prop_assert_eq!(out.weight, seq::mwc_exact(&g).map(|m| m.weight));
    }

    fn exact_matches_oracle_undirected(seed in 0u64..10_000, n in 8usize..40, extra in 0usize..60) {
        let g = connected_gnm(n, extra, Orientation::Undirected, WeightRange::uniform(1, 9), seed);
        let out = exact_mwc(&g);
        out.assert_valid(&g);
        prop_assert_eq!(out.weight, seq::mwc_exact(&g).map(|m| m.weight));
    }

    fn approximations_never_underestimate(seed in 0u64..10_000, n in 10usize..36, extra in 10usize..70) {
        let params = Params::new().with_seed(seed);

        let gd = connected_gnm(n, extra, Orientation::Directed, WeightRange::unit(), seed);
        let opt = seq::mwc_exact(&gd).map(|m| m.weight);
        let out = two_approx_directed_mwc(&gd, &params);
        out.assert_valid(&gd);
        if let (Some(w), Some(o)) = (out.weight, opt) {
            prop_assert!(w >= o);
        }
        // A reported cycle implies a cycle truly exists.
        prop_assert_eq!(out.weight.is_some(), opt.is_some());

        let gu = connected_gnm(n, extra, Orientation::Undirected, WeightRange::unit(), seed + 1);
        let opt = seq::mwc_exact(&gu).map(|m| m.weight);
        let out = approx_girth(&gu, &params);
        out.assert_valid(&gu);
        if let (Some(w), Some(o)) = (out.weight, opt) {
            prop_assert!(w >= o);
        }
        prop_assert_eq!(out.weight.is_some(), opt.is_some());
    }

    fn weighted_approx_never_underestimates(seed in 0u64..10_000, n in 10usize..28, extra in 10usize..50) {
        let params = Params::new().with_seed(seed);
        let g = connected_gnm(n, extra, Orientation::Undirected, WeightRange::uniform(1, 20), seed);
        let opt = seq::mwc_exact(&g).map(|m| m.weight);
        let out = approx_mwc_undirected_weighted(&g, &params);
        out.assert_valid(&g);
        if let (Some(w), Some(o)) = (out.weight, opt) {
            prop_assert!(w >= o);
        }
        prop_assert_eq!(out.weight.is_some(), opt.is_some());
    }

    fn determinism_in_seed(seed in 0u64..1_000) {
        let g = connected_gnm(30, 60, Orientation::Undirected, WeightRange::unit(), 5);
        let params = Params::new().with_seed(seed);
        let a = approx_girth(&g, &params);
        let b = approx_girth(&g, &params);
        prop_assert_eq!(a.weight, b.weight);
        prop_assert_eq!(a.ledger.rounds, b.ledger.rounds);
        prop_assert_eq!(a.ledger.words, b.ledger.words);
    }
}

prop_tests! {
    config = Config::with_cases(16);

    /// The (2 − 1/g) girth bound across arbitrary small graphs and seeds
    /// (the w.h.p. guarantee, which at these sizes holds with margin).
    fn girth_factor_holds_probabilistically(seed in 0u64..10_000, n in 12usize..40, extra in 6usize..60) {
        let g = connected_gnm(n, extra, Orientation::Undirected, WeightRange::unit(), seed);
        let Some(girth) = seq::girth_exact(&g).map(|m| m.weight) else { return Ok(()) };
        let out = approx_girth(&g, &Params::new().with_seed(seed ^ 0xF00D));
        out.assert_valid(&g);
        let rep = out.weight.expect("cycle exists");
        // `2g − 1` = (2 − 1/g)·g, written the paper's way.
        #[allow(clippy::int_plus_one)]
        let within = rep >= girth && rep <= 2 * girth - 1;
        prop_assert!(within, "rep {rep} girth {girth}");
    }

    /// q-bounded detection agrees with the oracle's q-truncated girth on
    /// both orientations.
    fn bounded_detection_matches_oracle(seed in 0u64..10_000, n in 6usize..26, extra in 0usize..40, q in 3u64..8) {
        use congest_mwc::core::shortest_cycle_within;
        for orientation in [Orientation::Directed, Orientation::Undirected] {
            let g = connected_gnm(n, extra, orientation, WeightRange::unit(), seed);
            let girth = seq::mwc_exact(&g).map(|m| m.weight);
            let out = shortest_cycle_within(&g, q);
            match girth {
                Some(w) if w <= q => prop_assert_eq!(out.weight, Some(w), "{:?}", orientation),
                _ => prop_assert_eq!(out.weight, None, "{:?} girth {:?} q {}", orientation, girth, q),
            }
        }
    }
}
