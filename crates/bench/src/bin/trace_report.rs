//! Span-trace and bound-audit report over a fixed deterministic fixture.
//!
//! Runs one representative of each algorithm family (exact MWC, girth
//! approximation, directed 2-approximation, both weighted approximations,
//! k-source BFS) on small seeded graphs inside an in-memory
//! [`TraceSession`], then renders:
//!
//! 1. an indented text flamegraph of simulated rounds per span,
//! 2. a table of every bound audit (measured vs. theoretical rounds),
//! 3. `results/trace_manifest.json` — the machine-readable span forest.
//!
//! Everything is seeded and no wall-clock data enters the trace, so two
//! runs produce a **byte-identical** manifest; CI diffs them to guard the
//! determinism contract.
//!
//! Usage: `trace_report [n]` (default 96).

use mwc_bench::{report, Table};
use mwc_core::{
    approx_girth, approx_mwc_directed_weighted, approx_mwc_undirected_weighted, exact_mwc,
    k_source_bfs, two_approx_directed_mwc, Params,
};
use mwc_graph::generators::{connected_gnm, grid, ring_with_chords, WeightRange};
use mwc_graph::seq::Direction;
use mwc_graph::{NodeId, Orientation};
use mwc_trace::{RunRecord, TraceSession};

/// Count allocator traffic so spans carry `alloc_bytes`/`alloc_count` —
/// the manifest and flamegraph ignore them (byte-determinism contract),
/// but the run record and the Chrome trace export surface them.
#[global_allocator]
static ALLOC: mwc_trace::profile::CountingAlloc = mwc_trace::profile::CountingAlloc;

fn main() {
    report::init_shards();
    report::init_profiling();
    report::init_flood_kernel();
    let n: usize = report::arg(1, 96);
    let params = Params::lean().with_seed(42);

    let session = TraceSession::memory();

    let g = grid(4, 4, Orientation::Undirected, WeightRange::unit(), 0);
    exact_mwc(&g);

    let g = connected_gnm(n, 2 * n, Orientation::Undirected, WeightRange::unit(), 5);
    approx_girth(&g, &params);

    let g = ring_with_chords(n, n / 4, Orientation::Undirected, WeightRange::unit(), 9);
    let sources: Vec<NodeId> = (0..n).step_by(n / 8).collect();
    k_source_bfs(&g, &sources, Direction::Forward, &params);

    let g = connected_gnm(n, 3 * n, Orientation::Directed, WeightRange::unit(), 7);
    two_approx_directed_mwc(&g, &params);

    let g = connected_gnm(
        n,
        2 * n,
        Orientation::Undirected,
        WeightRange::uniform(1, 8),
        13,
    );
    approx_mwc_undirected_weighted(&g, &params);

    let g = connected_gnm(
        n,
        3 * n,
        Orientation::Directed,
        WeightRange::uniform(1, 8),
        11,
    );
    approx_mwc_directed_weighted(&g, &params);

    let data = session.finish();

    println!("== span flamegraph (simulated rounds) ==");
    print!("{}", data.flamegraph());

    let mut t = Table::new(
        "bound audits (measured vs. theoretical rounds)",
        &[
            "algorithm",
            "n",
            "D≤",
            "h",
            "k",
            "measured",
            "bound",
            "ratio",
        ],
    );
    for a in data.all_audits() {
        t.row(vec![
            a.algorithm.clone(),
            a.inputs.n.to_string(),
            a.inputs.diameter.to_string(),
            a.inputs.h.to_string(),
            a.inputs.k.to_string(),
            a.measured_rounds.to_string(),
            format!("{:.0}", a.bound_rounds),
            format!("{:.3}", a.ratio),
        ]);
    }
    println!();
    t.print();

    report::save_json("trace_manifest.json", &data.to_manifest());
    report::save_chrome_trace(&data, "trace_report");

    let mut record =
        RunRecord::from_trace("trace_report", [("n".to_owned(), n.to_string())], &data);
    record.shards = mwc_par::shards() as u64;
    record.flood_kernel = mwc_congest::flood_kernel().name().to_owned();
    record.peak_alloc_bytes = mwc_trace::profile::peak_alloc_bytes();
    report::save_metrics_exposition(&record);
    report::save_artifact(
        &format!("{}/trace_report.json", report::RUN_RECORD_DIR),
        &record.render(),
    );
}
