#!/usr/bin/env bash
# Perf gate: regenerate every bench bin's RunRecord at pinned gate sizes
# and diff them against the committed baselines in results/baselines/.
#
# Usage:
#   scripts/perf_gate.sh            # run bins + trace_diff (exit 1 on
#                                   # regression, 2 on unpaired records)
#   scripts/perf_gate.sh refresh    # run bins + overwrite the baselines
#                                   # (the one-command path for intentional
#                                   # perf changes — commit the result)
#
# The bins run in a scratch directory (target/perf_gate) so the committed
# full-size artifacts under results/ are never clobbered by the smaller
# gate-size runs; only results/baselines/ (and, on refresh,
# results/BENCH_trajectory.json) live in the repo.
#
# The sizes below are the gate contract: records are only comparable when
# name AND parameters match, so changing a size here requires a baseline
# refresh in the same commit.
set -euo pipefail
REPO="$(cd "$(dirname "$0")/.." && pwd)"
WORK="$REPO/target/perf_gate"
rm -rf "$WORK"
mkdir -p "$WORK"
cd "$WORK"

run() {
  cargo run --manifest-path "$REPO/Cargo.toml" --release --offline \
    -p mwc-bench --bin "$@" > /dev/null
}

run table1_girth 1024
run table1_directed 256
run table1_undirected_weighted 128
run table1_lower_bounds 12
run thm16_ksssp 256
run approx_quality 64 3
run ablation 128
run detection_rounds 12
run traffic_profile 12
run phase_breakdown directed 256
run trace_report 96

if [ "${1:-}" = refresh ]; then
  mkdir -p "$REPO/results/baselines"
  cp results/run_records/*.json "$REPO/results/baselines/"
  echo "baselines refreshed from $WORK/results/run_records/"
fi

# Diff fresh records against the committed baselines. Reports land in
# $WORK/results/ (trace_diff_report.{txt,json}, BENCH_trajectory.json).
cargo run --manifest-path "$REPO/Cargo.toml" --release --offline \
  -p mwc-bench --bin trace_diff results/run_records "$REPO/results/baselines"

if [ "${1:-}" = refresh ]; then
  cp results/BENCH_trajectory.json "$REPO/results/BENCH_trajectory.json"
fi
