//! **THM16-A/B** — Theorem 1.6: `k`-source BFS in `Õ(√(nk) + D)` rounds
//! (eq. 1) and `(1+ε)`-approximate weighted `k`-source SSSP (eq. 2).
//!
//! Two sweeps:
//! - `k = n^{1/3}` (the theorem's threshold regime), growing `n`:
//!   predicting rounds ≈ `n^{2/3}` up to polylogs;
//! - fixed `n`, growing `k` across the `n^{1/3}` threshold: eq. (1) is a
//!   `min(Õ(n/k), Õ(√(nk)))`, so rounds first *fall* with `k` (the
//!   skeleton-broadcast `n/k` term) and then grow ≈ `√k` — the U-shape is
//!   the theorem's crossover made visible.
//!
//! Usage: `thm16_ksssp [max_n]` (default 2048).

use mwc_bench::{fit_exponent, report, Table};
use mwc_core::{k_source_approx_sssp, k_source_bfs, Params};
use mwc_graph::generators::{connected_gnm, WeightRange};
use mwc_graph::seq::Direction;
use mwc_graph::{NodeId, Orientation};

fn sources(n: usize, k: usize) -> Vec<NodeId> {
    (0..k).map(|i| i * n / k).collect()
}

/// Count allocator traffic so this bin's run record and optional Chrome
/// trace export carry allocation profile data alongside simulated rounds.
#[global_allocator]
static ALLOC: mwc_trace::profile::CountingAlloc = mwc_trace::profile::CountingAlloc;

fn main() {
    report::init_profiling();
    report::init_flood_kernel();
    let max_n: usize = report::arg(1, 2048);
    let params = Params::lean().with_seed(1616);
    let mut rec = report::RunRecorder::start("thm16_ksssp");
    rec.param("max_n", max_n);
    rec.param("seed", 1616);

    // ---- sweep n with k = n^{1/3} (exact BFS, eq. 1) ----
    let mut t = Table::new(
        "Thm 1.6.A: k-source exact BFS, k = n^{1/3} — rounds vs √(nk) = n^{2/3}",
        &["n", "k", "sqrt(nk)", "rounds", "rounds/sqrt(nk)"],
    );
    let (mut ns, mut rs) = (Vec::new(), Vec::new());
    let mut n = 128;
    while n <= max_n {
        let k = ((n as f64).powf(1.0 / 3.0).round() as usize).max(2);
        let g = connected_gnm(
            n,
            3 * n,
            Orientation::Directed,
            WeightRange::unit(),
            n as u64,
        );
        let out = k_source_bfs(&g, &sources(n, k), Direction::Forward, &params);
        rec.congestion(&format!("n={n} k={k} bfs"), &out.ledger);
        let sqnk = ((n * k) as f64).sqrt();
        t.row(vec![
            n.to_string(),
            k.to_string(),
            format!("{sqnk:.0}"),
            out.ledger.rounds.to_string(),
            format!("{:.1}", out.ledger.rounds as f64 / sqnk),
        ]);
        ns.push(n as f64);
        rs.push(out.ledger.rounds as f64);
        n *= 2;
    }
    t.print();
    t.save_tsv("thm16_bfs_sweep_n");
    if ns.len() >= 2 {
        let norm: Vec<f64> = ns
            .iter()
            .zip(&rs)
            .map(|(n, r)| r / n.ln().powi(2))
            .collect();
        println!(
            "fitted exponent in n: {:.2} raw, {:.2} after ln²n normalization (paper ~0.67)\n",
            fit_exponent(&ns, &rs),
            fit_exponent(&ns, &norm)
        );
    }

    // ---- sweep k at fixed n (exact BFS) ----
    let n = max_n.min(1024);
    let g = connected_gnm(n, 3 * n, Orientation::Directed, WeightRange::unit(), 77);
    let mut t = Table::new(
        &format!("Thm 1.6.A: k-source exact BFS at n = {n} — rounds vs k"),
        &["k", "sqrt(nk)", "rounds", "rounds/sqrt(nk)"],
    );
    let (mut ks, mut rs) = (Vec::new(), Vec::new());
    let threshold = (n as f64).powf(1.0 / 3.0);
    let mut k = 4;
    while k <= n / 2 {
        let out = k_source_bfs(&g, &sources(n, k), Direction::Forward, &params);
        let sqnk = ((n * k) as f64).sqrt();
        t.row(vec![
            k.to_string(),
            format!("{sqnk:.0}"),
            out.ledger.rounds.to_string(),
            format!("{:.1}", out.ledger.rounds as f64 / sqnk),
        ]);
        // Fit only in the k ≥ n^{1/3} regime eq. (1) speaks about (and
        // past the constant-dominated knee).
        if (k as f64) >= threshold * 4.0 {
            ks.push(k as f64);
            rs.push(out.ledger.rounds as f64);
        }
        k *= 4;
    }
    t.print();
    t.save_tsv("thm16_bfs_sweep_k");
    if ks.len() >= 2 {
        println!(
            "fitted exponent in k over the √(nk) regime (k ≥ 4·n^{{1/3}}): {:.2} (paper ~0.5); \
             the falling left side of the table is the Õ(n/k) regime of eq. (1)\n",
            fit_exponent(&ks, &rs)
        );
    }

    // ---- weighted (1+ε) k-source SSSP (eq. 2) ----
    let mut t = Table::new(
        "Thm 1.6.B: (1+ε) k-source weighted SSSP, k = n^{1/3}, W = 8",
        &["n", "k", "rounds", "rounds/sqrt(nk)"],
    );
    let (mut ns, mut rs) = (Vec::new(), Vec::new());
    let mut n = 128;
    while n <= max_n / 2 {
        let k = ((n as f64).powf(1.0 / 3.0).round() as usize).max(2);
        let g = connected_gnm(
            n,
            3 * n,
            Orientation::Directed,
            WeightRange::uniform(1, 8),
            n as u64 + 1,
        );
        let out = k_source_approx_sssp(&g, &sources(n, k), Direction::Forward, &params);
        rec.congestion(&format!("n={n} k={k} sssp"), &out.ledger);
        let sqnk = ((n * k) as f64).sqrt();
        t.row(vec![
            n.to_string(),
            k.to_string(),
            out.ledger.rounds.to_string(),
            format!("{:.1}", out.ledger.rounds as f64 / sqnk),
        ]);
        ns.push(n as f64);
        rs.push(out.ledger.rounds as f64);
        n *= 2;
    }
    t.print();
    t.save_tsv("thm16_sssp_sweep_n");
    if ns.len() >= 2 {
        let norm: Vec<f64> = ns
            .iter()
            .zip(&rs)
            .map(|(n, r)| r / n.ln().powi(2))
            .collect();
        println!(
            "fitted exponent in n: {:.2} raw, {:.2} after ln²n normalization (paper ~0.67 + 1/ε·log(nW))",
            fit_exponent(&ns, &rs),
            fit_exponent(&ns, &norm)
        );
    }
    rec.finish();
}
