//! Determinism guarantees: everything downstream of a seed is a pure
//! function of that seed.
//!
//! These tests pin the reproducibility contract advertised in the README:
//! regenerating a graph or re-running an algorithm with the same seed must
//! give *identical* results — not statistically similar ones — including
//! the CONGEST cost ledgers the paper tables are built from. They also
//! check the flip side: distinct fork labels yield decorrelated streams,
//! so independent algorithm phases never accidentally share randomness.

use congest_mwc::core::{approx_girth, two_approx_directed_mwc, Params};
use congest_mwc::graph::generators::{connected_gnm, planted_cycle, ring_with_chords, WeightRange};
use congest_mwc::graph::{Graph, Orientation};
use congest_mwc::rng::StdRng;

/// Canonical, comparable form of a graph: the exact edge list.
fn edge_list(g: &Graph) -> Vec<(usize, usize, u64)> {
    g.edges().iter().map(|e| (e.u, e.v, e.weight)).collect()
}

#[test]
fn generators_are_pure_functions_of_seed() {
    for seed in [0u64, 1, 7, 0xDEAD_BEEF, u64::MAX] {
        let a = connected_gnm(
            40,
            80,
            Orientation::Directed,
            WeightRange::uniform(1, 9),
            seed,
        );
        let b = connected_gnm(
            40,
            80,
            Orientation::Directed,
            WeightRange::uniform(1, 9),
            seed,
        );
        assert_eq!(edge_list(&a), edge_list(&b), "connected_gnm seed {seed}");

        let a = ring_with_chords(
            32,
            12,
            Orientation::Undirected,
            WeightRange::uniform(1, 20),
            seed,
        );
        let b = ring_with_chords(
            32,
            12,
            Orientation::Undirected,
            WeightRange::uniform(1, 20),
            seed,
        );
        assert_eq!(edge_list(&a), edge_list(&b), "ring_with_chords seed {seed}");

        let (a, ca) = planted_cycle(
            30,
            20,
            5,
            1,
            Orientation::Undirected,
            WeightRange::uniform(50, 99),
            seed,
        );
        let (b, cb) = planted_cycle(
            30,
            20,
            5,
            1,
            Orientation::Undirected,
            WeightRange::uniform(50, 99),
            seed,
        );
        assert_eq!(edge_list(&a), edge_list(&b), "planted_cycle seed {seed}");
        assert_eq!(ca, cb, "planted cycle nodes, seed {seed}");
    }
}

#[test]
fn generators_differ_across_seeds() {
    // Not a w.h.p. property at this size — two 80-extra-edge graphs from
    // different streams colliding exactly would be astronomically unlikely.
    let a = connected_gnm(40, 80, Orientation::Directed, WeightRange::uniform(1, 9), 1);
    let b = connected_gnm(40, 80, Orientation::Directed, WeightRange::uniform(1, 9), 2);
    assert_ne!(edge_list(&a), edge_list(&b));
}

#[test]
fn algorithm_ledgers_are_reproducible() {
    let g = connected_gnm(48, 120, Orientation::Undirected, WeightRange::unit(), 11);
    let params = Params::new().with_seed(23);
    let a = approx_girth(&g, &params);
    let b = approx_girth(&g, &params);
    assert_eq!(a.weight, b.weight);
    assert_eq!(a.ledger.rounds, b.ledger.rounds);
    assert_eq!(a.ledger.messages, b.ledger.messages);
    assert_eq!(a.ledger.words, b.ledger.words);

    let gd = connected_gnm(40, 120, Orientation::Directed, WeightRange::unit(), 12);
    let a = two_approx_directed_mwc(&gd, &params);
    let b = two_approx_directed_mwc(&gd, &params);
    assert_eq!(a.weight, b.weight);
    assert_eq!(a.ledger.rounds, b.ledger.rounds);
    assert_eq!(a.ledger.messages, b.ledger.messages);
    assert_eq!(a.ledger.words, b.ledger.words);
}

#[test]
fn fork_labels_decorrelate_streams() {
    let root = StdRng::seed_from_u64(99);
    let xs: Vec<u64> = {
        let mut r = root.fork("alg3/delays");
        (0..64).map(|_| r.next_u64()).collect()
    };
    let ys: Vec<u64> = {
        let mut r = root.fork("alg3/partition");
        (0..64).map(|_| r.next_u64()).collect()
    };
    assert_ne!(xs, ys);
    // No element-wise collisions either: 64 draws from two independent
    // 64-bit streams collide at any position with probability ≈ 2^-58.
    assert!(xs.iter().zip(&ys).all(|(x, y)| x != y));
}

#[test]
fn fork_is_independent_of_consumption_order() {
    // A fork taken before and after draining the parent is the same
    // stream — label forks depend only on the seed path, never on how
    // much of the parent was consumed.
    let a = {
        let parent = StdRng::seed_from_u64(7);
        parent.fork("phase").next_u64()
    };
    let b = {
        let mut parent = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            parent.next_u64();
        }
        parent.fork("phase").next_u64()
    };
    assert_eq!(a, b);
}
