//! Set disjointness instances — the communication problem all of the
//! paper's lower bounds reduce from (§1.4).
//!
//! Alice holds `S_a ∈ {0,1}^k`, Bob holds `S_b ∈ {0,1}^k`; deciding
//! whether some position is 1 in both requires `Ω(k)` bits of
//! communication even with shared randomness \[7, 35, 46\].

use mwc_rng::StdRng;

/// A two-party set-disjointness instance.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Disjointness {
    /// Alice's characteristic vector.
    pub a: Vec<bool>,
    /// Bob's characteristic vector.
    pub b: Vec<bool>,
}

impl Disjointness {
    /// Number of bit positions `k`.
    pub fn k(&self) -> usize {
        self.a.len()
    }

    /// `true` iff the sets intersect (the "not disjoint" answer).
    pub fn intersects(&self) -> bool {
        self.a.iter().zip(&self.b).any(|(&x, &y)| x && y)
    }

    /// A uniformly random instance with each bit set with probability
    /// `density`, **conditioned on being disjoint** (intersecting
    /// positions are cleared on Bob's side).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn random_disjoint(k: usize, density: f64, seed: u64) -> Self {
        assert!(k > 0, "k must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let a: Vec<bool> = (0..k).map(|_| rng.random_bool(density)).collect();
        let b: Vec<bool> = a
            .iter()
            .map(|&ai| rng.random_bool(density) && !ai)
            .collect();
        let d = Disjointness { a, b };
        debug_assert!(!d.intersects());
        d
    }

    /// A random instance with exactly one planted intersecting position.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn random_intersecting(k: usize, density: f64, seed: u64) -> Self {
        let mut d = Self::random_disjoint(k, density, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
        let pos = rng.random_range(0..k);
        d.a[pos] = true;
        d.b[pos] = true;
        debug_assert!(d.intersects());
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_instances_are_disjoint() {
        for seed in 0..20 {
            let d = Disjointness::random_disjoint(64, 0.4, seed);
            assert!(!d.intersects());
            assert_eq!(d.k(), 64);
        }
    }

    #[test]
    fn intersecting_instances_intersect() {
        for seed in 0..20 {
            let d = Disjointness::random_intersecting(64, 0.4, seed);
            assert!(d.intersects());
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = Disjointness::random_disjoint(32, 0.5, 7);
        let b = Disjointness::random_disjoint(32, 0.5, 7);
        assert_eq!(a, b);
    }
}
