//! Seeded random and structured graph generators used by tests, examples and
//! the benchmark harness.
//!
//! All generators are deterministic in their `seed` argument, so every
//! experiment in this repository is reproducible. Generators that promise a
//! connected communication topology first plant a random spanning tree and
//! then sprinkle extra edges, which mirrors how CONGEST papers present their
//! benchmark families (a connected network plus structure).

use crate::graph::{Graph, NodeId, Orientation, Weight};
use mwc_rng::{SliceRandom, StdRng};

/// Inclusive range of weights drawn uniformly for generated edges.
///
/// Use `WeightRange::unit()` for unweighted graphs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct WeightRange {
    /// Smallest weight that can be drawn.
    pub min: Weight,
    /// Largest weight that can be drawn.
    pub max: Weight,
}

impl WeightRange {
    /// All edges get weight 1 (an unweighted graph).
    pub fn unit() -> Self {
        WeightRange { min: 1, max: 1 }
    }

    /// Weights drawn uniformly from `min..=max`.
    ///
    /// # Panics
    ///
    /// Panics if `min > max`.
    pub fn uniform(min: Weight, max: Weight) -> Self {
        assert!(min <= max, "weight range must satisfy min <= max");
        WeightRange { min, max }
    }

    fn draw(&self, rng: &mut StdRng) -> Weight {
        if self.min == self.max {
            self.min
        } else {
            rng.random_range(self.min..=self.max)
        }
    }
}

impl Default for WeightRange {
    fn default() -> Self {
        WeightRange::unit()
    }
}

/// A uniformly random spanning tree backbone (random node permutation, each
/// node attached to a uniformly random earlier node), guaranteeing a
/// connected undirected support.
fn add_random_tree(g: &mut Graph, weights: WeightRange, rng: &mut StdRng) {
    let n = g.n();
    if n <= 1 {
        return;
    }
    let mut order: Vec<NodeId> = (0..n).collect();
    order.shuffle(rng);
    for i in 1..n {
        let u = order[i];
        let v = order[rng.random_range(0..i)];
        let w = weights.draw(rng);
        // For a directed graph, orient the tree edge randomly; the
        // communication topology is undirected either way.
        let (a, b) = if g.is_directed() && rng.random_bool(0.5) {
            (v, u)
        } else {
            (u, v)
        };
        let _ = g.add_edge(a, b, w);
    }
}

/// Connected Erdős–Rényi-style graph: a random spanning tree plus
/// `extra_edges` additional uniformly random edges (duplicates and
/// self-loops are re-drawn; we give up after a bounded number of attempts so
/// dense requests terminate).
///
/// # Examples
///
/// ```
/// use mwc_graph::generators::{connected_gnm, WeightRange};
/// use mwc_graph::Orientation;
///
/// let g = connected_gnm(50, 100, Orientation::Undirected, WeightRange::unit(), 7);
/// assert!(g.is_comm_connected());
/// assert!(g.m() >= 49); // at least the spanning tree
/// ```
pub fn connected_gnm(
    n: usize,
    extra_edges: usize,
    orientation: Orientation,
    weights: WeightRange,
    seed: u64,
) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::new(n, orientation);
    add_random_tree(&mut g, weights, &mut rng);
    if n < 2 {
        return g;
    }
    let mut added = 0;
    let mut attempts = 0usize;
    let max_attempts = extra_edges.saturating_mul(20) + 100;
    while added < extra_edges && attempts < max_attempts {
        attempts += 1;
        let u = rng.random_range(0..n);
        let v = rng.random_range(0..n);
        if u == v {
            continue;
        }
        let w = weights.draw(&mut rng);
        if g.add_edge(u, v, w).is_ok() {
            added += 1;
        }
    }
    g
}

/// A cycle `0 — 1 — … — (n−1) — 0` (directed: `0 → 1 → … → 0`) plus
/// `chords` random chord edges. The ring guarantees connectivity and at
/// least one cycle of hop length `n`.
pub fn ring_with_chords(
    n: usize,
    chords: usize,
    orientation: Orientation,
    weights: WeightRange,
    seed: u64,
) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::new(n, orientation);
    if n < 2 {
        return g;
    }
    for i in 0..n {
        let w = weights.draw(&mut rng);
        let _ = g.add_edge(i, (i + 1) % n, w);
    }
    let mut added = 0;
    let mut attempts = 0usize;
    while added < chords && attempts < chords * 20 + 100 {
        attempts += 1;
        let u = rng.random_range(0..n);
        let v = rng.random_range(0..n);
        if u == v {
            continue;
        }
        let w = weights.draw(&mut rng);
        if g.add_edge(u, v, w).is_ok() {
            added += 1;
        }
    }
    g
}

/// A connected random graph with one *planted* cycle of `cycle_len` distinct
/// nodes whose edges all have weight `cycle_weight_per_edge`. The remaining
/// edges are drawn from `background_weights`, which callers typically make
/// heavy so the planted cycle is the unique minimum weight cycle.
///
/// Returns the graph and the planted cycle's node sequence.
///
/// # Panics
///
/// Panics if `cycle_len < 3` (undirected) / `< 2` (directed) or
/// `cycle_len > n`.
pub fn planted_cycle(
    n: usize,
    extra_edges: usize,
    cycle_len: usize,
    cycle_weight_per_edge: Weight,
    orientation: Orientation,
    background_weights: WeightRange,
    seed: u64,
) -> (Graph, Vec<NodeId>) {
    let min_len = if orientation == Orientation::Directed {
        2
    } else {
        3
    };
    assert!(
        cycle_len >= min_len && cycle_len <= n,
        "cycle_len must be in [{min_len}, n]"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut nodes: Vec<NodeId> = (0..n).collect();
    nodes.shuffle(&mut rng);
    let cycle: Vec<NodeId> = nodes[..cycle_len].to_vec();

    let mut g = Graph::new(n, orientation);
    for i in 0..cycle_len {
        let u = cycle[i];
        let v = cycle[(i + 1) % cycle_len];
        g.add_edge(u, v, cycle_weight_per_edge)
            .expect("planted cycle nodes are distinct");
    }
    add_random_tree_avoiding(&mut g, background_weights, &mut rng);
    let mut added = 0;
    let mut attempts = 0usize;
    while added < extra_edges && attempts < extra_edges * 20 + 100 {
        attempts += 1;
        let u = rng.random_range(0..n);
        let v = rng.random_range(0..n);
        if u == v {
            continue;
        }
        let w = background_weights.draw(&mut rng);
        if g.add_edge(u, v, w).is_ok() {
            added += 1;
        }
    }
    (g, cycle)
}

/// Like [`add_random_tree`] but skips edges that already exist (the planted
/// cycle edges), retrying with a different anchor.
fn add_random_tree_avoiding(g: &mut Graph, weights: WeightRange, rng: &mut StdRng) {
    let n = g.n();
    if n <= 1 {
        return;
    }
    let mut order: Vec<NodeId> = (0..n).collect();
    order.shuffle(rng);
    for i in 1..n {
        let u = order[i];
        // Try a few anchors; falling back to a linear scan guarantees
        // progress on adversarial layouts.
        let mut done = false;
        for _ in 0..8 {
            let v = order[rng.random_range(0..i)];
            let w = weights.draw(rng);
            let (a, b) = if g.is_directed() && rng.random_bool(0.5) {
                (v, u)
            } else {
                (u, v)
            };
            if g.add_edge(a, b, w).is_ok() {
                done = true;
                break;
            }
        }
        if !done {
            for j in 0..i {
                let v = order[j];
                let w = weights.draw(rng);
                if g.add_edge(u, v, w).is_ok() {
                    break;
                }
            }
        }
    }
}

/// A `rows × cols` grid graph (undirected, or directed with both
/// orientations alternating like a city street grid when `orientation` is
/// [`Orientation::Directed`]).
pub fn grid(
    rows: usize,
    cols: usize,
    orientation: Orientation,
    weights: WeightRange,
    seed: u64,
) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rows * cols;
    let mut g = Graph::new(n, orientation);
    let id = |r: usize, c: usize| r * cols + c;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                let w = weights.draw(&mut rng);
                // Alternate direction per row for directed grids so cycles
                // exist (one-way streets).
                if orientation == Orientation::Directed && r % 2 == 1 {
                    let _ = g.add_edge(id(r, c + 1), id(r, c), w);
                } else {
                    let _ = g.add_edge(id(r, c), id(r, c + 1), w);
                }
            }
            if r + 1 < rows {
                let w = weights.draw(&mut rng);
                if orientation == Orientation::Directed && c % 2 == 1 {
                    let _ = g.add_edge(id(r + 1, c), id(r, c), w);
                } else {
                    let _ = g.add_edge(id(r, c), id(r + 1, c), w);
                }
            }
        }
    }
    g
}

/// The complete graph on `n` nodes (directed: both orientations of every
/// pair).
pub fn complete(n: usize, orientation: Orientation, weights: WeightRange, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::new(n, orientation);
    for u in 0..n {
        for v in 0..n {
            if u == v {
                continue;
            }
            if orientation == Orientation::Undirected && u > v {
                continue;
            }
            let w = weights.draw(&mut rng);
            let _ = g.add_edge(u, v, w);
        }
    }
    g
}

/// A (nearly) `d`-regular random graph via the pairing model: `n·d` stubs
/// are shuffled and matched; self-loops/duplicates are dropped, so a few
/// vertices may end up with degree `d−O(1)`. A random spanning tree is
/// added first when `connect` is set, guaranteeing connectivity.
///
/// # Panics
///
/// Panics if `n·d` is odd or `d == 0`.
pub fn random_regular(
    n: usize,
    d: usize,
    orientation: Orientation,
    weights: WeightRange,
    connect: bool,
    seed: u64,
) -> Graph {
    assert!(d > 0, "degree must be positive");
    assert!((n * d).is_multiple_of(2), "n·d must be even for a pairing");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::new(n, orientation);
    if connect {
        add_random_tree(&mut g, weights, &mut rng);
    }
    let mut stubs: Vec<NodeId> = (0..n).flat_map(|v| std::iter::repeat_n(v, d)).collect();
    stubs.shuffle(&mut rng);
    for pair in stubs.chunks_exact(2) {
        let (u, v) = (pair[0], pair[1]);
        if u == v {
            continue;
        }
        let w = weights.draw(&mut rng);
        let (a, b) = if orientation == Orientation::Directed && rng.random_bool(0.5) {
            (v, u)
        } else {
            (u, v)
        };
        let _ = g.add_edge(a, b, w);
    }
    g
}

/// A random bipartite graph on parts of size `left` and `right` with
/// `edges` cross edges (girth ≥ 4 by construction for undirected graphs),
/// plus a connecting path along each part so the network is connected.
pub fn bipartite(
    left: usize,
    right: usize,
    edges: usize,
    orientation: Orientation,
    weights: WeightRange,
    seed: u64,
) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = left + right;
    let mut g = Graph::new(n, orientation);
    // Connectivity: a zig-zag spine L0—R0—L1—R1—…, with leftovers of the
    // larger side attached to the first node of the other side.
    let common = left.min(right);
    for i in 0..common {
        let _ = g.add_edge(i, left + i, weights.draw(&mut rng));
        if i + 1 < common {
            let _ = g.add_edge(left + i, i + 1, weights.draw(&mut rng));
        }
    }
    for i in common..left {
        let _ = g.add_edge(i, left, weights.draw(&mut rng)); // extra lefts → R0
    }
    for j in common..right {
        let _ = g.add_edge(0, left + j, weights.draw(&mut rng)); // extra rights → L0
    }
    let mut added = 0;
    let mut attempts = 0;
    while added < edges && attempts < edges * 20 + 100 {
        attempts += 1;
        let u = rng.random_range(0..left);
        let v = left + rng.random_range(0..right);
        if g.add_edge(u, v, weights.draw(&mut rng)).is_ok() {
            added += 1;
        }
    }
    g
}

/// A barbell: two cliques of `k` nodes joined by a path of `bridge`
/// nodes. High diameter with dense ends — a stress test for the `+D`
/// terms and for congestion at the bridge.
pub fn barbell(k: usize, bridge: usize, weights: WeightRange, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = 2 * k + bridge;
    let mut g = Graph::undirected(n);
    for c in 0..2 {
        let base = c * (k + bridge);
        for i in 0..k {
            for j in i + 1..k {
                let _ = g.add_edge(base + i, base + j, weights.draw(&mut rng));
            }
        }
    }
    // Path: last node of clique 0 … bridge … first node of clique 1.
    let mut prev = k - 1;
    for b in 0..bridge {
        let v = k + b;
        let _ = g.add_edge(prev, v, weights.draw(&mut rng));
        prev = v;
    }
    let _ = g.add_edge(prev, k + bridge, weights.draw(&mut rng));
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq;

    #[test]
    fn gnm_is_connected_and_deterministic() {
        let a = connected_gnm(64, 120, Orientation::Undirected, WeightRange::unit(), 3);
        let b = connected_gnm(64, 120, Orientation::Undirected, WeightRange::unit(), 3);
        assert!(a.is_comm_connected());
        assert_eq!(a.m(), b.m());
        assert_eq!(a.edges(), b.edges());
    }

    #[test]
    fn gnm_different_seeds_differ() {
        let a = connected_gnm(64, 120, Orientation::Undirected, WeightRange::unit(), 3);
        let b = connected_gnm(64, 120, Orientation::Undirected, WeightRange::unit(), 4);
        assert_ne!(a.edges(), b.edges());
    }

    #[test]
    fn gnm_directed_weighted() {
        let g = connected_gnm(
            40,
            80,
            Orientation::Directed,
            WeightRange::uniform(1, 9),
            11,
        );
        assert!(g.is_comm_connected());
        assert!(g.max_weight() <= 9);
        assert!(!g.is_unit_weight() || g.max_weight() == 1);
    }

    #[test]
    fn ring_has_hamiltonian_cycle() {
        let g = ring_with_chords(10, 0, Orientation::Directed, WeightRange::unit(), 1);
        assert_eq!(g.m(), 10);
        for i in 0..10 {
            assert!(g.has_edge(i, (i + 1) % 10));
        }
    }

    #[test]
    fn planted_cycle_is_minimum() {
        // Background weights heavy, planted cycle light: the planted cycle
        // must be the MWC.
        let (g, cycle) = planted_cycle(
            60,
            80,
            5,
            1,
            Orientation::Undirected,
            WeightRange::uniform(50, 100),
            42,
        );
        assert!(g.is_comm_connected());
        assert_eq!(cycle.len(), 5);
        let mwc = seq::mwc_undirected_exact(&g).expect("has a cycle");
        assert_eq!(mwc.weight, 5);
    }

    #[test]
    fn planted_cycle_directed() {
        let (g, cycle) = planted_cycle(
            40,
            40,
            4,
            1,
            Orientation::Directed,
            WeightRange::uniform(30, 60),
            9,
        );
        assert_eq!(cycle.len(), 4);
        // Every consecutive pair is a directed edge with weight 1.
        for i in 0..4 {
            assert_eq!(g.weight(cycle[i], cycle[(i + 1) % 4]), Some(1));
        }
    }

    #[test]
    fn grid_dimensions() {
        let g = grid(4, 5, Orientation::Undirected, WeightRange::unit(), 0);
        assert_eq!(g.n(), 20);
        // 4*4 horizontal + 3*5 vertical = 16 + 15
        assert_eq!(g.m(), 31);
        assert!(g.is_comm_connected());
    }

    #[test]
    fn random_regular_degrees_near_d() {
        let g = random_regular(60, 4, Orientation::Undirected, WeightRange::unit(), true, 5);
        assert!(g.is_comm_connected());
        // Pairing-model degrees concentrate near d (+ tree edges).
        let avg: f64 = (0..60).map(|v| g.out_adj(v).len()).sum::<usize>() as f64 / 60.0;
        assert!((4.0..=7.0).contains(&avg), "avg degree {avg}");
    }

    #[test]
    #[should_panic(expected = "even")]
    fn random_regular_rejects_odd_pairing() {
        let _ = random_regular(5, 3, Orientation::Undirected, WeightRange::unit(), false, 0);
    }

    #[test]
    fn bipartite_has_no_triangles() {
        let g = bipartite(20, 25, 80, Orientation::Undirected, WeightRange::unit(), 3);
        assert!(g.is_comm_connected());
        if let Some(m) = seq::girth_exact(&g) {
            assert!(
                m.weight >= 4,
                "bipartite graphs have girth ≥ 4, got {}",
                m.weight
            );
        }
    }

    #[test]
    fn barbell_shape() {
        let g = barbell(6, 4, WeightRange::unit(), 0);
        assert_eq!(g.n(), 16);
        assert!(g.is_comm_connected());
        // Diameter spans the bridge.
        assert!(g.undirected_diameter().unwrap() >= 5);
        // Girth 3 from the cliques.
        assert_eq!(seq::girth_exact(&g).unwrap().weight, 3);
    }

    #[test]
    fn complete_graph_edge_count() {
        let und = complete(6, Orientation::Undirected, WeightRange::unit(), 0);
        assert_eq!(und.m(), 15);
        let dir = complete(6, Orientation::Directed, WeightRange::unit(), 0);
        assert_eq!(dir.m(), 30);
    }
}
