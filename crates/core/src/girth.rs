//! `(2 − 1/g)`-approximation of girth — **Theorem 1.3.B** of the paper
//! (§4), in `Õ(√n + D)` rounds, plus the hop-limited stretched variant of
//! **Corollary 4.1** used by §5.1's weighted algorithm.
//!
//! Two candidate generators cover every cycle:
//!
//! 1. **Sampled BFS.** `Õ(√n)` sampled sources run BFS; for each source
//!    `w` and non-tree edge `(x, y)`, the BFS-tree LCA cycle is a real
//!    cycle of length ≤ `d(w,x) + d(w,y) + 1`. If the MWC `C` escapes the
//!    `√n`-neighborhood of one of its vertices `v`, the ball of radius
//!    `≤ (g−1)/2` around `v` holds `≥ √n` vertices, so a sampled vertex
//!    lands within `(g−1)/2` of `v` w.h.p. and its candidate is
//!    `≤ 2g − 1 = (2 − 1/g)·g`.
//! 2. **`√n`-neighborhoods.** `(V, h, σ=√n)` source detection \[37\] gives
//!    every node its `σ` closest vertices; neighbors exchange these lists.
//!    (a) For each edge `(x, y)` and common detected source `v` the
//!    non-tree candidate `d(v,x) + w(x,y) + d(v,y)` is exact for cycles
//!    contained in all their members' neighborhoods (the antipodal-edge
//!    argument, now local). (b) For cycles with **exactly one vertex `z`
//!    outside** the neighborhood, `z`'s two cycle-neighbors `x, y` are
//!    inside, and `z` sees both lists: `d(v,x) + w(x,z) + w(z,y) + d(v,y)`
//!    recovers the cycle exactly — this is the refinement that turns a
//!    plain 2-approximation into `(2 − 1/g)`.
//!
//! Every candidate is materialized as a real simple cycle (loop-erased
//! closed walk) before being offered, so reported values are never below
//! the true MWC.

use crate::exchange::{exchange_matrix_columns, exchange_with_neighbors, lca_cycle};
use crate::outcome::{BestCycle, MwcOutcome, Partial};
use crate::params::Params;
use crate::util::{extract_cycle_from_walk, sample_vertices};
use mwc_congest::{
    convergecast_min, multi_source_bfs, source_detection, Detection, Ledger, MultiBfsSpec,
    PhaseCache, INF,
};
use mwc_graph::seq::Direction;
use mwc_graph::{CycleWitness, Graph, NodeId, Weight};
use std::sync::Arc;

pub(crate) const SALT_GIRTH_SAMPLES: u64 = 0xC1;

/// `(2 − 1/g)`-approximation of the girth of an undirected unweighted
/// graph in `Õ(√n + D)` rounds (Theorem 1.3.B).
///
/// The returned weight is the hop length of a real cycle, between `g` and
/// `2g − 1` w.h.p. Returns `None` iff no cycle was found (correct w.h.p.
/// for forests — and deterministically: a forest has no cycle to find).
///
/// # Panics
///
/// Panics if the graph is directed or weighted, or if the communication
/// topology is disconnected.
///
/// # Examples
///
/// ```
/// use mwc_core::{approx_girth, Params};
/// use mwc_graph::generators::{ring_with_chords, WeightRange};
/// use mwc_graph::Orientation;
///
/// let g = ring_with_chords(40, 0, Orientation::Undirected, WeightRange::unit(), 0);
/// let out = approx_girth(&g, &Params::new());
/// assert_eq!(out.weight, Some(40)); // the ring itself
/// assert_eq!(out.witness.unwrap().validate(&g), Ok(40));
/// ```
pub fn approx_girth(g: &Graph, params: &Params) -> MwcOutcome {
    let _span = mwc_trace::span("girth/approx");
    let _cache = PhaseCache::scope();
    assert!(!g.is_directed(), "girth requires an undirected graph");
    assert!(
        g.is_unit_weight(),
        "girth requires an unweighted graph; see §5 for weighted"
    );
    let parts = girth_core(g, params, None);
    let mut ledger = parts.ledger;
    let tree = PhaseCache::bfs_tree(g, 0, &mut ledger);
    let local = vec![parts.best.weight().unwrap_or(INF); g.n()];
    let _ = convergecast_min(g, &tree, local, &mut ledger);
    audit_girth("core/approx_girth", g, params, &ledger);
    parts.best.into_outcome(ledger)
}

/// Audits a finished girth-entry run against the Theorem 1.3.B envelope.
fn audit_girth(algorithm: &str, g: &Graph, params: &Params, ledger: &Ledger) {
    let n = g.n();
    let sigma = ((n as f64).sqrt().ceil() as u64).max(1);
    mwc_trace::check_bound(
        algorithm,
        mwc_trace::BoundInputs::n(n)
            .diameter(mwc_congest::bounds::diameter_upper_bound(g))
            .h(sigma)
            .k(crate::bounds::girth_samples(n, params)),
        ledger.rounds,
        crate::bounds::girth,
    );
}

/// Hop-limited `(2 − 1/g)`-approximation on a *stretched* undirected graph
/// (Corollary 4.1): candidates are guaranteed for cycles of stretched
/// length ≤ `h_star`; offered values are the real weights of witness
/// cycles. Costs `Õ(√n + h* + R_cast)` rounds.
pub(crate) fn hop_limited_girth(
    g: &Graph,
    params: &Params,
    latency: &[Weight],
    h_star: Weight,
) -> Partial {
    girth_core(g, params, Some((latency, h_star)))
}

/// Ablation entry point: run only selected candidate generators of the
/// girth algorithm — the sampled-BFS part (covers cycles escaping their
/// `√n`-neighborhoods), the neighborhood part (covers contained cycles,
/// exactly), or both (the full Theorem 1.3.B algorithm). With a single
/// part the `(2 − 1/g)` guarantee degrades; witnesses remain valid, so
/// outputs still never underestimate.
///
/// # Panics
///
/// Panics if both parts are disabled, or on the same conditions as
/// [`approx_girth`].
pub fn approx_girth_parts(
    g: &Graph,
    params: &Params,
    sampled_part: bool,
    neighborhood_part: bool,
) -> MwcOutcome {
    let _span = mwc_trace::span("girth/approx-parts");
    let _cache = PhaseCache::scope();
    assert!(
        sampled_part || neighborhood_part,
        "enable at least one candidate generator"
    );
    assert!(!g.is_directed(), "girth requires an undirected graph");
    assert!(g.is_unit_weight(), "girth requires an unweighted graph");
    let parts = girth_core_parts(g, params, None, sampled_part, neighborhood_part);
    let mut ledger = parts.ledger;
    let tree = PhaseCache::bfs_tree(g, 0, &mut ledger);
    let local = vec![parts.best.weight().unwrap_or(INF); g.n()];
    let _ = convergecast_min(g, &tree, local, &mut ledger);
    audit_girth("core/approx_girth", g, params, &ledger);
    parts.best.into_outcome(ledger)
}

fn girth_core(g: &Graph, params: &Params, stretch: Option<(&[Weight], Weight)>) -> Partial {
    girth_core_parts(g, params, stretch, true, true)
}

fn girth_core_parts(
    g: &Graph,
    params: &Params,
    stretch: Option<(&[Weight], Weight)>,
    sampled_part: bool,
    neighborhood_part: bool,
) -> Partial {
    let n = g.n();
    let mut parts = Partial::default();
    if n < 3 {
        return parts;
    }
    let sigma = ((n as f64).sqrt().ceil() as usize).max(1);
    let (latency, det_budget, bfs_budget): (Option<&[Weight]>, Weight, Weight) = match stretch {
        None => (None, sigma as Weight, INF),
        Some((lat, h_star)) => (Some(lat), h_star, h_star),
    };

    // Part 1: BFS from Õ(√n) sampled sources.
    if sampled_part {
        let _part = mwc_trace::span("girth/sampled-part");
        let p = params.sample_prob(n, sigma as u64);
        let samples = sample_vertices(n, p, params.seed, SALT_GIRTH_SAMPLES);
        let spec = MultiBfsSpec {
            max_dist: bfs_budget,
            direction: Direction::Forward,
            latency,
        };
        let mat = multi_source_bfs(
            g,
            &samples,
            &spec,
            "BFS from sampled sources",
            &mut parts.ledger,
        );
        let cols = exchange_matrix_columns(g, &mat, "sampled-distance exchange", &mut parts.ledger);
        for e in g.edges() {
            let (x, y) = (e.u, e.v);
            let Some(ycol) = cols[x].get(&y) else {
                continue;
            };
            for row in 0..samples.len() {
                let dx = mat.get_row(row, x);
                let (dy, ypred) = ycol[row];
                if dx == INF || dy == INF {
                    continue;
                }
                if mat.pred_row(row, x) == Some(y) || ypred as usize == x {
                    continue; // tree edge w.r.t. this source
                }
                let cand = dx + e.weight + dy;
                if parts.best.weight().is_some_and(|b| cand >= b) {
                    continue;
                }
                if let Some(cyc) = lca_cycle(&mat, row, x, y) {
                    offer_validated(g, &mut parts.best, cyc);
                }
            }
        }
    }

    if !neighborhood_part {
        return parts;
    }
    // Part 2: σ-nearest-neighborhood detection from all vertices.
    let _part = mwc_trace::span("girth/neighborhood-part");
    let all: Vec<NodeId> = (0..n).collect();
    let det = source_detection(
        g,
        &all,
        det_budget,
        sigma,
        Direction::Forward,
        latency,
        "σ-neighborhood source detection",
        &mut parts.ledger,
    );

    // Exchange detected lists (entries carry (src, dist, pred) ≈ 2 words
    // each) with all neighbors.
    let lists: Vec<Arc<Vec<(NodeId, Weight, NodeId)>>> = (0..n)
        .map(|v| {
            Arc::new(
                det.lists[v]
                    .iter()
                    .map(|&(d, s)| (s, d, det.pred(v, s).unwrap_or(v)))
                    .collect(),
            )
        })
        .collect();
    let nbr_lists = exchange_with_neighbors(
        g,
        &lists,
        2 * sigma as u64,
        "neighborhood list exchange",
        &mut parts.ledger,
    );

    // (a) Per-edge candidates among common detected sources.
    for e in g.edges() {
        let (x, y) = (e.u, e.v);
        let Some(ylist) = nbr_lists[x].get(&y) else {
            continue;
        };
        // `ylist` holds at most σ entries — a linear probe beats building
        // a per-edge hash map.
        for &(v, dx, xpred) in lists[x].iter() {
            let Some(&(_, dy, ypred)) = ylist.iter().find(|&&(s, _, _)| s == v) else {
                continue;
            };
            if xpred == y || ypred == x {
                continue; // tree-ish edge: degenerate closed walk
            }
            let cand = dx + e.weight + dy;
            if parts.best.weight().is_some_and(|b| cand >= b) {
                continue;
            }
            offer_closed_walk(g, &mut parts.best, &det, v, x, y, None);
        }
    }

    // (b) "Exactly one vertex outside": at z, combine two distinct
    // neighbors' detections of a common source v.
    // Per source: the two best (stretched dist + edge stretch, neighbor),
    // in a dense generation-stamped table (sources are node ids) so the
    // inner accumulation is an array index. Candidate sources are iterated
    // in sorted id order: the `cand >= b` pruning below depends on the
    // order offers improve `best`, so an unordered iteration would make
    // the *work done* (and with it the profiled allocator traffic, a
    // gated metric in the default configuration) nondeterministic even
    // though the final cycle weight is order-invariant.
    let mut two_best: Vec<[(Weight, NodeId); 2]> = vec![[(INF, usize::MAX); 2]; n];
    let mut stamp: Vec<usize> = vec![usize::MAX; n];
    let mut sources: Vec<NodeId> = Vec::new();
    for z in 0..n {
        sources.clear();
        let mut nbrs: Vec<NodeId> = nbr_lists[z].keys().copied().collect();
        nbrs.sort_unstable();
        for x in nbrs {
            let xlist = &nbr_lists[z][&x];
            let Some(eid) = g.edge_id(z, x) else { continue };
            let ell = latency.map_or(1, |l| l[eid].max(1));
            for &(v, d, _) in xlist.iter() {
                let key = d.saturating_add(ell);
                if stamp[v] != z {
                    stamp[v] = z;
                    two_best[v] = [(INF, usize::MAX); 2];
                    sources.push(v);
                }
                let slot = &mut two_best[v];
                if key < slot[0].0 {
                    if slot[0].1 != x {
                        slot[1] = slot[0];
                    }
                    slot[0] = (key, x);
                } else if key < slot[1].0 && slot[0].1 != x {
                    slot[1] = (key, x);
                }
            }
        }
        sources.sort_unstable();
        for &v in &sources {
            let [(d0, x), (d1, y)] = two_best[v];
            if d1 == INF || x == y {
                continue;
            }
            let cand = d0.saturating_add(d1);
            if parts.best.weight().is_some_and(|b| cand >= b) {
                continue;
            }
            offer_closed_walk(g, &mut parts.best, &det, v, x, y, Some(z));
        }
    }

    parts
}

/// Builds the closed walk `v → … → x (→ z) → y → … → v` from detection
/// predecessor chains, extracts a simple cycle from it, and offers its
/// real validated weight.
fn offer_closed_walk(
    g: &Graph,
    best: &mut BestCycle,
    det: &Detection,
    v: NodeId,
    x: NodeId,
    y: NodeId,
    via: Option<NodeId>,
) {
    let Some(px) = det.path_to_source(x, v) else {
        return;
    };
    let Some(py) = det.path_to_source(y, v) else {
        return;
    };
    let mut walk: Vec<NodeId> = px.into_iter().rev().collect(); // v … x
    if let Some(z) = via {
        walk.push(z);
    }
    walk.extend(py); // y … v
    if let Some(cyc) = extract_cycle_from_walk(&walk, 3) {
        offer_validated(g, best, cyc);
    }
}

fn offer_validated(g: &Graph, best: &mut BestCycle, cyc: Vec<NodeId>) {
    let w = CycleWitness::new(cyc);
    if let Ok(weight) = w.validate(g) {
        best.offer(weight, w);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwc_graph::generators::{connected_gnm, grid, ring_with_chords, WeightRange};
    use mwc_graph::seq;
    use mwc_graph::Orientation;

    // `2g − 1` = (2 − 1/g)·g, written the paper's way.
    #[allow(clippy::int_plus_one)]
    fn check_quality(g: &Graph, params: &Params) {
        let out = approx_girth(g, params);
        out.assert_valid(g);
        let oracle = seq::girth_exact(g).map(|m| m.weight);
        match (out.weight, oracle) {
            (None, None) => {}
            (Some(w), Some(girth)) => {
                assert!(w >= girth, "reported {w} < girth {girth}");
                assert!(
                    w <= 2 * girth - 1,
                    "reported {w} > (2 − 1/g)·g = {}",
                    2 * girth - 1
                );
            }
            (got, want) => panic!("cycle detection mismatch: got {got:?}, oracle {want:?}"),
        }
    }

    #[test]
    fn petersen_girth_found() {
        let outer = [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)];
        let spokes = [(0, 5), (1, 6), (2, 7), (3, 8), (4, 9)];
        let inner = [(5, 7), (7, 9), (9, 6), (6, 8), (8, 5)];
        let mut g = Graph::undirected(10);
        for (u, v) in outer.iter().chain(&spokes).chain(&inner) {
            g.add_edge(*u, *v, 1).unwrap();
        }
        check_quality(&g, &Params::new().with_seed(2));
    }

    #[test]
    fn big_ring_found() {
        // One long cycle; must be found via the sampled part (exactly,
        // since samples lie on it).
        let g = ring_with_chords(100, 0, Orientation::Undirected, WeightRange::unit(), 0);
        let out = approx_girth(&g, &Params::new().with_seed(1));
        out.assert_valid(&g);
        assert_eq!(out.weight, Some(100));
    }

    #[test]
    fn grid_girth_within_factor() {
        let g = grid(8, 8, Orientation::Undirected, WeightRange::unit(), 0);
        check_quality(&g, &Params::new().with_seed(4));
    }

    #[test]
    fn random_graphs_within_factor() {
        for seed in 0..8 {
            let g = connected_gnm(60, 90, Orientation::Undirected, WeightRange::unit(), seed);
            check_quality(&g, &Params::new().with_seed(seed + 10));
        }
    }

    #[test]
    fn sparse_graphs_with_long_girth() {
        for seed in 0..6 {
            let g = ring_with_chords(80, 6, Orientation::Undirected, WeightRange::unit(), seed);
            check_quality(&g, &Params::new().with_seed(seed));
        }
    }

    #[test]
    fn forest_reports_none() {
        let mut g = Graph::undirected(10);
        for i in 1..10 {
            g.add_edge(i / 2, i, 1).unwrap();
        }
        let out = approx_girth(&g, &Params::new());
        out.assert_valid(&g);
        assert_eq!(out.weight, None);
    }

    #[test]
    fn triangle_is_exact() {
        // g = 3: (2 − 1/3)·3 = 5, but the neighborhood part must get 3.
        let mut g = ring_with_chords(30, 0, Orientation::Undirected, WeightRange::unit(), 0);
        g.add_edge(0, 2, 1).unwrap(); // creates a triangle 0,1,2
        let out = approx_girth(&g, &Params::new().with_seed(7));
        out.assert_valid(&g);
        assert_eq!(out.weight, Some(3));
    }

    #[test]
    fn deterministic_given_seed() {
        let g = connected_gnm(50, 75, Orientation::Undirected, WeightRange::unit(), 3);
        let a = approx_girth(&g, &Params::new().with_seed(9));
        let b = approx_girth(&g, &Params::new().with_seed(9));
        assert_eq!(a.weight, b.weight);
        assert_eq!(a.ledger.rounds, b.ledger.rounds);
    }

    #[test]
    fn parts_ablation_both_needed_for_tight_factor() {
        // Neighborhood part alone finds contained short cycles exactly;
        // sampled part alone covers escaping/long cycles.
        let g = ring_with_chords(64, 0, Orientation::Undirected, WeightRange::unit(), 0);
        let p = Params::new().with_seed(3);
        // A 64-ring escapes every √64-neighborhood: the sampled part is
        // what finds it.
        let sampled = approx_girth_parts(&g, &p, true, false);
        assert_eq!(sampled.weight, Some(64));
        // The neighborhood part alone cannot see it (σ = 8 ≪ 64) —
        // outputs stay sound (None or a real cycle, never an underestimate).
        let nbhd = approx_girth_parts(&g, &p, false, true);
        assert!(nbhd.weight.is_none() || nbhd.weight == Some(64));

        // Conversely a triangle in a big sparse graph is the neighborhood
        // part's job to get *exactly*.
        let mut g2 = ring_with_chords(64, 0, Orientation::Undirected, WeightRange::unit(), 0);
        g2.add_edge(0, 2, 1).unwrap();
        let nbhd = approx_girth_parts(&g2, &p, false, true);
        assert_eq!(nbhd.weight, Some(3));
        // Full algorithm always at least as good as either part.
        let full = approx_girth(&g2, &p);
        assert_eq!(full.weight, Some(3));
    }

    #[test]
    #[should_panic(expected = "at least one candidate generator")]
    fn parts_ablation_rejects_neither() {
        let g = ring_with_chords(10, 0, Orientation::Undirected, WeightRange::unit(), 0);
        let _ = approx_girth_parts(&g, &Params::new(), false, false);
    }

    #[test]
    fn hop_limited_stretched_finds_short_cycles() {
        // Weighted ring + light triangle; stretched by weights, budget
        // covers the triangle (weight 3) but not the full ring.
        let mut g = Graph::undirected(24);
        for i in 0..24 {
            g.add_edge(i, (i + 1) % 24, 5).unwrap();
        }
        g.add_edge(0, 2, 1).unwrap();
        // Triangle 0-1-2 via edges 5+5+1 = 11 (stretched 11).
        let lat: Vec<Weight> = g.edges().iter().map(|e| e.weight).collect();
        let parts = hop_limited_girth(&g, &Params::new().with_seed(5), &lat, 30);
        let w = parts.best.weight().expect("triangle within budget");
        assert_eq!(w, 11);
    }
}
