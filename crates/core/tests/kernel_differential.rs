//! Differential test for the flood kernel at the algorithm level: every
//! entry point must produce **byte-identical** results under
//! `MWC_FLOOD_KERNEL=scalar` and the default `bitset` kernel — the
//! kernel may only change host wall-clock, never distances, weights,
//! witnesses, or round accounting. The scalar runs here stand in for
//! the env escape hatch (the knob reads through the same process-global
//! override, set here via a locked guard so parallel tests don't race).

use std::sync::{Mutex, MutexGuard};

use mwc_congest::{set_flood_kernel, FloodKernel, Ledger};
use mwc_core::exact::exact_mwc;
use mwc_core::{
    approx_girth, approx_mwc_directed_weighted, approx_mwc_undirected_weighted, k_source_bfs,
    two_approx_directed_mwc, Params,
};
use mwc_graph::generators::{connected_gnm, ring_with_chords, WeightRange};
use mwc_graph::seq::Direction;
use mwc_graph::Orientation;

static KERNEL_GLOBAL: Mutex<()> = Mutex::new(());

struct KernelGuard {
    _guard: MutexGuard<'static, ()>,
}

fn with_kernel(k: FloodKernel) -> KernelGuard {
    let guard = KERNEL_GLOBAL.lock().unwrap_or_else(|e| e.into_inner());
    set_flood_kernel(k);
    KernelGuard { _guard: guard }
}

impl Drop for KernelGuard {
    fn drop(&mut self) {
        set_flood_kernel(FloodKernel::Bitset);
    }
}

/// The ledger's phase journal flattened to comparable tuples: label and
/// exact simulated costs, in order. Two kernels agreeing here (plus on
/// totals) means the round charging is byte-identical phase by phase,
/// which is what the perf gate's `trace_diff` observes.
fn phase_journal(ledger: &Ledger) -> Vec<(String, u64, u64)> {
    ledger
        .phases
        .iter()
        .map(|p| (p.label.clone(), p.rounds, p.words))
        .collect()
}

/// Runs `f` once per kernel and checks the answer, ledger totals, and
/// the full phase journal all match.
fn differential<T: PartialEq + std::fmt::Debug>(label: &str, f: impl Fn() -> (T, Ledger)) {
    let (scalar_out, scalar) = {
        let _k = with_kernel(FloodKernel::Scalar);
        f()
    };
    let (bitset_out, bitset) = {
        let _k = with_kernel(FloodKernel::Bitset);
        f()
    };
    assert_eq!(
        scalar_out, bitset_out,
        "{label}: results diverge between kernels"
    );
    assert_eq!(
        (scalar.rounds, scalar.words, scalar.messages),
        (bitset.rounds, bitset.words, bitset.messages),
        "{label}: ledger totals diverge between kernels"
    );
    assert_eq!(
        phase_journal(&scalar),
        phase_journal(&bitset),
        "{label}: phase journal diverges between kernels"
    );
    assert!(scalar.rounds > 0, "{label}: pipeline must charge rounds");
}

#[test]
fn girth_is_kernel_invariant() {
    // The girth pipeline is the heaviest bitset consumer: full-source
    // detection plus sampled multi-source BFS, all unit-latency.
    let g = ring_with_chords(80, 6, Orientation::Undirected, WeightRange::unit(), 5);
    let params = Params::new().with_seed(11);
    differential("approx_girth", || {
        let out = approx_girth(&g, &params);
        (
            (out.weight, out.witness.map(|w| w.vertices().to_vec())),
            out.ledger,
        )
    });
}

#[test]
fn directed_two_approx_is_kernel_invariant() {
    // Algorithm 2/3: k-source BFS both directions plus the restricted
    // BFS phase loop, which shares the FloodPlan CSR with the kernels.
    let g = connected_gnm(48, 120, Orientation::Directed, WeightRange::unit(), 23);
    let params = Params::new().with_seed(9);
    differential("two_approx_directed_mwc", || {
        let out = two_approx_directed_mwc(&g, &params);
        (
            (out.weight, out.witness.map(|w| w.vertices().to_vec())),
            out.ledger,
        )
    });
}

#[test]
fn undirected_weighted_is_kernel_invariant() {
    // Scaled graphs run latency-stretched floods — the scalar fallback
    // under either kernel setting — interleaved with unit-latency ones.
    let g = connected_gnm(
        72,
        150,
        Orientation::Undirected,
        WeightRange::uniform(1, 25),
        41,
    );
    let params = Params::new().with_seed(7).with_epsilon(0.25);
    differential("approx_mwc_undirected_weighted", || {
        let out = approx_mwc_undirected_weighted(&g, &params);
        (
            (out.weight, out.witness.map(|w| w.vertices().to_vec())),
            out.ledger,
        )
    });
}

#[test]
fn directed_weighted_is_kernel_invariant() {
    let g = connected_gnm(
        48,
        120,
        Orientation::Directed,
        WeightRange::uniform(1, 12),
        17,
    );
    let params = Params::new().with_seed(3).with_epsilon(0.25);
    differential("approx_mwc_directed_weighted", || {
        let out = approx_mwc_directed_weighted(&g, &params);
        (
            (out.weight, out.witness.map(|w| w.vertices().to_vec())),
            out.ledger,
        )
    });
}

#[test]
fn exact_and_ksssp_are_kernel_invariant() {
    let g = connected_gnm(
        40,
        90,
        Orientation::Undirected,
        WeightRange::uniform(1, 9),
        31,
    );
    differential("exact_mwc", || {
        let out = exact_mwc(&g);
        (
            (out.weight, out.witness.map(|w| w.vertices().to_vec())),
            out.ledger,
        )
    });

    let g = connected_gnm(90, 190, Orientation::Directed, WeightRange::unit(), 2);
    let params = Params::new().with_seed(4);
    differential("k_source_bfs", || {
        let out = k_source_bfs(&g, &[0, 19, 55], Direction::Forward, &params);
        let dists: Vec<_> = (0..g.n()).map(|v| out.get_row(0, v)).collect();
        (dists, out.ledger)
    });
}
