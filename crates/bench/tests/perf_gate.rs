//! End-to-end perf-gate tests: drives the real `trace_diff` binary over
//! record files on disk and asserts its exit codes and culprit reporting —
//! identical records pass (exit 0), an injected +1-round regression fails
//! with a span-level human-readable report (exit 1), unpaired records are
//! configuration errors (exit 2).

use mwc_bench::report::RunRecorder;
use mwc_trace::RunRecord;
use std::path::{Path, PathBuf};
use std::process::Output;

/// A deterministic record with one nested span, built like a bench bin
/// would build it.
fn sample_record() -> RunRecord {
    let mut rec = RunRecorder::start("probe");
    rec.param("n", 64);
    {
        let _outer = mwc_trace::span("sweep");
        mwc_trace::add_cost(10, 100, 20);
        let _inner = mwc_trace::span("bfs");
        mwc_trace::add_cost(30, 300, 60);
    }
    rec.into_record()
}

/// Writes `record` as `<dir>/probe.json`.
fn write_record(dir: &Path, record: &RunRecord) {
    std::fs::create_dir_all(dir).unwrap();
    std::fs::write(dir.join("probe.json"), record.render()).unwrap();
}

/// Runs the trace_diff binary against `fresh` and `base` dirs, from a
/// scratch cwd so report artifacts don't pollute the repo's `results/`.
fn run_gate(scratch: &Path, fresh: &Path, base: &Path) -> Output {
    std::process::Command::new(env!("CARGO_BIN_EXE_trace_diff"))
        .args([fresh.to_str().unwrap(), base.to_str().unwrap()])
        .current_dir(scratch)
        .output()
        .expect("trace_diff runs")
}

fn scratch_dirs(case: &str) -> (PathBuf, PathBuf, PathBuf) {
    let root = std::env::temp_dir().join(format!("mwc-perf-gate-{case}"));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).unwrap();
    (root.clone(), root.join("fresh"), root.join("base"))
}

#[test]
fn identical_records_pass_the_gate() {
    let (root, fresh, base) = scratch_dirs("identical");
    // Two independent builds of the same workload: byte-determinism means
    // the gate sees zero deltas, not merely tolerated ones.
    let (a, b) = (sample_record(), sample_record());
    assert_eq!(a.render(), b.render(), "records must be byte-identical");
    write_record(&base, &a);
    write_record(&fresh, &b);
    let out = run_gate(&root, &fresh, &base);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "{stdout}");
    assert!(stdout.contains("no deltas"), "{stdout}");
    // The trajectory artifact is emitted on every run.
    let traj = std::fs::read_to_string(root.join("results/BENCH_trajectory.json")).unwrap();
    assert!(traj.contains("mwc-bench-trajectory/v1"), "{traj}");
    assert!(traj.contains("\"probe\""), "{traj}");
}

#[test]
fn injected_one_round_regression_fails_with_culprit_span() {
    let (root, fresh, base) = scratch_dirs("regression");
    let baseline = sample_record();
    let mut regressed = sample_record();
    // Inject a synthetic +1 round into the nested span (and the totals it
    // rolls up into, as a real regression would).
    let span = regressed
        .spans
        .iter_mut()
        .find(|s| s.path == "sweep > bfs")
        .expect("nested span recorded");
    span.rounds += 1;
    regressed.rounds += 1;
    write_record(&base, &baseline);
    write_record(&fresh, &regressed);

    let out = run_gate(&root, &fresh, &base);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "{stdout}");
    // The report names the culprit span path and the exact delta.
    assert!(stdout.contains("REGRESSED"), "{stdout}");
    assert!(stdout.contains("sweep > bfs"), "{stdout}");
    assert!(stdout.contains("30 -> 31"), "{stdout}");
    // Machine-readable report carries the same verdict.
    let json = std::fs::read_to_string(root.join("results/trace_diff_report.json")).unwrap();
    assert!(json.contains("\"status\": \"REGRESSED\""), "{json}");
}

#[test]
fn unpaired_records_are_config_errors() {
    let (root, fresh, base) = scratch_dirs("unpaired");
    std::fs::create_dir_all(&fresh).unwrap();
    write_record(&base, &sample_record());
    let out = run_gate(&root, &fresh, &base);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(2), "{stdout}");
    assert!(stdout.contains("INCOMPARABLE"), "{stdout}");
}
