//! The common shape of a lower-bound graph instance plus the two-party
//! communication accounting harness.

use mwc_congest::Ledger;
use mwc_graph::{Graph, NodeId, Weight};

/// A graph built from a set-disjointness instance, with the Alice/Bob
/// node partition and the MWC thresholds that separate intersecting from
/// disjoint instances.
#[derive(Clone, Debug)]
pub struct LowerBoundInstance {
    /// The gadget graph.
    pub graph: Graph,
    /// `alice[v]` ⇔ node `v` is simulated by Alice.
    pub alice: Vec<bool>,
    /// Number of disjointness bits encoded.
    pub bits: usize,
    /// If the sets intersect, the MWC is ≤ this.
    pub yes_threshold: Weight,
    /// If the sets are disjoint, every cycle weighs ≥ this.
    pub no_threshold: Weight,
}

impl LowerBoundInstance {
    /// Decides disjointness from a (possibly approximate) MWC value: any
    /// `α`-approximation with `α < no_threshold / yes_threshold`
    /// classifies correctly.
    pub fn decide(&self, mwc: Option<Weight>) -> bool {
        mwc.is_some_and(|w| w < self.no_threshold)
    }

    /// Number of communication links crossing the Alice/Bob cut.
    pub fn cut_edges(&self) -> usize {
        let mut cut = std::collections::HashSet::new();
        for e in self.graph.edges() {
            if self.alice[e.u] != self.alice[e.v] {
                cut.insert((e.u.min(e.v), e.u.max(e.v)));
            }
        }
        cut.len()
    }

    /// The information-theoretic round floor for **any** correct CONGEST
    /// algorithm on this instance: disjointness needs `Ω(bits)`
    /// communicated, each round moves at most `2 · cut_edges · word_bits`
    /// bits across the cut, so `rounds ≥ bits / (2 · cut · word_bits)`
    /// (up to the constant hidden in Ω). The returned value uses constant
    /// 1 — a conservative floor every *correct* algorithm in this
    /// repository must clear, which the tests verify.
    pub fn round_floor(&self, word_bits: u64) -> u64 {
        let per_round = 2 * self.cut_edges() as u64 * word_bits;
        (self.bits as u64) / per_round.max(1)
    }

    /// Communication report for an executed algorithm: words and implied
    /// bits that crossed the cut, plus the rounds used.
    pub fn report(&self, ledger: &Ledger, word_bits: u64) -> CommunicationReport {
        CommunicationReport {
            rounds: ledger.rounds,
            cut_edges: self.cut_edges(),
            cut_words: ledger.words_across(&self.alice),
            word_bits,
            round_floor: self.round_floor(word_bits),
        }
    }

    /// Nodes on Alice's side (for diagnostics).
    pub fn alice_nodes(&self) -> Vec<NodeId> {
        (0..self.graph.n()).filter(|&v| self.alice[v]).collect()
    }
}

/// What a run of an algorithm on a [`LowerBoundInstance`] communicated.
#[derive(Clone, Copy, Debug)]
pub struct CommunicationReport {
    /// Rounds the algorithm took.
    pub rounds: u64,
    /// Links crossing the cut.
    pub cut_edges: usize,
    /// Words that crossed the cut during the run.
    pub cut_words: u64,
    /// Bits per word assumed (`Θ(log n + log W)`).
    pub word_bits: u64,
    /// The conservative information-theoretic floor on rounds.
    pub round_floor: u64,
}

impl CommunicationReport {
    /// Bits that crossed the cut.
    pub fn cut_bits(&self) -> u64 {
        self.cut_words * self.word_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwc_graph::Orientation;

    #[test]
    fn cut_counts_undirected_pairs_once() {
        let g = Graph::from_edges(
            4,
            Orientation::Directed,
            [(0, 2, 1), (2, 0, 1), (1, 3, 1), (0, 1, 1)],
        )
        .unwrap();
        let lb = LowerBoundInstance {
            graph: g,
            alice: vec![true, true, false, false],
            bits: 100,
            yes_threshold: 4,
            no_threshold: 8,
        };
        // Crossing: 0↔2 (two directed edges, one link) and 1—3.
        assert_eq!(lb.cut_edges(), 2);
        assert_eq!(lb.round_floor(10), 100 / 40);
    }

    #[test]
    fn decide_uses_no_threshold() {
        let lb = LowerBoundInstance {
            graph: Graph::directed(1),
            alice: vec![true],
            bits: 1,
            yes_threshold: 4,
            no_threshold: 8,
        };
        assert!(lb.decide(Some(4)));
        assert!(lb.decide(Some(7))); // any (2−ε)-approx of 4
        assert!(!lb.decide(Some(8)));
        assert!(!lb.decide(None));
    }
}
