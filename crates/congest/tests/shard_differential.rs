//! Shard-count differential suite: the engine's sharded round kernel is
//! purely an execution strategy, so *everything observable* must be
//! byte-identical for any `--shards` count. On the three workload
//! families the Table-1 experiments sweep — unit-weight girth graphs,
//! undirected weighted graphs, and directed weighted graphs — an
//! identical pipeline (BFS tree + broadcast + convergecast, a
//! history-enabled hand-rolled delivery phase, multi-source BFS, source
//! detection) runs once per shard count in {1, 2, 4, 8} and the suite
//! compares, against the unsharded run:
//!
//! - the rendered [`RunRecord`] (params, spans, totals, congestion
//!   summaries — the exact bytes `trace_diff` gates on),
//! - the ledger's congestion history (`words_per_round`), hot links, and
//!   totals,
//! - the [`DistMatrix`] digest and the full detection lists,
//! - the phase-cache `CacheStats` counters and the ledger's canonical
//!   `ShardProfile` (per-reference-shard links/words/queue highs),
//! - the `MWC_TRACE_EVENTS` event log, line for line.
//!
//! The shard knobs are process globals, so runs take a lock and restore
//! the unsharded default on drop; the engagement threshold is pinned to
//! zero so the parallel kernel really runs on these small graphs.

use std::sync::{Mutex, MutexGuard};

use mwc_congest::{
    broadcast, convergecast_min, multi_source_bfs, source_detection, CacheStats, DetectionLists,
    EventCapture, Ledger, MultiBfsSpec, Network, PhaseCache, RoundOutput, ShardProfile,
};
use mwc_graph::generators::{connected_gnm, ring_with_chords, WeightRange};
use mwc_graph::seq::Direction;
use mwc_graph::{Graph, NodeId, Orientation};
use mwc_trace::{RunRecord, TraceSession};

static SHARD_GLOBALS: Mutex<()> = Mutex::new(());

/// Holds the process-global shard configuration for one observed run:
/// takes the lock (the knobs are shared by every test thread), pins the
/// engagement threshold to zero, installs the shard count, and restores
/// the unsharded default on drop.
struct ShardConfig {
    _guard: MutexGuard<'static, ()>,
}

fn with_shards(k: usize) -> ShardConfig {
    let guard = SHARD_GLOBALS.lock().unwrap_or_else(|e| e.into_inner());
    mwc_par::set_shard_threshold(0);
    mwc_par::set_shards(k);
    ShardConfig { _guard: guard }
}

impl Drop for ShardConfig {
    fn drop(&mut self) {
        mwc_par::set_shards(1);
    }
}

/// Everything a run exposes to the outside world. Two [`Observed`]
/// values comparing equal means no artifact — record bytes, ledger,
/// tables, event log — could distinguish the shard counts.
#[derive(Debug, PartialEq, Eq)]
struct Observed {
    record: String,
    events: Vec<String>,
    bfs_digest: u64,
    detection: DetectionLists,
    history: Vec<(u64, u64)>,
    hot_links: Vec<((NodeId, NodeId), u64)>,
    totals: (u64, u64, u64, u64),
    tree_min: u64,
    cache_stats: CacheStats,
    shard_profile: ShardProfile,
}

/// A delivery-driven phase with history on: every node seeds tokens of
/// varying size and latency, wakeups trigger fresh sends, deliveries
/// re-forward while hops remain. This is the part of the pipeline that
/// exercises queue depth, transit ordering, and the per-round ledger
/// history under the sharded kernel.
fn echo_phase(g: &Graph, ledger: &mut Ledger) {
    let mut net: Network<(u32, u32)> = Network::new_auto(g);
    net.enable_history();
    for v in 0..g.n() {
        for w in g.comm_neighbors(v) {
            let words = 1 + ((v + w) % 3) as u64;
            net.send_latency(v, w, (v as u32, 2), words, (v % 2) as u64)
                .expect("neighbors are linked");
        }
        if v % 5 == 0 {
            net.schedule_wakeup(4 + (v % 3) as u64, v);
        }
    }
    let mut out = RoundOutput::default();
    while net.step_fast_into(&mut out) {
        for v in out.wakeups.drain(..) {
            if let Some(&w) = g.comm_neighbors(v).first() {
                net.send(v, w, (u32::MAX, 0), 3).expect("neighbors");
            }
        }
        for d in out.deliveries.drain(..) {
            let (tok, hops) = d.payload;
            if hops == 0 {
                continue;
            }
            let nbrs = g.comm_neighbors(d.to);
            let w = nbrs[(d.to + hops as usize) % nbrs.len()];
            net.send(d.to, w, (tok, hops - 1), 1 + (tok as u64 % 4))
                .expect("neighbors");
        }
    }
    ledger.absorb("echo", &net);
}

/// Runs the full pipeline on `g` under `shards` engine shards and
/// captures every observable artifact.
fn observe(g: &Graph, direction: Direction, shards: usize) -> Observed {
    let _cfg = with_shards(shards);
    let cap = EventCapture::memory();
    let session = TraceSession::memory();
    let mut ledger = Ledger::new();

    // Build the tree through the phase cache, twice: the second build is
    // a hit, so the run exercises the CacheStats counters (and the
    // ledger's rounds_saved credit) that must stay shard-invariant.
    let cache = PhaseCache::scope();
    let tree = PhaseCache::bfs_tree(g, 0, &mut ledger);
    let tree_again = PhaseCache::bfs_tree(g, 0, &mut ledger);
    assert_eq!(tree.parent, tree_again.parent, "cache replays the tree");
    let items: Vec<(NodeId, u32)> = (0..g.n()).step_by(3).map(|v| (v, v as u32)).collect();
    let _gathered = broadcast(g, &tree, items, 2, &mut ledger);
    let values: Vec<u64> = (0..g.n() as u64).map(|v| v * 7 % 23 + 1).collect();
    let tree_min = convergecast_min(g, &tree, values, &mut ledger);

    echo_phase(g, &mut ledger);

    let sources: Vec<NodeId> = (0..g.n()).step_by(2).collect();
    let spec = MultiBfsSpec {
        direction,
        ..MultiBfsSpec::default()
    };
    let mat = multi_source_bfs(g, &sources, &spec, "probe", &mut ledger);
    let det = source_detection(g, &sources, 64, 3, direction, None, "probe", &mut ledger);

    // Capture the counters, then drop the scope BEFORE finishing the
    // session so the cache event lands in this session's trace (and the
    // record's gated `cache` tally is populated).
    let cache_stats = PhaseCache::stats().expect("scope is active");
    drop(cache);

    let mut record = RunRecord::from_trace(
        "shard_probe",
        vec![("n".into(), g.n().to_string())],
        &session.finish(),
    );
    record.push_congestion(ledger.congestion_summary("pipeline"));

    Observed {
        record: record.render(),
        events: cap.finish(),
        bfs_digest: mat.digest(),
        detection: det.lists,
        history: ledger.words_per_round().to_vec(),
        hot_links: ledger.hot_links(8),
        totals: (
            ledger.rounds,
            ledger.words,
            ledger.messages,
            ledger.rounds_saved,
        ),
        tree_min,
        cache_stats,
        shard_profile: ledger.shard_profile(),
    }
}

fn assert_shard_invariant(g: &Graph, direction: Direction, family: &str) {
    let baseline = observe(g, direction, 1);
    assert!(
        !baseline.history.is_empty(),
        "{family}: the history-enabled phase must populate the ledger"
    );
    assert!(
        baseline.cache_stats.tree_hits >= 1 && baseline.totals.3 > 0,
        "{family}: the pipeline must exercise the phase cache"
    );
    assert!(
        !baseline.shard_profile.words.is_empty()
            && baseline.shard_profile.imbalance_milli() >= 1000,
        "{family}: the ledger must carry a canonical shard profile"
    );
    assert!(
        baseline.record.contains("\"tree_hits\": 1")
            && baseline.record.contains("\"shard_imbalance_milli\":"),
        "{family}: the record must carry the gated cache/shard metrics"
    );
    for shards in [2, 4, 8] {
        let got = observe(g, direction, shards);
        assert_eq!(
            got.record, baseline.record,
            "{family}: RunRecord bytes diverge at {shards} shards"
        );
        assert_eq!(
            got.events, baseline.events,
            "{family}: event log diverges at {shards} shards"
        );
        assert_eq!(
            got, baseline,
            "{family}: observable state diverges at {shards} shards"
        );
    }
}

#[test]
fn girth_family_is_shard_invariant() {
    for seed in 0..2 {
        let g = connected_gnm(26, 44, Orientation::Undirected, WeightRange::unit(), seed);
        assert_shard_invariant(&g, Direction::Forward, "girth/connected_gnm");
    }
}

#[test]
fn undirected_weighted_family_is_shard_invariant() {
    let g = ring_with_chords(
        24,
        8,
        Orientation::Undirected,
        WeightRange::uniform(1, 9),
        5,
    );
    assert_shard_invariant(&g, Direction::Forward, "weighted/ring_with_chords");
}

#[test]
fn directed_family_is_shard_invariant() {
    for seed in [3, 11] {
        let g = connected_gnm(
            22,
            50,
            Orientation::Directed,
            WeightRange::uniform(1, 6),
            seed,
        );
        assert_shard_invariant(&g, Direction::Forward, "directed/connected_gnm");
        let g = connected_gnm(20, 46, Orientation::Directed, WeightRange::unit(), seed);
        assert_shard_invariant(&g, Direction::Reverse, "directed-reverse/connected_gnm");
    }
}

/// Shard counts beyond the node count must clamp, not panic, and still
/// produce identical artifacts.
#[test]
fn oversharding_clamps_and_stays_identical() {
    let g = ring_with_chords(6, 2, Orientation::Undirected, WeightRange::unit(), 1);
    let baseline = observe(&g, Direction::Forward, 1);
    let got = observe(&g, Direction::Forward, 64);
    assert_eq!(got, baseline, "oversharded run diverges");
}
